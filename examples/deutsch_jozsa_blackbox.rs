//! Debugging a black-box function with approximate assertions — §X.
//!
//! The programmer cannot predict a black-box oracle's output, so no
//! precise assertion applies. The approximate assertion instead checks
//! membership of the joint state |x⟩|f(x)⟩ in the *constant* set, the
//! *balanced* set, or their union; a buggy oracle that is neither raises
//! assertion errors.
//!
//! Run with: `cargo run -p qra --example deutsch_jozsa_blackbox`

use qra::algorithms::deutsch_jozsa::{
    balanced_output_set, constant_output_set, probe_circuit, Oracle,
};
use qra::prelude::*;

fn check_membership(
    oracle: &Oracle,
    set: Vec<CVector>,
    label: &str,
) -> Result<(), Box<dyn std::error::Error>> {
    let n = 2;
    let mut circuit = probe_circuit(oracle, n)?;
    let qubits: Vec<usize> = (0..=n).collect();
    let handle = insert_assertion(&mut circuit, &qubits, &StateSpec::set(set)?, Design::Auto)?;
    let counts = StatevectorSimulator::with_seed(5).run(&circuit, 8192)?;
    println!(
        "  vs {label:18} error rate {:.3}  [{}: {}]",
        handle.error_rate(&counts),
        handle.design,
        handle.counts
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let oracles: [(&str, Oracle); 4] = [
        ("constant-0", Oracle::ConstantZero),
        ("constant-1", Oracle::ConstantOne),
        ("balanced x·11", Oracle::BalancedLinear { mask: 0b11 }),
        ("BUGGY (x₀∧x₁)", Oracle::buggy_and()),
    ];

    for (name, oracle) in &oracles {
        println!("oracle {name}:");
        check_membership(oracle, constant_output_set(2), "constant set")?;
        check_membership(oracle, balanced_output_set(2), "balanced set")?;
        let mut both = constant_output_set(2);
        both.extend(balanced_output_set(2));
        check_membership(oracle, both, "constant ∪ balanced")?;
        println!();
    }

    println!("Reading: the buggy oracle leaks probability out of the constant");
    println!("and balanced sets — a bug no precise assertion could express");
    println!("(§X). The error rate stays below 1 because the buggy state is");
    println!("not orthogonal to the sets (Fig. 17's partial histogram), and");
    println!("the union set's span is wide enough to contain the buggy state");
    println!("entirely — a Bloom-filter-style false negative by construction.");
    Ok(())
}
