//! OpenQASM 2.0 interop: export an assertion-instrumented program, reload
//! it, and verify the reloaded circuit behaves identically — the workflow
//! for handing instrumented circuits to external toolchains.
//!
//! Run with: `cargo run -p qra --example qasm_interop`

use qra::algorithms::states;
use qra::circuit::qasm::to_qasm;
use qra::circuit::qasm_parser::from_qasm;
use qra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a GHZ program with a SWAP assertion.
    let mut program = states::ghz(3);
    let handle = insert_assertion(
        &mut program,
        &[0, 1, 2],
        &StateSpec::pure(states::ghz_vector(3))?,
        Design::Swap,
    )?;
    program.measure_all();

    // Lower the one unsupported gate family (CCZ) for export, then emit.
    let mut lowered = Circuit::with_clbits(program.num_qubits(), program.num_clbits());
    for inst in program.instructions() {
        match &inst.operation {
            qra::circuit::Operation::Gate(Gate::Ccz) => {
                lowered.h(inst.qubits[2]);
                lowered.ccx(inst.qubits[0], inst.qubits[1], inst.qubits[2]);
                lowered.h(inst.qubits[2]);
            }
            qra::circuit::Operation::Gate(g) => {
                lowered.append(g.clone(), &inst.qubits)?;
            }
            qra::circuit::Operation::Measure => {
                lowered.measure(inst.qubits[0], inst.clbits[0])?;
            }
            qra::circuit::Operation::Reset => {
                lowered.reset(inst.qubits[0])?;
            }
            qra::circuit::Operation::Barrier => {
                lowered.barrier_on(inst.qubits.clone());
            }
        }
    }
    let text = to_qasm(&lowered)?;
    println!("--- exported OpenQASM ({} lines) ---", text.lines().count());
    for line in text.lines().take(12) {
        println!("{line}");
    }
    println!("…\n");

    // Reload and re-run: identical semantics.
    let reloaded = from_qasm(&text)?;
    println!(
        "reloaded: {} qubits, {} gates, depth {}",
        reloaded.num_qubits(),
        reloaded.gate_count(),
        reloaded.depth()
    );
    let counts = StatevectorSimulator::with_seed(7).run(&reloaded, 8192)?;
    println!(
        "assertion error rate after the QASM roundtrip: {:.4}",
        handle.error_rate(&counts)
    );
    println!(
        "GHZ outcomes after post-selection: {}",
        handle.post_select(&counts).0
    );
    Ok(())
}
