//! QPE bug localisation — the paper's §IX-A case study.
//!
//! Inserts precise pure-state assertions at the six QPE slots (Fig. 15/16)
//! and shows how the first failing slot localises Bug1 (missing loop
//! index) versus Bug2 (cu3 mistyped as u3).
//!
//! Run with: `cargo run -p qra --example qpe_debugging`

use qra::algorithms::qpe::{expected_slot_state, qpe_prefix, QpeBug, QpeConfig};
use qra::prelude::*;

/// Runs an assertion of the expected slot state at `slot` on the (possibly
/// buggy) prefix circuit and returns the assertion error rate.
fn slot_error_rate(config: &QpeConfig, slot: usize) -> Result<f64, Box<dyn std::error::Error>> {
    let mut circuit = qpe_prefix(config, slot);
    let expected = expected_slot_state(config, slot);
    let qubits: Vec<usize> = (0..config.num_qubits()).collect();
    let handle = insert_assertion(
        &mut circuit,
        &qubits,
        &StateSpec::pure(expected)?,
        Design::Swap,
    )?;
    let counts = StatevectorSimulator::with_seed(11).run(&circuit, 4096)?;
    Ok(handle.error_rate(&counts))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = QpeConfig::paper_sec9a();
    for (name, bug) in [
        ("correct program", QpeBug::None),
        ("Bug1: missing loop index", QpeBug::MissingLoopIndex),
        ("Bug2: cu3 typed as u3", QpeBug::UncontrolledGate),
    ] {
        let config = base.with_bug(bug);
        println!("== {name} ==");
        let mut first_fail = None;
        for slot in 1..=config.num_slots() {
            let rate = slot_error_rate(&config, slot)?;
            let verdict = if rate > 0.01 { "FAIL" } else { "pass" };
            if rate > 0.01 && first_fail.is_none() {
                first_fail = Some(slot);
            }
            println!("  slot {slot}: error rate {rate:.3}  {verdict}");
        }
        match first_fail {
            Some(slot) => println!(
                "  → bug localised between slot {} and slot {slot}\n",
                slot - 1
            ),
            None => println!("  → no assertion errors: program is correct\n"),
        }
    }

    // Cheaper alternative from §IX-A3: approximate assertion at slot 5
    // with the two-member set {|++++⟩|0⟩, |θ₄⟩|1⟩}.
    println!("== Approximate assertion at slot 5 (set of 2 states) ==");
    let v5 = expected_slot_state(&base, 5);
    // Split the slot-5 state into its ar=0 / ar=1 branches.
    let dim = v5.len();
    let mut branch0 = CVector::zeros(dim);
    let mut branch1 = CVector::zeros(dim);
    for i in 0..dim {
        if i & 1 == 0 {
            branch0[i] = v5.amplitude(i);
        } else {
            branch1[i] = v5.amplitude(i);
        }
    }
    let set = StateSpec::set(vec![branch0.normalized()?, branch1.normalized()?])?;
    for (name, bug) in [
        ("correct", QpeBug::None),
        ("Bug1", QpeBug::MissingLoopIndex),
        ("Bug2", QpeBug::UncontrolledGate),
    ] {
        let config = base.with_bug(bug);
        let mut circuit = qpe_prefix(&config, 5);
        let qubits: Vec<usize> = (0..config.num_qubits()).collect();
        let handle = insert_assertion(&mut circuit, &qubits, &set, Design::Auto)?;
        let counts = StatevectorSimulator::with_seed(11).run(&circuit, 4096)?;
        println!(
            "  {name:8} error rate {:.3}  [{}: {}]",
            handle.error_rate(&counts),
            handle.design,
            handle.counts
        );
    }
    Ok(())
}
