//! Automatic bug localisation with checkpoint instrumentation — the §VIII
//! "assert after every instruction" workflow, applied to the Appendix-D
//! controlled-adder bug.
//!
//! Given a reference implementation and a buggy one, `instrument_against`
//! asserts the reference's expected state after every instruction of the
//! buggy program; the first failing checkpoint brackets the faulty gates.
//!
//! Run with: `cargo run -p qra --example checkpoint_debugging`

use qra::algorithms::adder::{add_const_fourier, AdderBug};
use qra::algorithms::qft::append_qft;
use qra::core::checkpoint::{instrument_against, CheckpointOptions, CheckpointPlacement};
use qra::prelude::*;

const WIDTH: usize = 3;

fn build(bug: AdderBug) -> Circuit {
    let mut c = Circuit::new(WIDTH + 2);
    c.x(WIDTH).x(WIDTH + 1); // activate both controls
    c.x(WIDTH - 2); // load b = 2
    let data: Vec<usize> = (0..WIDTH).collect();
    append_qft(&mut c, &data);
    add_const_fourier(&mut c, &data, 3, &[WIDTH, WIDTH + 1], bug).unwrap();
    c
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let reference = build(AdderBug::None);
    let buggy = build(AdderBug::WrongTargetInDoubleControl);
    assert_eq!(reference.len(), buggy.len());
    println!(
        "program: double-controlled Fourier adder, {} instructions\n",
        buggy.len()
    );

    // Bisect: the QFT prologue is shared library code, so checkpoint only
    // the adder region (every instruction after the QFT) using a shared
    // ancilla pool — the classical flag budget stays within the 64-bit
    // outcome keys.
    let qft_end = 3 + (WIDTH * (WIDTH + 1)) / 2 + WIDTH / 2; // x,x,x + QFT gates
    let region: Vec<usize> = (qft_end..buggy.len()).collect();
    let instrumented = instrument_against(
        &buggy,
        &reference,
        &CheckpointOptions {
            design: Design::Swap,
            placement: CheckpointPlacement::AfterInstructions(region),
            // Assert only the data register (the controls are classically
            // |11⟩ throughout) — 3 flag bits per checkpoint.
            qubits: Some((0..WIDTH).collect()),
            reuse_ancillas: true,
        },
    )?;
    let counts = StatevectorSimulator::with_seed(5).run(&instrumented.circuit, 256)?;
    let report = AssertionReport::from_counts(&counts, &instrumented.handles);

    for (i, (&pos, rate)) in instrumented
        .positions
        .iter()
        .zip(report.per_assertion_error_rates())
        .enumerate()
    {
        let gate = format!("{}", buggy.instructions()[pos]);
        let marker = if *rate > 0.01 { "FAIL" } else { "pass" };
        println!("checkpoint {i:2} after #{pos:2} {gate:32} rate {rate:.3} {marker}");
    }
    match report.first_failing(0.01) {
        Some(k) => {
            let pos = instrumented.positions[k];
            println!(
                "\n→ first failure at checkpoint {k}: the bug sits at instruction #{pos} \
                 ({}).",
                buggy.instructions()[pos]
            );
        }
        None => println!("\n→ no failures: the program matches the reference."),
    }
    println!(
        "\nNote the SWAP design's state-correction property (§IV-E): every\n\
         passing checkpoint swaps a fresh copy of the reference state onto\n\
         the data qubits, so divergence RESETS after each flagged gate —\n\
         each FAIL above marks one faulty instruction independently, and\n\
         later checkpoints stay clean until the next wrong gate fires."
    );
    Ok(())
}
