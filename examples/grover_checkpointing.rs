//! Checkpointing Grover search with runtime assertions.
//!
//! The state after each Grover iteration is exactly known (a rotation in
//! the span of the marked state and the uniform rest), so precise
//! assertions can checkpoint every iteration; an approximate assertion can
//! instead check membership in that 2-dimensional span — robust to
//! iteration-count mistakes while still catching oracle bugs.
//!
//! Run with: `cargo run -p qra --example grover_checkpointing`

use qra::algorithms::grover::{
    append_diffusion, append_oracle, expected_state, grover, optimal_iterations,
};
use qra::prelude::*;

const N: usize = 3;
const TARGET: usize = 0b101;

fn uniform_rest() -> CVector {
    let dim = 1usize << N;
    let amp = 1.0 / ((dim - 1) as f64).sqrt();
    let mut v = CVector::zeros(dim);
    for i in 0..dim {
        if i != TARGET {
            v[i] = C64::from(amp);
        }
    }
    v
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let iters = optimal_iterations(N);
    println!("Grover over {N} qubits, target |{TARGET:03b}⟩, {iters} iterations\n");

    // --- Precise checkpoints after each iteration -------------------------
    println!("== precise checkpoints (SWAP design) ==");
    for k in 1..=iters {
        let mut circuit = grover(N, TARGET, k)?;
        let spec = StateSpec::pure(expected_state(N, TARGET, k))?;
        let qubits: Vec<usize> = (0..N).collect();
        let handle = insert_assertion(&mut circuit, &qubits, &spec, Design::Swap)?;
        let counts = StatevectorSimulator::with_seed(3).run(&circuit, 2048)?;
        println!(
            "  after iteration {k}: error rate {:.3} [{}]",
            handle.error_rate(&counts),
            handle.counts
        );
    }

    // --- Approximate span assertion: iteration-count independent ----------
    println!("\n== approximate span assertion {{|target⟩, |rest⟩}} ==");
    let span = StateSpec::set(vec![CVector::basis_state(1 << N, TARGET), uniform_rest()])?;
    for k in 0..=iters + 1 {
        let mut circuit = grover(N, TARGET, k)?;
        let qubits: Vec<usize> = (0..N).collect();
        let handle = insert_assertion(&mut circuit, &qubits, &span, Design::Auto)?;
        let counts = StatevectorSimulator::with_seed(4).run(&circuit, 2048)?;
        println!(
            "  after iteration {k}: error rate {:.3} (any k passes — span membership)",
            handle.error_rate(&counts)
        );
    }

    // --- Buggy oracle: marks the wrong state -------------------------------
    println!("\n== buggy oracle (marks |011⟩ instead) ==");
    let mut buggy = Circuit::new(N);
    for q in 0..N {
        buggy.h(q);
    }
    append_oracle(&mut buggy, N, 0b011)?;
    append_diffusion(&mut buggy, N)?;
    let qubits: Vec<usize> = (0..N).collect();
    let precise = StateSpec::pure(expected_state(N, TARGET, 1))?;
    let h1 = insert_assertion(&mut buggy, &qubits, &precise, Design::Swap)?;
    let counts = StatevectorSimulator::with_seed(5).run(&buggy, 2048)?;
    println!(
        "  precise checkpoint: error rate {:.3}",
        h1.error_rate(&counts)
    );

    let mut buggy2 = Circuit::new(N);
    for q in 0..N {
        buggy2.h(q);
    }
    append_oracle(&mut buggy2, N, 0b011)?;
    append_diffusion(&mut buggy2, N)?;
    let h2 = insert_assertion(&mut buggy2, &qubits, &span, Design::Auto)?;
    let counts = StatevectorSimulator::with_seed(6).run(&buggy2, 2048)?;
    println!(
        "  span assertion:     error rate {:.3} (wrong state leaves the span)",
        h2.error_rate(&counts)
    );
    Ok(())
}
