//! GHZ debugging walkthrough — the paper's §III motivating example.
//!
//! Compares the assertion variants of Fig. 1 on the two GHZ bugs:
//! Bug1 flips the superposition sign (wrong coefficients), Bug2 reorders
//! the CX fan-out (wrong entanglement). Prints, per scheme, the circuit
//! cost and whether each bug is detected — the content of Table I.
//!
//! Run with: `cargo run -p qra --example ghz_debugging`

use qra::algorithms::states;
use qra::prelude::*;

fn detection_rate(
    program: &Circuit,
    spec: &StateSpec,
    design: Design,
) -> Result<(f64, GateCounts, Design), Box<dyn std::error::Error>> {
    let mut circuit = program.clone();
    let handle = insert_assertion(&mut circuit, &[0, 1, 2], spec, design)?;
    let counts = StatevectorSimulator::with_seed(42).run(&circuit, 8192)?;
    Ok((handle.error_rate(&counts), handle.counts, handle.design))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let good = states::ghz(3);
    let bug1 = states::ghz_bug1(3);
    let bug2 = states::ghz_bug2(3);

    // The three assertion variants of Fig. 1.
    let precise = StateSpec::pure(states::ghz_vector(3))?;
    let mixed_tail = {
        // Mixed state of the last two qubits: ½(|00⟩⟨00| + |11⟩⟨11|).
        let e0 = CVector::basis_state(4, 0);
        let e3 = CVector::basis_state(4, 3);
        let rho = CMatrix::outer(&e0, &e0)
            .scale(C64::from(0.5))
            .add(&CMatrix::outer(&e3, &e3).scale(C64::from(0.5)))?;
        StateSpec::mixed(rho)?
    };
    let approx = StateSpec::set(vec![CVector::basis_state(8, 0), CVector::basis_state(8, 7)])?;

    println!("== Precise 3-qubit assertion (SWAP design) ==");
    for (name, program) in [("correct", &good), ("bug1", &bug1), ("bug2", &bug2)] {
        let (rate, cost, _) = detection_rate(program, &precise, Design::Swap)?;
        println!("  {name:8} error rate {rate:.3}   [{cost}]");
    }

    println!("== Precise 2-qubit MIXED-state assertion on the last two qubits ==");
    for (name, program) in [("correct", &good), ("bug1", &bug1), ("bug2", &bug2)] {
        let mut circuit = program.clone();
        let handle = insert_assertion(&mut circuit, &[1, 2], &mixed_tail, Design::Swap)?;
        let counts = StatevectorSimulator::with_seed(42).run(&circuit, 8192)?;
        println!(
            "  {name:8} error rate {:.3}   [{}]",
            handle.error_rate(&counts),
            handle.counts
        );
    }

    println!("== Approximate assertion vs {{|000⟩, |111⟩}} (auto design) ==");
    for (name, program) in [("correct", &good), ("bug1", &bug1), ("bug2", &bug2)] {
        let (rate, cost, design) = detection_rate(program, &approx, Design::Auto)?;
        println!("  {name:8} error rate {rate:.3}   [{design}: {cost}]");
    }

    println!("\nReading: Bug1 only shows under the precise pure-state assertion");
    println!("(coefficients), Bug2 under all of them (entanglement structure).");
    Ok(())
}
