//! Noisy-device assertion experiment — the paper's §IX-B, with the real
//! ibmq-melbourne replaced by the melbourne-like density-matrix noise
//! model (see DESIGN.md for the substitution rationale).
//!
//! Setup: QPE with `cu3(2^j·θ, 0, 0)` gates whose eigenstate register is
//! the exact eigenstate `(|0⟩ + i|1⟩)/√2`; a single-qubit SWAP assertion
//! checks that eigenstate at the final slot. Measures (a) the
//! assertion-error rate without and with the paper's parameter-order bug
//! — the gap is the bug signal above the noise floor — and (b) the
//! success-rate improvement from filtering out shots that failed the
//! assertion.
//!
//! Run with: `cargo run --release -p qra --example noisy_device_filtering`

use qra::algorithms::qpe::{qpe, QpeBug, QpeConfig};
use qra::prelude::*;

/// θ = π/2 with 3 counting qubits: eigenvalue e^{−iθ/2} ⇒ phase 7/8,
/// so the exact QPE answer is v = 7.
fn config() -> QpeConfig {
    QpeConfig {
        counting: 3,
        angle: std::f64::consts::FRAC_PI_2,
        ..QpeConfig::paper_sec9b()
    }
}

fn eigenstate() -> CVector {
    // (|0⟩ + i|1⟩)/√2 — the +i eigenvector of Ry.
    let s = 0.5f64.sqrt();
    CVector::new(vec![C64::from(s), C64::new(0.0, s)])
}

fn run_case(bug: QpeBug, label: &str) -> Result<(f64, f64, f64), Box<dyn std::error::Error>> {
    let cfg = config().with_bug(bug);
    let mut circuit = qpe(&cfg);
    let spec = StateSpec::pure(eigenstate())?;
    let handle = insert_assertion(&mut circuit, &[cfg.eigen_qubit()], &spec, Design::Swap)?;

    // Data measurement of the counting register.
    let cl_base = circuit.num_clbits();
    circuit.expand_clbits(cl_base + cfg.counting);
    for q in 0..cfg.counting {
        circuit.measure(q, cl_base + q)?;
    }

    let sim = DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like());
    let counts = sim.run(&circuit, 8192, 7)?;
    let error_rate = handle.error_rate(&counts);

    // Success = counting register reads the exact answer v = 7
    // (counting qubit j carries bit 2^j of v).
    let success = |c: &Counts| -> f64 {
        let mut good = 0u64;
        for (key, n) in c.iter() {
            let v: u64 = (0..cfg.counting)
                .map(|j| ((key >> (cl_base + j)) & 1) << j)
                .sum();
            if v == 7 {
                good += n;
            }
        }
        if c.total() == 0 {
            0.0
        } else {
            good as f64 / c.total() as f64
        }
    };
    let raw_success = success(&counts);
    let (filtered, _kept) = handle.post_select(&counts);
    let filtered_success = success(&filtered);
    println!(
        "{label:24} assertion errors {:5.1}%   success {:.1}% → {:.1}% after filtering",
        error_rate * 100.0,
        raw_success * 100.0,
        filtered_success * 100.0
    );
    Ok((error_rate, raw_success, filtered_success))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (noise_floor, raw, filtered) = run_case(QpeBug::None, "no bug (noise only)")?;
    let (bug_rate, _, _) = run_case(QpeBug::WrongParameterOrder, "with §IX-B bug")?;
    println!();
    println!(
        "bug detection margin: {:.1}% above the {:.1}% noise floor",
        (bug_rate - noise_floor) * 100.0,
        noise_floor * 100.0
    );
    println!(
        "filtering recovered {:+.1} percentage points of success rate",
        (filtered - raw) * 100.0
    );
    println!("(cf. paper §IX-B: 36%→45% error rates, 19%→36% success rate)");
    Ok(())
}
