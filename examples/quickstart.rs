//! Quickstart: insert a runtime assertion into a Bell-pair program and
//! check that correct programs pass while a buggy one is flagged.
//!
//! Run with: `cargo run -p qra --example quickstart`

use qra::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shots = 8192;
    let s = 0.5f64.sqrt();
    let bell = CVector::from_real(&[s, 0.0, 0.0, s]);

    // --- Correct program -------------------------------------------------
    let mut program = Circuit::new(2);
    program.h(0).cx(0, 1);
    let handle = insert_assertion(
        &mut program,
        &[0, 1],
        &StateSpec::pure(bell.clone())?,
        Design::Auto,
    )?;
    println!(
        "assertion design chosen: {} (cost: {})",
        handle.design, handle.counts
    );
    let counts = StatevectorSimulator::with_seed(1).run(&program, shots)?;
    println!(
        "correct Bell program  → assertion error rate {:.4}",
        handle.error_rate(&counts)
    );

    // --- Buggy program (H on the wrong qubit) ----------------------------
    let mut buggy = Circuit::new(2);
    buggy.h(1).cx(0, 1); // entangles nothing: CX control is |0⟩
    let handle = insert_assertion(&mut buggy, &[0, 1], &StateSpec::pure(bell)?, Design::Auto)?;
    let counts = StatevectorSimulator::with_seed(1).run(&buggy, shots)?;
    println!(
        "buggy Bell program    → assertion error rate {:.4}",
        handle.error_rate(&counts)
    );

    // --- Approximate assertion: membership in a set ----------------------
    let mut ghz = qra::algorithms::states::ghz(3);
    let set = StateSpec::set(vec![CVector::basis_state(8, 0), CVector::basis_state(8, 7)])?;
    let handle = insert_assertion(&mut ghz, &[0, 1, 2], &set, Design::Ndd)?;
    let counts = StatevectorSimulator::with_seed(1).run(&ghz, shots)?;
    println!(
        "GHZ vs set {{|000⟩,|111⟩}} → error rate {:.4} (membership holds)",
        handle.error_rate(&counts)
    );
    Ok(())
}
