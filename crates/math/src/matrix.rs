//! Dense complex matrices.

use crate::{CVector, MathError, C64, EPSILON};
use std::fmt;

/// A dense, row-major complex matrix.
///
/// Used for quantum gates (unitary matrices) and density matrices
/// (Hermitian, positive semi-definite, unit trace).
///
/// ```rust
/// use qra_math::CMatrix;
///
/// let x = CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
/// assert!(x.is_unitary(1e-12));
/// assert!(x.mul(&x).unwrap().approx_eq(&CMatrix::identity(2), 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<C64>,
}

impl CMatrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len() != rows * cols`.
    pub fn new(rows: usize, cols: usize, data: Vec<C64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Creates an all-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![C64::zero(); rows * cols],
        }
    }

    /// Creates the `dim × dim` identity matrix.
    pub fn identity(dim: usize) -> Self {
        let mut m = Self::zeros(dim, dim);
        for i in 0..dim {
            m.set(i, i, C64::one());
        }
        m
    }

    /// Creates a matrix from row-major real entries.
    ///
    /// # Panics
    ///
    /// Panics when `values.len() != rows * cols`.
    pub fn from_real(rows: usize, cols: usize, values: &[f64]) -> Self {
        Self::new(rows, cols, values.iter().map(|&x| C64::from(x)).collect())
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> C64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self::new(rows, cols, data)
    }

    /// Builds the outer product `|a⟩⟨b|`.
    pub fn outer(a: &CVector, b: &CVector) -> Self {
        Self::from_fn(a.len(), b.len(), |r, c| {
            a.amplitude(r) * b.amplitude(c).conj()
        })
    }

    /// Builds a diagonal matrix from the given entries.
    pub fn diagonal(entries: &[C64]) -> Self {
        let mut m = Self::zeros(entries.len(), entries.len());
        for (i, &z) in entries.iter().enumerate() {
            m.set(i, i, z);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> C64 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Sets the entry at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: C64) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Immutable view of the row-major entries.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Returns row `r` as a vector.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row(&self, r: usize) -> CVector {
        assert!(r < self.rows);
        CVector::new(self.data[r * self.cols..(r + 1) * self.cols].to_vec())
    }

    /// Returns column `c` as a vector.
    ///
    /// # Panics
    ///
    /// Panics when `c` is out of bounds.
    pub fn col(&self, c: usize) -> CVector {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix product `self · other`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] when inner dimensions disagree.
    pub fn mul(&self, other: &CMatrix) -> Result<CMatrix, MathError> {
        if self.cols != other.rows {
            return Err(MathError::ShapeMismatch {
                op: "matrix multiply",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = CMatrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a.is_zero(1e-300) {
                    continue;
                }
                for c in 0..other.cols {
                    let v = out.get(r, c) + a * other.get(k, c);
                    out.set(r, c, v);
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · v`.
    ///
    /// # Panics
    ///
    /// Panics when `v.len() != self.cols()`.
    pub fn mul_vec(&self, v: &CVector) -> CVector {
        assert_eq!(v.len(), self.cols, "matrix-vector shape mismatch");
        let mut out = CVector::zeros(self.rows);
        for r in 0..self.rows {
            let mut acc = C64::zero();
            for c in 0..self.cols {
                acc += self.get(r, c) * v.amplitude(c);
            }
            out[r] = acc;
        }
        out
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &CMatrix) -> Result<CMatrix, MathError> {
        if self.shape() != other.shape() {
            return Err(MathError::ShapeMismatch {
                op: "matrix add",
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(CMatrix::new(
            self.rows,
            self.cols,
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        ))
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &CMatrix) -> Result<CMatrix, MathError> {
        if self.shape() != other.shape() {
            return Err(MathError::ShapeMismatch {
                op: "matrix sub",
                left: self.shape(),
                right: other.shape(),
            });
        }
        Ok(CMatrix::new(
            self.rows,
            self.cols,
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        ))
    }

    /// Scales every entry by `factor`.
    pub fn scale(&self, factor: C64) -> CMatrix {
        CMatrix::new(
            self.rows,
            self.cols,
            self.data.iter().map(|a| *a * factor).collect(),
        )
    }

    /// Transpose.
    pub fn transpose(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Conjugate transpose (adjoint, `A†`).
    pub fn adjoint(&self) -> CMatrix {
        CMatrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r).conj())
    }

    /// Elementwise complex conjugate `Ā` (no transpose).
    pub fn conj(&self) -> CMatrix {
        CMatrix::new(
            self.rows,
            self.cols,
            self.data.iter().map(|z| z.conj()).collect(),
        )
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CMatrix) -> CMatrix {
        let rows = self.rows * other.rows;
        let cols = self.cols * other.cols;
        CMatrix::from_fn(rows, cols, |r, c| {
            let (r1, r2) = (r / other.rows, r % other.rows);
            let (c1, c2) = (c / other.cols, c % other.cols);
            self.get(r1, c1) * other.get(r2, c2)
        })
    }

    /// Trace `Σᵢ Aᵢᵢ`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for non-square matrices.
    pub fn trace(&self) -> Result<C64, MathError> {
        if !self.is_square() {
            return Err(MathError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok((0..self.rows).map(|i| self.get(i, i)).sum())
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Largest absolute entry of `A − B`, or `f64::INFINITY` on shape mismatch.
    pub fn max_abs_diff(&self, other: &CMatrix) -> f64 {
        if self.shape() != other.shape() {
            return f64::INFINITY;
        }
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max)
    }

    /// Returns `true` when all entries agree within `tol`.
    pub fn approx_eq(&self, other: &CMatrix, tol: f64) -> bool {
        self.max_abs_diff(other) <= tol
    }

    /// Returns `true` when `self ≈ e^{iφ}·other` for some global phase `φ`.
    ///
    /// Global phases are unobservable, so two gate matrices that differ only
    /// by one implement the same operation.
    pub fn approx_eq_up_to_phase(&self, other: &CMatrix, tol: f64) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        // Find the entry of `other` with the largest modulus to fix the phase.
        let mut best = (0usize, 0.0f64);
        for (i, z) in other.data.iter().enumerate() {
            if z.norm() > best.1 {
                best = (i, z.norm());
            }
        }
        if best.1 < tol {
            return self.frobenius_norm() < tol;
        }
        let phase = self.data[best.0] / other.data[best.0];
        if (phase.norm() - 1.0).abs() > tol.max(1e-6) {
            return false;
        }
        self.approx_eq(&other.scale(phase), tol)
    }

    /// Checks unitarity: `‖A†A − I‖∞ ≤ tol`.
    pub fn is_unitary(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        match self.adjoint().mul(self) {
            Ok(p) => p.max_abs_diff(&CMatrix::identity(self.rows)) <= tol,
            Err(_) => false,
        }
    }

    /// Checks Hermiticity: `‖A − A†‖∞ ≤ tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        self.is_square() && self.max_abs_diff(&self.adjoint()) <= tol
    }

    /// Validates that this is a density matrix: Hermitian with unit trace
    /// (positive semi-definiteness is checked by the eigendecomposition at
    /// the point of use).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotHermitian`] or [`MathError::NotNormalized`].
    pub fn validate_density(&self, tol: f64) -> Result<(), MathError> {
        if !self.is_square() {
            return Err(MathError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let dev = self.max_abs_diff(&self.adjoint());
        if dev > tol {
            return Err(MathError::NotHermitian { deviation: dev });
        }
        let tr = self.trace()?;
        if (tr.re - 1.0).abs() > tol || tr.im.abs() > tol {
            return Err(MathError::NotNormalized { norm: tr.norm() });
        }
        Ok(())
    }

    /// Partial trace over the qubit subset `traced_out` of an `n`-qubit
    /// density matrix (big-endian qubit indexing, qubit 0 most significant).
    ///
    /// Returns the reduced density matrix on the remaining qubits, in their
    /// original relative order.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotPowerOfTwo`] if the dimension is not `2ⁿ`, or
    /// [`MathError::IndexOutOfBounds`] for a bad qubit index.
    pub fn partial_trace(&self, traced_out: &[usize]) -> Result<CMatrix, MathError> {
        let n = crate::qubits_for_dim(self.rows)?;
        if !self.is_square() {
            return Err(MathError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        for &q in traced_out {
            if q >= n {
                return Err(MathError::IndexOutOfBounds { index: q, len: n });
            }
        }
        let kept: Vec<usize> = (0..n).filter(|q| !traced_out.contains(q)).collect();
        let k = kept.len();
        let out_dim = 1usize << k;
        let t = traced_out.len();
        let trace_dim = 1usize << t;

        // Map a (kept-index, traced-index) pair to a full index. Bit `q` of
        // the full index (big-endian: qubit 0 ↔ bit n-1) comes from either
        // the kept or the traced pattern.
        let full_index = |kept_bits: usize, traced_bits: usize| -> usize {
            let mut idx = 0usize;
            for (pos, &q) in kept.iter().enumerate() {
                let bit = (kept_bits >> (k - 1 - pos)) & 1;
                idx |= bit << (n - 1 - q);
            }
            for (pos, &q) in traced_out.iter().enumerate() {
                let bit = (traced_bits >> (t - 1 - pos)) & 1;
                idx |= bit << (n - 1 - q);
            }
            idx
        };

        let mut out = CMatrix::zeros(out_dim, out_dim);
        for r in 0..out_dim {
            for c in 0..out_dim {
                let mut acc = C64::zero();
                for e in 0..trace_dim {
                    acc += self.get(full_index(r, e), full_index(c, e));
                }
                out.set(r, c, acc);
            }
        }
        Ok(out)
    }

    /// Matrix power by repeated multiplication (small exponents).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for non-square matrices.
    pub fn pow(&self, exponent: u32) -> Result<CMatrix, MathError> {
        if !self.is_square() {
            return Err(MathError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let mut acc = CMatrix::identity(self.rows);
        for _ in 0..exponent {
            acc = acc.mul(self)?;
        }
        Ok(acc)
    }

    /// Embeds `self` as a controlled operation: `|0⟩⟨0| ⊗ I + |1⟩⟨1| ⊗ self`,
    /// with the (new, most-significant) control qubit prepended.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for non-square matrices.
    pub fn controlled(&self) -> Result<CMatrix, MathError> {
        if !self.is_square() {
            return Err(MathError::NotSquare {
                rows: self.rows,
                cols: self.cols,
            });
        }
        let d = self.rows;
        let mut out = CMatrix::identity(2 * d);
        for r in 0..d {
            for c in 0..d {
                out.set(d + r, d + c, self.get(r, c));
            }
        }
        for i in d..2 * d {
            if out.get(i, i) == C64::one() && self.get(i - d, i - d) != C64::one() {
                out.set(i, i, self.get(i - d, i - d));
            }
        }
        Ok(out)
    }

    /// Purity `tr(ρ²)` of a density matrix; 1 for pure states, `< 1` for
    /// proper mixtures.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotSquare`] for non-square matrices.
    pub fn purity(&self) -> Result<f64, MathError> {
        Ok(self.mul(self)?.trace()?.re)
    }
}

impl fmt::Display for CMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{}", self.get(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Tolerance used by [`require_normalized`] — looser than [`EPSILON`] so
/// states assembled from several floating-point operations still validate.
pub const NORMALIZATION_TOL: f64 = 1e-6;

/// Convenience check that `‖v‖ = 1` within [`NORMALIZATION_TOL`], as a
/// `Result` for use with `?`.
///
/// # Errors
///
/// Returns [`MathError::NotNormalized`] with the observed norm.
///
/// ```rust
/// use qra_math::{CVector, matrix::require_normalized};
///
/// require_normalized(&CVector::basis_state(2, 0))?;
/// assert!(require_normalized(&CVector::from_real(&[2.0, 0.0])).is_err());
/// # Ok::<(), qra_math::MathError>(())
/// ```
pub fn require_normalized(v: &CVector) -> Result<(), MathError> {
    let n = v.norm();
    if (n - 1.0).abs() > NORMALIZATION_TOL.max(EPSILON) {
        return Err(MathError::NotNormalized { norm: n });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn pauli_x() -> CMatrix {
        CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0])
    }

    fn pauli_z() -> CMatrix {
        CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0])
    }

    fn hadamard() -> CMatrix {
        let s = 0.5f64.sqrt();
        CMatrix::from_real(2, 2, &[s, s, s, -s])
    }

    #[test]
    fn identity_is_unitary_and_hermitian() {
        let i4 = CMatrix::identity(4);
        assert!(i4.is_unitary(TOL));
        assert!(i4.is_hermitian(TOL));
        assert!(i4.trace().unwrap().approx_eq(C64::from(4.0), TOL));
    }

    #[test]
    fn pauli_algebra() {
        let x = pauli_x();
        let z = pauli_z();
        // XZ = -ZX
        let xz = x.mul(&z).unwrap();
        let zx = z.mul(&x).unwrap().scale(C64::from(-1.0));
        assert!(xz.approx_eq(&zx, TOL));
        // X² = I
        assert!(x.mul(&x).unwrap().approx_eq(&CMatrix::identity(2), TOL));
    }

    #[test]
    fn hadamard_diagonalizes_x() {
        let h = hadamard();
        let x = pauli_x();
        let hxh = h.mul(&x).unwrap().mul(&h).unwrap();
        assert!(hxh.approx_eq(&pauli_z(), TOL));
    }

    #[test]
    fn mul_shape_mismatch_errors() {
        let a = CMatrix::zeros(2, 3);
        let b = CMatrix::zeros(2, 3);
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn adjoint_of_product_reverses() {
        let h = hadamard();
        let x = pauli_x();
        let lhs = h.mul(&x).unwrap().adjoint();
        let rhs = x.adjoint().mul(&h.adjoint()).unwrap();
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn conj_is_transpose_of_adjoint() {
        let m = CMatrix::new(
            2,
            3,
            (0..6)
                .map(|i| C64::new(i as f64, -(i as f64) * 0.5))
                .collect(),
        );
        assert_eq!(m.conj().shape(), (2, 3));
        assert!(m.conj().approx_eq(&m.adjoint().transpose(), TOL));
        assert!(m.conj().conj().approx_eq(&m, TOL));
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = pauli_x();
        let i = CMatrix::identity(2);
        let xi = x.kron(&i);
        assert_eq!(xi.shape(), (4, 4));
        // (X ⊗ I)|00⟩ = |10⟩
        let v = xi.mul_vec(&CVector::basis_state(4, 0));
        assert!(v.approx_eq(&CVector::basis_state(4, 2), TOL));
    }

    #[test]
    fn kron_mixed_product_property() {
        // (A⊗B)(C⊗D) = (AC)⊗(BD)
        let a = hadamard();
        let b = pauli_x();
        let c = pauli_z();
        let d = hadamard();
        let lhs = a.kron(&b).mul(&c.kron(&d)).unwrap();
        let rhs = a.mul(&c).unwrap().kron(&b.mul(&d).unwrap());
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    fn outer_product_projector() {
        let zero = CVector::basis_state(2, 0);
        let p = CMatrix::outer(&zero, &zero);
        assert!(p.mul(&p).unwrap().approx_eq(&p, TOL));
        assert!(p.trace().unwrap().approx_eq(C64::one(), TOL));
    }

    #[test]
    fn partial_trace_of_product_state() {
        // ρ = |0⟩⟨0| ⊗ |+⟩⟨+|; tracing out qubit 1 leaves |0⟩⟨0|.
        let zero = CVector::basis_state(2, 0);
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        let rho = CMatrix::outer(&zero, &zero).kron(&CMatrix::outer(&plus, &plus));
        let reduced = rho.partial_trace(&[1]).unwrap();
        assert!(reduced.approx_eq(&CMatrix::outer(&zero, &zero), TOL));
    }

    #[test]
    fn partial_trace_of_bell_state_is_maximally_mixed() {
        let s = 0.5f64.sqrt();
        let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
        let rho = CMatrix::outer(&bell, &bell);
        let reduced = rho.partial_trace(&[0]).unwrap();
        let mixed = CMatrix::identity(2).scale(C64::from(0.5));
        assert!(reduced.approx_eq(&mixed, TOL));
        assert!((reduced.purity().unwrap() - 0.5).abs() < TOL);
    }

    #[test]
    fn partial_trace_keeps_trace_one() {
        let s = 0.5f64.sqrt();
        let ghz = {
            let mut v = CVector::zeros(8);
            v[0] = C64::from(s);
            v[7] = C64::from(s);
            v
        };
        let rho = CMatrix::outer(&ghz, &ghz);
        for traced in [&[0usize][..], &[1], &[2], &[0, 1], &[1, 2]] {
            let r = rho.partial_trace(traced).unwrap();
            assert!(r.trace().unwrap().approx_eq(C64::one(), TOL));
            assert!(r.is_hermitian(TOL));
        }
    }

    #[test]
    fn controlled_embedding() {
        let cx = pauli_x().controlled().unwrap();
        // ctrl-X = CNOT: |10⟩ → |11⟩, |00⟩ fixed.
        let v = cx.mul_vec(&CVector::basis_state(4, 2));
        assert!(v.approx_eq(&CVector::basis_state(4, 3), TOL));
        let w = cx.mul_vec(&CVector::basis_state(4, 0));
        assert!(w.approx_eq(&CVector::basis_state(4, 0), TOL));
        assert!(cx.is_unitary(TOL));
    }

    #[test]
    fn density_validation() {
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        let rho = CMatrix::outer(&plus, &plus);
        assert!(rho.validate_density(1e-9).is_ok());
        let bad = rho.scale(C64::from(2.0));
        assert!(bad.validate_density(1e-9).is_err());
        let nonherm = CMatrix::new(2, 2, vec![C64::one(), C64::i(), C64::i(), C64::zero()]);
        assert!(nonherm.validate_density(1e-9).is_err());
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let h = hadamard();
        assert!(h.pow(2).unwrap().approx_eq(&CMatrix::identity(2), TOL));
        assert!(h.pow(0).unwrap().approx_eq(&CMatrix::identity(2), TOL));
    }

    #[test]
    fn phase_insensitive_equality() {
        let h = hadamard();
        let hp = h.scale(C64::cis(0.7));
        assert!(h.approx_eq_up_to_phase(&hp, 1e-9));
        assert!(!h.approx_eq(&hp, 1e-9));
        assert!(!h.approx_eq_up_to_phase(&pauli_x(), 1e-9));
    }

    #[test]
    fn row_col_access() {
        let h = hadamard();
        let r0 = h.row(0);
        let c1 = h.col(1);
        assert!((r0.amplitude(0).re - 0.5f64.sqrt()).abs() < TOL);
        assert!((c1.amplitude(1).re + 0.5f64.sqrt()).abs() < TOL);
    }

    #[test]
    fn diagonal_builder() {
        let d = CMatrix::diagonal(&[C64::one(), C64::from(-1.0)]);
        assert!(d.approx_eq(&pauli_z(), TOL));
    }
}
