//! Complex state vectors.

use crate::{MathError, C64, EPSILON};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense complex vector, used for quantum state vectors.
///
/// The amplitude ordering follows the big-endian qubit convention used
/// throughout this workspace: for an `n`-qubit state, index
/// `i = b_0 b_1 … b_{n-1}` (binary) stores the amplitude of
/// `|b_0⟩ ⊗ |b_1⟩ ⊗ … ⊗ |b_{n-1}⟩`, with qubit 0 the most significant bit.
/// This matches the ket notation in the paper (e.g. `|011⟩` has qubit 0 = 0).
///
/// ```rust
/// use qra_math::CVector;
///
/// // |10⟩ on two qubits: qubit 0 is |1⟩, qubit 1 is |0⟩.
/// let v = CVector::basis_state(4, 0b10);
/// assert_eq!(v.amplitude(2), qra_math::C64::one());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CVector {
    data: Vec<C64>,
}

impl CVector {
    /// Creates a vector from raw amplitudes.
    pub fn new(data: Vec<C64>) -> Self {
        Self { data }
    }

    /// Creates an all-zero vector of length `len`.
    pub fn zeros(len: usize) -> Self {
        Self {
            data: vec![C64::zero(); len],
        }
    }

    /// Creates the computational basis state `|index⟩` in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn basis_state(dim: usize, index: usize) -> Self {
        assert!(
            index < dim,
            "basis index {index} out of range for dim {dim}"
        );
        let mut v = Self::zeros(dim);
        v.data[index] = C64::one();
        v
    }

    /// Creates a vector from real amplitudes.
    pub fn from_real(values: &[f64]) -> Self {
        Self {
            data: values.iter().map(|&x| C64::from(x)).collect(),
        }
    }

    /// The length (dimension) of the vector.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The amplitude at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn amplitude(&self, index: usize) -> C64 {
        self.data[index]
    }

    /// Immutable view of the amplitudes.
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable view of the amplitudes.
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying amplitudes.
    pub fn into_inner(self) -> Vec<C64> {
        self.data
    }

    /// Iterates over the amplitudes.
    pub fn iter(&self) -> std::slice::Iter<'_, C64> {
        self.data.iter()
    }

    /// Hermitian inner product `⟨self|other⟩` (conjugate-linear in `self`).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::ShapeMismatch`] when lengths differ.
    pub fn inner(&self, other: &CVector) -> Result<C64, MathError> {
        if self.len() != other.len() {
            return Err(MathError::ShapeMismatch {
                op: "inner product",
                left: (self.len(), 1),
                right: (other.len(), 1),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.conj() * *b)
            .sum())
    }

    /// Euclidean norm `‖v‖₂`.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Returns a normalised copy (`v / ‖v‖`).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotNormalized`] when the norm is numerically zero
    /// (there is nothing to normalise).
    pub fn normalized(&self) -> Result<CVector, MathError> {
        let n = self.norm();
        if n < EPSILON {
            return Err(MathError::NotNormalized { norm: n });
        }
        Ok(self.scale(C64::from(1.0 / n)))
    }

    /// Returns `true` when the vector has unit norm within `tol`.
    pub fn is_normalized(&self, tol: f64) -> bool {
        (self.norm() - 1.0).abs() <= tol
    }

    /// Elementwise sum.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    pub fn add(&self, other: &CVector) -> CVector {
        assert_eq!(self.len(), other.len(), "vector add length mismatch");
        CVector::new(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| *a + *b)
                .collect(),
        )
    }

    /// Elementwise difference.
    ///
    /// # Panics
    ///
    /// Panics when lengths differ.
    pub fn sub(&self, other: &CVector) -> CVector {
        assert_eq!(self.len(), other.len(), "vector sub length mismatch");
        CVector::new(
            self.data
                .iter()
                .zip(&other.data)
                .map(|(a, b)| *a - *b)
                .collect(),
        )
    }

    /// Scales every amplitude by `factor`.
    pub fn scale(&self, factor: C64) -> CVector {
        CVector::new(self.data.iter().map(|a| *a * factor).collect())
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &CVector) -> CVector {
        let mut out = Vec::with_capacity(self.len() * other.len());
        for a in &self.data {
            for b in &other.data {
                out.push(*a * *b);
            }
        }
        CVector::new(out)
    }

    /// Returns `true` when all amplitudes agree within `tol`.
    pub fn approx_eq(&self, other: &CVector, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }

    /// Returns `true` when the two vectors describe the same physical state,
    /// i.e. agree up to a global phase: `|⟨self|other⟩| ≈ ‖self‖·‖other‖`.
    pub fn approx_eq_up_to_phase(&self, other: &CVector, tol: f64) -> bool {
        if self.len() != other.len() {
            return false;
        }
        match self.inner(other) {
            Ok(ip) => (ip.norm() - self.norm() * other.norm()).abs() <= tol,
            Err(_) => false,
        }
    }

    /// The probability of measuring basis outcome `index`: `|vᵢ|²`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn probability(&self, index: usize) -> f64 {
        self.data[index].norm_sqr()
    }

    /// Full probability distribution over basis outcomes.
    pub fn probabilities(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.norm_sqr()).collect()
    }
}

impl Index<usize> for CVector {
    type Output = C64;
    fn index(&self, index: usize) -> &C64 {
        &self.data[index]
    }
}

impl IndexMut<usize> for CVector {
    fn index_mut(&mut self, index: usize) -> &mut C64 {
        &mut self.data[index]
    }
}

impl FromIterator<C64> for CVector {
    fn from_iter<I: IntoIterator<Item = C64>>(iter: I) -> Self {
        CVector::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a CVector {
    type Item = &'a C64;
    type IntoIter = std::slice::Iter<'a, C64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl fmt::Display for CVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, z) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{z}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-12;

    fn plus() -> CVector {
        CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()])
    }

    #[test]
    fn basis_state_is_one_hot() {
        let v = CVector::basis_state(4, 2);
        assert_eq!(v.probability(2), 1.0);
        assert_eq!(v.probability(0), 0.0);
        assert!(v.is_normalized(TOL));
    }

    #[test]
    #[should_panic]
    fn basis_state_rejects_out_of_range() {
        let _ = CVector::basis_state(4, 4);
    }

    #[test]
    fn inner_product_orthogonality() {
        let zero = CVector::basis_state(2, 0);
        let one = CVector::basis_state(2, 1);
        assert!(zero.inner(&one).unwrap().is_zero(TOL));
        assert!(zero.inner(&zero).unwrap().approx_eq(C64::one(), TOL));
    }

    #[test]
    fn inner_product_is_conjugate_linear_in_left() {
        let a = CVector::new(vec![C64::i(), C64::zero()]);
        let b = CVector::basis_state(2, 0);
        let ip = a.inner(&b).unwrap();
        assert!(ip.approx_eq(C64::new(0.0, -1.0), TOL));
    }

    #[test]
    fn inner_rejects_mismatched_lengths() {
        let a = CVector::zeros(2);
        let b = CVector::zeros(4);
        assert!(a.inner(&b).is_err());
    }

    #[test]
    fn normalization() {
        let v = CVector::from_real(&[3.0, 4.0]);
        let n = v.normalized().unwrap();
        assert!(n.is_normalized(TOL));
        assert!((n.amplitude(0).re - 0.6).abs() < TOL);
    }

    #[test]
    fn normalize_zero_vector_fails() {
        assert!(CVector::zeros(2).normalized().is_err());
    }

    #[test]
    fn kron_of_basis_states() {
        let q0 = CVector::basis_state(2, 1);
        let q1 = CVector::basis_state(2, 0);
        let joint = q0.kron(&q1);
        // |1⟩ ⊗ |0⟩ = |10⟩ = index 2.
        assert_eq!(joint.amplitude(2), C64::one());
        assert_eq!(joint.len(), 4);
    }

    #[test]
    fn kron_preserves_norm() {
        let a = plus();
        let b = plus();
        assert!((a.kron(&b).norm() - 1.0).abs() < TOL);
    }

    #[test]
    fn global_phase_equality() {
        let v = plus();
        let w = v.scale(C64::cis(1.234));
        assert!(v.approx_eq_up_to_phase(&w, TOL));
        assert!(!v.approx_eq(&w, TOL));
        let orth = CVector::from_real(&[0.5f64.sqrt(), -(0.5f64.sqrt())]);
        assert!(!v.approx_eq_up_to_phase(&orth, 1e-6));
    }

    #[test]
    fn probabilities_sum_to_one_for_normalized() {
        let v = plus();
        let total: f64 = v.probabilities().iter().sum();
        assert!((total - 1.0).abs() < TOL);
    }

    #[test]
    fn add_sub_scale_roundtrip() {
        let a = CVector::from_real(&[1.0, 2.0]);
        let b = CVector::from_real(&[0.5, -1.0]);
        let c = a.add(&b).sub(&b);
        assert!(c.approx_eq(&a, TOL));
        let d = a.scale(C64::from(2.0));
        assert_eq!(d.amplitude(1), C64::from(4.0));
    }

    #[test]
    fn from_iterator_collects() {
        let v: CVector = (0..3).map(|k| C64::from(k as f64)).collect();
        assert_eq!(v.len(), 3);
        assert_eq!(v.amplitude(2), C64::from(2.0));
    }
}
