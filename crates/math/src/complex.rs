//! A `Copy` complex scalar type.

use std::fmt;
use std::iter::{Product, Sum};
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// All amplitudes and matrix entries in this workspace use `C64`.
///
/// ```rust
/// use qra_math::C64;
///
/// let i = C64::i();
/// assert_eq!(i * i, C64::new(-1.0, 0.0));
/// assert!((C64::from_polar(1.0, std::f64::consts::PI).re + 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// The additive identity `0`.
    #[inline]
    pub const fn zero() -> Self {
        Self::new(0.0, 0.0)
    }

    /// The multiplicative identity `1`.
    #[inline]
    pub const fn one() -> Self {
        Self::new(1.0, 0.0)
    }

    /// The imaginary unit `i`.
    #[inline]
    pub const fn i() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Builds `r * e^{iθ}` from polar coordinates.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Returns `e^{iθ}`, a unit-modulus phase factor.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Squared modulus `|z|²` — the measurement probability of an amplitude.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument (phase angle) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Returns entries of `NaN` when `self` is zero, mirroring `f64` division.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.norm().sqrt(), self.arg() / 2.0)
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self::new(self.re * s, self.im * s)
    }

    /// Returns `true` when both components are within `tol` of `other`'s.
    #[inline]
    pub fn approx_eq(self, other: Self, tol: f64) -> bool {
        (self.re - other.re).abs() <= tol && (self.im - other.im).abs() <= tol
    }

    /// Returns `true` when the modulus is below `tol`.
    #[inline]
    pub fn is_zero(self, tol: f64) -> bool {
        self.norm_sqr() <= tol * tol
    }
}

impl From<f64> for C64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiply-by-inverse
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        C64::new(self.re / rhs, self.im / rhs)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::zero(), Add::add)
    }
}

impl Product for C64 {
    fn product<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::one(), Mul::mul)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}i", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}i", self.re, -self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn basic_arithmetic() {
        let a = C64::new(1.0, 2.0);
        let b = C64::new(3.0, -1.0);
        assert_eq!(a + b, C64::new(4.0, 1.0));
        assert_eq!(a - b, C64::new(-2.0, 3.0));
        assert_eq!(a * b, C64::new(5.0, 5.0));
        assert!((a / b * b).approx_eq(a, TOL));
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(C64::i() * C64::i(), C64::new(-1.0, 0.0));
    }

    #[test]
    fn conjugation_and_norm() {
        let z = C64::new(3.0, 4.0);
        assert_eq!(z.conj(), C64::new(3.0, -4.0));
        assert!((z.norm() - 5.0).abs() < TOL);
        assert!((z.norm_sqr() - 25.0).abs() < TOL);
        assert!((z * z.conj()).approx_eq(C64::from(25.0), TOL));
    }

    #[test]
    fn polar_roundtrip() {
        let z = C64::from_polar(2.0, FRAC_PI_2);
        assert!(z.approx_eq(C64::new(0.0, 2.0), TOL));
        assert!((z.arg() - FRAC_PI_2).abs() < TOL);
        assert!((z.norm() - 2.0).abs() < TOL);
    }

    #[test]
    fn cis_is_unit_phase() {
        for k in 0..16 {
            let theta = PI * (k as f64) / 8.0;
            assert!((C64::cis(theta).norm() - 1.0).abs() < TOL);
        }
    }

    #[test]
    fn exp_of_i_pi() {
        let z = (C64::i() * PI).exp();
        assert!(z.approx_eq(C64::new(-1.0, 0.0), TOL));
    }

    #[test]
    fn sqrt_squares_back() {
        let z = C64::new(-3.0, 4.0);
        let r = z.sqrt();
        assert!((r * r).approx_eq(z, 1e-10));
    }

    #[test]
    fn inverse_multiplies_to_one() {
        let z = C64::new(0.3, -0.7);
        assert!((z * z.inv()).approx_eq(C64::one(), TOL));
    }

    #[test]
    fn assign_ops() {
        let mut z = C64::one();
        z += C64::i();
        z *= C64::new(0.0, 1.0);
        z -= C64::one();
        z /= C64::new(2.0, 0.0);
        assert!(z.approx_eq(C64::new(-1.0, 0.5), TOL));
    }

    #[test]
    fn sum_and_product() {
        let zs = [C64::one(), C64::i(), C64::new(2.0, 0.0)];
        let s: C64 = zs.iter().copied().sum();
        assert!(s.approx_eq(C64::new(3.0, 1.0), TOL));
        let p: C64 = zs.iter().copied().product();
        assert!(p.approx_eq(C64::new(0.0, 2.0), TOL));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", C64::new(1.0, -1.0)), "1.000000-1.000000i");
        assert_eq!(format!("{}", C64::new(0.0, 2.0)), "0.000000+2.000000i");
    }
}
