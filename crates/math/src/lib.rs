//! Complex-number linear algebra for the `qra` quantum runtime assertion library.
//!
//! This crate implements, from scratch, every numerical primitive the
//! assertion synthesis pipeline needs:
//!
//! * [`C64`] — a `Copy` complex scalar with full arithmetic;
//! * [`CVector`] — complex state vectors with inner products and norms;
//! * [`CMatrix`] — dense complex matrices with multiplication, adjoint,
//!   Kronecker products, traces and partial traces;
//! * [`gram_schmidt`] — modified Gram–Schmidt orthonormalisation and
//!   *basis completion* (extend a set of states to a full orthonormal basis),
//!   the core of the paper's §IV-B "find an orthonormal basis that includes
//!   |ψ₀⟩";
//! * [`eigen`] — Hermitian eigendecomposition via the complex Jacobi method,
//!   used to diagonalise density matrices (§IV-C / §V-B);
//!
//! # Example
//!
//! ```rust
//! use qra_math::{C64, CMatrix, CVector};
//!
//! let h = CMatrix::from_real(2, 2, &[0.5f64.sqrt(), 0.5f64.sqrt(),
//!                                    0.5f64.sqrt(), -(0.5f64.sqrt())]);
//! let zero = CVector::basis_state(2, 0);
//! let plus = h.mul_vec(&zero);
//! assert!((plus.amplitude(0).re - 0.5f64.sqrt()).abs() < 1e-12);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod complex;
pub mod eigen;
pub mod error;
pub mod gram_schmidt;
pub mod matrix;
pub mod vector;

pub use complex::C64;
pub use eigen::{hermitian_eigen, HermitianEigen};
pub use error::MathError;
pub use gram_schmidt::{complete_basis, orthonormalize};
pub use matrix::CMatrix;
pub use vector::CVector;

/// Default absolute tolerance used throughout the crate when comparing
/// floating-point quantities that should be exact in infinite precision.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` when two floats agree within [`EPSILON`].
///
/// ```rust
/// assert!(qra_math::approx_eq(1.0, 1.0 + 1e-12));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() < EPSILON
}

/// Checks whether `dim` is a power of two and returns the exponent
/// (the number of qubits).
///
/// # Errors
///
/// Returns [`MathError::NotPowerOfTwo`] when `dim` is zero or not a power
/// of two.
///
/// ```rust
/// assert_eq!(qra_math::qubits_for_dim(8).unwrap(), 3);
/// assert!(qra_math::qubits_for_dim(6).is_err());
/// ```
pub fn qubits_for_dim(dim: usize) -> Result<usize, MathError> {
    if dim == 0 || !dim.is_power_of_two() {
        return Err(MathError::NotPowerOfTwo { dim });
    }
    Ok(dim.trailing_zeros() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubits_for_dim_powers() {
        assert_eq!(qubits_for_dim(1).unwrap(), 0);
        assert_eq!(qubits_for_dim(2).unwrap(), 1);
        assert_eq!(qubits_for_dim(1024).unwrap(), 10);
    }

    #[test]
    fn qubits_for_dim_rejects_non_powers() {
        assert!(qubits_for_dim(0).is_err());
        assert!(qubits_for_dim(3).is_err());
        assert!(qubits_for_dim(12).is_err());
    }

    #[test]
    fn approx_eq_tolerance() {
        assert!(approx_eq(0.0, 0.0));
        assert!(!approx_eq(0.0, 1e-3));
    }
}
