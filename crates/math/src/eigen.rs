//! Hermitian eigendecomposition via the complex Jacobi method.
//!
//! Density matrices are Hermitian and positive semi-definite; the paper's
//! mixed-state and approximate assertions (§IV-C, §IV-D, §V-B) diagonalise
//! them to find the orthonormal eigenbasis and the rank `t`. The cyclic
//! Jacobi method converges unconditionally for Hermitian matrices and is
//! numerically robust at the small dimensions (`≤ 2⁷`) used here.

use crate::{CMatrix, CVector, MathError, C64};

/// Result of a Hermitian eigendecomposition `A = V Λ V†`.
///
/// Eigenpairs are sorted by **descending** eigenvalue, so for a density
/// matrix the "correct" states of the paper (non-zero-probability
/// eigenvectors) come first.
#[derive(Debug, Clone)]
pub struct HermitianEigen {
    /// Real eigenvalues, descending.
    pub values: Vec<f64>,
    /// Eigenvectors, `vectors[k]` corresponds to `values[k]`.
    pub vectors: Vec<CVector>,
}

impl HermitianEigen {
    /// Number of eigenvalues exceeding `tol` — the *rank* `t` of a density
    /// matrix in the paper's notation.
    ///
    /// ```rust
    /// use qra_math::{CMatrix, hermitian_eigen};
    ///
    /// let rho = CMatrix::from_real(2, 2, &[0.5, 0.0, 0.0, 0.5]);
    /// let eig = hermitian_eigen(&rho)?;
    /// assert_eq!(eig.rank(1e-9), 2);
    /// # Ok::<(), qra_math::MathError>(())
    /// ```
    pub fn rank(&self, tol: f64) -> usize {
        self.values.iter().filter(|&&v| v > tol).count()
    }

    /// Reconstructs `Σ λₖ |vₖ⟩⟨vₖ|` — useful for round-trip testing.
    pub fn reconstruct(&self) -> CMatrix {
        let dim = self.vectors.first().map_or(0, CVector::len);
        let mut acc = CMatrix::zeros(dim, dim);
        for (lambda, v) in self.values.iter().zip(&self.vectors) {
            let proj = CMatrix::outer(v, v).scale(C64::from(*lambda));
            acc = acc.add(&proj).expect("projector shapes match");
        }
        acc
    }
}

/// Maximum number of Jacobi sweeps before declaring non-convergence.
const MAX_SWEEPS: usize = 100;

/// Convergence threshold on the off-diagonal Frobenius norm.
const OFF_TOL: f64 = 1e-12;

/// Computes the eigendecomposition of a Hermitian matrix.
///
/// # Errors
///
/// * [`MathError::NotHermitian`] when `a` deviates from `a†` by more than
///   `1e-8`;
/// * [`MathError::NoConvergence`] if the Jacobi sweeps fail to converge
///   (practically unreachable for Hermitian input).
///
/// ```rust
/// use qra_math::{CMatrix, hermitian_eigen};
///
/// let z = CMatrix::from_real(2, 2, &[1.0, 0.0, 0.0, -1.0]);
/// let eig = hermitian_eigen(&z)?;
/// assert!((eig.values[0] - 1.0).abs() < 1e-10);
/// assert!((eig.values[1] + 1.0).abs() < 1e-10);
/// # Ok::<(), qra_math::MathError>(())
/// ```
pub fn hermitian_eigen(a: &CMatrix) -> Result<HermitianEigen, MathError> {
    if !a.is_square() {
        return Err(MathError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    let herm_dev = a.max_abs_diff(&a.adjoint());
    if herm_dev > 1e-8 {
        return Err(MathError::NotHermitian {
            deviation: herm_dev,
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(HermitianEigen {
            values: vec![],
            vectors: vec![],
        });
    }

    // Work on a Hermitised copy to wash out tiny asymmetries.
    let mut m = CMatrix::from_fn(n, n, |r, c| (a.get(r, c) + a.get(c, r).conj()).scale(0.5));
    let mut v = CMatrix::identity(n);

    for sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += m.get(p, q).norm_sqr();
            }
        }
        if off.sqrt() < OFF_TOL {
            return Ok(sort_eigen(&m, &v));
        }
        let _ = sweep;

        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m.get(p, q);
                if apq.norm() < OFF_TOL / (n as f64) {
                    continue;
                }
                // Complex Jacobi rotation zeroing m[p][q].
                // Write apq = |apq| e^{iφ}; define the real symmetric 2x2
                // problem via θ from tan(2θ) = 2|apq| / (app - aqq).
                let app = m.get(p, p).re;
                let aqq = m.get(q, q).re;
                let phi = apq.arg();
                let abs = apq.norm();
                let diff = app - aqq;
                let theta = 0.5 * (2.0 * abs).atan2(diff);
                let c = theta.cos();
                let s = theta.sin();
                // Rotation: [c, s e^{iφ}; -s e^{-iφ}, c] acting on (p, q).
                let e_iphi = C64::cis(phi);
                let e_miphi = C64::cis(-phi);

                // Apply J† M J where J is the plane rotation.
                // Update columns p and q of M: M ← M J.
                for r in 0..n {
                    let mrp = m.get(r, p);
                    let mrq = m.get(r, q);
                    m.set(r, p, mrp.scale(c) + mrq * e_miphi.scale(s));
                    m.set(r, q, mrq.scale(c) - mrp * e_iphi.scale(s));
                }
                // Update rows p and q of M: M ← J† M.
                for ccol in 0..n {
                    let mpc = m.get(p, ccol);
                    let mqc = m.get(q, ccol);
                    m.set(p, ccol, mpc.scale(c) + mqc * e_iphi.scale(s));
                    m.set(q, ccol, mqc.scale(c) - mpc * e_miphi.scale(s));
                }
                // Accumulate eigenvectors: V ← V J.
                for r in 0..n {
                    let vrp = v.get(r, p);
                    let vrq = v.get(r, q);
                    v.set(r, p, vrp.scale(c) + vrq * e_miphi.scale(s));
                    v.set(r, q, vrq.scale(c) - vrp * e_iphi.scale(s));
                }
            }
        }
    }

    Err(MathError::NoConvergence {
        algorithm: "complex jacobi eigendecomposition",
        iterations: MAX_SWEEPS,
    })
}

fn sort_eigen(m: &CMatrix, v: &CMatrix) -> HermitianEigen {
    let n = m.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        m.get(j, j)
            .re
            .partial_cmp(&m.get(i, i).re)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let values = order.iter().map(|&i| m.get(i, i).re).collect();
    let vectors = order.iter().map(|&i| v.col(i)).collect();
    HermitianEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gram_schmidt::is_orthonormal;

    const TOL: f64 = 1e-9;

    #[test]
    fn eigen_of_diagonal() {
        let d = CMatrix::from_real(3, 3, &[3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let eig = hermitian_eigen(&d).unwrap();
        assert!((eig.values[0] - 3.0).abs() < TOL);
        assert!((eig.values[1] - 2.0).abs() < TOL);
        assert!((eig.values[2] - 1.0).abs() < TOL);
    }

    #[test]
    fn eigen_of_pauli_x() {
        let x = CMatrix::from_real(2, 2, &[0.0, 1.0, 1.0, 0.0]);
        let eig = hermitian_eigen(&x).unwrap();
        assert!((eig.values[0] - 1.0).abs() < TOL);
        assert!((eig.values[1] + 1.0).abs() < TOL);
        // Eigenvector for +1 is |+⟩ up to phase.
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        assert!(eig.vectors[0].approx_eq_up_to_phase(&plus, TOL));
    }

    #[test]
    fn eigen_of_pauli_y_complex_entries() {
        let y = CMatrix::new(
            2,
            2,
            vec![
                C64::zero(),
                C64::new(0.0, -1.0),
                C64::new(0.0, 1.0),
                C64::zero(),
            ],
        );
        let eig = hermitian_eigen(&y).unwrap();
        assert!((eig.values[0] - 1.0).abs() < TOL);
        assert!((eig.values[1] + 1.0).abs() < TOL);
        assert!(eig.reconstruct().approx_eq(&y, 1e-8));
    }

    #[test]
    fn eigen_reconstruction_roundtrip() {
        // Mixed state ρ = ½|00⟩⟨00| + ¼|01⟩⟨01| + ¼|++⟩⟨++|.
        let e00 = CVector::basis_state(4, 0);
        let e01 = CVector::basis_state(4, 1);
        let plus = CVector::from_real(&[0.5, 0.5, 0.5, 0.5]);
        let rho = CMatrix::outer(&e00, &e00)
            .scale(C64::from(0.5))
            .add(&CMatrix::outer(&e01, &e01).scale(C64::from(0.25)))
            .unwrap()
            .add(&CMatrix::outer(&plus, &plus).scale(C64::from(0.25)))
            .unwrap();
        let eig = hermitian_eigen(&rho).unwrap();
        assert!(eig.reconstruct().approx_eq(&rho, 1e-8));
        // Eigenvectors form an orthonormal set.
        assert!(is_orthonormal(&eig.vectors, 1e-7));
        // Eigenvalues of a density matrix sum to 1.
        let total: f64 = eig.values.iter().sum();
        assert!((total - 1.0).abs() < 1e-8);
    }

    #[test]
    fn rank_of_pure_state_is_one() {
        let s = 0.5f64.sqrt();
        let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
        let rho = CMatrix::outer(&bell, &bell);
        let eig = hermitian_eigen(&rho).unwrap();
        assert_eq!(eig.rank(1e-9), 1);
        assert!(eig.vectors[0].approx_eq_up_to_phase(&bell, TOL));
    }

    #[test]
    fn rank_of_ghz_reduced_state_is_two() {
        // GHZ reduced over qubit 0: ½(|00⟩⟨00| + |11⟩⟨11|) — paper §II-A.
        let s = 0.5f64.sqrt();
        let mut ghz = CVector::zeros(8);
        ghz[0] = C64::from(s);
        ghz[7] = C64::from(s);
        let rho = CMatrix::outer(&ghz, &ghz).partial_trace(&[0]).unwrap();
        let eig = hermitian_eigen(&rho).unwrap();
        assert_eq!(eig.rank(1e-9), 2);
        assert!((eig.values[0] - 0.5).abs() < TOL);
        assert!((eig.values[1] - 0.5).abs() < TOL);
    }

    #[test]
    fn rejects_non_hermitian() {
        let m = CMatrix::from_real(2, 2, &[0.0, 1.0, 0.0, 0.0]);
        assert!(matches!(
            hermitian_eigen(&m),
            Err(MathError::NotHermitian { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        let m = CMatrix::zeros(2, 3);
        assert!(hermitian_eigen(&m).is_err());
    }

    #[test]
    fn maximally_mixed_has_flat_spectrum() {
        let rho = CMatrix::identity(4).scale(C64::from(0.25));
        let eig = hermitian_eigen(&rho).unwrap();
        for v in &eig.values {
            assert!((v - 0.25).abs() < TOL);
        }
        assert_eq!(eig.rank(1e-9), 4);
    }

    #[test]
    fn random_hermitian_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..5 {
            let n = 8;
            let raw = CMatrix::from_fn(n, n, |_, _| {
                C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
            });
            let herm = raw.add(&raw.adjoint()).unwrap().scale(C64::from(0.5));
            let eig = hermitian_eigen(&herm).unwrap();
            assert!(eig.reconstruct().approx_eq(&herm, 1e-7));
            assert!(is_orthonormal(&eig.vectors, 1e-7));
        }
    }
}
