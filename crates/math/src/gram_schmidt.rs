//! Modified Gram–Schmidt orthonormalisation and basis completion.
//!
//! The paper's assertion constructions (§IV-B, §V-A) start from one or more
//! "correct" states and require *an orthonormal basis that includes them*.
//! [`complete_basis`] implements exactly that: it orthonormalises the seed
//! states and extends them with computational-basis vectors until a full
//! basis of the Hilbert space is obtained.

use crate::{CVector, MathError, C64};

/// Threshold below which a residual vector is considered linearly dependent
/// on the previously accepted ones.
const DEPENDENCE_TOL: f64 = 1e-8;

/// Orthonormalises `vectors` with the modified Gram–Schmidt process.
///
/// Linearly dependent inputs are **dropped** (not an error): the returned
/// set spans the same space and is orthonormal. This mirrors the paper's
/// treatment of approximate-assertion state sets, whose members "may not be
/// orthogonal" (§IV-D).
///
/// # Errors
///
/// Returns [`MathError::ShapeMismatch`] when input vectors have differing
/// lengths.
///
/// ```rust
/// use qra_math::{CVector, orthonormalize};
///
/// let v1 = CVector::from_real(&[1.0, 1.0]);
/// let v2 = CVector::from_real(&[2.0, 2.0]); // dependent — dropped
/// let basis = orthonormalize(&[v1, v2])?;
/// assert_eq!(basis.len(), 1);
/// # Ok::<(), qra_math::MathError>(())
/// ```
pub fn orthonormalize(vectors: &[CVector]) -> Result<Vec<CVector>, MathError> {
    let mut basis: Vec<CVector> = Vec::new();
    let dim = match vectors.first() {
        Some(v) => v.len(),
        None => return Ok(basis),
    };
    for v in vectors {
        if v.len() != dim {
            return Err(MathError::ShapeMismatch {
                op: "orthonormalize",
                left: (dim, 1),
                right: (v.len(), 1),
            });
        }
        let mut residual = v.clone();
        // Two rounds of projection for numerical stability (re-orthogonalisation).
        for _ in 0..2 {
            for b in &basis {
                let overlap = b.inner(&residual)?;
                residual = residual.sub(&b.scale(overlap));
            }
        }
        let norm = residual.norm();
        if norm > DEPENDENCE_TOL {
            basis.push(residual.scale(C64::from(1.0 / norm)));
        }
    }
    Ok(basis)
}

/// Extends `seeds` to a **complete orthonormal basis** of their Hilbert
/// space, with the (orthonormalised) seeds occupying the leading positions.
///
/// This is the core primitive of the paper's systematic assertion
/// construction: given the "correct" state(s), the full basis defines the
/// unitary `U⁻¹ = Σᵢ |i⟩⟨ψᵢ|` that maps correct states to leading
/// computational-basis states (Appendix B of the paper).
///
/// # Errors
///
/// * [`MathError::ShapeMismatch`] when seed lengths differ;
/// * [`MathError::NotPowerOfTwo`] when the dimension is not `2ⁿ`;
/// * [`MathError::LinearlyDependent`] when completion fails to produce a
///   full basis (cannot happen for valid inputs, kept as a defensive check).
///
/// ```rust
/// use qra_math::{CVector, complete_basis};
///
/// let s = 0.5f64.sqrt();
/// let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
/// let basis = complete_basis(&[bell.clone()], 4)?;
/// assert_eq!(basis.len(), 4);
/// assert!(basis[0].approx_eq(&bell.normalized()?, 1e-9));
/// # Ok::<(), qra_math::MathError>(())
/// ```
pub fn complete_basis(seeds: &[CVector], dim: usize) -> Result<Vec<CVector>, MathError> {
    crate::qubits_for_dim(dim)?;
    for v in seeds {
        if v.len() != dim {
            return Err(MathError::ShapeMismatch {
                op: "complete_basis",
                left: (dim, 1),
                right: (v.len(), 1),
            });
        }
    }
    let mut basis = orthonormalize(seeds)?;
    // Greedily add the computational basis vector with the largest residual
    // until the basis is complete; this keeps the completion well-conditioned.
    while basis.len() < dim {
        let mut best: Option<(f64, CVector)> = None;
        for k in 0..dim {
            let e = CVector::basis_state(dim, k);
            let mut residual = e.clone();
            for b in &basis {
                let overlap = b.inner(&residual)?;
                residual = residual.sub(&b.scale(overlap));
            }
            let norm = residual.norm();
            if best.as_ref().is_none_or(|(bn, _)| norm > *bn) {
                best = Some((norm, residual));
            }
        }
        let (norm, mut residual) = best.ok_or(MathError::LinearlyDependent)?;
        if norm <= DEPENDENCE_TOL {
            return Err(MathError::LinearlyDependent);
        }
        // Re-orthogonalise once more for stability, then normalise.
        for b in &basis {
            let overlap = b.inner(&residual)?;
            residual = residual.sub(&b.scale(overlap));
        }
        let n2 = residual.norm();
        if n2 <= DEPENDENCE_TOL {
            return Err(MathError::LinearlyDependent);
        }
        basis.push(residual.scale(C64::from(1.0 / n2)));
    }
    Ok(basis)
}

/// Verifies that `basis` is orthonormal within `tol`.
///
/// ```rust
/// use qra_math::{CVector, gram_schmidt::is_orthonormal};
///
/// let basis = vec![CVector::basis_state(2, 0), CVector::basis_state(2, 1)];
/// assert!(is_orthonormal(&basis, 1e-9));
/// ```
pub fn is_orthonormal(basis: &[CVector], tol: f64) -> bool {
    for (i, a) in basis.iter().enumerate() {
        for (j, b) in basis.iter().enumerate() {
            let expected = if i == j { C64::one() } else { C64::zero() };
            match a.inner(b) {
                Ok(ip) if ip.approx_eq(expected, tol) => {}
                _ => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-9;

    #[test]
    fn orthonormalize_empty_input() {
        assert!(orthonormalize(&[]).unwrap().is_empty());
    }

    #[test]
    fn orthonormalize_drops_dependent_vectors() {
        let v1 = CVector::from_real(&[1.0, 0.0, 0.0, 0.0]);
        let v2 = CVector::from_real(&[0.5, 0.0, 0.0, 0.0]);
        let v3 = CVector::from_real(&[1.0, 1.0, 0.0, 0.0]);
        let basis = orthonormalize(&[v1, v2, v3]).unwrap();
        assert_eq!(basis.len(), 2);
        assert!(is_orthonormal(&basis, TOL));
    }

    #[test]
    fn orthonormalize_preserves_first_direction() {
        let s = 0.5f64.sqrt();
        let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
        let basis = orthonormalize(std::slice::from_ref(&bell)).unwrap();
        assert!(basis[0].approx_eq(&bell, TOL));
    }

    #[test]
    fn orthonormalize_rejects_mixed_dims() {
        let v1 = CVector::zeros(2);
        let v2 = CVector::zeros(4);
        assert!(orthonormalize(&[v1, v2]).is_err());
    }

    #[test]
    fn complete_basis_from_single_state() {
        let s = 0.5f64.sqrt();
        let ghz = {
            let mut v = CVector::zeros(8);
            v[0] = C64::from(s);
            v[7] = C64::from(s);
            v
        };
        let basis = complete_basis(std::slice::from_ref(&ghz), 8).unwrap();
        assert_eq!(basis.len(), 8);
        assert!(is_orthonormal(&basis, TOL));
        assert!(basis[0].approx_eq(&ghz, TOL));
    }

    #[test]
    fn complete_basis_with_complex_seed() {
        let s = 0.5f64.sqrt();
        let state = CVector::new(vec![C64::from(s), C64::new(0.0, s)]);
        let basis = complete_basis(std::slice::from_ref(&state), 2).unwrap();
        assert_eq!(basis.len(), 2);
        assert!(is_orthonormal(&basis, TOL));
        assert!(basis[0].approx_eq(&state, TOL));
    }

    #[test]
    fn complete_basis_with_multiple_seeds_keeps_order() {
        let a = CVector::basis_state(4, 3);
        let b = CVector::basis_state(4, 1);
        let basis = complete_basis(&[a.clone(), b.clone()], 4).unwrap();
        assert!(basis[0].approx_eq(&a, TOL));
        assert!(basis[1].approx_eq(&b, TOL));
        assert!(is_orthonormal(&basis, TOL));
    }

    #[test]
    fn complete_basis_rejects_bad_dimension() {
        assert!(complete_basis(&[], 3).is_err());
    }

    #[test]
    fn complete_basis_no_seeds_gives_full_basis() {
        let basis = complete_basis(&[], 4).unwrap();
        assert_eq!(basis.len(), 4);
        assert!(is_orthonormal(&basis, TOL));
    }

    #[test]
    fn is_orthonormal_detects_failure() {
        let v = CVector::from_real(&[1.0, 1.0]); // not normalised
        assert!(!is_orthonormal(&[v], TOL));
        let a = CVector::basis_state(2, 0);
        let b = CVector::from_real(&[0.6, 0.8]);
        assert!(!is_orthonormal(&[a, b], TOL)); // not orthogonal
    }
}
