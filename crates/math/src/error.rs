//! Error types for numerical operations.

use std::error::Error;
use std::fmt;

/// Error produced by numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MathError {
    /// A dimension that must be a power of two was not.
    NotPowerOfTwo {
        /// The offending dimension.
        dim: usize,
    },
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human-readable description of the operation.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A matrix expected to be unitary failed the `U†U = I` check.
    NotUnitary {
        /// Largest observed deviation from the identity.
        deviation: f64,
    },
    /// A matrix expected to be Hermitian failed the `A = A†` check.
    NotHermitian {
        /// Largest observed deviation between `A` and `A†`.
        deviation: f64,
    },
    /// A vector expected to have unit norm did not.
    NotNormalized {
        /// The observed norm.
        norm: f64,
    },
    /// An iterative algorithm failed to converge.
    NoConvergence {
        /// The algorithm that failed.
        algorithm: &'static str,
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The provided vectors were linearly dependent where independence was
    /// required.
    LinearlyDependent,
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The allowed length.
        len: usize,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::NotPowerOfTwo { dim } => {
                write!(f, "dimension {dim} is not a power of two")
            }
            MathError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            MathError::NotSquare { rows, cols } => {
                write!(f, "matrix of shape {rows}x{cols} is not square")
            }
            MathError::NotUnitary { deviation } => {
                write!(f, "matrix is not unitary (deviation {deviation:.3e})")
            }
            MathError::NotHermitian { deviation } => {
                write!(f, "matrix is not hermitian (deviation {deviation:.3e})")
            }
            MathError::NotNormalized { norm } => {
                write!(f, "vector norm {norm} differs from 1")
            }
            MathError::NoConvergence {
                algorithm,
                iterations,
            } => write!(
                f,
                "{algorithm} did not converge after {iterations} iterations"
            ),
            MathError::LinearlyDependent => {
                write!(f, "provided vectors are linearly dependent")
            }
            MathError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
        }
    }
}

impl Error for MathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            MathError::NotPowerOfTwo { dim: 3 },
            MathError::ShapeMismatch {
                op: "mul",
                left: (2, 2),
                right: (3, 3),
            },
            MathError::NotSquare { rows: 2, cols: 3 },
            MathError::NotUnitary { deviation: 0.5 },
            MathError::NotHermitian { deviation: 0.5 },
            MathError::NotNormalized { norm: 2.0 },
            MathError::NoConvergence {
                algorithm: "jacobi",
                iterations: 100,
            },
            MathError::LinearlyDependent,
            MathError::IndexOutOfBounds { index: 5, len: 2 },
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
