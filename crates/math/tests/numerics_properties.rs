//! Property-based numerics tests: the linear-algebra invariants the
//! assertion pipeline depends on must hold for random inputs.

use proptest::prelude::*;
use qra_math::{
    complete_basis, gram_schmidt::is_orthonormal, hermitian_eigen, orthonormalize, C64, CMatrix,
    CVector,
};

fn arb_vector(dim: usize) -> impl Strategy<Value = CVector> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), dim).prop_map(|parts| {
        CVector::new(parts.iter().map(|&(re, im)| C64::new(re, im)).collect())
    })
}

fn arb_unit_vector(dim: usize) -> impl Strategy<Value = CVector> {
    arb_vector(dim).prop_filter_map("normalisable", |v| v.normalized().ok())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn inner_product_is_conjugate_symmetric(a in arb_vector(8), b in arb_vector(8)) {
        let ab = a.inner(&b).unwrap();
        let ba = b.inner(&a).unwrap();
        prop_assert!(ab.approx_eq(ba.conj(), 1e-9));
    }

    #[test]
    fn cauchy_schwarz_holds(a in arb_vector(8), b in arb_vector(8)) {
        let ip = a.inner(&b).unwrap().norm();
        prop_assert!(ip <= a.norm() * b.norm() + 1e-9);
    }

    #[test]
    fn kron_norm_is_multiplicative(a in arb_vector(4), b in arb_vector(4)) {
        let k = a.kron(&b);
        prop_assert!((k.norm() - a.norm() * b.norm()).abs() < 1e-9);
    }

    #[test]
    fn orthonormalize_output_is_orthonormal(
        vs in proptest::collection::vec(arb_vector(8), 1..6)
    ) {
        let basis = orthonormalize(&vs).unwrap();
        prop_assert!(is_orthonormal(&basis, 1e-7));
        prop_assert!(basis.len() <= vs.len());
    }

    #[test]
    fn complete_basis_spans_everything(seed in arb_unit_vector(8)) {
        let basis = complete_basis(std::slice::from_ref(&seed), 8).unwrap();
        prop_assert_eq!(basis.len(), 8);
        prop_assert!(is_orthonormal(&basis, 1e-7));
        // Any random vector decomposes exactly.
        let mut norm_sq = 0.0;
        for b in &basis {
            norm_sq += b.inner(&seed).unwrap().norm_sqr();
        }
        prop_assert!((norm_sq - 1.0).abs() < 1e-7);
    }

    #[test]
    fn eigendecomposition_invariants(
        a in arb_unit_vector(8), b in arb_unit_vector(8), p in 0.1f64..0.9
    ) {
        // Random rank ≤ 2 density matrix.
        let rho = CMatrix::outer(&a, &a).scale(C64::from(p))
            .add(&CMatrix::outer(&b, &b).scale(C64::from(1.0 - p))).unwrap();
        let eig = hermitian_eigen(&rho).unwrap();
        // Eigenvalues descending, real, non-negative, trace 1.
        for w in eig.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-10);
        }
        for &v in &eig.values {
            prop_assert!(v > -1e-9);
        }
        let trace: f64 = eig.values.iter().sum();
        prop_assert!((trace - 1.0).abs() < 1e-8);
        // Rank ≤ 2.
        prop_assert!(eig.rank(1e-7) <= 2);
        // A v = λ v for every eigenpair.
        for (lambda, v) in eig.values.iter().zip(&eig.vectors) {
            let av = rho.mul_vec(v);
            let lv = v.scale(C64::from(*lambda));
            prop_assert!(av.approx_eq(&lv, 1e-7));
        }
    }

    #[test]
    fn partial_trace_preserves_trace_and_hermiticity(
        v in arb_unit_vector(16)
    ) {
        let rho = CMatrix::outer(&v, &v);
        for traced in [vec![0usize], vec![1, 3], vec![0, 2]] {
            let reduced = rho.partial_trace(&traced).unwrap();
            prop_assert!(reduced.trace().unwrap().approx_eq(C64::one(), 1e-9));
            prop_assert!(reduced.is_hermitian(1e-9));
            // Purity within (0, 1].
            let purity = reduced.purity().unwrap();
            prop_assert!(purity <= 1.0 + 1e-9 && purity > 0.0);
        }
    }

    #[test]
    fn matrix_adjoint_involution(v in arb_vector(4), w in arb_vector(4)) {
        let m = CMatrix::outer(&v, &w);
        prop_assert!(m.adjoint().adjoint().approx_eq(&m, 1e-12));
        // tr(|v⟩⟨w|) = ⟨w|v⟩.
        let tr = m.trace().unwrap();
        let ip = w.inner(&v).unwrap();
        prop_assert!(tr.approx_eq(ip, 1e-9));
    }

    #[test]
    fn kron_of_unitaries_is_unitary(theta in 0.0f64..6.28, phi in 0.0f64..6.28) {
        let u = CMatrix::new(2, 2, vec![
            C64::from(theta.cos()), -C64::from(theta.sin()),
            C64::from(theta.sin()), C64::from(theta.cos()),
        ]);
        let v = CMatrix::new(2, 2, vec![
            C64::one(), C64::zero(),
            C64::zero(), C64::cis(phi),
        ]);
        prop_assert!(u.kron(&v).is_unitary(1e-9));
    }

    #[test]
    fn global_phase_equality_is_reflexive_and_phase_blind(
        v in arb_unit_vector(8), phase in 0.0f64..6.28
    ) {
        prop_assert!(v.approx_eq_up_to_phase(&v, 1e-9));
        let w = v.scale(C64::cis(phase));
        prop_assert!(v.approx_eq_up_to_phase(&w, 1e-9));
    }
}
