//! Randomized numerics tests: the linear-algebra invariants the assertion
//! pipeline depends on must hold for random inputs.
//!
//! Seeded PRNG loops replace the former proptest strategies; every case is
//! deterministic for a fixed base seed.

use qra_math::{
    complete_basis, gram_schmidt::is_orthonormal, hermitian_eigen, orthonormalize, CMatrix,
    CVector, C64,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 24;

fn random_vector(rng: &mut StdRng, dim: usize) -> CVector {
    CVector::new(
        (0..dim)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect(),
    )
}

fn random_unit_vector(rng: &mut StdRng, dim: usize) -> CVector {
    loop {
        if let Ok(v) = random_vector(rng, dim).normalized() {
            return v;
        }
    }
}

#[test]
fn inner_product_is_conjugate_symmetric() {
    let mut rng = StdRng::seed_from_u64(41);
    for _ in 0..CASES {
        let a = random_vector(&mut rng, 8);
        let b = random_vector(&mut rng, 8);
        let ab = a.inner(&b).unwrap();
        let ba = b.inner(&a).unwrap();
        assert!(ab.approx_eq(ba.conj(), 1e-9));
    }
}

#[test]
fn cauchy_schwarz_holds() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..CASES {
        let a = random_vector(&mut rng, 8);
        let b = random_vector(&mut rng, 8);
        let ip = a.inner(&b).unwrap().norm();
        assert!(ip <= a.norm() * b.norm() + 1e-9);
    }
}

#[test]
fn kron_norm_is_multiplicative() {
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..CASES {
        let a = random_vector(&mut rng, 4);
        let b = random_vector(&mut rng, 4);
        let k = a.kron(&b);
        assert!((k.norm() - a.norm() * b.norm()).abs() < 1e-9);
    }
}

#[test]
fn orthonormalize_output_is_orthonormal() {
    let mut rng = StdRng::seed_from_u64(44);
    for _ in 0..CASES {
        let count = rng.gen_range(1usize..6);
        let vs: Vec<CVector> = (0..count).map(|_| random_vector(&mut rng, 8)).collect();
        let basis = orthonormalize(&vs).unwrap();
        assert!(is_orthonormal(&basis, 1e-7));
        assert!(basis.len() <= vs.len());
    }
}

#[test]
fn complete_basis_spans_everything() {
    let mut rng = StdRng::seed_from_u64(45);
    for _ in 0..CASES {
        let seed = random_unit_vector(&mut rng, 8);
        let basis = complete_basis(std::slice::from_ref(&seed), 8).unwrap();
        assert_eq!(basis.len(), 8);
        assert!(is_orthonormal(&basis, 1e-7));
        // Any random vector decomposes exactly.
        let mut norm_sq = 0.0;
        for b in &basis {
            norm_sq += b.inner(&seed).unwrap().norm_sqr();
        }
        assert!((norm_sq - 1.0).abs() < 1e-7);
    }
}

#[test]
fn eigendecomposition_invariants() {
    let mut rng = StdRng::seed_from_u64(46);
    for _ in 0..CASES {
        // Random rank ≤ 2 density matrix.
        let a = random_unit_vector(&mut rng, 8);
        let b = random_unit_vector(&mut rng, 8);
        let p = rng.gen_range(0.1..0.9);
        let rho = CMatrix::outer(&a, &a)
            .scale(C64::from(p))
            .add(&CMatrix::outer(&b, &b).scale(C64::from(1.0 - p)))
            .unwrap();
        let eig = hermitian_eigen(&rho).unwrap();
        // Eigenvalues descending, real, non-negative, trace 1.
        for w in eig.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-10);
        }
        for &v in &eig.values {
            assert!(v > -1e-9);
        }
        let trace: f64 = eig.values.iter().sum();
        assert!((trace - 1.0).abs() < 1e-8);
        // Rank ≤ 2.
        assert!(eig.rank(1e-7) <= 2);
        // A v = λ v for every eigenpair.
        for (lambda, v) in eig.values.iter().zip(&eig.vectors) {
            let av = rho.mul_vec(v);
            let lv = v.scale(C64::from(*lambda));
            assert!(av.approx_eq(&lv, 1e-7));
        }
    }
}

#[test]
fn partial_trace_preserves_trace_and_hermiticity() {
    let mut rng = StdRng::seed_from_u64(47);
    for _ in 0..CASES {
        let v = random_unit_vector(&mut rng, 16);
        let rho = CMatrix::outer(&v, &v);
        for traced in [vec![0usize], vec![1, 3], vec![0, 2]] {
            let reduced = rho.partial_trace(&traced).unwrap();
            assert!(reduced.trace().unwrap().approx_eq(C64::one(), 1e-9));
            assert!(reduced.is_hermitian(1e-9));
            // Purity within (0, 1].
            let purity = reduced.purity().unwrap();
            assert!(purity <= 1.0 + 1e-9 && purity > 0.0);
        }
    }
}

#[test]
fn matrix_adjoint_involution() {
    let mut rng = StdRng::seed_from_u64(48);
    for _ in 0..CASES {
        let v = random_vector(&mut rng, 4);
        let w = random_vector(&mut rng, 4);
        let m = CMatrix::outer(&v, &w);
        assert!(m.adjoint().adjoint().approx_eq(&m, 1e-12));
        // tr(|v⟩⟨w|) = ⟨w|v⟩.
        let tr = m.trace().unwrap();
        let ip = w.inner(&v).unwrap();
        assert!(tr.approx_eq(ip, 1e-9));
    }
}

#[test]
fn kron_of_unitaries_is_unitary() {
    let mut rng = StdRng::seed_from_u64(49);
    for _ in 0..CASES {
        let theta = rng.gen_range(0.0..std::f64::consts::TAU);
        let phi = rng.gen_range(0.0..std::f64::consts::TAU);
        let u = CMatrix::new(
            2,
            2,
            vec![
                C64::from(theta.cos()),
                -C64::from(theta.sin()),
                C64::from(theta.sin()),
                C64::from(theta.cos()),
            ],
        );
        let v = CMatrix::new(
            2,
            2,
            vec![C64::one(), C64::zero(), C64::zero(), C64::cis(phi)],
        );
        assert!(u.kron(&v).is_unitary(1e-9));
    }
}

#[test]
fn global_phase_equality_is_reflexive_and_phase_blind() {
    let mut rng = StdRng::seed_from_u64(50);
    for _ in 0..CASES {
        let v = random_unit_vector(&mut rng, 8);
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        assert!(v.approx_eq_up_to_phase(&v, 1e-9));
        let w = v.scale(C64::cis(phase));
        assert!(v.approx_eq_up_to_phase(&w, 1e-9));
    }
}
