//! `qra-faults` — fault-injection campaigns for runtime assertions.
//!
//! The paper evaluates its assertion designs by hand-seeding five bugs
//! into a GHZ preparation (§III, Table 1). This crate turns that
//! methodology into an engine:
//!
//! * [`inject`] — a deterministic, seeded mutation engine that enumerates
//!   single-fault mutants of any circuit (gate substitution,
//!   control/target swap, off-by-π and ε angle perturbations, dropped,
//!   duplicated and stray gates) and samples double-fault mutants;
//! * [`runner`] — a resilient campaign runner executing the
//!   mutant × design matrix on a worker pool
//!   ([`CampaignConfig::jobs`], default: available parallelism) with
//!   per-cell panic isolation (a panic fails its own cell, and only its
//!   own cell), a wall-clock deadline with explicit partial-result
//!   reporting that also bounds in-cell retries, bounded seeded retries,
//!   and graceful backend degradation (exact density matrix within a
//!   memory budget, trajectory fallback, structured errors past the
//!   simulator caps); cell seeds depend only on `(seed, cell index)` and
//!   results reassemble in index order, so any job count renders a
//!   byte-identical report;
//! * [`report`] — the [`CampaignReport`]: detection and false-positive
//!   matrices, per-design gate-cost overhead, and text/JSON rendering;
//! * [`sweep`] — noise-aware sweeps: the same matrix run at a list of
//!   noise points, each point's detection threshold derived from its
//!   measured false-positive floor (§IX) instead of a fixed constant;
//! * [`merge`] — sharded campaigns: [`CampaignConfig::shard`] runs one
//!   contiguous slice of the cell list, and [`merge_reports`] reassembles
//!   shard JSON files into a report byte-identical to the unsharded run;
//!   sweeps additionally distribute as `(point × cell)` units
//!   ([`SweepUnitRecord`]) that [`assemble_sweep`] reassembles into a
//!   [`SweepReport`] byte-identical to the sequential sweep;
//! * [`json`] — the dependency-free JSON reader/writer those formats share.
//!
//! ```rust
//! use qra_algorithms::states;
//! use qra_core::StateSpec;
//! use qra_faults::{CampaignConfig, FaultInjector, run_campaign};
//!
//! let program = states::ghz(2);
//! let spec = StateSpec::pure(states::ghz_vector(2))?;
//! let mutants = FaultInjector::new(7).enumerate_single(&program);
//! let config = CampaignConfig { shots: 256, ..CampaignConfig::default() };
//! let report = run_campaign(&program, &[0, 1], &spec, &mutants, &config);
//! assert_eq!(report.cells.len(), mutants.len() * config.designs.len());
//! # Ok::<(), qra_core::AssertionError>(())
//! ```

#![deny(missing_docs)]

pub mod inject;
pub mod json;
pub mod merge;
pub mod report;
pub mod runner;
pub mod sweep;

pub use inject::{FaultInjector, FaultKind, Mutant, ANGLE_EPSILON};
pub use merge::{
    assemble_sweep, cell_record_json, is_sweep_partial, margin_record_json, merge_reports,
    merge_reports_named, merge_sweep_partials_named, parse_report, parse_sweep_partial,
    parse_unit_record, MergeError, ParsedReport, SweepPartial, SweepUnitPayload, SweepUnitRecord,
};
pub use report::{
    BaselineCell, CampaignCell, CampaignReport, CellError, CellStatus, DetectionStat,
};
pub use runner::{
    default_executor, run_campaign, run_campaign_with_executor, BackendChoice, BackendKind,
    CampaignConfig, CampaignDesign, Executor, Shard, ThreadPlan,
};
pub use sweep::{
    assemble_sweep_report, auto_margins, calibration_seed, run_sweep, run_sweep_with_executor,
    MarginMode, PointThreshold, QuarantinedUnit, SweepConfig, SweepPoint, SweepPointParts,
    SweepPointReport, SweepReport, AUTO_MARGIN_FALLBACK,
};
