//! Deterministic, seeded fault injection over circuits.
//!
//! The paper's §III evaluation seeds five hand-written bugs into a GHZ
//! preparation (Table 1). This module generalises that methodology into a
//! systematic mutation engine: every fault the paper's bug taxonomy covers
//! (wrong parameters, reordered entanglers, stray gates, dropped lines) is
//! enumerated mechanically over an arbitrary [`Circuit`], so a campaign can
//! measure which assertion designs catch which fault classes.

use qra_circuit::{Circuit, CircuitError, Gate, Instruction, Operation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Perturbation used by [`FaultKind::AngleEpsilon`] (radians). Small enough
/// that the mutant is a near-miss the statistical baseline cannot see.
pub const ANGLE_EPSILON: f64 = 0.1;

/// The fault classes the injector knows how to seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Substitute a gate for a look-alike (H ↔ X), the paper's
    /// "wrong gate" bug class.
    GateSubstitution,
    /// Swap control and target of an asymmetric two-qubit gate
    /// (the paper's Bug4 class).
    ControlTargetSwap,
    /// Add π to the leading angle of a parameterised gate — the sign-flip
    /// class behind the paper's Bug1 (`u2(π,0)` instead of `u2(0,π)`).
    AngleOffByPi,
    /// Add a small ε ([`ANGLE_EPSILON`]) to the leading angle: a near-miss
    /// only amplitude-sensitive checks can notice.
    AngleEpsilon,
    /// Delete one gate (a dropped line).
    DropGate,
    /// Apply one gate twice (a duplicated line; self-inverse gates cancel).
    DuplicateGate,
    /// Insert a stray X after an instruction, on a qubit it acts on.
    StrayX,
    /// Insert a stray Z after an instruction, on a qubit it acts on —
    /// invisible in the computational-basis distribution.
    StrayZ,
}

impl FaultKind {
    /// All fault classes, in the order the injector enumerates them.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::GateSubstitution,
        FaultKind::ControlTargetSwap,
        FaultKind::AngleOffByPi,
        FaultKind::AngleEpsilon,
        FaultKind::DropGate,
        FaultKind::DuplicateGate,
        FaultKind::StrayX,
        FaultKind::StrayZ,
    ];

    /// Short kebab-case name used in mutant ids and report rows.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::GateSubstitution => "gate-substitution",
            FaultKind::ControlTargetSwap => "control-target-swap",
            FaultKind::AngleOffByPi => "angle-off-by-pi",
            FaultKind::AngleEpsilon => "angle-epsilon",
            FaultKind::DropGate => "drop-gate",
            FaultKind::DuplicateGate => "duplicate-gate",
            FaultKind::StrayX => "stray-x",
            FaultKind::StrayZ => "stray-z",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One faulty variant of a program.
#[derive(Debug, Clone)]
pub struct Mutant {
    /// Stable identifier, unique within one campaign.
    pub id: String,
    /// The fault classes applied (one entry for single faults, two for
    /// double faults).
    pub kinds: Vec<FaultKind>,
    /// Human-readable description of what was changed, and where.
    pub description: String,
    /// The mutated circuit (same width as the original).
    pub circuit: Circuit,
}

impl Mutant {
    /// Label aggregating the fault classes (`"stray-z"`,
    /// `"drop-gate+stray-x"`), used as the detection-matrix row key.
    pub fn kind_label(&self) -> String {
        self.kinds
            .iter()
            .map(FaultKind::name)
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// A single fault applied to an instruction list, before circuit rebuild.
#[derive(Debug, Clone)]
struct AppliedFault {
    kind: FaultKind,
    description: String,
    instructions: Vec<Instruction>,
}

/// Deterministic fault injector.
///
/// Enumeration is purely structural and identical run-to-run;
/// [`FaultInjector::sample_double`] additionally uses the seed, so the same
/// seed always yields the same mutant set.
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    seed: u64,
}

impl FaultInjector {
    /// Creates an injector whose sampling decisions derive from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Enumerates every single-fault mutant of `circuit`, in a fixed
    /// order (by instruction site, then by fault class).
    pub fn enumerate_single(&self, circuit: &Circuit) -> Vec<Mutant> {
        let base: Vec<Instruction> = circuit.instructions().to_vec();
        single_faults(&base)
            .into_iter()
            .enumerate()
            .filter_map(|(i, f)| {
                let rebuilt = rebuild(circuit, &f.instructions).ok()?;
                Some(Mutant {
                    id: format!("s{i}-{}", f.kind.name()),
                    kinds: vec![f.kind],
                    description: f.description,
                    circuit: rebuilt,
                })
            })
            .collect()
    }

    /// Samples up to `count` distinct double-fault mutants: a seeded first
    /// fault composed with a seeded second fault of the mutated circuit.
    pub fn sample_double(&self, circuit: &Circuit, count: usize) -> Vec<Mutant> {
        let base: Vec<Instruction> = circuit.instructions().to_vec();
        let firsts = single_faults(&base);
        if firsts.is_empty() || count == 0 {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut seen: Vec<String> = Vec::new();
        let mut out = Vec::new();
        let mut attempts = 0usize;
        while out.len() < count && attempts < count.saturating_mul(20).max(20) {
            attempts += 1;
            let a = &firsts[rng.gen_range(0..firsts.len())];
            let seconds = single_faults(&a.instructions);
            if seconds.is_empty() {
                continue;
            }
            let b = &seconds[rng.gen_range(0..seconds.len())];
            let description = format!("{}; then {}", a.description, b.description);
            if seen.contains(&description) {
                continue;
            }
            let Ok(rebuilt) = rebuild(circuit, &b.instructions) else {
                continue;
            };
            seen.push(description.clone());
            out.push(Mutant {
                id: format!("d{}-{}+{}", out.len(), a.kind.name(), b.kind.name()),
                kinds: vec![a.kind, b.kind],
                description,
                circuit: rebuilt,
            });
        }
        out
    }
}

/// Rebuilds a circuit of the same width from a mutated instruction list.
fn rebuild(template: &Circuit, instructions: &[Instruction]) -> Result<Circuit, CircuitError> {
    let mut c = Circuit::with_clbits(template.num_qubits(), template.num_clbits());
    for inst in instructions {
        match &inst.operation {
            Operation::Gate(g) => {
                c.append(g.clone(), &inst.qubits)?;
            }
            Operation::Measure => {
                c.measure(inst.qubits[0], inst.clbits[0])?;
            }
            Operation::Reset => {
                c.reset(inst.qubits[0])?;
            }
            Operation::Barrier => {
                c.barrier_on(inst.qubits.clone());
            }
        }
    }
    Ok(c)
}

/// Enumerates every single fault of an instruction list, in site order.
fn single_faults(base: &[Instruction]) -> Vec<AppliedFault> {
    let mut out = Vec::new();
    for (site, inst) in base.iter().enumerate() {
        let Operation::Gate(gate) = &inst.operation else {
            continue; // measurements/resets/barriers are not mutated
        };

        // Gate substitution: H ↔ X.
        if let Some(sub) = substitute(gate) {
            let mut insts = base.to_vec();
            insts[site] = Instruction::gate(sub.clone(), inst.qubits.clone());
            out.push(AppliedFault {
                kind: FaultKind::GateSubstitution,
                description: format!("{} → {} at {site}", gate.name(), sub.name()),
                instructions: insts,
            });
        }

        // Control/target swap for asymmetric two-qubit gates.
        if is_asymmetric_two_qubit(gate) && inst.qubits.len() == 2 {
            let mut insts = base.to_vec();
            let swapped = vec![inst.qubits[1], inst.qubits[0]];
            insts[site] = Instruction::gate(gate.clone(), swapped);
            out.push(AppliedFault {
                kind: FaultKind::ControlTargetSwap,
                description: format!(
                    "{} control/target swapped at {site} (q{} ↔ q{})",
                    gate.name(),
                    inst.qubits[0],
                    inst.qubits[1]
                ),
                instructions: insts,
            });
        }

        // Leading-angle perturbations.
        for (kind, delta) in [
            (FaultKind::AngleOffByPi, std::f64::consts::PI),
            (FaultKind::AngleEpsilon, ANGLE_EPSILON),
        ] {
            if let Some(shifted) = shift_leading_angle(gate, delta) {
                let mut insts = base.to_vec();
                insts[site] = Instruction::gate(shifted, inst.qubits.clone());
                out.push(AppliedFault {
                    kind,
                    description: format!("{} leading angle {delta:+.4} at {site}", gate.name()),
                    instructions: insts,
                });
            }
        }

        // Dropped gate.
        {
            let mut insts = base.to_vec();
            insts.remove(site);
            out.push(AppliedFault {
                kind: FaultKind::DropGate,
                description: format!("{} dropped at {site}", gate.name()),
                instructions: insts,
            });
        }

        // Duplicated gate.
        {
            let mut insts = base.to_vec();
            insts.insert(site + 1, inst.clone());
            out.push(AppliedFault {
                kind: FaultKind::DuplicateGate,
                description: format!("{} duplicated at {site}", gate.name()),
                instructions: insts,
            });
        }

        // Stray X / Z after this instruction, on each qubit it touches
        // (never before anything has happened, so a stray Z is not a no-op
        // on |0⟩ by construction).
        for (kind, stray) in [(FaultKind::StrayX, Gate::X), (FaultKind::StrayZ, Gate::Z)] {
            for &q in &inst.qubits {
                let mut insts = base.to_vec();
                insts.insert(site + 1, Instruction::gate(stray.clone(), vec![q]));
                out.push(AppliedFault {
                    kind,
                    description: format!(
                        "stray {} on q{q} after {} at {site}",
                        stray.name(),
                        gate.name()
                    ),
                    instructions: insts,
                });
            }
        }
    }
    out
}

/// The look-alike substitution table.
fn substitute(gate: &Gate) -> Option<Gate> {
    match gate {
        Gate::H => Some(Gate::X),
        Gate::X => Some(Gate::H),
        Gate::Cx => Some(Gate::Cz),
        Gate::Cz => Some(Gate::Cx),
        _ => None,
    }
}

/// Two-qubit gates whose semantics change when control and target swap.
fn is_asymmetric_two_qubit(gate: &Gate) -> bool {
    matches!(
        gate,
        Gate::Cx
            | Gate::Cy
            | Gate::Ch
            | Gate::Crx(_)
            | Gate::Cry(_)
            | Gate::Crz(_)
            | Gate::Cu3(_, _, _)
    )
}

/// Adds `delta` to the leading angle of a parameterised gate.
fn shift_leading_angle(gate: &Gate, delta: f64) -> Option<Gate> {
    Some(match gate {
        Gate::Rx(t) => Gate::Rx(t + delta),
        Gate::Ry(t) => Gate::Ry(t + delta),
        Gate::Rz(t) => Gate::Rz(t + delta),
        Gate::Phase(l) => Gate::Phase(l + delta),
        Gate::U2(phi, lambda) => Gate::U2(phi + delta, *lambda),
        Gate::U3(theta, phi, lambda) => Gate::U3(theta + delta, *phi, *lambda),
        Gate::Cp(l) => Gate::Cp(l + delta),
        Gate::Crx(t) => Gate::Crx(t + delta),
        Gate::Cry(t) => Gate::Cry(t + delta),
        Gate::Crz(t) => Gate::Crz(t + delta),
        Gate::Cu3(theta, phi, lambda) => Gate::Cu3(theta + delta, *phi, *lambda),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_algorithms::states;
    use std::f64::consts::PI;

    #[test]
    fn enumeration_is_deterministic_and_ordered() {
        let ghz = states::ghz(3);
        let inj = FaultInjector::new(7);
        let a = inj.enumerate_single(&ghz);
        let b = inj.enumerate_single(&ghz);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.description, y.description);
            assert_eq!(x.circuit, y.circuit);
        }
        // GHZ(3) = u2 + 2 CX: every class except H↔X substitution on the
        // u2 form must be present.
        for kind in [
            FaultKind::ControlTargetSwap,
            FaultKind::AngleOffByPi,
            FaultKind::AngleEpsilon,
            FaultKind::DropGate,
            FaultKind::DuplicateGate,
            FaultKind::StrayX,
            FaultKind::StrayZ,
        ] {
            assert!(
                a.iter().any(|m| m.kinds == vec![kind]),
                "missing {kind} mutant"
            );
        }
    }

    #[test]
    fn mutants_preserve_circuit_width() {
        let ghz = states::ghz(4);
        for m in FaultInjector::new(1).enumerate_single(&ghz) {
            assert_eq!(m.circuit.num_qubits(), 4, "{}", m.description);
            assert_eq!(m.circuit.num_clbits(), ghz.num_clbits());
        }
    }

    #[test]
    fn off_by_pi_on_ghz_prep_is_the_papers_bug1_class() {
        // u2(0+π, π) prepares (|0…0⟩ − |1…1⟩)/√2: same distribution,
        // orthogonal state — exactly the Bug1 failure mode.
        let ghz = states::ghz(3);
        let mutants = FaultInjector::new(1).enumerate_single(&ghz);
        let flipped = mutants
            .iter()
            .find(|m| m.kinds == vec![FaultKind::AngleOffByPi])
            .expect("off-by-pi mutant on the u2");
        let sv = flipped.circuit.statevector().unwrap();
        let minus = {
            let s = qra_math::C64::from(0.5f64.sqrt());
            let mut v = qra_math::CVector::zeros(8);
            v[0] = s;
            v[7] = -s;
            v
        };
        assert!(sv.approx_eq_up_to_phase(&minus, 1e-9));
    }

    #[test]
    fn stray_z_commutes_with_distribution_but_flips_sign() {
        let ghz = states::ghz(2);
        let mutants = FaultInjector::new(1).enumerate_single(&ghz);
        let stray_z = mutants
            .iter()
            .rfind(|m| m.kinds == vec![FaultKind::StrayZ])
            .unwrap();
        let sv = stray_z.circuit.statevector().unwrap();
        // Distribution unchanged…
        assert!((sv.probability(0) - 0.5).abs() < 1e-9);
        assert!((sv.probability(3) - 0.5).abs() < 1e-9);
        // …but orthogonal to the true GHZ.
        let overlap = sv.inner(&states::ghz_vector(2)).unwrap().norm();
        assert!(overlap < 1e-9);
    }

    #[test]
    fn control_target_swap_changes_the_unitary() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1);
        let mutants = FaultInjector::new(1).enumerate_single(&c);
        let swapped = mutants
            .iter()
            .find(|m| m.kinds == vec![FaultKind::ControlTargetSwap])
            .unwrap();
        let orig = c.statevector().unwrap();
        let muta = swapped.circuit.statevector().unwrap();
        assert!(!muta.approx_eq_up_to_phase(&orig, 1e-9));
    }

    #[test]
    fn double_fault_sampling_is_seeded_and_bounded() {
        let ghz = states::ghz(3);
        let a = FaultInjector::new(11).sample_double(&ghz, 6);
        let b = FaultInjector::new(11).sample_double(&ghz, 6);
        let c = FaultInjector::new(12).sample_double(&ghz, 6);
        assert_eq!(a.len(), 6);
        assert_eq!(
            a.iter().map(|m| &m.description).collect::<Vec<_>>(),
            b.iter().map(|m| &m.description).collect::<Vec<_>>()
        );
        assert!(a
            .iter()
            .zip(&c)
            .any(|(x, y)| x.description != y.description));
        for m in &a {
            assert_eq!(m.kinds.len(), 2);
            assert!(m.kind_label().contains('+'));
        }
        assert!(FaultInjector::new(1).sample_double(&ghz, 0).is_empty());
    }

    #[test]
    fn drop_and_duplicate_adjust_length() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mutants = FaultInjector::new(1).enumerate_single(&c);
        let dropped = mutants
            .iter()
            .find(|m| m.kinds == vec![FaultKind::DropGate])
            .unwrap();
        assert_eq!(dropped.circuit.len(), 0);
        let dup = mutants
            .iter()
            .find(|m| m.kinds == vec![FaultKind::DuplicateGate])
            .unwrap();
        assert_eq!(dup.circuit.len(), 2);
        // H twice = identity.
        let sv = dup.circuit.statevector().unwrap();
        assert!((sv.probability(0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn substitution_covers_h_x_and_cx_cz() {
        let mut c = Circuit::new(2);
        c.h(0).x(1).cx(0, 1).cz(0, 1);
        let mutants = FaultInjector::new(1).enumerate_single(&c);
        let subs: Vec<&String> = mutants
            .iter()
            .filter(|m| m.kinds == vec![FaultKind::GateSubstitution])
            .map(|m| &m.description)
            .collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.iter().any(|d| d.contains("h → x")));
        assert!(subs.iter().any(|d| d.contains("x → h")));
        assert!(subs.iter().any(|d| d.contains("cx → cz")));
        assert!(subs.iter().any(|d| d.contains("cz → cx")));
    }

    #[test]
    fn angle_epsilon_is_a_near_miss() {
        let mut c = Circuit::new(1);
        c.ry(PI / 3.0, 0);
        let mutants = FaultInjector::new(1).enumerate_single(&c);
        let eps = mutants
            .iter()
            .find(|m| m.kinds == vec![FaultKind::AngleEpsilon])
            .unwrap();
        let orig = c.statevector().unwrap();
        let muta = eps.circuit.statevector().unwrap();
        let overlap = muta.inner(&orig).unwrap().norm();
        assert!(overlap > 0.99 && overlap < 1.0 - 1e-6);
    }
}
