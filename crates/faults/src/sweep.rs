//! Noise-aware campaign sweeps: the same fault-injection matrix run at a
//! list of noise points, with detection thresholds *derived* from each
//! point's measured false-positive floor.
//!
//! §IX of the paper observes that under realistic device noise the
//! assertion error rate on the *unmutated* program rises to a floor, and a
//! fixed detection threshold below that floor misclassifies noise as bugs.
//! A sweep therefore runs the baseline row at every noise point, takes each
//! design's baseline error rate as its false-positive floor, and sets that
//! point's detection threshold to `floor + threshold_margin` — falling back
//! to the campaign's configured threshold where the baseline did not
//! complete. The report then shows detection degradation per fault class ×
//! design × noise point.

use crate::inject::Mutant;
use crate::report::{json_f64, json_str, CampaignReport, CellStatus, DetectionStat};
use crate::runner::Executor;
use crate::runner::{run_campaign, run_campaign_with_executor, CampaignConfig, CampaignDesign};
use qra_circuit::Circuit;
use qra_core::StateSpec;
use qra_sim::{DevicePreset, NoiseModel};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One noise point of a sweep: a labelled [`NoiseModel`].
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Display label (device preset name, `melbourne x2`, …).
    pub label: String,
    /// The noise model applied at this point.
    pub noise: NoiseModel,
}

impl SweepPoint {
    /// A point at a device preset's nominal noise level.
    pub fn preset(preset: DevicePreset) -> Self {
        Self {
            label: preset.name().to_string(),
            noise: preset.noise_model(),
        }
    }

    /// A point at `factor ×` a preset's nominal noise
    /// ([`NoiseModel::scaled`] clamping rules apply).
    pub fn scaled(preset: DevicePreset, factor: f64) -> Self {
        Self {
            label: format!("{} x{factor}", preset.name()),
            noise: preset.noise_model().scaled(factor),
        }
    }

    /// A point with an explicit label and noise model.
    pub fn custom(label: impl Into<String>, noise: NoiseModel) -> Self {
        Self {
            label: label.into(),
            noise,
        }
    }
}

/// Configuration of a noise sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Noise points to run, in order.
    pub points: Vec<SweepPoint>,
    /// Campaign configuration shared by every point (its `noise` field is
    /// replaced per point; its `detection_threshold` is the fallback when a
    /// baseline cell did not complete).
    pub base: CampaignConfig,
    /// Margin added to each design's false-positive floor to obtain that
    /// point's derived detection threshold.
    pub threshold_margin: f64,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            points: vec![
                SweepPoint::preset(DevicePreset::Ideal),
                SweepPoint::preset(DevicePreset::LowNoise),
                SweepPoint::preset(DevicePreset::MelbourneLike),
            ],
            base: CampaignConfig::default(),
            threshold_margin: 0.02,
        }
    }
}

/// A design's derived threshold at one noise point.
#[derive(Debug, Clone, Copy)]
pub struct PointThreshold {
    /// The design.
    pub design: CampaignDesign,
    /// The design's measured false-positive floor (its baseline error
    /// rate); `None` when the baseline cell did not complete.
    pub floor: Option<f64>,
    /// The detection threshold applied at this point: `floor + margin`, or
    /// the configured fallback when no floor was measured.
    pub threshold: f64,
}

/// One noise point's campaign result plus its derived thresholds.
#[derive(Debug, Clone)]
pub struct SweepPointReport {
    /// The point's label.
    pub label: String,
    /// The point's overall false-positive floor (max baseline error rate).
    pub fp_floor: Option<f64>,
    /// Per-design derived thresholds.
    pub thresholds: Vec<PointThreshold>,
    /// The full campaign report at this point.
    pub report: CampaignReport,
}

impl SweepPointReport {
    /// The detection threshold applied to `design` at this point.
    pub fn threshold_for(&self, design: CampaignDesign) -> f64 {
        self.thresholds
            .iter()
            .find(|t| t.design == design)
            .map_or(self.report.detection_threshold, |t| t.threshold)
    }

    /// The detection matrix re-evaluated at the derived thresholds.
    pub fn matrix(&self) -> BTreeMap<String, Vec<(CampaignDesign, DetectionStat)>> {
        self.report
            .detection_matrix_at(|design| self.threshold_for(design))
    }
}

/// The full sweep result: one [`SweepPointReport`] per noise point.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Margin that was added to each floor.
    pub threshold_margin: f64,
    /// Per-point results, in sweep order.
    pub points: Vec<SweepPointReport>,
}

/// Derives per-design thresholds from a campaign's baseline row.
fn derive_thresholds(report: &CampaignReport, margin: f64) -> Vec<PointThreshold> {
    report
        .designs
        .iter()
        .map(|&design| {
            let floor = report.baselines.iter().find_map(|b| {
                if b.design != design {
                    return None;
                }
                match b.status {
                    CellStatus::Completed { error_rate, .. } if error_rate.is_finite() => {
                        Some(error_rate)
                    }
                    _ => None,
                }
            });
            PointThreshold {
                design,
                floor,
                threshold: floor.map_or(report.detection_threshold, |f| f + margin),
            }
        })
        .collect()
}

/// Runs the campaign matrix at every noise point of `config` and derives
/// each point's detection thresholds from its false-positive floor.
pub fn run_sweep(
    program: &Circuit,
    qubits: &[usize],
    spec: &StateSpec,
    mutants: &[Mutant],
    config: &SweepConfig,
) -> SweepReport {
    run_sweep_inner(config, |point_config| {
        run_campaign(program, qubits, spec, mutants, point_config)
    })
}

/// [`run_sweep`] with an injected executor (tests use this to simulate
/// failing backends at chosen noise points).
pub fn run_sweep_with_executor(
    program: &Circuit,
    qubits: &[usize],
    spec: &StateSpec,
    mutants: &[Mutant],
    config: &SweepConfig,
    executor: &Executor<'_>,
) -> SweepReport {
    run_sweep_inner(config, |point_config| {
        run_campaign_with_executor(program, qubits, spec, mutants, point_config, executor)
    })
}

fn run_sweep_inner(
    config: &SweepConfig,
    mut run: impl FnMut(&CampaignConfig) -> CampaignReport,
) -> SweepReport {
    let points = config
        .points
        .iter()
        .map(|point| {
            let point_config = CampaignConfig {
                noise: point.noise.clone(),
                ..config.base.clone()
            };
            let report = run(&point_config);
            SweepPointReport {
                label: point.label.clone(),
                fp_floor: report.false_positive_floor(),
                thresholds: derive_thresholds(&report, config.threshold_margin),
                report,
            }
        })
        .collect();
    SweepReport {
        threshold_margin: config.threshold_margin,
        points,
    }
}

impl SweepReport {
    /// Renders the sweep as human-readable text: per-point floors, derived
    /// thresholds and detection matrices, then a degradation table showing
    /// detection per fault class × design across the noise points.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "=== Noise sweep: {} point(s), threshold margin {:.4} ===",
            self.points.len(),
            self.threshold_margin
        );
        for point in &self.points {
            let _ = writeln!(out);
            let _ = writeln!(out, "--- noise point: {} ---", point.label);
            match point.fp_floor {
                Some(floor) => {
                    let _ = writeln!(out, "false-positive floor: {floor:.4}");
                }
                None => {
                    let _ = writeln!(out, "false-positive floor: unmeasured (no baseline)");
                }
            }
            for t in &point.thresholds {
                match t.floor {
                    Some(floor) => {
                        let _ = writeln!(
                            out,
                            "  {:<12} floor {:.4} -> threshold {:.4}",
                            t.design.name(),
                            floor,
                            t.threshold
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "  {:<12} floor unmeasured -> threshold {:.4} (configured fallback)",
                            t.design.name(),
                            t.threshold
                        );
                    }
                }
            }
            for (kind, row) in point.matrix() {
                let _ = write!(out, "  {kind:<16}");
                for (design, stat) in row {
                    let _ = write!(
                        out,
                        "  {}: {}/{}",
                        design.name(),
                        stat.detected,
                        stat.completed
                    );
                }
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "=== Detection degradation (detected/completed per noise point) ==="
        );
        // Rows: fault class × design; columns: noise points in sweep order.
        let mut header = format!("{:<16} {:<12}", "fault class", "design");
        for point in &self.points {
            let _ = write!(header, "  {:>14}", point.label);
        }
        let _ = writeln!(out, "{header}");
        let mut rows: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
        for point in &self.points {
            for (kind, row) in point.matrix() {
                for (design, stat) in row {
                    rows.entry((kind.clone(), design.name().to_string()))
                        .or_insert_with(|| vec!["-".to_string(); self.points.len()])
                        [self.point_index(&point.label)] =
                        format!("{}/{}", stat.detected, stat.completed);
                }
            }
        }
        for ((kind, design), cells) in rows {
            let _ = write!(out, "{kind:<16} {design:<12}");
            for cell in cells {
                let _ = write!(out, "  {cell:>14}");
            }
            let _ = writeln!(out);
        }
        out
    }

    fn point_index(&self, label: &str) -> usize {
        self.points
            .iter()
            .position(|p| p.label == label)
            .unwrap_or(0)
    }

    /// Renders the sweep as JSON: sweep metadata, each point's floor and
    /// derived thresholds, and the point's full campaign report (embedded
    /// verbatim as produced by [`CampaignReport::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"threshold_margin\":{},\"points\":[",
            json_f64(self.threshold_margin)
        );
        for (i, point) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"fp_floor\":{},\"thresholds\":[",
                json_str(&point.label),
                point.fp_floor.map_or("null".to_string(), json_f64)
            );
            for (j, t) in point.thresholds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"design\":{},\"floor\":{},\"threshold\":{}}}",
                    json_str(t.design.name()),
                    t.floor.map_or("null".to_string(), json_f64),
                    json_f64(t.threshold)
                );
            }
            let _ = write!(out, "],\"campaign\":{}}}", point.report.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::FaultInjector;
    use qra_algorithms::states;

    fn tiny_sweep(points: Vec<SweepPoint>) -> SweepReport {
        let program = states::ghz(2);
        let spec = StateSpec::pure(states::ghz_vector(2)).unwrap();
        let mutants = FaultInjector::new(9)
            .enumerate_single(&program)
            .into_iter()
            .take(2)
            .collect::<Vec<_>>();
        let config = SweepConfig {
            points,
            base: CampaignConfig {
                shots: 128,
                seed: 5,
                designs: vec![CampaignDesign::Ndd, CampaignDesign::Stat],
                jobs: 1,
                ..CampaignConfig::default()
            },
            threshold_margin: 0.02,
        };
        run_sweep(&program, &[0, 1], &spec, &mutants, &config)
    }

    #[test]
    fn sweep_runs_every_point_and_derives_thresholds() {
        let sweep = tiny_sweep(vec![
            SweepPoint::preset(DevicePreset::Ideal),
            SweepPoint::preset(DevicePreset::LowNoise),
            SweepPoint::scaled(DevicePreset::LowNoise, 2.0),
        ]);
        assert_eq!(sweep.points.len(), 3);
        assert_eq!(sweep.points[0].label, "ideal");
        assert_eq!(sweep.points[2].label, "low x2");
        for point in &sweep.points {
            assert_eq!(point.report.cells.len(), 4);
            // Every completed baseline yields floor + margin.
            for t in &point.thresholds {
                match t.floor {
                    Some(floor) => assert!((t.threshold - (floor + 0.02)).abs() < 1e-12),
                    None => assert_eq!(t.threshold, point.report.detection_threshold),
                }
            }
        }
        // The ideal point's floor is small but not necessarily zero: the
        // statistical baseline's total-variation distance carries
        // finite-shot sampling noise even without device noise.
        let ideal = &sweep.points[0];
        let floor = ideal.fp_floor.expect("ideal baselines completed");
        assert!(floor < 0.05, "ideal floor {floor}");
        for t in &ideal.thresholds {
            let f = t.floor.expect("baseline completed");
            assert!((t.threshold - (f + 0.02)).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_renders_text_and_json() {
        let sweep = tiny_sweep(vec![
            SweepPoint::preset(DevicePreset::Ideal),
            SweepPoint::preset(DevicePreset::LowNoise),
        ]);
        let text = sweep.render_text();
        assert!(text.contains("Noise sweep: 2 point(s)"), "{text}");
        assert!(text.contains("--- noise point: ideal ---"), "{text}");
        assert!(text.contains("Detection degradation"), "{text}");
        let json = sweep.to_json();
        assert!(json.contains("\"threshold_margin\":0.02"), "{json}");
        assert!(json.contains("\"label\":\"low\""), "{json}");
        assert!(json.contains("\"campaign\":{\"num_qubits\":2"), "{json}");
    }

    #[test]
    fn custom_points_carry_their_label_and_noise() {
        let point =
            SweepPoint::custom("hot", DevicePreset::MelbourneLike.noise_model().scaled(3.0));
        assert_eq!(point.label, "hot");
        assert!(point.noise.validate().is_ok());
    }
}
