//! Noise-aware campaign sweeps: the same fault-injection matrix run at a
//! list of noise points, with detection thresholds *derived* from each
//! point's measured false-positive floor.
//!
//! §IX of the paper observes that under realistic device noise the
//! assertion error rate on the *unmutated* program rises to a floor, and a
//! fixed detection threshold below that floor misclassifies noise as bugs.
//! A sweep therefore runs the baseline row at every noise point, takes each
//! design's baseline error rate as its false-positive floor, and sets that
//! point's detection threshold to `floor + margin` — falling back to the
//! campaign's configured threshold where the baseline did not complete.
//! The margin is either a fixed constant ([`MarginMode::Fixed`]) or
//! calibrated per design and per point from the variance of the baseline
//! floor across repeated seeds ([`MarginMode::Auto`]). The report then
//! shows detection degradation per fault class × design × noise point.

use crate::inject::Mutant;
use crate::json::{json_f64, json_str};
use crate::report::{CampaignReport, CellStatus, DetectionStat};
use crate::runner::derive_seed;
use crate::runner::Executor;
use crate::runner::{run_campaign, run_campaign_with_executor, CampaignConfig, CampaignDesign};
use qra_circuit::Circuit;
use qra_core::StateSpec;
use qra_sim::{DevicePreset, NoiseModel};
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::str::FromStr;

/// One noise point of a sweep: a labelled [`NoiseModel`].
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Display label (device preset name, `melbourne x2`, …).
    pub label: String,
    /// The noise model applied at this point.
    pub noise: NoiseModel,
}

impl SweepPoint {
    /// A point at a device preset's nominal noise level.
    pub fn preset(preset: DevicePreset) -> Self {
        Self {
            label: preset.name().to_string(),
            noise: preset.noise_model(),
        }
    }

    /// A point at `factor ×` a preset's nominal noise
    /// ([`NoiseModel::scaled`] clamping rules apply).
    pub fn scaled(preset: DevicePreset, factor: f64) -> Self {
        Self {
            label: format!("{} x{factor}", preset.name()),
            noise: preset.noise_model().scaled(factor),
        }
    }

    /// A point with an explicit label and noise model.
    pub fn custom(label: impl Into<String>, noise: NoiseModel) -> Self {
        Self {
            label: label.into(),
            noise,
        }
    }
}

/// How a sweep derives the margin it adds to each design's false-positive
/// floor to obtain that point's detection threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MarginMode {
    /// A fixed margin added to every floor.
    Fixed(f64),
    /// The margin is calibrated per design and per noise point from the
    /// baseline false-positive variance across `repeats` repeated seeds: a
    /// normal-approximation prediction bound `z · s · √(1 + 1/k)` over the
    /// `k` completed repeat floors (clamped below at one shot's weight,
    /// `1/shots`, the measurement's resolution). Designs with fewer than
    /// two completed repeats fall back to [`AUTO_MARGIN_FALLBACK`].
    Auto {
        /// How many extra baseline campaigns to run per noise point.
        repeats: u32,
        /// The normal-approximation confidence multiplier.
        z: f64,
    },
}

/// Fixed margin used when auto calibration cannot measure a design's
/// baseline variance (fewer than two completed repeats).
pub const AUTO_MARGIN_FALLBACK: f64 = 0.02;

impl MarginMode {
    /// The default auto-calibration repeat count.
    pub const DEFAULT_AUTO_REPEATS: u32 = 5;
    /// The default auto-calibration confidence multiplier (~97.7% one-sided
    /// under the normal approximation).
    pub const DEFAULT_AUTO_Z: f64 = 2.0;

    /// The default auto mode: `auto:5:2`.
    pub fn auto() -> Self {
        MarginMode::Auto {
            repeats: Self::DEFAULT_AUTO_REPEATS,
            z: Self::DEFAULT_AUTO_Z,
        }
    }
}

impl Default for MarginMode {
    fn default() -> Self {
        MarginMode::Fixed(0.02)
    }
}

impl fmt::Display for MarginMode {
    /// The CLI/manifest spelling, reparseable by [`MarginMode::from_str`]:
    /// fixed margins print as their shortest round-trip float, auto as
    /// `auto:REPEATS:Z`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarginMode::Fixed(m) => write!(f, "{m}"),
            MarginMode::Auto { repeats, z } => write!(f, "auto:{repeats}:{z}"),
        }
    }
}

impl FromStr for MarginMode {
    type Err = String;

    /// Parses `0.02`, `auto`, `auto:REPEATS` or `auto:REPEATS:Z`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(rest) = s.strip_prefix("auto") {
            let mut parts = rest.split(':').skip(1); // leading "" before first ':'
            if !rest.is_empty() && !rest.starts_with(':') {
                return Err(format!("bad margin '{s}': expected auto[:REPEATS[:Z]]"));
            }
            let repeats =
                match parts.next() {
                    Some(r) => r.parse::<u32>().ok().filter(|&r| r >= 2).ok_or_else(|| {
                        format!("bad margin repeats in '{s}' (need an integer >= 2)")
                    })?,
                    None => Self::DEFAULT_AUTO_REPEATS,
                };
            let z = match parts.next() {
                Some(z) => z
                    .parse::<f64>()
                    .ok()
                    .filter(|z| z.is_finite() && *z > 0.0)
                    .ok_or_else(|| {
                        format!("bad margin z in '{s}' (need a finite positive number)")
                    })?,
                None => Self::DEFAULT_AUTO_Z,
            };
            if parts.next().is_some() {
                return Err(format!("bad margin '{s}': expected auto[:REPEATS[:Z]]"));
            }
            return Ok(MarginMode::Auto { repeats, z });
        }
        let m: f64 = s
            .parse()
            .map_err(|_| format!("bad margin '{s}': expected a rate or auto[:REPEATS[:Z]]"))?;
        if !m.is_finite() || m < 0.0 {
            return Err(format!("margin must be a finite rate >= 0, got '{s}'"));
        }
        Ok(MarginMode::Fixed(m))
    }
}

/// Configuration of a noise sweep.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Noise points to run, in order.
    pub points: Vec<SweepPoint>,
    /// Campaign configuration shared by every point (its `noise` field is
    /// replaced per point; its `detection_threshold` is the fallback when a
    /// baseline cell did not complete).
    pub base: CampaignConfig,
    /// How the detection margin over each design's false-positive floor is
    /// obtained.
    pub margin: MarginMode,
}

impl Default for SweepConfig {
    fn default() -> Self {
        Self {
            points: vec![
                SweepPoint::preset(DevicePreset::Ideal),
                SweepPoint::preset(DevicePreset::LowNoise),
                SweepPoint::preset(DevicePreset::MelbourneLike),
            ],
            base: CampaignConfig::default(),
            margin: MarginMode::default(),
        }
    }
}

/// A design's derived threshold at one noise point.
#[derive(Debug, Clone, Copy)]
pub struct PointThreshold {
    /// The design.
    pub design: CampaignDesign,
    /// The design's measured false-positive floor (its baseline error
    /// rate); `None` when the baseline cell did not complete.
    pub floor: Option<f64>,
    /// The margin added to the floor (fixed, or this design's calibrated
    /// value in auto mode).
    pub margin: f64,
    /// The detection threshold applied at this point: `floor + margin`, or
    /// the configured fallback when no floor was measured.
    pub threshold: f64,
}

/// One noise point's campaign result plus its derived thresholds.
#[derive(Debug, Clone)]
pub struct SweepPointReport {
    /// The point's label.
    pub label: String,
    /// The point's overall false-positive floor (max baseline error rate).
    pub fp_floor: Option<f64>,
    /// Per-design derived thresholds.
    pub thresholds: Vec<PointThreshold>,
    /// The full campaign report at this point.
    pub report: CampaignReport,
}

impl SweepPointReport {
    /// The detection threshold applied to `design` at this point.
    pub fn threshold_for(&self, design: CampaignDesign) -> f64 {
        self.thresholds
            .iter()
            .find(|t| t.design == design)
            .map_or(self.report.detection_threshold, |t| t.threshold)
    }

    /// The detection matrix re-evaluated at the derived thresholds.
    pub fn matrix(&self) -> BTreeMap<String, Vec<(CampaignDesign, DetectionStat)>> {
        self.report
            .detection_matrix_at(|design| self.threshold_for(design))
    }
}

/// A unit the orchestrator quarantined after it exhausted its attempts:
/// the sweep completed around it, recording it as a named skip with its
/// attempt history instead of resume-looping forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedUnit {
    /// The noise point's label.
    pub label: String,
    /// The noise point's index in sweep order.
    pub point: usize,
    /// The unit's cell index within the point (`cells_per_point` denotes
    /// the point's margin-calibration unit).
    pub cell: usize,
    /// The recorded attempt reasons, in attempt order.
    pub attempts: Vec<String>,
}

/// The full sweep result: one [`SweepPointReport`] per noise point.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// How the per-design margins over the floors were obtained.
    pub margin: MarginMode,
    /// Per-point results, in sweep order.
    pub points: Vec<SweepPointReport>,
    /// Units quarantined by the orchestrator, in `(point, cell)` order;
    /// empty for sequential sweeps and fault-free distributed runs.
    pub quarantined: Vec<QuarantinedUnit>,
}

/// One assembled point of a sweep report: the merged campaign plus the
/// margins its thresholds derive from. [`assemble_sweep_report`] turns a
/// list of these into a [`SweepReport`] identical to what a sequential
/// [`run_sweep`] would have produced for the same campaigns.
#[derive(Debug, Clone)]
pub struct SweepPointParts {
    /// The point's label.
    pub label: String,
    /// The point's full campaign report (merged from shards or units).
    pub report: CampaignReport,
    /// Per-design calibrated margins (auto mode); `None` in fixed mode.
    pub margins: Option<Vec<(CampaignDesign, f64)>>,
}

/// Builds a [`SweepReport`] from per-point campaign reports and margins.
///
/// This is the single place sweep thresholds are derived: the sequential
/// [`run_sweep`] and the shard/orchestrator merge paths both call it, so a
/// sweep reassembled from distributed units renders **byte-identically**
/// to the sequential run of the same campaigns.
pub fn assemble_sweep_report(margin: MarginMode, parts: Vec<SweepPointParts>) -> SweepReport {
    let points = parts
        .into_iter()
        .map(|part| {
            let margin_of = |design: CampaignDesign| match (margin, &part.margins) {
                (MarginMode::Fixed(m), _) => m,
                (MarginMode::Auto { .. }, Some(margins)) => margins
                    .iter()
                    .find(|(d, _)| *d == design)
                    .map_or(AUTO_MARGIN_FALLBACK, |(_, m)| *m),
                (MarginMode::Auto { .. }, None) => AUTO_MARGIN_FALLBACK,
            };
            let thresholds = derive_thresholds(&part.report, margin_of);
            SweepPointReport {
                label: part.label,
                fp_floor: part.report.false_positive_floor(),
                thresholds,
                report: part.report,
            }
        })
        .collect();
    SweepReport {
        margin,
        points,
        quarantined: Vec::new(),
    }
}

/// Derives per-design thresholds from a campaign's baseline row.
fn derive_thresholds(
    report: &CampaignReport,
    margin_of: impl Fn(CampaignDesign) -> f64,
) -> Vec<PointThreshold> {
    report
        .designs
        .iter()
        .map(|&design| {
            let floor = report.baselines.iter().find_map(|b| {
                if b.design != design {
                    return None;
                }
                match b.status {
                    CellStatus::Completed { error_rate, .. } if error_rate.is_finite() => {
                        Some(error_rate)
                    }
                    _ => None,
                }
            });
            let margin = margin_of(design);
            PointThreshold {
                design,
                floor,
                margin,
                threshold: floor.map_or(report.detection_threshold, |f| f + margin),
            }
        })
        .collect()
}

/// Stream tag separating margin-calibration seeds from campaign cell seeds
/// (which use small row/column coordinates).
const CALIBRATION_STREAM: u64 = 0x5EED_CA11;

/// The base seed of calibration repeat `repeat` at noise point
/// `point_index`: every repeat gets an independent but reproducible
/// campaign seed derived from the sweep's base seed alone, so sequential
/// sweeps, sweep shards and orchestrator workers calibrate identically.
pub fn calibration_seed(base: u64, point_index: usize, repeat: u32) -> u64 {
    derive_seed(
        base,
        CALIBRATION_STREAM + point_index as u64,
        u64::from(repeat),
    )
}

/// Calibrates per-design detection margins at one noise point from the
/// variance of the baseline false-positive floor across repeated seeds
/// ([`MarginMode::Auto`]).
///
/// `run_baseline` runs a no-mutant campaign for the given configuration
/// (the production path is [`run_campaign`] with an empty mutant list);
/// it is invoked `repeats` times with seeds from [`calibration_seed`].
pub fn auto_margins(
    point_config: &CampaignConfig,
    point_index: usize,
    repeats: u32,
    z: f64,
    mut run_baseline: impl FnMut(&CampaignConfig) -> CampaignReport,
) -> Vec<(CampaignDesign, f64)> {
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); point_config.designs.len()];
    for repeat in 0..repeats {
        let config = CampaignConfig {
            seed: calibration_seed(point_config.seed, point_index, repeat),
            shard: None,
            ..point_config.clone()
        };
        let report = run_baseline(&config);
        for (di, &design) in point_config.designs.iter().enumerate() {
            if let Some(rate) = report.false_positive_rate(design) {
                if rate.is_finite() {
                    samples[di].push(rate);
                }
            }
        }
    }
    point_config
        .designs
        .iter()
        .zip(&samples)
        .map(|(&design, floors)| {
            let margin = if floors.len() >= 2 {
                let n = floors.len() as f64;
                let mean = floors.iter().sum::<f64>() / n;
                let var = floors.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
                // Prediction bound for one future baseline draw, clamped
                // below at the sampling resolution of one shot.
                let bound = z * var.sqrt() * (1.0 + 1.0 / n).sqrt();
                bound.max(1.0 / point_config.shots.max(1) as f64)
            } else {
                AUTO_MARGIN_FALLBACK
            };
            (design, margin)
        })
        .collect()
}

/// Runs the campaign matrix at every noise point of `config` and derives
/// each point's detection thresholds from its false-positive floor.
pub fn run_sweep(
    program: &Circuit,
    qubits: &[usize],
    spec: &StateSpec,
    mutants: &[Mutant],
    config: &SweepConfig,
) -> SweepReport {
    run_sweep_inner(config, mutants, |point_config, mutant_set| {
        run_campaign(program, qubits, spec, mutant_set, point_config)
    })
}

/// [`run_sweep`] with an injected executor (tests use this to simulate
/// failing backends at chosen noise points).
pub fn run_sweep_with_executor(
    program: &Circuit,
    qubits: &[usize],
    spec: &StateSpec,
    mutants: &[Mutant],
    config: &SweepConfig,
    executor: &Executor<'_>,
) -> SweepReport {
    run_sweep_inner(config, mutants, |point_config, mutant_set| {
        run_campaign_with_executor(program, qubits, spec, mutant_set, point_config, executor)
    })
}

fn run_sweep_inner(
    config: &SweepConfig,
    mutants: &[Mutant],
    mut run: impl FnMut(&CampaignConfig, &[Mutant]) -> CampaignReport,
) -> SweepReport {
    // One compiled-program cache spans the whole sweep: points share the
    // same circuits (only the noise differs), so the ideal-path programs
    // and the calibration repeats' lowering are reused across points.
    // Cached execution is bit-identical to fresh compilation, so this
    // never changes the report.
    let shared_cache = config
        .base
        .cache
        .clone()
        .unwrap_or_else(|| std::sync::Arc::new(qra_sim::ProgramCache::new()));
    let parts = config
        .points
        .iter()
        .enumerate()
        .map(|(point_index, point)| {
            let point_config = CampaignConfig {
                noise: point.noise.clone(),
                cache: Some(std::sync::Arc::clone(&shared_cache)),
                ..config.base.clone()
            };
            // Auto margins calibrate on no-mutant campaigns with derived
            // seeds before the point's real matrix runs.
            let margins = match config.margin {
                MarginMode::Fixed(_) => None,
                MarginMode::Auto { repeats, z } => Some(auto_margins(
                    &point_config,
                    point_index,
                    repeats,
                    z,
                    |calibration_config| run(calibration_config, &[]),
                )),
            };
            let report = run(&point_config, mutants);
            SweepPointParts {
                label: point.label.clone(),
                report,
                margins,
            }
        })
        .collect();
    assemble_sweep_report(config.margin, parts)
}

impl SweepReport {
    /// Renders the sweep as human-readable text: per-point floors, derived
    /// thresholds and detection matrices, then a degradation table showing
    /// detection per fault class × design across the noise points.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let margin_label = match self.margin {
            MarginMode::Fixed(m) => format!("threshold margin {m:.4}"),
            MarginMode::Auto { repeats, z } => {
                format!("threshold margin auto (repeats {repeats}, z {z})")
            }
        };
        let _ = writeln!(
            out,
            "=== Noise sweep: {} point(s), {margin_label} ===",
            self.points.len(),
        );
        for point in &self.points {
            let _ = writeln!(out);
            let _ = writeln!(out, "--- noise point: {} ---", point.label);
            match point.fp_floor {
                Some(floor) => {
                    let _ = writeln!(out, "false-positive floor: {floor:.4}");
                }
                None => {
                    let _ = writeln!(out, "false-positive floor: unmeasured (no baseline)");
                }
            }
            for t in &point.thresholds {
                match (t.floor, self.margin) {
                    (Some(floor), MarginMode::Fixed(_)) => {
                        let _ = writeln!(
                            out,
                            "  {:<12} floor {:.4} -> threshold {:.4}",
                            t.design.name(),
                            floor,
                            t.threshold
                        );
                    }
                    (Some(floor), MarginMode::Auto { .. }) => {
                        let _ = writeln!(
                            out,
                            "  {:<12} floor {:.4} + margin {:.4} -> threshold {:.4}",
                            t.design.name(),
                            floor,
                            t.margin,
                            t.threshold
                        );
                    }
                    (None, _) => {
                        let _ = writeln!(
                            out,
                            "  {:<12} floor unmeasured -> threshold {:.4} (configured fallback)",
                            t.design.name(),
                            t.threshold
                        );
                    }
                }
            }
            for (kind, row) in point.matrix() {
                let _ = write!(out, "  {kind:<16}");
                for (design, stat) in row {
                    let _ = write!(
                        out,
                        "  {}: {}/{}",
                        design.name(),
                        stat.detected,
                        stat.completed
                    );
                }
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "=== Detection degradation (detected/completed per noise point) ==="
        );
        // Rows: fault class × design; columns: noise points in sweep order.
        let mut header = format!("{:<16} {:<12}", "fault class", "design");
        for point in &self.points {
            let _ = write!(header, "  {:>14}", point.label);
        }
        let _ = writeln!(out, "{header}");
        let mut rows: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
        for point in &self.points {
            for (kind, row) in point.matrix() {
                for (design, stat) in row {
                    rows.entry((kind.clone(), design.name().to_string()))
                        .or_insert_with(|| vec!["-".to_string(); self.points.len()])
                        [self.point_index(&point.label)] =
                        format!("{}/{}", stat.detected, stat.completed);
                }
            }
        }
        for ((kind, design), cells) in rows {
            let _ = write!(out, "{kind:<16} {design:<12}");
            for cell in cells {
                let _ = write!(out, "  {cell:>14}");
            }
            let _ = writeln!(out);
        }
        // The quarantine section appears only when a unit was quarantined,
        // so fault-free runs render byte-identically to sequential sweeps.
        if !self.quarantined.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "=== Quarantined units ({}) ===",
                self.quarantined.len()
            );
            for q in &self.quarantined {
                let what = if q.cell
                    == self
                        .points
                        .first()
                        .map_or(usize::MAX, |p| p.report.total_cells())
                {
                    "calibration unit".to_string()
                } else {
                    format!("cell {}", q.cell)
                };
                let _ = writeln!(
                    out,
                    "{} {what}: quarantined after {} failed attempt(s)",
                    q.label,
                    q.attempts.len()
                );
                for (i, reason) in q.attempts.iter().enumerate() {
                    let _ = writeln!(out, "  attempt {}: {reason}", i + 1);
                }
            }
        }
        out
    }

    fn point_index(&self, label: &str) -> usize {
        self.points
            .iter()
            .position(|p| p.label == label)
            .unwrap_or(0)
    }

    /// Renders the sweep as JSON: sweep metadata, each point's floor and
    /// derived thresholds, and the point's full campaign report (embedded
    /// verbatim as produced by [`CampaignReport::to_json`]). Fixed margins
    /// serialize as a number, auto mode as its `auto:REPEATS:Z` spelling.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let margin_json = match self.margin {
            MarginMode::Fixed(m) => json_f64(m),
            auto => json_str(&auto.to_string()),
        };
        let _ = write!(out, "\"threshold_margin\":{margin_json},\"points\":[");
        for (i, point) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"fp_floor\":{},\"thresholds\":[",
                json_str(&point.label),
                point.fp_floor.map_or("null".to_string(), json_f64)
            );
            for (j, t) in point.thresholds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"design\":{},\"floor\":{},\"threshold\":{}}}",
                    json_str(t.design.name()),
                    t.floor.map_or("null".to_string(), json_f64),
                    json_f64(t.threshold)
                );
            }
            let _ = write!(out, "],\"campaign\":{}}}", point.report.to_json());
        }
        out.push(']');
        // As in the text rendering: emitted only when non-empty, keeping
        // fault-free distributed output byte-identical to sequential.
        if !self.quarantined.is_empty() {
            out.push_str(",\"quarantined\":[");
            for (i, q) in self.quarantined.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"label\":{},\"point\":{},\"cell\":{},\"attempts\":[",
                    json_str(&q.label),
                    q.point,
                    q.cell
                );
                for (j, reason) in q.attempts.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_str(reason));
                }
                out.push_str("]}");
            }
            out.push(']');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inject::FaultInjector;
    use qra_algorithms::states;

    fn tiny_sweep_config(points: Vec<SweepPoint>, margin: MarginMode) -> SweepConfig {
        SweepConfig {
            points,
            base: CampaignConfig {
                shots: 128,
                seed: 5,
                designs: vec![CampaignDesign::Ndd, CampaignDesign::Stat],
                jobs: 1,
                ..CampaignConfig::default()
            },
            margin,
        }
    }

    fn tiny_sweep(points: Vec<SweepPoint>) -> SweepReport {
        let program = states::ghz(2);
        let spec = StateSpec::pure(states::ghz_vector(2)).unwrap();
        let mutants = FaultInjector::new(9)
            .enumerate_single(&program)
            .into_iter()
            .take(2)
            .collect::<Vec<_>>();
        let config = tiny_sweep_config(points, MarginMode::Fixed(0.02));
        run_sweep(&program, &[0, 1], &spec, &mutants, &config)
    }

    #[test]
    fn sweep_runs_every_point_and_derives_thresholds() {
        let sweep = tiny_sweep(vec![
            SweepPoint::preset(DevicePreset::Ideal),
            SweepPoint::preset(DevicePreset::LowNoise),
            SweepPoint::scaled(DevicePreset::LowNoise, 2.0),
        ]);
        assert_eq!(sweep.points.len(), 3);
        assert_eq!(sweep.points[0].label, "ideal");
        assert_eq!(sweep.points[2].label, "low x2");
        for point in &sweep.points {
            assert_eq!(point.report.cells.len(), 4);
            // Every completed baseline yields floor + margin.
            for t in &point.thresholds {
                match t.floor {
                    Some(floor) => assert!((t.threshold - (floor + 0.02)).abs() < 1e-12),
                    None => assert_eq!(t.threshold, point.report.detection_threshold),
                }
            }
        }
        // The ideal point's floor is small but not necessarily zero: the
        // statistical baseline's total-variation distance carries
        // finite-shot sampling noise even without device noise.
        let ideal = &sweep.points[0];
        let floor = ideal.fp_floor.expect("ideal baselines completed");
        assert!(floor < 0.05, "ideal floor {floor}");
        for t in &ideal.thresholds {
            let f = t.floor.expect("baseline completed");
            assert!((t.threshold - (f + 0.02)).abs() < 1e-12);
        }
    }

    #[test]
    fn sweep_renders_text_and_json() {
        let sweep = tiny_sweep(vec![
            SweepPoint::preset(DevicePreset::Ideal),
            SweepPoint::preset(DevicePreset::LowNoise),
        ]);
        let text = sweep.render_text();
        assert!(text.contains("Noise sweep: 2 point(s)"), "{text}");
        assert!(text.contains("threshold margin 0.0200"), "{text}");
        assert!(text.contains("--- noise point: ideal ---"), "{text}");
        assert!(text.contains("Detection degradation"), "{text}");
        let json = sweep.to_json();
        assert!(json.contains("\"threshold_margin\":0.02"), "{json}");
        assert!(json.contains("\"label\":\"low\""), "{json}");
        assert!(json.contains("\"campaign\":{\"num_qubits\":2"), "{json}");
        // No quarantine section on fault-free sweeps — in either format.
        assert!(!text.contains("Quarantined"), "{text}");
        assert!(!json.contains("quarantined"), "{json}");
    }

    #[test]
    fn quarantined_units_render_as_named_skips() {
        let mut sweep = tiny_sweep(vec![SweepPoint::preset(DevicePreset::Ideal)]);
        sweep.quarantined = vec![
            QuarantinedUnit {
                label: "ideal".into(),
                point: 0,
                cell: 1,
                attempts: vec!["worker died before recording the unit".into(); 3],
            },
            QuarantinedUnit {
                label: "ideal".into(),
                point: 0,
                cell: sweep.points[0].report.total_cells(),
                attempts: vec!["unit execution exceeded the 2000ms unit timeout".into()],
            },
        ];
        let text = sweep.render_text();
        assert!(text.contains("=== Quarantined units (2) ==="), "{text}");
        assert!(
            text.contains("ideal cell 1: quarantined after 3 failed attempt(s)"),
            "{text}"
        );
        assert!(
            text.contains("ideal calibration unit: quarantined"),
            "{text}"
        );
        assert!(text.contains("attempt 1: worker died"), "{text}");
        let json = sweep.to_json();
        assert!(
            json.contains("\"quarantined\":[{\"label\":\"ideal\""),
            "{json}"
        );
        assert!(json.contains("\"attempts\":[\"worker died"), "{json}");
    }

    #[test]
    fn custom_points_carry_their_label_and_noise() {
        let point =
            SweepPoint::custom("hot", DevicePreset::MelbourneLike.noise_model().scaled(3.0));
        assert_eq!(point.label, "hot");
        assert!(point.noise.validate().is_ok());
    }

    #[test]
    fn margin_mode_parses_and_round_trips() {
        assert_eq!("0.05".parse::<MarginMode>(), Ok(MarginMode::Fixed(0.05)));
        assert_eq!(
            "auto".parse::<MarginMode>(),
            Ok(MarginMode::Auto { repeats: 5, z: 2.0 })
        );
        assert_eq!(
            "auto:7".parse::<MarginMode>(),
            Ok(MarginMode::Auto { repeats: 7, z: 2.0 })
        );
        assert_eq!(
            "auto:3:1.5".parse::<MarginMode>(),
            Ok(MarginMode::Auto { repeats: 3, z: 1.5 })
        );
        for bad in [
            "-0.1",
            "nan",
            "auto:1",
            "auto:x",
            "auto:3:0",
            "auto:3:1:9",
            "automatic",
        ] {
            assert!(bad.parse::<MarginMode>().is_err(), "{bad} should not parse");
        }
        // Display round-trips through FromStr.
        for mode in [
            MarginMode::Fixed(0.02),
            MarginMode::auto(),
            MarginMode::Auto { repeats: 9, z: 1.5 },
        ] {
            assert_eq!(mode.to_string().parse::<MarginMode>(), Ok(mode));
        }
    }

    #[test]
    fn auto_margins_are_deterministic_and_bounded_below() {
        let program = states::ghz(2);
        let spec = StateSpec::pure(states::ghz_vector(2)).unwrap();
        let config = tiny_sweep_config(vec![SweepPoint::preset(DevicePreset::LowNoise)], {
            MarginMode::Auto { repeats: 3, z: 2.0 }
        });
        let point_config = CampaignConfig {
            noise: DevicePreset::LowNoise.noise_model(),
            ..config.base.clone()
        };
        let run = |cfg: &CampaignConfig| run_campaign(&program, &[0, 1], &spec, &[], cfg);
        let a = auto_margins(&point_config, 0, 3, 2.0, run);
        let b = auto_margins(&point_config, 0, 3, 2.0, run);
        assert_eq!(a.len(), 2);
        for ((da, ma), (db, mb)) in a.iter().zip(&b) {
            assert_eq!(da, db);
            assert_eq!(
                ma.to_bits(),
                mb.to_bits(),
                "calibration must be deterministic"
            );
            // Clamped below at one shot's weight.
            assert!(*ma >= 1.0 / 128.0, "margin {ma}");
        }
        // A different point index draws different calibration seeds.
        assert_ne!(
            calibration_seed(5, 0, 0),
            calibration_seed(5, 1, 0),
            "per-point calibration streams must differ"
        );
    }

    #[test]
    fn auto_margin_sweep_reports_per_design_margins() {
        let program = states::ghz(2);
        let spec = StateSpec::pure(states::ghz_vector(2)).unwrap();
        let mutants = FaultInjector::new(9)
            .enumerate_single(&program)
            .into_iter()
            .take(1)
            .collect::<Vec<_>>();
        let config = tiny_sweep_config(
            vec![SweepPoint::preset(DevicePreset::LowNoise)],
            MarginMode::Auto { repeats: 3, z: 2.0 },
        );
        let sweep = run_sweep(&program, &[0, 1], &spec, &mutants, &config);
        let point = &sweep.points[0];
        for t in &point.thresholds {
            let floor = t.floor.expect("baseline completed");
            assert!((t.threshold - (floor + t.margin)).abs() < 1e-15);
            assert!(t.margin > 0.0);
        }
        let text = sweep.render_text();
        assert!(
            text.contains("threshold margin auto (repeats 3, z 2)"),
            "{text}"
        );
        assert!(text.contains("+ margin"), "{text}");
        let json = sweep.to_json();
        assert!(json.contains("\"threshold_margin\":\"auto:3:2\""), "{json}");
    }
}
