//! Campaign results: the detection matrix, false positives, overhead, and
//! text/JSON rendering.
//!
//! A report is *complete by construction*: every cell the campaign was
//! asked to run appears exactly once, as completed, failed (with the
//! structured error) or skipped (with the reason) — a partial run is
//! visible, never silently truncated.

pub(crate) use crate::json::{json_f64, json_str};
use crate::runner::{BackendKind, CampaignDesign, Shard};
use qra_circuit::GateCounts;
use qra_core::AssertionError;
use qra_sim::SimError;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

/// Why a cell failed: a structured synthesis/simulation error, or a panic
/// that was caught and isolated to the cell.
#[derive(Debug, Clone)]
pub enum CellError {
    /// Synthesis or simulation failed with a structured error.
    Assertion(AssertionError),
    /// The cell's code panicked; the payload message is preserved.
    Panic(String),
    /// A failure reloaded from a serialized shard report
    /// ([`crate::merge::parse_report`]): only the rendered message and the
    /// panic flag survive serialization, so the reloaded value preserves
    /// exactly those — re-serializing it is byte-identical.
    Opaque {
        /// Whether the original failure was an isolated panic.
        panic: bool,
        /// The original failure's rendered message.
        message: String,
    },
}

impl CellError {
    /// `true` when the failure was an isolated panic.
    pub fn is_panic(&self) -> bool {
        match self {
            CellError::Panic(_) => true,
            CellError::Opaque { panic, .. } => *panic,
            CellError::Assertion(_) => false,
        }
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Assertion(e) => write!(f, "{e}"),
            CellError::Panic(msg) => write!(f, "panicked: {msg}"),
            // Opaque messages were rendered by one of the arms above before
            // serialization, so they already carry any "panicked:" prefix.
            CellError::Opaque { message, .. } => write!(f, "{message}"),
        }
    }
}

impl From<AssertionError> for CellError {
    fn from(e: AssertionError) -> Self {
        CellError::Assertion(e)
    }
}

impl From<SimError> for CellError {
    fn from(e: SimError) -> Self {
        CellError::Assertion(e.into())
    }
}

/// Outcome of one matrix cell.
#[derive(Debug, Clone)]
pub enum CellStatus {
    /// The cell ran to completion.
    Completed {
        /// Assertion error rate (total-variation distance for the
        /// statistical baseline).
        error_rate: f64,
        /// Whether the rate exceeded the configured detection threshold.
        detected: bool,
        /// How many seeded retries were needed.
        retries: u32,
        /// Which simulator backend produced the counts.
        backend: BackendKind,
    },
    /// The cell crashed or errored: a structured synthesis/simulation
    /// failure, or an isolated panic.
    Failed {
        /// What went wrong.
        error: CellError,
    },
    /// The cell never ran to completion for a benign reason (the
    /// wall-clock deadline).
    Skipped {
        /// Why it was skipped.
        reason: String,
    },
}

impl CellStatus {
    /// `true` for [`CellStatus::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, CellStatus::Completed { .. })
    }

    /// `true` for [`CellStatus::Skipped`].
    pub fn is_skipped(&self) -> bool {
        matches!(self, CellStatus::Skipped { .. })
    }

    /// `true` for [`CellStatus::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, CellStatus::Failed { .. })
    }
}

/// One mutant × design cell.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// The mutant's id.
    pub mutant_id: String,
    /// The mutant's fault-class label (detection-matrix row key).
    pub kind_label: String,
    /// The checking scheme.
    pub design: CampaignDesign,
    /// What happened.
    pub status: CellStatus,
}

/// One unmutated-program × design cell: false positives and cost overhead.
#[derive(Debug, Clone)]
pub struct BaselineCell {
    /// The checking scheme.
    pub design: CampaignDesign,
    /// What happened (a detection here is a false positive).
    pub status: CellStatus,
    /// Gate cost of the inserted checker, when it was synthesised.
    pub assertion_cost: Option<GateCounts>,
    /// Gate cost of the unmutated program, for overhead ratios.
    pub program_cost: GateCounts,
}

/// Aggregated detection statistics for one fault class under one design.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DetectionStat {
    /// Cells that ran to completion.
    pub completed: usize,
    /// Completed cells whose error rate exceeded the threshold.
    pub detected: usize,
    /// Mean error rate over completed cells.
    pub mean_error_rate: f64,
    /// Maximum error rate over completed cells.
    pub max_error_rate: f64,
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Width of the program under test.
    pub num_qubits: usize,
    /// Shots per cell.
    pub shots: u64,
    /// The base seed the campaign derived every cell seed from.
    pub seed: u64,
    /// Error-rate threshold above which a cell counts as a detection.
    pub detection_threshold: f64,
    /// Number of mutants in the campaign.
    pub mutant_count: usize,
    /// Matrix columns, in order.
    pub designs: Vec<CampaignDesign>,
    /// Unmutated-program row.
    pub baselines: Vec<BaselineCell>,
    /// Mutant × design cells, row-major.
    pub cells: Vec<CampaignCell>,
    /// Wall-clock time spent. Deliberately excluded from [`render_text`]
    /// and [`to_json`] so rendered reports are byte-identical across runs
    /// and worker counts; callers that want timing print this field.
    ///
    /// [`render_text`]: CampaignReport::render_text
    /// [`to_json`]: CampaignReport::to_json
    pub elapsed: Duration,
    /// Whether the deadline cut the campaign short (some cells skipped).
    pub deadline_hit: bool,
    /// When this is a partial (shard) report, the shard coordinates; the
    /// `baselines`/`cells` lists then hold only the shard's contiguous
    /// slice of the flattened cell list. `None` for full reports —
    /// including reports reassembled from shards, which is what makes a
    /// merged report render byte-identically to the unsharded run.
    pub shard: Option<Shard>,
}

impl CampaignReport {
    /// Number of completed cells (mutant matrix only).
    pub fn completed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.status.is_completed())
            .count()
    }

    /// Number of skipped cells (mutant matrix only): cells the deadline
    /// cut off before they could complete.
    pub fn skipped(&self) -> usize {
        self.cells.iter().filter(|c| c.status.is_skipped()).count()
    }

    /// Number of failed cells (mutant matrix only): structured
    /// synthesis/simulation errors and isolated panics.
    pub fn failed(&self) -> usize {
        self.cells.iter().filter(|c| c.status.is_failed()).count()
    }

    /// Number of failed cells whose failure was an isolated panic.
    pub fn panicked(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(&c.status, CellStatus::Failed { error } if error.is_panic()))
            .count()
    }

    /// Number of detections: completed **mutant** cells whose error rate
    /// exceeded the threshold. Baseline (no-fault) cells crossing the
    /// threshold are deliberately excluded — under noise the assertion-error
    /// floor alone can cross a fixed threshold, and counting those as
    /// detections would misreport noise as caught bugs; they are false
    /// positives, counted by [`CampaignReport::false_positives`].
    pub fn detected(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::Completed { detected: true, .. }))
            .count()
    }

    /// Number of false positives: completed **baseline** cells whose error
    /// rate exceeded the threshold even though no fault was injected.
    pub fn false_positives(&self) -> usize {
        self.baselines
            .iter()
            .filter(|b| matches!(b.status, CellStatus::Completed { detected: true, .. }))
            .count()
    }

    /// The false-positive floor: the largest completed baseline error rate
    /// across all designs — the level pure noise drives the assertion error
    /// to on the unmutated program. A detection threshold below this floor
    /// misclassifies noise as bugs (§IX); sweeps derive their thresholds
    /// from it. `None` until at least one baseline cell completed.
    pub fn false_positive_floor(&self) -> Option<f64> {
        self.baselines
            .iter()
            .filter_map(|b| match b.status {
                CellStatus::Completed { error_rate, .. } => Some(error_rate),
                _ => None,
            })
            .reduce(f64::max)
    }

    /// Total number of cells of the full campaign matrix (baseline row plus
    /// mutant × design grid) — for a shard report this counts the whole
    /// campaign, not just the slice present in this report.
    pub fn total_cells(&self) -> usize {
        self.designs.len() * (1 + self.mutant_count)
    }

    /// The detection matrix: fault-class label → per-design statistics,
    /// with rows and columns in stable order, at the thresholds the
    /// campaign ran with (each cell's stored `detected` flag).
    pub fn detection_matrix(&self) -> BTreeMap<String, Vec<(CampaignDesign, DetectionStat)>> {
        self.matrix_with(|_, detected, _| detected)
    }

    /// The detection matrix re-evaluated at per-design thresholds chosen
    /// after the fact (completed cells keep their error rates, so detection
    /// at any threshold is recomputable). Sweeps use this to apply
    /// thresholds derived from each noise point's false-positive floor
    /// instead of the fixed configured one.
    pub fn detection_matrix_at(
        &self,
        threshold: impl Fn(CampaignDesign) -> f64,
    ) -> BTreeMap<String, Vec<(CampaignDesign, DetectionStat)>> {
        self.matrix_with(|design, _, error_rate| error_rate > threshold(design))
    }

    fn matrix_with(
        &self,
        is_detected: impl Fn(CampaignDesign, bool, f64) -> bool,
    ) -> BTreeMap<String, Vec<(CampaignDesign, DetectionStat)>> {
        let mut rows: BTreeMap<String, Vec<(CampaignDesign, DetectionStat)>> = BTreeMap::new();
        for cell in &self.cells {
            let row = rows.entry(cell.kind_label.clone()).or_insert_with(|| {
                self.designs
                    .iter()
                    .map(|&d| (d, DetectionStat::default()))
                    .collect()
            });
            let Some((_, stat)) = row.iter_mut().find(|(d, _)| *d == cell.design) else {
                continue;
            };
            if let CellStatus::Completed {
                error_rate,
                detected,
                ..
            } = cell.status
            {
                stat.mean_error_rate = (stat.mean_error_rate * stat.completed as f64 + error_rate)
                    / (stat.completed + 1) as f64;
                stat.max_error_rate = stat.max_error_rate.max(error_rate);
                stat.completed += 1;
                if is_detected(cell.design, detected, error_rate) {
                    stat.detected += 1;
                }
            }
        }
        rows
    }

    /// False-positive rate of a design on the unmutated program, when that
    /// baseline cell completed.
    pub fn false_positive_rate(&self, design: CampaignDesign) -> Option<f64> {
        self.baselines
            .iter()
            .find(|b| b.design == design)
            .and_then(|b| match b.status {
                CellStatus::Completed { error_rate, .. } => Some(error_rate),
                _ => None,
            })
    }

    /// Gate-cost overhead of a design: checker CX-equivalents relative to
    /// the program's (`None` until the baseline cell completed).
    pub fn overhead(&self, design: CampaignDesign) -> Option<f64> {
        self.baselines
            .iter()
            .find(|b| b.design == design)
            .and_then(|b| {
                // The matched cell's own program cost, not the first
                // baseline's: the ratio stays correct if per-design
                // baselines ever diverge.
                let cost = b.assertion_cost?;
                let program_cx = b.program_cost.cx.max(1);
                Some(cost.cx as f64 / program_cx as f64)
            })
    }

    /// Renders the report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fault-injection campaign: {} mutants × {} designs, {} shots, seed {}",
            self.mutant_count,
            self.designs.len(),
            self.shots,
            self.seed
        );
        if let Some(shard) = self.shard {
            let (lo, hi) = shard.bounds(self.total_cells());
            let _ = writeln!(
                out,
                "shard {shard}: cells {lo}..{hi} of {} (partial report)",
                self.total_cells()
            );
        }
        let panicked = self.panicked();
        let _ = writeln!(
            out,
            "cells: {} completed ({} detected), {} failed{}, {} skipped{}",
            self.completed(),
            self.detected(),
            self.failed(),
            if panicked > 0 {
                format!(" ({panicked} panicked)")
            } else {
                String::new()
            },
            self.skipped(),
            if self.deadline_hit {
                " (deadline hit — partial results)"
            } else {
                ""
            }
        );
        let false_positives = self.false_positives();
        if false_positives > 0 {
            let _ = writeln!(
                out,
                "baseline false positives: {false_positives} no-fault cell(s) above threshold \
                 {:.4} — noise floor crosses the threshold; excluded from detection totals",
                self.detection_threshold
            );
        }

        if !self.baselines.is_empty() {
            let _ = writeln!(out, "\nbaseline (unmutated program):");
        }
        for b in &self.baselines {
            match &b.status {
                CellStatus::Completed {
                    error_rate,
                    detected,
                    ..
                } => {
                    let cost = b
                        .assertion_cost
                        .map(|c| format!("{c}"))
                        .unwrap_or_else(|| "-".into());
                    let overhead = self
                        .overhead(b.design)
                        .map(|r| format!("{r:.2}× program CX"))
                        .unwrap_or_else(|| "-".into());
                    let _ = writeln!(
                        out,
                        "  {:<12} false-positive rate {error_rate:.4}  cost {cost} ({overhead}){}",
                        b.design.name(),
                        if *detected { "  [FALSE POSITIVE]" } else { "" }
                    );
                }
                CellStatus::Failed { error } => {
                    let _ = writeln!(out, "  {:<12} failed: {error}", b.design.name());
                }
                CellStatus::Skipped { reason } => {
                    let _ = writeln!(out, "  {:<12} skipped: {reason}", b.design.name());
                }
            }
        }

        let matrix = self.detection_matrix();
        if !matrix.is_empty() {
            let _ = writeln!(
                out,
                "\ndetection matrix (detected/completed, mean error rate; threshold {:.2}):",
                self.detection_threshold
            );
            let _ = write!(out, "  {:<28}", "fault class");
            for d in &self.designs {
                let _ = write!(out, " {:>18}", d.name());
            }
            let _ = writeln!(out);
            for (label, row) in &matrix {
                let _ = write!(out, "  {label:<28}");
                for (_, stat) in row {
                    if stat.completed == 0 {
                        let _ = write!(out, " {:>18}", "-");
                    } else {
                        let _ = write!(
                            out,
                            " {:>18}",
                            format!(
                                "{}/{} ({:.3})",
                                stat.detected, stat.completed, stat.mean_error_rate
                            )
                        );
                    }
                }
                let _ = writeln!(out);
            }
        }

        let issues: Vec<&CampaignCell> = self
            .cells
            .iter()
            .filter(|c| !c.status.is_completed())
            .collect();
        if !issues.is_empty() {
            let _ = writeln!(out, "\nnon-completed cells:");
            for c in issues {
                match &c.status {
                    CellStatus::Failed { error } => {
                        let _ = writeln!(
                            out,
                            "  {} × {}: failed: {error}",
                            c.mutant_id,
                            c.design.name()
                        );
                    }
                    CellStatus::Skipped { reason } => {
                        let _ = writeln!(
                            out,
                            "  {} × {}: skipped: {reason}",
                            c.mutant_id,
                            c.design.name()
                        );
                    }
                    CellStatus::Completed { .. } => unreachable!("filtered"),
                }
            }
        }
        out
    }

    /// Renders the report as a JSON object (hand-rolled; the build has no
    /// serialisation dependency).
    ///
    /// The output is complete enough to reload with
    /// [`crate::merge::parse_report`]: it carries the design list, each
    /// entry's global index in the flattened cell list, per-baseline
    /// program costs, and (for partial reports) the shard coordinates —
    /// which is what lets `merge` reassemble shard files into output
    /// byte-identical to the unsharded run.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"num_qubits\":{},\"shots\":{},\"seed\":{},\"detection_threshold\":{},\
             \"mutant_count\":{}",
            self.num_qubits,
            self.shots,
            self.seed,
            json_f64(self.detection_threshold),
            self.mutant_count,
        );
        out.push_str(",\"designs\":[");
        for (i, d) in self.designs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(d.name()));
        }
        let _ = write!(
            out,
            "],\"completed\":{},\"detected\":{},\"failed\":{},\"panicked\":{},\
             \"skipped\":{},\"false_positives\":{},\"deadline_hit\":{}",
            self.completed(),
            self.detected(),
            self.failed(),
            self.panicked(),
            self.skipped(),
            self.false_positives(),
            self.deadline_hit
        );
        if let Some(shard) = self.shard {
            let _ = write!(
                out,
                ",\"shard\":{{\"index\":{},\"count\":{}}}",
                shard.index, shard.count
            );
        }
        // Global flattened indices: the baseline row occupies [0, D), the
        // mutant grid [D, D·(1+M)). A shard's slice is contiguous, so its
        // first entry sits at the slice start and the rest follow in order.
        let num_designs = self.designs.len();
        let start = self.shard.map_or(0, |s| s.bounds(self.total_cells()).0);
        out.push_str(",\"baselines\":[");
        for (i, b) in self.baselines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"index\":{},\"design\":{}",
                start + i,
                json_str(b.design.name())
            );
            if let Some(c) = b.assertion_cost {
                let _ = write!(out, ",\"cost\":{}", json_cost(&c));
            }
            let _ = write!(out, ",\"program_cost\":{}", json_cost(&b.program_cost));
            out.push_str(",\"status\":");
            push_status_json(&mut out, &b.status);
            out.push('}');
        }
        let first_cell = start.max(num_designs);
        out.push_str("],\"cells\":[");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"index\":{},\"mutant\":{},\"kind\":{},\"design\":{},\"status\":",
                first_cell + i,
                json_str(&c.mutant_id),
                json_str(&c.kind_label),
                json_str(c.design.name())
            );
            push_status_json(&mut out, &c.status);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Renders a [`GateCounts`] as a JSON object.
fn json_cost(c: &GateCounts) -> String {
    format!(
        "{{\"cx\":{},\"sg\":{},\"ancilla\":{},\"measure\":{}}}",
        c.cx, c.sg, c.ancilla, c.measure
    )
}

fn push_status_json(out: &mut String, status: &CellStatus) {
    match status {
        CellStatus::Completed {
            error_rate,
            detected,
            retries,
            backend,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"completed\",\"error_rate\":{},\"detected\":{detected},\
                 \"retries\":{retries},\"backend\":{}}}",
                json_f64(*error_rate),
                json_str(backend.name())
            );
        }
        CellStatus::Failed { error } => {
            let _ = write!(
                out,
                "{{\"kind\":\"failed\",\"panic\":{},\"error\":{}}}",
                error.is_panic(),
                json_str(&error.to_string())
            );
        }
        CellStatus::Skipped { reason } => {
            let _ = write!(
                out,
                "{{\"kind\":\"skipped\",\"reason\":{}}}",
                json_str(reason)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CampaignReport {
        CampaignReport {
            num_qubits: 3,
            shots: 100,
            seed: 1,
            detection_threshold: 0.05,
            mutant_count: 2,
            designs: vec![CampaignDesign::Ndd, CampaignDesign::Stat],
            baselines: vec![BaselineCell {
                design: CampaignDesign::Ndd,
                status: CellStatus::Completed {
                    error_rate: 0.0,
                    detected: false,
                    retries: 0,
                    backend: BackendKind::Statevector,
                },
                assertion_cost: Some(GateCounts {
                    cx: 4,
                    sg: 6,
                    ancilla: 1,
                    measure: 1,
                }),
                program_cost: GateCounts {
                    cx: 2,
                    sg: 1,
                    ancilla: 0,
                    measure: 0,
                },
            }],
            cells: vec![
                CampaignCell {
                    mutant_id: "s0-stray-z".into(),
                    kind_label: "stray-z".into(),
                    design: CampaignDesign::Ndd,
                    status: CellStatus::Completed {
                        error_rate: 0.5,
                        detected: true,
                        retries: 1,
                        backend: BackendKind::Statevector,
                    },
                },
                CampaignCell {
                    mutant_id: "s1-drop-gate".into(),
                    kind_label: "drop-gate".into(),
                    design: CampaignDesign::Ndd,
                    status: CellStatus::Skipped {
                        reason: "deadline exceeded".into(),
                    },
                },
                CampaignCell {
                    mutant_id: "s2-stray-x".into(),
                    kind_label: "stray-x".into(),
                    design: CampaignDesign::Ndd,
                    status: CellStatus::Failed {
                        error: CellError::Panic("index out of bounds".into()),
                    },
                },
            ],
            elapsed: Duration::from_millis(12),
            deadline_hit: true,
            shard: None,
        }
    }

    #[test]
    fn counters_and_matrix() {
        let r = sample_report();
        assert_eq!(r.completed(), 1);
        assert_eq!(r.skipped(), 1);
        assert_eq!(r.failed(), 1);
        assert_eq!(r.panicked(), 1);
        assert_eq!(r.detected(), 1);
        assert_eq!(r.false_positives(), 0);
        assert_eq!(r.total_cells(), 2 * (1 + 2));
        let matrix = r.detection_matrix();
        let row = &matrix["stray-z"];
        let (design, stat) = row[0];
        assert_eq!(design, CampaignDesign::Ndd);
        assert_eq!(stat.completed, 1);
        assert_eq!(stat.detected, 1);
        assert!((stat.mean_error_rate - 0.5).abs() < 1e-12);
        // The skipped drop-gate row exists but has no completed cells.
        assert_eq!(matrix["drop-gate"][0].1.completed, 0);
    }

    #[test]
    fn false_positive_and_overhead() {
        let r = sample_report();
        assert_eq!(r.false_positive_rate(CampaignDesign::Ndd), Some(0.0));
        assert_eq!(r.false_positive_rate(CampaignDesign::Stat), None);
        assert!((r.overhead(CampaignDesign::Ndd).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(r.overhead(CampaignDesign::Stat), None);
    }

    #[test]
    fn overhead_uses_each_designs_own_baseline_cost() {
        // Two baselines with diverging program costs: each design's ratio
        // must come from its own cell, not the first one's.
        let mut r = sample_report();
        r.designs = vec![CampaignDesign::Ndd, CampaignDesign::Swap];
        r.baselines.push(BaselineCell {
            design: CampaignDesign::Swap,
            status: CellStatus::Completed {
                error_rate: 0.0,
                detected: false,
                retries: 0,
                backend: BackendKind::Statevector,
            },
            assertion_cost: Some(GateCounts {
                cx: 10,
                sg: 2,
                ancilla: 3,
                measure: 3,
            }),
            program_cost: GateCounts {
                cx: 5,
                sg: 1,
                ancilla: 0,
                measure: 0,
            },
        });
        // Ndd: 4 / 2 from its own row; Swap: 10 / 5 from *its* row (the
        // old first()-based accounting would have divided by 2).
        assert!((r.overhead(CampaignDesign::Ndd).unwrap() - 2.0).abs() < 1e-12);
        assert!((r.overhead(CampaignDesign::Swap).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn text_rendering_mentions_everything() {
        let text = sample_report().render_text();
        assert!(text.contains("2 mutants"));
        assert!(text.contains("deadline hit"));
        assert!(text.contains("stray-z"));
        assert!(text.contains("skipped: deadline exceeded"));
        assert!(text.contains("failed: panicked: index out of bounds"));
        assert!(text.contains("(1 panicked)"));
        assert!(text.contains("false-positive rate 0.0000"));
        // Timing is deliberately absent: rendered reports are
        // byte-identical run-to-run.
        assert!(!text.contains("elapsed"));
    }

    #[test]
    fn json_is_wellformed_and_complete() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"deadline_hit\":true"));
        assert!(json.contains("\"kind\":\"skipped\""));
        assert!(json.contains("\"kind\":\"failed\",\"panic\":true"));
        assert!(json.contains("\"panicked\":1"));
        assert!(json.contains("\"error_rate\":0.5"));
        assert!(json.contains("\"cost\":{\"cx\":4"));
        assert!(!json.contains("elapsed"));
        // Balanced braces/brackets (cheap well-formedness check; no string
        // in the sample contains structural characters).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.25), "0.25");
    }

    #[test]
    fn baseline_detections_are_false_positives_not_detections() {
        // A noisy baseline crossing the threshold must be reported as a
        // false positive and excluded from the detection totals.
        let mut r = sample_report();
        r.baselines[0].status = CellStatus::Completed {
            error_rate: 0.31,
            detected: true,
            retries: 0,
            backend: BackendKind::DensityMatrix,
        };
        assert_eq!(r.detected(), 1, "mutant detections only");
        assert_eq!(r.false_positives(), 1);
        assert_eq!(r.false_positive_floor(), Some(0.31));
        let text = r.render_text();
        assert!(text.contains("[FALSE POSITIVE]"), "{text}");
        assert!(text.contains("baseline false positives: 1"), "{text}");
        assert!(text.contains("excluded from detection totals"), "{text}");
        let json = r.to_json();
        assert!(json.contains("\"false_positives\":1"), "{json}");
        assert!(json.contains("\"detected\":1,"), "{json}");
    }

    #[test]
    fn detection_matrix_reevaluates_at_other_thresholds() {
        let r = sample_report();
        // Stored flags say the 0.5-rate stray-z cell is detected.
        assert_eq!(r.detection_matrix()["stray-z"][0].1.detected, 1);
        // A post-hoc threshold above the rate undoes that detection…
        let strict = r.detection_matrix_at(|_| 0.9);
        assert_eq!(strict["stray-z"][0].1.detected, 0);
        assert_eq!(strict["stray-z"][0].1.completed, 1);
        // …and one below keeps it.
        let lax = r.detection_matrix_at(|_| 0.1);
        assert_eq!(lax["stray-z"][0].1.detected, 1);
    }

    #[test]
    fn shard_reports_carry_indices_and_coordinates() {
        let mut r = sample_report();
        r.shard = Some(Shard { index: 1, count: 3 });
        // total = 6; shard 1/3 covers [2, 4): no baselines, cells 2 and 3.
        r.baselines.clear();
        r.cells.truncate(2);
        let json = r.to_json();
        assert!(
            json.contains("\"shard\":{\"index\":1,\"count\":3}"),
            "{json}"
        );
        assert!(json.contains("\"index\":2,\"mutant\""), "{json}");
        assert!(json.contains("\"index\":3,\"mutant\""), "{json}");
        let text = r.render_text();
        assert!(text.contains("shard 1/3: cells 2..4 of 6"), "{text}");
        // Full reports carry 0-based indices and no shard object; cells
        // start after the baseline row (two designs here).
        let full = sample_report().to_json();
        assert!(!full.contains("\"shard\""), "{full}");
        assert!(full.contains("\"index\":0,\"design\""), "{full}");
        assert!(full.contains("\"index\":2,\"mutant\""), "{full}");
    }

    #[test]
    fn opaque_cell_errors_round_trip_rendering() {
        let from_panic = CellError::Opaque {
            panic: true,
            message: "panicked: boom".into(),
        };
        assert!(from_panic.is_panic());
        assert_eq!(from_panic.to_string(), "panicked: boom");
        let from_sim = CellError::Opaque {
            panic: false,
            message: "probability 2 outside [0, 1]".into(),
        };
        assert!(!from_sim.is_panic());
        assert_eq!(from_sim.to_string(), "probability 2 outside [0, 1]");
    }
}
