//! Campaign results: the detection matrix, false positives, overhead, and
//! text/JSON rendering.
//!
//! A report is *complete by construction*: every cell the campaign was
//! asked to run appears exactly once, as completed, failed (with the
//! structured error) or skipped (with the reason) — a partial run is
//! visible, never silently truncated.

use crate::runner::{BackendKind, CampaignDesign};
use qra_circuit::GateCounts;
use qra_core::AssertionError;
use qra_sim::SimError;
use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

/// Why a cell failed: a structured synthesis/simulation error, or a panic
/// that was caught and isolated to the cell.
#[derive(Debug, Clone)]
pub enum CellError {
    /// Synthesis or simulation failed with a structured error.
    Assertion(AssertionError),
    /// The cell's code panicked; the payload message is preserved.
    Panic(String),
}

impl CellError {
    /// `true` when the failure was an isolated panic.
    pub fn is_panic(&self) -> bool {
        matches!(self, CellError::Panic(_))
    }
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::Assertion(e) => write!(f, "{e}"),
            CellError::Panic(msg) => write!(f, "panicked: {msg}"),
        }
    }
}

impl From<AssertionError> for CellError {
    fn from(e: AssertionError) -> Self {
        CellError::Assertion(e)
    }
}

impl From<SimError> for CellError {
    fn from(e: SimError) -> Self {
        CellError::Assertion(e.into())
    }
}

/// Outcome of one matrix cell.
#[derive(Debug, Clone)]
pub enum CellStatus {
    /// The cell ran to completion.
    Completed {
        /// Assertion error rate (total-variation distance for the
        /// statistical baseline).
        error_rate: f64,
        /// Whether the rate exceeded the configured detection threshold.
        detected: bool,
        /// How many seeded retries were needed.
        retries: u32,
        /// Which simulator backend produced the counts.
        backend: BackendKind,
    },
    /// The cell crashed or errored: a structured synthesis/simulation
    /// failure, or an isolated panic.
    Failed {
        /// What went wrong.
        error: CellError,
    },
    /// The cell never ran to completion for a benign reason (the
    /// wall-clock deadline).
    Skipped {
        /// Why it was skipped.
        reason: String,
    },
}

impl CellStatus {
    /// `true` for [`CellStatus::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, CellStatus::Completed { .. })
    }

    /// `true` for [`CellStatus::Skipped`].
    pub fn is_skipped(&self) -> bool {
        matches!(self, CellStatus::Skipped { .. })
    }

    /// `true` for [`CellStatus::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, CellStatus::Failed { .. })
    }
}

/// One mutant × design cell.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// The mutant's id.
    pub mutant_id: String,
    /// The mutant's fault-class label (detection-matrix row key).
    pub kind_label: String,
    /// The checking scheme.
    pub design: CampaignDesign,
    /// What happened.
    pub status: CellStatus,
}

/// One unmutated-program × design cell: false positives and cost overhead.
#[derive(Debug, Clone)]
pub struct BaselineCell {
    /// The checking scheme.
    pub design: CampaignDesign,
    /// What happened (a detection here is a false positive).
    pub status: CellStatus,
    /// Gate cost of the inserted checker, when it was synthesised.
    pub assertion_cost: Option<GateCounts>,
    /// Gate cost of the unmutated program, for overhead ratios.
    pub program_cost: GateCounts,
}

/// Aggregated detection statistics for one fault class under one design.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DetectionStat {
    /// Cells that ran to completion.
    pub completed: usize,
    /// Completed cells whose error rate exceeded the threshold.
    pub detected: usize,
    /// Mean error rate over completed cells.
    pub mean_error_rate: f64,
    /// Maximum error rate over completed cells.
    pub max_error_rate: f64,
}

/// The full campaign result.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Width of the program under test.
    pub num_qubits: usize,
    /// Shots per cell.
    pub shots: u64,
    /// The base seed the campaign derived every cell seed from.
    pub seed: u64,
    /// Error-rate threshold above which a cell counts as a detection.
    pub detection_threshold: f64,
    /// Number of mutants in the campaign.
    pub mutant_count: usize,
    /// Matrix columns, in order.
    pub designs: Vec<CampaignDesign>,
    /// Unmutated-program row.
    pub baselines: Vec<BaselineCell>,
    /// Mutant × design cells, row-major.
    pub cells: Vec<CampaignCell>,
    /// Wall-clock time spent. Deliberately excluded from [`render_text`]
    /// and [`to_json`] so rendered reports are byte-identical across runs
    /// and worker counts; callers that want timing print this field.
    ///
    /// [`render_text`]: CampaignReport::render_text
    /// [`to_json`]: CampaignReport::to_json
    pub elapsed: Duration,
    /// Whether the deadline cut the campaign short (some cells skipped).
    pub deadline_hit: bool,
}

impl CampaignReport {
    /// Number of completed cells (mutant matrix only).
    pub fn completed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.status.is_completed())
            .count()
    }

    /// Number of skipped cells (mutant matrix only): cells the deadline
    /// cut off before they could complete.
    pub fn skipped(&self) -> usize {
        self.cells.iter().filter(|c| c.status.is_skipped()).count()
    }

    /// Number of failed cells (mutant matrix only): structured
    /// synthesis/simulation errors and isolated panics.
    pub fn failed(&self) -> usize {
        self.cells.iter().filter(|c| c.status.is_failed()).count()
    }

    /// Number of failed cells whose failure was an isolated panic.
    pub fn panicked(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(&c.status, CellStatus::Failed { error } if error.is_panic()))
            .count()
    }

    /// The detection matrix: fault-class label → per-design statistics,
    /// with rows and columns in stable order.
    pub fn detection_matrix(&self) -> BTreeMap<String, Vec<(CampaignDesign, DetectionStat)>> {
        let mut rows: BTreeMap<String, Vec<(CampaignDesign, DetectionStat)>> = BTreeMap::new();
        for cell in &self.cells {
            let row = rows.entry(cell.kind_label.clone()).or_insert_with(|| {
                self.designs
                    .iter()
                    .map(|&d| (d, DetectionStat::default()))
                    .collect()
            });
            let Some((_, stat)) = row.iter_mut().find(|(d, _)| *d == cell.design) else {
                continue;
            };
            if let CellStatus::Completed {
                error_rate,
                detected,
                ..
            } = cell.status
            {
                stat.mean_error_rate = (stat.mean_error_rate * stat.completed as f64 + error_rate)
                    / (stat.completed + 1) as f64;
                stat.max_error_rate = stat.max_error_rate.max(error_rate);
                stat.completed += 1;
                if detected {
                    stat.detected += 1;
                }
            }
        }
        rows
    }

    /// False-positive rate of a design on the unmutated program, when that
    /// baseline cell completed.
    pub fn false_positive_rate(&self, design: CampaignDesign) -> Option<f64> {
        self.baselines
            .iter()
            .find(|b| b.design == design)
            .and_then(|b| match b.status {
                CellStatus::Completed { error_rate, .. } => Some(error_rate),
                _ => None,
            })
    }

    /// Gate-cost overhead of a design: checker CX-equivalents relative to
    /// the program's (`None` until the baseline cell completed).
    pub fn overhead(&self, design: CampaignDesign) -> Option<f64> {
        self.baselines
            .iter()
            .find(|b| b.design == design)
            .and_then(|b| {
                // The matched cell's own program cost, not the first
                // baseline's: the ratio stays correct if per-design
                // baselines ever diverge.
                let cost = b.assertion_cost?;
                let program_cx = b.program_cost.cx.max(1);
                Some(cost.cx as f64 / program_cx as f64)
            })
    }

    /// Renders the report as human-readable text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fault-injection campaign: {} mutants × {} designs, {} shots, seed {}",
            self.mutant_count,
            self.designs.len(),
            self.shots,
            self.seed
        );
        let panicked = self.panicked();
        let _ = writeln!(
            out,
            "cells: {} completed, {} failed{}, {} skipped{}",
            self.completed(),
            self.failed(),
            if panicked > 0 {
                format!(" ({panicked} panicked)")
            } else {
                String::new()
            },
            self.skipped(),
            if self.deadline_hit {
                " (deadline hit — partial results)"
            } else {
                ""
            }
        );

        let _ = writeln!(out, "\nbaseline (unmutated program):");
        for b in &self.baselines {
            match &b.status {
                CellStatus::Completed { error_rate, .. } => {
                    let cost = b
                        .assertion_cost
                        .map(|c| format!("{c}"))
                        .unwrap_or_else(|| "-".into());
                    let overhead = self
                        .overhead(b.design)
                        .map(|r| format!("{r:.2}× program CX"))
                        .unwrap_or_else(|| "-".into());
                    let _ = writeln!(
                        out,
                        "  {:<12} false-positive rate {error_rate:.4}  cost {cost} ({overhead})",
                        b.design.name()
                    );
                }
                CellStatus::Failed { error } => {
                    let _ = writeln!(out, "  {:<12} failed: {error}", b.design.name());
                }
                CellStatus::Skipped { reason } => {
                    let _ = writeln!(out, "  {:<12} skipped: {reason}", b.design.name());
                }
            }
        }

        let matrix = self.detection_matrix();
        if !matrix.is_empty() {
            let _ = writeln!(
                out,
                "\ndetection matrix (detected/completed, mean error rate; threshold {:.2}):",
                self.detection_threshold
            );
            let _ = write!(out, "  {:<28}", "fault class");
            for d in &self.designs {
                let _ = write!(out, " {:>18}", d.name());
            }
            let _ = writeln!(out);
            for (label, row) in &matrix {
                let _ = write!(out, "  {label:<28}");
                for (_, stat) in row {
                    if stat.completed == 0 {
                        let _ = write!(out, " {:>18}", "-");
                    } else {
                        let _ = write!(
                            out,
                            " {:>18}",
                            format!(
                                "{}/{} ({:.3})",
                                stat.detected, stat.completed, stat.mean_error_rate
                            )
                        );
                    }
                }
                let _ = writeln!(out);
            }
        }

        let issues: Vec<&CampaignCell> = self
            .cells
            .iter()
            .filter(|c| !c.status.is_completed())
            .collect();
        if !issues.is_empty() {
            let _ = writeln!(out, "\nnon-completed cells:");
            for c in issues {
                match &c.status {
                    CellStatus::Failed { error } => {
                        let _ = writeln!(
                            out,
                            "  {} × {}: failed: {error}",
                            c.mutant_id,
                            c.design.name()
                        );
                    }
                    CellStatus::Skipped { reason } => {
                        let _ = writeln!(
                            out,
                            "  {} × {}: skipped: {reason}",
                            c.mutant_id,
                            c.design.name()
                        );
                    }
                    CellStatus::Completed { .. } => unreachable!("filtered"),
                }
            }
        }
        out
    }

    /// Renders the report as a JSON object (hand-rolled; the build has no
    /// serialisation dependency).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"num_qubits\":{},\"shots\":{},\"seed\":{},\"detection_threshold\":{},\
             \"mutant_count\":{},\"completed\":{},\"failed\":{},\"panicked\":{},\
             \"skipped\":{},\"deadline_hit\":{}",
            self.num_qubits,
            self.shots,
            self.seed,
            json_f64(self.detection_threshold),
            self.mutant_count,
            self.completed(),
            self.failed(),
            self.panicked(),
            self.skipped(),
            self.deadline_hit
        );
        out.push_str(",\"baselines\":[");
        for (i, b) in self.baselines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"design\":{}", json_str(b.design.name()));
            if let Some(c) = b.assertion_cost {
                let _ = write!(
                    out,
                    ",\"cost\":{{\"cx\":{},\"sg\":{},\"ancilla\":{},\"measure\":{}}}",
                    c.cx, c.sg, c.ancilla, c.measure
                );
            }
            out.push_str(",\"status\":");
            push_status_json(&mut out, &b.status);
            out.push('}');
        }
        out.push_str("],\"cells\":[");
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"mutant\":{},\"kind\":{},\"design\":{},\"status\":",
                json_str(&c.mutant_id),
                json_str(&c.kind_label),
                json_str(c.design.name())
            );
            push_status_json(&mut out, &c.status);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_status_json(out: &mut String, status: &CellStatus) {
    match status {
        CellStatus::Completed {
            error_rate,
            detected,
            retries,
            backend,
        } => {
            let _ = write!(
                out,
                "{{\"kind\":\"completed\",\"error_rate\":{},\"detected\":{detected},\
                 \"retries\":{retries},\"backend\":{}}}",
                json_f64(*error_rate),
                json_str(backend.name())
            );
        }
        CellStatus::Failed { error } => {
            let _ = write!(
                out,
                "{{\"kind\":\"failed\",\"panic\":{},\"error\":{}}}",
                error.is_panic(),
                json_str(&error.to_string())
            );
        }
        CellStatus::Skipped { reason } => {
            let _ = write!(
                out,
                "{{\"kind\":\"skipped\",\"reason\":{}}}",
                json_str(reason)
            );
        }
    }
}

/// Finite floats print plainly; NaN/∞ (not representable in JSON) as null.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Escapes `s` as a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> CampaignReport {
        CampaignReport {
            num_qubits: 3,
            shots: 100,
            seed: 1,
            detection_threshold: 0.05,
            mutant_count: 2,
            designs: vec![CampaignDesign::Ndd, CampaignDesign::Stat],
            baselines: vec![BaselineCell {
                design: CampaignDesign::Ndd,
                status: CellStatus::Completed {
                    error_rate: 0.0,
                    detected: false,
                    retries: 0,
                    backend: BackendKind::Statevector,
                },
                assertion_cost: Some(GateCounts {
                    cx: 4,
                    sg: 6,
                    ancilla: 1,
                    measure: 1,
                }),
                program_cost: GateCounts {
                    cx: 2,
                    sg: 1,
                    ancilla: 0,
                    measure: 0,
                },
            }],
            cells: vec![
                CampaignCell {
                    mutant_id: "s0-stray-z".into(),
                    kind_label: "stray-z".into(),
                    design: CampaignDesign::Ndd,
                    status: CellStatus::Completed {
                        error_rate: 0.5,
                        detected: true,
                        retries: 1,
                        backend: BackendKind::Statevector,
                    },
                },
                CampaignCell {
                    mutant_id: "s1-drop-gate".into(),
                    kind_label: "drop-gate".into(),
                    design: CampaignDesign::Ndd,
                    status: CellStatus::Skipped {
                        reason: "deadline exceeded".into(),
                    },
                },
                CampaignCell {
                    mutant_id: "s2-stray-x".into(),
                    kind_label: "stray-x".into(),
                    design: CampaignDesign::Ndd,
                    status: CellStatus::Failed {
                        error: CellError::Panic("index out of bounds".into()),
                    },
                },
            ],
            elapsed: Duration::from_millis(12),
            deadline_hit: true,
        }
    }

    #[test]
    fn counters_and_matrix() {
        let r = sample_report();
        assert_eq!(r.completed(), 1);
        assert_eq!(r.skipped(), 1);
        assert_eq!(r.failed(), 1);
        assert_eq!(r.panicked(), 1);
        let matrix = r.detection_matrix();
        let row = &matrix["stray-z"];
        let (design, stat) = row[0];
        assert_eq!(design, CampaignDesign::Ndd);
        assert_eq!(stat.completed, 1);
        assert_eq!(stat.detected, 1);
        assert!((stat.mean_error_rate - 0.5).abs() < 1e-12);
        // The skipped drop-gate row exists but has no completed cells.
        assert_eq!(matrix["drop-gate"][0].1.completed, 0);
    }

    #[test]
    fn false_positive_and_overhead() {
        let r = sample_report();
        assert_eq!(r.false_positive_rate(CampaignDesign::Ndd), Some(0.0));
        assert_eq!(r.false_positive_rate(CampaignDesign::Stat), None);
        assert!((r.overhead(CampaignDesign::Ndd).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(r.overhead(CampaignDesign::Stat), None);
    }

    #[test]
    fn overhead_uses_each_designs_own_baseline_cost() {
        // Two baselines with diverging program costs: each design's ratio
        // must come from its own cell, not the first one's.
        let mut r = sample_report();
        r.designs = vec![CampaignDesign::Ndd, CampaignDesign::Swap];
        r.baselines.push(BaselineCell {
            design: CampaignDesign::Swap,
            status: CellStatus::Completed {
                error_rate: 0.0,
                detected: false,
                retries: 0,
                backend: BackendKind::Statevector,
            },
            assertion_cost: Some(GateCounts {
                cx: 10,
                sg: 2,
                ancilla: 3,
                measure: 3,
            }),
            program_cost: GateCounts {
                cx: 5,
                sg: 1,
                ancilla: 0,
                measure: 0,
            },
        });
        // Ndd: 4 / 2 from its own row; Swap: 10 / 5 from *its* row (the
        // old first()-based accounting would have divided by 2).
        assert!((r.overhead(CampaignDesign::Ndd).unwrap() - 2.0).abs() < 1e-12);
        assert!((r.overhead(CampaignDesign::Swap).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn text_rendering_mentions_everything() {
        let text = sample_report().render_text();
        assert!(text.contains("2 mutants"));
        assert!(text.contains("deadline hit"));
        assert!(text.contains("stray-z"));
        assert!(text.contains("skipped: deadline exceeded"));
        assert!(text.contains("failed: panicked: index out of bounds"));
        assert!(text.contains("(1 panicked)"));
        assert!(text.contains("false-positive rate 0.0000"));
        // Timing is deliberately absent: rendered reports are
        // byte-identical run-to-run.
        assert!(!text.contains("elapsed"));
    }

    #[test]
    fn json_is_wellformed_and_complete() {
        let json = sample_report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"deadline_hit\":true"));
        assert!(json.contains("\"kind\":\"skipped\""));
        assert!(json.contains("\"kind\":\"failed\",\"panic\":true"));
        assert!(json.contains("\"panicked\":1"));
        assert!(json.contains("\"error_rate\":0.5"));
        assert!(json.contains("\"cost\":{\"cx\":4"));
        assert!(!json.contains("elapsed"));
        // Balanced braces/brackets (cheap well-formedness check; no string
        // in the sample contains structural characters).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.25), "0.25");
    }
}
