//! Resilient campaign execution: mutant × design matrix with panic
//! isolation, deadlines, bounded retries and backend degradation.
//!
//! A campaign runs every mutant against every requested checking scheme and
//! never lets one bad cell abort the rest: panics are caught and reported
//! as failed (carrying the panic message), simulator failures stay
//! structured in the report, a wall-clock deadline turns unfinished cells
//! into explicit skips, and sampler pathologies get a bounded number of
//! seeded retries.
//!
//! The matrix is embarrassingly parallel, so the runner flattens the
//! baseline row plus the mutant × design grid into one indexed cell list
//! and executes it on a pool of scoped worker threads pulling from a
//! shared atomic cursor ([`CampaignConfig::jobs`]). Every cell's seed is
//! derived from `(config.seed, cell index)` alone and results are
//! reassembled in index order, so serial and parallel runs of the same
//! campaign render byte-identical reports.

use crate::inject::Mutant;
use crate::report::{BaselineCell, CampaignCell, CampaignReport, CellStatus};
use qra_circuit::{Circuit, GateCounts};
use qra_core::baselines::statistical_assertion;
use qra_core::{insert_assertion, Design, StateSpec};
use qra_sim::threads::resolve_threads;
use qra_sim::{
    CompiledProgram, Counts, DensityMatrixSimulator, NoiseModel, ProgramCache, SimError,
    StabilizerSimulator, StatevectorSimulator, TrajectorySimulator,
};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::str::FromStr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// A checking scheme evaluated by the campaign: one of the paper's three
/// assertion designs, or the statistical baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CampaignDesign {
    /// SWAP-based assertion (§IV).
    Swap,
    /// Logical-OR assertion (§IV-E).
    LogicalOr,
    /// NDD phase-kickback assertion (§V).
    Ndd,
    /// Statistical baseline: measure and compare distributions (§II).
    Stat,
}

impl CampaignDesign {
    /// Every scheme, in matrix-column order.
    pub const ALL: [CampaignDesign; 4] = [
        CampaignDesign::Swap,
        CampaignDesign::LogicalOr,
        CampaignDesign::Ndd,
        CampaignDesign::Stat,
    ];

    /// Short name used in reports and on the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            CampaignDesign::Swap => "swap",
            CampaignDesign::LogicalOr => "logical-or",
            CampaignDesign::Ndd => "ndd",
            CampaignDesign::Stat => "stat",
        }
    }

    /// The core [`Design`] this scheme maps to (`None` for the baseline).
    pub fn as_design(&self) -> Option<Design> {
        match self {
            CampaignDesign::Swap => Some(Design::Swap),
            CampaignDesign::LogicalOr => Some(Design::LogicalOr),
            CampaignDesign::Ndd => Some(Design::Ndd),
            CampaignDesign::Stat => None,
        }
    }
}

impl CampaignDesign {
    /// Looks a scheme up by its report name (the inverse of
    /// [`CampaignDesign::name`]), used when reloading serialized reports.
    pub fn from_name(name: &str) -> Option<Self> {
        CampaignDesign::ALL.into_iter().find(|d| d.name() == name)
    }
}

impl fmt::Display for CampaignDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Which simulator backend actually produced a cell's counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Exact state-vector simulation (noiseless).
    Statevector,
    /// Exact density-matrix simulation (noisy, 4ⁿ memory).
    DensityMatrix,
    /// Monte-Carlo trajectory simulation (noisy fallback).
    Trajectory,
    /// Gottesman–Knill stabilizer-tableau simulation (noiseless, exact
    /// Clifford circuits only).
    Stabilizer,
}

impl BackendKind {
    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            BackendKind::Statevector => "statevector",
            BackendKind::DensityMatrix => "density-matrix",
            BackendKind::Trajectory => "trajectory",
            BackendKind::Stabilizer => "stabilizer",
        }
    }

    /// Looks a backend up by its report name (the inverse of
    /// [`BackendKind::name`]), used when reloading serialized reports.
    pub fn from_name(name: &str) -> Option<Self> {
        [
            BackendKind::Statevector,
            BackendKind::DensityMatrix,
            BackendKind::Trajectory,
            BackendKind::Stabilizer,
        ]
        .into_iter()
        .find(|b| b.name() == name)
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The user-facing backend selection policy for a campaign
/// (`--backend default|auto|stabilizer`). [`BackendKind`] records what a
/// cell actually ran on; `BackendChoice` is what the user asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// The historical routing: statevector when noiseless, else
    /// density-matrix within budget, else trajectory.
    #[default]
    Default,
    /// Per-cell auto-engage: noiseless all-Clifford cells run on the
    /// stabilizer tableau, everything else (including cells whose mutant
    /// injected a non-Clifford fault) falls back to the default routing.
    Auto,
    /// Force the stabilizer backend; non-Clifford circuits or noisy
    /// configurations are hard errors instead of silent fallbacks.
    Stabilizer,
}

impl BackendChoice {
    /// Short name used by the CLI flag.
    pub fn name(&self) -> &'static str {
        match self {
            BackendChoice::Default => "default",
            BackendChoice::Auto => "auto",
            BackendChoice::Stabilizer => "stabilizer",
        }
    }

    /// Parses a CLI spelling (the inverse of [`BackendChoice::name`]).
    pub fn from_name(name: &str) -> Option<Self> {
        [
            BackendChoice::Default,
            BackendChoice::Auto,
            BackendChoice::Stabilizer,
        ]
        .into_iter()
        .find(|b| b.name() == name)
    }
}

impl fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A contiguous slice of the flattened indexed cell list: shard `index` of
/// `count`, for splitting one campaign across processes or hosts.
///
/// Because every cell's seed derives from `(config.seed, cell index)` alone,
/// a shard computes exactly the cells the unsharded run would at the same
/// indices; shard reports therefore merge back (by index) into a report
/// byte-identical to the unsharded run
/// ([`crate::merge::merge_reports`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// This shard's position, in `0..count`.
    pub index: usize,
    /// Total number of shards the cell list is split into.
    pub count: usize,
}

impl Shard {
    /// Builds a shard after validating `index < count` and `count >= 1`.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message on an empty split or out-of-range index.
    pub fn new(index: usize, count: usize) -> Result<Self, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index >= count {
            return Err(format!("shard index {index} out of range for /{count}"));
        }
        Ok(Self { index, count })
    }

    /// The half-open range `[start, end)` of flattened cell indices this
    /// shard covers out of `total`. The `count` shard ranges partition
    /// `0..total` exactly, each within one cell of `total / count`.
    pub fn bounds(&self, total: usize) -> (usize, usize) {
        (
            self.index * total / self.count,
            (self.index + 1) * total / self.count,
        )
    }
}

impl fmt::Display for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl FromStr for Shard {
    type Err = String;

    /// Parses the CLI spelling `i/n` (e.g. `0/3`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (index, count) = s
            .split_once('/')
            .ok_or_else(|| format!("bad shard '{s}': expected i/n, e.g. 0/3"))?;
        let index = index
            .trim()
            .parse()
            .map_err(|_| format!("bad shard index in '{s}'"))?;
        let count = count
            .trim()
            .parse()
            .map_err(|_| format!("bad shard count in '{s}'"))?;
        Shard::new(index, count)
    }
}

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Shots per cell.
    pub shots: u64,
    /// Base seed; every cell derives its own sub-seed from it, so a
    /// campaign is reproducible run-to-run for a fixed seed.
    pub seed: u64,
    /// Schemes to evaluate (matrix columns).
    pub designs: Vec<CampaignDesign>,
    /// Wall-clock budget; cells not started in time are reported as
    /// skipped, never silently dropped. `None` = unbounded.
    pub deadline: Option<Duration>,
    /// Memory budget for the exact density-matrix backend: it is used only
    /// when `16 · 4ⁿ` bytes fit, otherwise the runner degrades to the
    /// trajectory simulator.
    pub memory_budget_bytes: u64,
    /// Bounded retries (with derived seeds) on sampler pathologies
    /// ([`SimError::InvalidProbability`]).
    pub max_retries: u32,
    /// Noise model; the ideal model routes to the state-vector backend.
    pub noise: NoiseModel,
    /// A cell counts as "detected" when its assertion error rate exceeds
    /// this threshold.
    pub detection_threshold: f64,
    /// Worker threads executing the cell matrix; `0` means available
    /// parallelism. The job count never affects report contents — only
    /// wall-clock time — because cell seeds depend solely on
    /// `(seed, cell index)` and results are reassembled in index order.
    pub jobs: usize,
    /// Amplitude-level threads each simulator backend may use inside one
    /// cell; `0` picks `max(1, cores / jobs)` so the two parallelism
    /// layers multiply to at most the machine's cores. Like `jobs`, this
    /// never affects report contents: threaded kernel sweeps are
    /// bit-for-bit identical to sequential ones at every thread count.
    pub sim_threads: usize,
    /// Run only this contiguous slice of the flattened cell list and emit a
    /// partial report carrying the shard coordinates; `None` runs
    /// everything. Shard reports merge back into the unsharded report
    /// byte-for-byte ([`crate::merge::merge_reports`]).
    pub shard: Option<Shard>,
    /// Backend selection policy; see [`BackendChoice`]. The statistical
    /// design bypasses the executor entirely and always samples on the
    /// statevector backend regardless of this choice.
    pub backend: BackendChoice,
    /// Shared compiled-program cache consulted by [`default_executor`];
    /// `None` compiles per cell as before. Cached and fresh compiles are
    /// bit-identical (lowering is a pure pass), so installing a cache
    /// never changes report contents — [`run_campaign`] installs a
    /// per-campaign cache automatically when this is `None`.
    pub cache: Option<Arc<ProgramCache>>,
}

/// The resolved two-layer worker budget for one campaign run: `jobs`
/// cell-level workers, each allowed `sim_threads` amplitude-level threads
/// inside its simulator. When both knobs are `0` (auto) the product is
/// capped at the machine's core count; explicit values are honored as
/// given. Neither layer ever affects report contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPlan {
    /// Cell-matrix worker threads.
    pub jobs: usize,
    /// Per-cell amplitude-level simulator threads.
    pub sim_threads: usize,
    /// `true` when the available-parallelism query failed and an auto
    /// (`0`) knob degraded to a single worker. Callers must surface this
    /// to the user instead of silently running serial.
    pub fallback: bool,
}

impl CampaignConfig {
    /// The configured job count with `0` resolved to the machine's
    /// available parallelism (and a floor of one worker).
    pub fn effective_jobs(&self) -> usize {
        self.thread_plan().jobs
    }

    /// Resolves both parallelism knobs into a [`ThreadPlan`]. Explicit
    /// values pass through untouched; `0` knobs resolve against the
    /// machine's core count, with the auto amplitude budget set to
    /// `max(1, cores / jobs)` so the layers multiply to at most the
    /// core count. A failed core-count query degrades auto knobs to one
    /// worker and sets [`ThreadPlan::fallback`].
    pub fn thread_plan(&self) -> ThreadPlan {
        let (cores, query_failed) = resolve_threads(0);
        let jobs = if self.jobs == 0 { cores } else { self.jobs };
        let sim_threads = if self.sim_threads == 0 {
            (cores / jobs).max(1)
        } else {
            self.sim_threads
        };
        ThreadPlan {
            jobs,
            sim_threads,
            fallback: query_failed && (self.jobs == 0 || self.sim_threads == 0),
        }
    }
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            shots: 2048,
            seed: 1,
            designs: vec![
                CampaignDesign::Swap,
                CampaignDesign::LogicalOr,
                CampaignDesign::Ndd,
            ],
            deadline: None,
            memory_budget_bytes: 256 << 20,
            max_retries: 2,
            noise: NoiseModel::ideal(),
            detection_threshold: 0.05,
            jobs: 0,
            sim_threads: 0,
            shard: None,
            backend: BackendChoice::Default,
            cache: None,
        }
    }
}

/// Signature of the function that actually simulates one asserted circuit.
/// Campaigns normally use [`default_executor`]; tests inject failing or
/// panicking executors to exercise the resilience paths. Executors must be
/// `Sync`: one instance is shared by every worker thread.
pub type Executor<'a> =
    dyn Fn(&Circuit, &CampaignConfig, u64) -> Result<(Counts, BackendKind), SimError> + Sync + 'a;

/// The default backend-degrading executor: state-vector when noiseless;
/// density-matrix when `16 · 4ⁿ` bytes fit the budget (and the backend's
/// own qubit cap); trajectory otherwise. Width failures surface as
/// structured [`SimError::TooManyQubits`] values, not panics.
pub fn default_executor(
    circuit: &Circuit,
    config: &CampaignConfig,
    seed: u64,
) -> Result<(Counts, BackendKind), SimError> {
    let n = circuit.num_qubits() as u32;
    let sim_threads = config.thread_plan().sim_threads;
    match config.backend {
        BackendChoice::Stabilizer => {
            // Forced: noise and non-Clifford gates are hard errors. The
            // tableau ignores `exec::MAX_QUBITS` — its own ceiling is
            // `StabilizerSimulator::MAX_QUBITS`.
            if !config.noise.is_ideal() {
                return Err(SimError::NonCliffordGate {
                    gate: "noise model (stabilizer backend is noiseless)".to_string(),
                });
            }
            let counts = StabilizerSimulator::with_seed(seed).run(circuit, config.shots)?;
            return Ok((counts, BackendKind::Stabilizer));
        }
        BackendChoice::Auto => {
            // Per-cell engage-or-fallback: a mutant that injects a
            // non-Clifford fault (e.g. an angle fault on a rotation) fails
            // `supports` and takes the default routing below.
            if config.noise.is_ideal() && StabilizerSimulator::supports(circuit) {
                let counts = StabilizerSimulator::with_seed(seed).run(circuit, config.shots)?;
                return Ok((counts, BackendKind::Stabilizer));
            }
        }
        BackendChoice::Default => {}
    }
    if config.noise.is_ideal() {
        // Lower once, then execute: every campaign cell re-runs the same
        // mutant circuit for thousands of shots, so the kernel lowering is
        // amortized across the whole cell. With a cache installed, repeat
        // circuits (calibration repeats, retries, streamed requests) skip
        // lowering entirely — bit-identically, since compilation is pure.
        let counts = match &config.cache {
            Some(cache) => {
                let program = cache.compile_statevector(circuit)?;
                StatevectorSimulator::with_seed(seed)
                    .with_threads(sim_threads)
                    .run_compiled(&program, config.shots)?
            }
            None => {
                let program = CompiledProgram::compile(circuit)?;
                StatevectorSimulator::with_seed(seed)
                    .with_threads(sim_threads)
                    .run_compiled(&program, config.shots)?
            }
        };
        return Ok((counts, BackendKind::Statevector));
    }
    let density_bytes = 16u128.checked_shl(2 * n).unwrap_or(u128::MAX);
    if density_bytes <= u128::from(config.memory_budget_bytes) {
        // Lower circuit + noise once per cell, then execute the compiled
        // density program (kernel conjugation pairs over vec(ρ)). Density
        // cache entries key on (circuit, noise) because the noise model is
        // baked in at lowering.
        let sim =
            DensityMatrixSimulator::with_noise(config.noise.clone()).with_threads(sim_threads);
        let compiled = match &config.cache {
            Some(cache) => cache
                .compile_density(circuit, &config.noise)
                .map(Some)
                .or_else(|e| match e {
                    SimError::TooManyQubits { .. } => Ok(None),
                    other => Err(other),
                })?,
            None => match sim.compile(circuit) {
                Ok(program) => Some(Arc::new(program)),
                // Budget fits but the exact backend caps out: degrade.
                Err(SimError::TooManyQubits { .. }) => None,
                Err(e) => return Err(e),
            },
        };
        if let Some(program) = compiled {
            let counts = sim.run_compiled(&program, config.shots, seed)?;
            return Ok((counts, BackendKind::DensityMatrix));
        }
    }
    let counts = TrajectorySimulator::new(config.noise.clone(), seed)
        .with_threads(sim_threads)
        .run(circuit, config.shots)?;
    Ok((counts, BackendKind::Trajectory))
}

/// Runs a fault-injection campaign with the default executor.
///
/// `qubits` are the program qubits the state specification covers (the
/// assertion is inserted there on every mutant and on the unmutated
/// program, whose per-design false-positive rate and gate-cost overhead
/// land in the report's baseline section).
pub fn run_campaign(
    program: &Circuit,
    qubits: &[usize],
    spec: &StateSpec,
    mutants: &[Mutant],
    config: &CampaignConfig,
) -> CampaignReport {
    // Install a per-campaign compiled-program cache when the caller did
    // not supply a shared one, so cells sharing a circuit (retries,
    // no-op mutants, repeated designs) lower it once. Cached execution
    // is bit-identical to fresh compilation, so this never changes
    // report contents.
    let config = match config.cache {
        Some(_) => config.clone(),
        None => CampaignConfig {
            cache: Some(Arc::new(ProgramCache::new())),
            ..config.clone()
        },
    };
    run_campaign_with_executor(program, qubits, spec, mutants, &config, &default_executor)
}

/// The shared wall-clock budget: one `Instant` for every worker plus a
/// latch that stays tripped once any of them observes expiry, so every
/// cell in any execution mode sees the same monotone deadline signal.
struct Deadline<'a> {
    start: Instant,
    budget: Option<Duration>,
    tripped: &'a AtomicBool,
}

impl Deadline<'_> {
    /// `true` once the budget is spent; latches on first observation.
    fn expired(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) {
            return true;
        }
        match self.budget {
            Some(budget) if self.start.elapsed() >= budget => {
                self.tripped.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }
}

/// What one cell produced: its status plus the checker's gate cost when
/// the checker was synthesised.
type CellOutcome = (CellStatus, Option<GateCounts>);

/// One entry of the flattened cell list: the baseline row first, then the
/// mutant × design grid row-major. The seed-derivation coordinates are
/// part of the task so they depend only on the cell's matrix position,
/// never on which worker claims it or when.
struct CellTask<'a> {
    circuit: &'a Circuit,
    design: CampaignDesign,
    /// First seed-derivation coordinate: `0` for the baseline row,
    /// `1 + mi` for mutant `mi`'s row.
    row: u64,
    /// Second seed-derivation coordinate: the design index.
    col: u64,
}

/// [`run_campaign`] with an injected executor (tests use this to simulate
/// panicking or failing backends).
pub fn run_campaign_with_executor(
    program: &Circuit,
    qubits: &[usize],
    spec: &StateSpec,
    mutants: &[Mutant],
    config: &CampaignConfig,
    executor: &Executor<'_>,
) -> CampaignReport {
    let start = Instant::now();
    let tripped = AtomicBool::new(false);
    let program_cost = GateCounts::of(program).unwrap_or_default();

    // Flatten baseline row + mutant × design grid into one indexed list.
    let mut tasks: Vec<CellTask<'_>> = Vec::new();
    for (di, &design) in config.designs.iter().enumerate() {
        tasks.push(CellTask {
            circuit: program,
            design,
            row: 0,
            col: di as u64,
        });
    }
    for (mi, mutant) in mutants.iter().enumerate() {
        for (di, &design) in config.designs.iter().enumerate() {
            tasks.push(CellTask {
                circuit: &mutant.circuit,
                design,
                row: 1 + mi as u64,
                col: di as u64,
            });
        }
    }

    // A shard runs only its contiguous slice [lo, hi) of the flattened
    // list; the unsharded run covers everything. Cell seeds depend only on
    // the cell's matrix position, so the shard computes exactly what the
    // unsharded run would at those indices.
    let total = tasks.len();
    let (lo, hi) = match config.shard {
        Some(shard) => shard.bounds(total),
        None => (0, total),
    };

    // Execute on a shared-cursor worker pool. Each slot is written exactly
    // once by whichever worker claims its index, then reassembled in index
    // order below — execution order never leaks into the report.
    let slots: Vec<Mutex<Option<CellOutcome>>> = (lo..hi).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(lo);
    let worker = || {
        let deadline = Deadline {
            start,
            budget: config.deadline,
            tripped: &tripped,
        };
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= hi {
                break;
            }
            let task = &tasks[i];
            let outcome = if deadline.expired() {
                (
                    CellStatus::Skipped {
                        reason: "deadline exceeded".into(),
                    },
                    None,
                )
            } else {
                run_cell(
                    task.circuit,
                    qubits,
                    spec,
                    task.design,
                    config,
                    derive_seed(config.seed, task.row, task.col),
                    executor,
                    &deadline,
                )
            };
            *slots[i - lo].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
        }
    };
    let plan = config.thread_plan();
    if plan.fallback {
        // Never degrade to serial silently: the report's bytes must not
        // depend on worker counts, so the warning goes to stderr.
        eprintln!(
            "warning: available-parallelism query failed; campaign degrading to \
             {} worker(s) × {} simulator thread(s) — pass explicit --jobs/--sim-threads \
             to override",
            plan.jobs, plan.sim_threads
        );
    }
    let jobs = plan.jobs.min((hi - lo).max(1));
    if jobs == 1 {
        worker();
    } else {
        thread::scope(|scope| {
            for _ in 0..jobs {
                scope.spawn(worker);
            }
        });
    }

    // Reassemble in index order: baselines first, then the grid. A shard
    // keeps only the rows its slice covers; because the slice is
    // contiguous, so are the retained baseline and cell sub-lists.
    let mut results = slots.into_iter().map(|slot| {
        slot.into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("every claimed cell index produced an outcome")
    });
    let num_designs = config.designs.len();
    let baselines = config
        .designs
        .iter()
        .enumerate()
        .filter(|(di, _)| (lo..hi).contains(di))
        .map(|(_, &design)| {
            let (status, cost) = results.next().expect("one baseline cell per design");
            BaselineCell {
                design,
                status,
                assertion_cost: cost,
                program_cost,
            }
        })
        .collect();
    let mut cells = Vec::new();
    for (mi, mutant) in mutants.iter().enumerate() {
        for (di, &design) in config.designs.iter().enumerate() {
            let flat = num_designs + mi * num_designs + di;
            if !(lo..hi).contains(&flat) {
                continue;
            }
            let (status, _) = results.next().expect("one cell per mutant × design");
            cells.push(CampaignCell {
                mutant_id: mutant.id.clone(),
                kind_label: mutant.kind_label(),
                design,
                status,
            });
        }
    }

    CampaignReport {
        num_qubits: program.num_qubits(),
        shots: config.shots,
        seed: config.seed,
        detection_threshold: config.detection_threshold,
        mutant_count: mutants.len(),
        designs: config.designs.clone(),
        baselines,
        cells,
        elapsed: start.elapsed(),
        deadline_hit: tripped.load(Ordering::Relaxed),
        shard: config.shard,
    }
}

/// One matrix cell, panic-isolated: a mutant (or the unmutated program)
/// checked by one scheme. Returns the status plus the checker's gate cost
/// when it completed. A panic is confined to this cell and reported as a
/// failure carrying the panic message — in the worker pool it poisons
/// neither its worker's remaining cells nor any other worker's.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    circuit: &Circuit,
    qubits: &[usize],
    spec: &StateSpec,
    design: CampaignDesign,
    config: &CampaignConfig,
    cell_seed: u64,
    executor: &Executor<'_>,
    deadline: &Deadline<'_>,
) -> (CellStatus, Option<GateCounts>) {
    let result = catch_unwind(AssertUnwindSafe(|| {
        run_cell_inner(
            circuit, qubits, spec, design, config, cell_seed, executor, deadline,
        )
    }));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            (
                CellStatus::Failed {
                    error: crate::report::CellError::Panic(msg),
                },
                None,
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_cell_inner(
    circuit: &Circuit,
    qubits: &[usize],
    spec: &StateSpec,
    design: CampaignDesign,
    config: &CampaignConfig,
    cell_seed: u64,
    executor: &Executor<'_>,
    deadline: &Deadline<'_>,
) -> (CellStatus, Option<GateCounts>) {
    match design.as_design() {
        Some(core_design) => {
            let mut asserted = circuit.clone();
            let handle = match insert_assertion(&mut asserted, qubits, spec, core_design) {
                Ok(h) => h,
                Err(e) => return (CellStatus::Failed { error: e.into() }, None),
            };
            let mut retries = 0u32;
            loop {
                let run_seed = derive_seed(cell_seed, 2, u64::from(retries));
                match executor(&asserted, config, run_seed) {
                    Ok((counts, backend)) => {
                        let error_rate = handle.error_rate(&counts);
                        return (
                            CellStatus::Completed {
                                error_rate,
                                detected: error_rate > config.detection_threshold,
                                retries,
                                backend,
                            },
                            Some(handle.counts),
                        );
                    }
                    Err(SimError::InvalidProbability { .. }) if retries < config.max_retries => {
                        // The wall-clock budget binds retries too: a cell
                        // that keeps drawing pathological samples must not
                        // spin past the campaign deadline.
                        if deadline.expired() {
                            return (
                                CellStatus::Skipped {
                                    reason: "deadline exceeded during retries".into(),
                                },
                                None,
                            );
                        }
                        retries += 1;
                    }
                    Err(e) => return (CellStatus::Failed { error: e.into() }, None),
                }
            }
        }
        None => {
            // Statistical baseline: destructive measurement + distribution
            // comparison; its "error rate" is the total-variation distance.
            match statistical_assertion(circuit, qubits, spec, config.shots, cell_seed) {
                Ok(outcome) => {
                    let cost = GateCounts {
                        measure: qubits.len(),
                        ..GateCounts::default()
                    };
                    (
                        CellStatus::Completed {
                            error_rate: outcome.total_variation,
                            detected: outcome.total_variation > config.detection_threshold,
                            retries: 0,
                            backend: BackendKind::Statevector,
                        },
                        Some(cost),
                    )
                }
                Err(e) => (CellStatus::Failed { error: e.into() }, None),
            }
        }
    }
}

/// SplitMix64-style seed derivation, so every cell and retry gets an
/// independent but reproducible stream. Crate-visible: sweeps derive
/// margin-calibration seeds from the same stream family.
pub(crate) fn derive_seed(base: u64, a: u64, b: u64) -> u64 {
    let mut z = base
        .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_separates_streams() {
        let a = derive_seed(1, 0, 0);
        let b = derive_seed(1, 0, 1);
        let c = derive_seed(1, 1, 0);
        let d = derive_seed(2, 0, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a, derive_seed(1, 0, 0));
    }

    #[test]
    fn design_names_and_mapping() {
        assert_eq!(CampaignDesign::Swap.to_string(), "swap");
        assert_eq!(CampaignDesign::Stat.to_string(), "stat");
        assert_eq!(CampaignDesign::Ndd.as_design(), Some(Design::Ndd));
        assert_eq!(CampaignDesign::Stat.as_design(), None);
        assert_eq!(BackendKind::Trajectory.to_string(), "trajectory");
        for d in CampaignDesign::ALL {
            assert_eq!(CampaignDesign::from_name(d.name()), Some(d));
        }
        assert_eq!(CampaignDesign::from_name("qft"), None);
        assert_eq!(BackendKind::Stabilizer.to_string(), "stabilizer");
        for b in [
            BackendKind::Statevector,
            BackendKind::DensityMatrix,
            BackendKind::Trajectory,
            BackendKind::Stabilizer,
        ] {
            assert_eq!(BackendKind::from_name(b.name()), Some(b));
        }
        assert_eq!(BackendKind::from_name("abacus"), None);
        for b in [
            BackendChoice::Default,
            BackendChoice::Auto,
            BackendChoice::Stabilizer,
        ] {
            assert_eq!(BackendChoice::from_name(b.name()), Some(b));
        }
        assert_eq!(BackendChoice::from_name("statevector"), None);
        assert_eq!(BackendChoice::default(), BackendChoice::Default);
    }

    #[test]
    fn shard_bounds_partition_the_cell_list() {
        for total in [0usize, 1, 7, 16, 100] {
            for count in [1usize, 2, 3, 7, 13] {
                let mut next = 0;
                for index in 0..count {
                    let (lo, hi) = Shard { index, count }.bounds(total);
                    assert_eq!(lo, next, "gap at shard {index}/{count} of {total}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, total, "shards must cover all {total} cells");
            }
        }
    }

    #[test]
    fn shard_parsing_and_validation() {
        assert_eq!(
            "0/3".parse::<Shard>().unwrap(),
            Shard { index: 0, count: 3 }
        );
        assert_eq!("2/3".parse::<Shard>().unwrap().to_string(), "2/3");
        assert!("3/3".parse::<Shard>().is_err());
        assert!("0/0".parse::<Shard>().is_err());
        assert!("x/2".parse::<Shard>().is_err());
        assert!("1".parse::<Shard>().is_err());
        assert!(Shard::new(1, 2).is_ok());
        assert!(Shard::new(2, 2).is_err());
    }

    #[test]
    fn default_executor_routes_by_noise_and_budget() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        c.expand_clbits(2);
        c.measure(0, 0).unwrap();
        c.measure(1, 1).unwrap();

        let ideal = CampaignConfig::default();
        let (_, backend) = default_executor(&c, &ideal, 3).unwrap();
        assert_eq!(backend, BackendKind::Statevector);

        let noisy = CampaignConfig {
            noise: qra_sim::DevicePreset::LowNoise.noise_model(),
            ..CampaignConfig::default()
        };
        let (_, backend) = default_executor(&c, &noisy, 3).unwrap();
        assert_eq!(backend, BackendKind::DensityMatrix);

        // Starve the budget: 2 qubits need 16·16 = 256 bytes.
        let starved = CampaignConfig {
            memory_budget_bytes: 128,
            ..noisy
        };
        let (_, backend) = default_executor(&c, &starved, 3).unwrap();
        assert_eq!(backend, BackendKind::Trajectory);
    }

    #[test]
    fn auto_backend_engages_stabilizer_per_cell() {
        let mut clifford = Circuit::new(2);
        clifford.h(0).cx(0, 1);
        clifford.expand_clbits(2);
        clifford.measure(0, 0).unwrap();
        clifford.measure(1, 1).unwrap();

        let auto = CampaignConfig {
            backend: BackendChoice::Auto,
            ..CampaignConfig::default()
        };
        let (counts, backend) = default_executor(&clifford, &auto, 3).unwrap();
        assert_eq!(backend, BackendKind::Stabilizer);
        // Same cell on the default routing: bit-identical counts.
        let (sv_counts, sv_backend) =
            default_executor(&clifford, &CampaignConfig::default(), 3).unwrap();
        assert_eq!(sv_backend, BackendKind::Statevector);
        assert_eq!(counts, sv_counts);

        // A non-Clifford "mutant" of the same cell falls back per cell.
        let mut faulted = Circuit::new(2);
        faulted.h(0).t(0).cx(0, 1);
        faulted.expand_clbits(2);
        faulted.measure(0, 0).unwrap();
        faulted.measure(1, 1).unwrap();
        let (_, backend) = default_executor(&faulted, &auto, 3).unwrap();
        assert_eq!(backend, BackendKind::Statevector);

        // Noise disables auto-engage entirely.
        let noisy_auto = CampaignConfig {
            backend: BackendChoice::Auto,
            noise: qra_sim::DevicePreset::LowNoise.noise_model(),
            ..CampaignConfig::default()
        };
        let (_, backend) = default_executor(&clifford, &noisy_auto, 3).unwrap();
        assert_eq!(backend, BackendKind::DensityMatrix);
    }

    #[test]
    fn forced_stabilizer_backend_is_strict() {
        let mut t = Circuit::new(1);
        t.h(0).t(0);
        t.measure_all();
        let forced = CampaignConfig {
            backend: BackendChoice::Stabilizer,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            default_executor(&t, &forced, 1),
            Err(SimError::NonCliffordGate { .. })
        ));

        let mut c = Circuit::new(1);
        c.h(0);
        c.measure_all();
        let noisy = CampaignConfig {
            backend: BackendChoice::Stabilizer,
            noise: qra_sim::DevicePreset::LowNoise.noise_model(),
            ..forced
        };
        assert!(matches!(
            default_executor(&c, &noisy, 1),
            Err(SimError::NonCliffordGate { .. })
        ));
    }

    #[test]
    fn stabilizer_cells_bypass_statevector_width_ceiling() {
        // A Clifford cell wider than exec::MAX_QUBITS runs fine on both
        // the forced and the auto backend.
        let n = qra_sim::exec::MAX_QUBITS + 8;
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 1..n {
            c.cx(q - 1, q);
        }
        c.expand_clbits(2);
        c.measure(0, 0).unwrap();
        c.measure(n - 1, 1).unwrap();
        for choice in [BackendChoice::Stabilizer, BackendChoice::Auto] {
            let config = CampaignConfig {
                backend: choice,
                ..CampaignConfig::default()
            };
            let (counts, backend) = default_executor(&c, &config, 5).unwrap();
            assert_eq!(backend, BackendKind::Stabilizer);
            assert_eq!(counts.total(), config.shots);
        }
        // The default routing still refuses it.
        assert!(matches!(
            default_executor(&c, &CampaignConfig::default(), 5),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn default_executor_structured_error_past_trajectory_cap() {
        // Past the unified state-vector/trajectory ceiling.
        let c = Circuit::new(qra_sim::exec::MAX_QUBITS + 1);
        let config = CampaignConfig {
            noise: qra_sim::DevicePreset::LowNoise.noise_model(),
            memory_budget_bytes: 1, // force the trajectory backend
            ..CampaignConfig::default()
        };
        match default_executor(&c, &config, 1) {
            Err(SimError::TooManyQubits { num_qubits, max }) => {
                assert_eq!(num_qubits, qra_sim::exec::MAX_QUBITS + 1);
                assert_eq!(max, qra_sim::exec::MAX_QUBITS);
            }
            other => panic!("expected TooManyQubits, got {other:?}"),
        }
    }

    #[test]
    fn thread_plan_resolves_and_caps_the_product() {
        // Explicit knobs pass through untouched.
        let explicit = CampaignConfig {
            jobs: 3,
            sim_threads: 2,
            ..CampaignConfig::default()
        };
        let plan = explicit.thread_plan();
        assert_eq!((plan.jobs, plan.sim_threads), (3, 2));
        assert!(!plan.fallback);

        // Auto amplitude budget divides the cores among explicit jobs,
        // flooring at one thread: jobs × sim_threads ≤ max(cores, jobs).
        let auto = CampaignConfig {
            jobs: 2,
            sim_threads: 0,
            ..CampaignConfig::default()
        };
        let plan = auto.thread_plan();
        let (cores, _) = resolve_threads(0);
        assert_eq!(plan.jobs, 2);
        assert_eq!(plan.sim_threads, (cores / 2).max(1));

        // Full auto saturates jobs and keeps simulators sequential.
        let full_auto = CampaignConfig::default();
        let plan = full_auto.thread_plan();
        assert_eq!(plan.jobs, cores);
        assert_eq!(plan.sim_threads, 1);
        assert_eq!(full_auto.effective_jobs(), plan.jobs);
    }
}
