//! Dependency-free JSON reading and writing shared by report
//! serialization, shard merging and the sweep orchestrator's run-directory
//! files (manifests, unit records, progress snapshots).
//!
//! The reader is a minimal recursive-descent parser; numbers keep their
//! raw source text until a caller demands an integer or float, so 64-bit
//! seeds survive untruncated. The writing helpers are the exact formatters
//! the reports use: floats print in Rust's shortest round-trip
//! representation (so a value written, reparsed and rewritten is
//! byte-identical), and non-finite floats — unrepresentable in JSON —
//! print as `null` and reload as NaN.

use std::fmt;
use std::fmt::Write as _;

/// Error produced by [`parse`] or by typed accessors on [`Json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JsonError {}

fn err(msg: impl Into<String>) -> JsonError {
    JsonError(msg.into())
}

/// A parsed JSON value. Numbers keep their raw source text so integer
/// fields re-parse exactly (no round-trip through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text.
    Num(String),
    /// A string (escapes already decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks a field up on an object; `None` for missing fields and
    /// non-objects.
    pub fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Json::get`] but a missing field is an error.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when the field is absent.
    pub fn require<'a>(&'a self, key: &str) -> Result<&'a Json, JsonError> {
        self.get(key)
            .ok_or_else(|| err(format!("missing field '{key}'")))
    }

    /// The value as a string.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] for non-strings.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(err(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as a bool.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] for non-bools.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(err(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as a `usize`.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] for non-integers.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| err(format!("expected integer, got '{raw}'"))),
            other => Err(err(format!("expected integer, got {other:?}"))),
        }
    }

    /// The value as a `u64` (64-bit seeds re-parse exactly).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] for non-integers.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| err(format!("expected u64, got '{raw}'"))),
            other => Err(err(format!("expected u64, got {other:?}"))),
        }
    }

    /// Floats serialized with [`json_f64`]: `null` encodes a non-finite
    /// value and reloads as NaN (which re-serializes as `null`).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] for non-numbers other than `null`.
    pub fn as_f64_or_nan(&self) -> Result<f64, JsonError> {
        match self {
            Json::Null => Ok(f64::NAN),
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| err(format!("expected number, got '{raw}'"))),
            other => Err(err(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] for non-arrays.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(err(format!("expected array, got {other:?}"))),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(err(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(err(format!("malformed object at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(err(format!("malformed array at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err(format!("bad \\u escape '{hex}'")))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err(format!("invalid codepoint {code}")))?,
                            );
                        }
                        other => {
                            return Err(err(format!("unknown escape '\\{}'", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| err("invalid UTF-8 in string"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| err("empty string tail"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(err(format!("malformed number at byte {start}")));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| err("invalid UTF-8 in number"))?;
        Ok(Json::Num(raw.to_string()))
    }
}

/// Parses one complete JSON value; trailing input is an error.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

/// Finite floats print plainly (shortest round-trip representation);
/// NaN/∞ (not representable in JSON) as `null`.
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Escapes `s` as a JSON string literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parser_handles_scalars_arrays_objects() {
        let v = parse(r#"{"a":1,"b":[true,false,null,"x\n\"y\""],"c":-2.5e-3}"#).unwrap();
        assert_eq!(v.require("a").unwrap().as_usize().unwrap(), 1);
        let arr = v.require("b").unwrap().as_arr().unwrap();
        assert!(arr[0].as_bool().unwrap());
        assert_eq!(arr[3].as_str().unwrap(), "x\n\"y\"");
        assert!((v.require("c").unwrap().as_f64_or_nan().unwrap() + 0.0025).abs() < 1e-12);
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
    }

    #[test]
    fn parser_preserves_u64_integers() {
        let v = parse("[18446744073709551615]").unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse(r#""Aé\t""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "Aé\t");
    }

    #[test]
    fn float_formatting_round_trips_exactly() {
        for x in [0.0, 0.25, 1.0 / 3.0, 2.5e-3, f64::MIN_POSITIVE, 1e300] {
            let text = json_f64(x);
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(
            parse(&json_str("a\u{1}b")).unwrap().as_str().unwrap(),
            "a\u{1}b"
        );
    }
}
