//! Reloading and merging serialized campaign reports.
//!
//! A sharded campaign (`CampaignConfig::shard`, CLI `--shard i/n`) emits one
//! partial JSON report per shard. [`parse_report`] reloads any report JSON
//! produced by [`CampaignReport::to_json`] and [`merge_reports`] reassembles
//! a set of shard reports — by global cell index — into a full report that
//! renders **byte-identically** to the unsharded run: cell seeds derive from
//! `(seed, cell index)` alone, so each shard computed exactly the cells the
//! unsharded run would have, and floats round-trip exactly through Rust's
//! shortest-representation formatting.
//!
//! The parser is a minimal recursive-descent JSON reader (the build has no
//! serialisation dependency); numbers are kept as raw text until a field
//! demands an integer or float, so 64-bit seeds survive untruncated.

use crate::report::{BaselineCell, CampaignCell, CampaignReport, CellError, CellStatus};
use crate::runner::{BackendKind, CampaignDesign, Shard};
use qra_circuit::GateCounts;
use std::fmt;
use std::time::Duration;

/// Error reloading or merging serialized reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError(pub String);

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for MergeError {}

fn err(msg: impl Into<String>) -> MergeError {
    MergeError(msg.into())
}

// ---------------------------------------------------------------------------
// Minimal JSON value + parser
// ---------------------------------------------------------------------------

/// A parsed JSON value. Numbers keep their raw source text so integer
/// fields re-parse exactly (no round-trip through `f64`).
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn require<'a>(&'a self, key: &str) -> Result<&'a Json, MergeError> {
        self.get(key)
            .ok_or_else(|| err(format!("missing field '{key}'")))
    }

    fn as_str(&self) -> Result<&str, MergeError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(err(format!("expected string, got {other:?}"))),
        }
    }

    fn as_bool(&self) -> Result<bool, MergeError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(err(format!("expected bool, got {other:?}"))),
        }
    }

    fn as_usize(&self) -> Result<usize, MergeError> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| err(format!("expected integer, got '{raw}'"))),
            other => Err(err(format!("expected integer, got {other:?}"))),
        }
    }

    fn as_u64(&self) -> Result<u64, MergeError> {
        match self {
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| err(format!("expected u64, got '{raw}'"))),
            other => Err(err(format!("expected u64, got {other:?}"))),
        }
    }

    /// Floats serialized with [`json_f64`]: `null` encodes a non-finite
    /// value and reloads as NaN (which re-serializes as `null`).
    ///
    /// [`json_f64`]: crate::report
    fn as_f64_or_nan(&self) -> Result<f64, MergeError> {
        match self {
            Json::Null => Ok(f64::NAN),
            Json::Num(raw) => raw
                .parse()
                .map_err(|_| err(format!("expected number, got '{raw}'"))),
            other => Err(err(format!("expected number, got {other:?}"))),
        }
    }

    fn as_arr(&self) -> Result<&[Json], MergeError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(err(format!("expected array, got {other:?}"))),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), MergeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, MergeError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(err(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn object(&mut self) -> Result<Json, MergeError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(err(format!("malformed object at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Json, MergeError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(err(format!("malformed array at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, MergeError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| err(format!("bad \\u escape '{hex}'")))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| err(format!("invalid codepoint {code}")))?,
                            );
                        }
                        other => {
                            return Err(err(format!("unknown escape '\\{}'", other as char)));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| err("invalid UTF-8 in string"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| err("empty string tail"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, MergeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(err(format!("malformed number at byte {start}")));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| err("invalid UTF-8 in number"))?;
        Ok(Json::Num(raw.to_string()))
    }
}

fn parse_json(text: &str) -> Result<Json, MergeError> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Report reconstruction
// ---------------------------------------------------------------------------

/// A report reloaded from JSON, with the global flattened index of every
/// baseline/cell entry (needed to verify coverage when merging shards).
#[derive(Debug, Clone)]
pub struct ParsedReport {
    /// The reconstructed report.
    pub report: CampaignReport,
    /// Global index of each entry of `report.baselines`, in order.
    pub baseline_indices: Vec<usize>,
    /// Global index of each entry of `report.cells`, in order.
    pub cell_indices: Vec<usize>,
}

fn parse_status(v: &Json) -> Result<CellStatus, MergeError> {
    match v.require("kind")?.as_str()? {
        "completed" => Ok(CellStatus::Completed {
            error_rate: v.require("error_rate")?.as_f64_or_nan()?,
            detected: v.require("detected")?.as_bool()?,
            retries: v.require("retries")?.as_usize()? as u32,
            backend: {
                let name = v.require("backend")?.as_str()?;
                BackendKind::from_name(name)
                    .ok_or_else(|| err(format!("unknown backend '{name}'")))?
            },
        }),
        "failed" => Ok(CellStatus::Failed {
            error: CellError::Opaque {
                panic: v.require("panic")?.as_bool()?,
                message: v.require("error")?.as_str()?.to_string(),
            },
        }),
        "skipped" => Ok(CellStatus::Skipped {
            reason: v.require("reason")?.as_str()?.to_string(),
        }),
        other => Err(err(format!("unknown status kind '{other}'"))),
    }
}

fn parse_cost(v: &Json) -> Result<GateCounts, MergeError> {
    Ok(GateCounts {
        cx: v.require("cx")?.as_usize()?,
        sg: v.require("sg")?.as_usize()?,
        ancilla: v.require("ancilla")?.as_usize()?,
        measure: v.require("measure")?.as_usize()?,
    })
}

fn parse_design(v: &Json) -> Result<CampaignDesign, MergeError> {
    let name = v.as_str()?;
    CampaignDesign::from_name(name).ok_or_else(|| err(format!("unknown design '{name}'")))
}

/// Reloads a report serialized by [`CampaignReport::to_json`] — either a
/// full report or one shard of a sharded campaign.
///
/// # Errors
///
/// Returns [`MergeError`] on malformed JSON or missing/ill-typed fields.
pub fn parse_report(text: &str) -> Result<ParsedReport, MergeError> {
    let root = parse_json(text)?;
    let designs: Vec<CampaignDesign> = root
        .require("designs")?
        .as_arr()?
        .iter()
        .map(parse_design)
        .collect::<Result<_, _>>()?;
    let shard = match root.get("shard") {
        Some(v) => Some(
            Shard::new(
                v.require("index")?.as_usize()?,
                v.require("count")?.as_usize()?,
            )
            .map_err(err)?,
        ),
        None => None,
    };

    let mut baseline_indices = Vec::new();
    let mut baselines = Vec::new();
    for b in root.require("baselines")?.as_arr()? {
        baseline_indices.push(b.require("index")?.as_usize()?);
        baselines.push(BaselineCell {
            design: parse_design(b.require("design")?)?,
            status: parse_status(b.require("status")?)?,
            assertion_cost: b.get("cost").map(parse_cost).transpose()?,
            program_cost: parse_cost(b.require("program_cost")?)?,
        });
    }

    let mut cell_indices = Vec::new();
    let mut cells = Vec::new();
    for c in root.require("cells")?.as_arr()? {
        cell_indices.push(c.require("index")?.as_usize()?);
        cells.push(CampaignCell {
            mutant_id: c.require("mutant")?.as_str()?.to_string(),
            kind_label: c.require("kind")?.as_str()?.to_string(),
            design: parse_design(c.require("design")?)?,
            status: parse_status(c.require("status")?)?,
        });
    }

    Ok(ParsedReport {
        report: CampaignReport {
            num_qubits: root.require("num_qubits")?.as_usize()?,
            shots: root.require("shots")?.as_u64()?,
            seed: root.require("seed")?.as_u64()?,
            detection_threshold: root.require("detection_threshold")?.as_f64_or_nan()?,
            mutant_count: root.require("mutant_count")?.as_usize()?,
            designs,
            baselines,
            cells,
            // Wall-clock time does not survive serialization (and is
            // deliberately excluded from rendering).
            elapsed: Duration::ZERO,
            deadline_hit: root.require("deadline_hit")?.as_bool()?,
            shard,
        },
        baseline_indices,
        cell_indices,
    })
}

/// Merges shard reports back into the full campaign report.
///
/// The shards must belong to the same campaign (identical qubit count,
/// shots, seed, threshold, mutant count and design list) and together cover
/// every cell index exactly once. The merged report has `shard: None` and —
/// because cell seeds derive from `(seed, cell index)` alone — renders
/// byte-identically to the unsharded run of the same campaign.
///
/// # Errors
///
/// Returns [`MergeError`] on mismatched campaign metadata, duplicate
/// indices, or incomplete coverage.
pub fn merge_reports(shards: &[ParsedReport]) -> Result<CampaignReport, MergeError> {
    let first = shards
        .first()
        .ok_or_else(|| err("no shard reports to merge"))?;
    let reference = &first.report;
    for (i, shard) in shards.iter().enumerate().skip(1) {
        let r = &shard.report;
        if r.num_qubits != reference.num_qubits
            || r.shots != reference.shots
            || r.seed != reference.seed
            || r.detection_threshold.to_bits() != reference.detection_threshold.to_bits()
            || r.mutant_count != reference.mutant_count
            || r.designs != reference.designs
        {
            return Err(err(format!(
                "shard {i} belongs to a different campaign than shard 0 \
                 (check seed/shots/designs/mutant count)"
            )));
        }
    }

    let num_designs = reference.designs.len();
    let total = reference.total_cells();
    let mut baseline_slots: Vec<Option<BaselineCell>> = vec![None; num_designs];
    let mut cell_slots: Vec<Option<CampaignCell>> = vec![None; total - num_designs];
    for shard in shards {
        for (&index, baseline) in shard.baseline_indices.iter().zip(&shard.report.baselines) {
            if index >= num_designs {
                return Err(err(format!("baseline index {index} out of range")));
            }
            let slot = &mut baseline_slots[index];
            if slot.is_some() {
                return Err(err(format!("duplicate baseline index {index}")));
            }
            *slot = Some(baseline.clone());
        }
        for (&index, cell) in shard.cell_indices.iter().zip(&shard.report.cells) {
            if !(num_designs..total).contains(&index) {
                return Err(err(format!("cell index {index} out of range")));
            }
            let slot = &mut cell_slots[index - num_designs];
            if slot.is_some() {
                return Err(err(format!("duplicate cell index {index}")));
            }
            *slot = Some(cell.clone());
        }
    }
    let baselines: Vec<BaselineCell> = baseline_slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.ok_or_else(|| err(format!("missing baseline cell {i}"))))
        .collect::<Result<_, _>>()?;
    let cells: Vec<CampaignCell> = cell_slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.ok_or_else(|| err(format!("missing cell index {}", i + num_designs))))
        .collect::<Result<_, _>>()?;

    Ok(CampaignReport {
        num_qubits: reference.num_qubits,
        shots: reference.shots,
        seed: reference.seed,
        detection_threshold: reference.detection_threshold,
        mutant_count: reference.mutant_count,
        designs: reference.designs.clone(),
        baselines,
        cells,
        elapsed: shards.iter().map(|s| s.report.elapsed).sum(),
        deadline_hit: shards.iter().any(|s| s.report.deadline_hit),
        shard: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_handles_scalars_arrays_objects() {
        let v = parse_json(r#"{"a":1,"b":[true,false,null,"x\n\"y\""],"c":-2.5e-3}"#).unwrap();
        assert_eq!(v.require("a").unwrap().as_usize().unwrap(), 1);
        let arr = v.require("b").unwrap().as_arr().unwrap();
        assert!(arr[0].as_bool().unwrap());
        assert_eq!(arr[3].as_str().unwrap(), "x\n\"y\"");
        assert!((v.require("c").unwrap().as_f64_or_nan().unwrap() + 0.0025).abs() < 1e-12);
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{}extra").is_err());
    }

    #[test]
    fn json_parser_preserves_u64_integers() {
        let v = parse_json("[18446744073709551615]").unwrap();
        assert_eq!(v.as_arr().unwrap()[0].as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse_json(r#""Aé\t""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "Aé\t");
    }

    #[test]
    fn merge_rejects_empty_mismatched_and_incomplete() {
        assert!(merge_reports(&[]).is_err());
    }
}
