//! Reloading and merging serialized campaign reports and sweep partials.
//!
//! A sharded campaign (`CampaignConfig::shard`, CLI `--shard i/n`) emits one
//! partial JSON report per shard. [`parse_report`] reloads any report JSON
//! produced by [`CampaignReport::to_json`] and [`merge_reports`] reassembles
//! a set of shard reports — by global cell index — into a full report that
//! renders **byte-identically** to the unsharded run: cell seeds derive from
//! `(seed, cell index)` alone, so each shard computed exactly the cells the
//! unsharded run would have, and floats round-trip exactly through Rust's
//! shortest-representation formatting.
//!
//! Sweeps distribute at a finer grain. The unit of work is one
//! `(noise point × campaign cell)` pair — plus, in auto-margin mode, one
//! calibration unit per point — and every completed unit serializes as one
//! [`SweepUnitRecord`] JSON line. Units accumulate either in an
//! orchestrator run directory (`qra sweep run`, see `qra-orch`) or in a
//! [`SweepPartial`] file (`qra campaign --sweep --shard i/n`); either way
//! [`assemble_sweep`] reassembles them into a [`SweepReport`] byte-identical
//! to the sequential [`run_sweep`](crate::sweep::run_sweep) at the same
//! seed, regardless of worker count, scheduling order, or a mid-run
//! kill+resume.

use crate::json::{self, json_f64, json_str, Json, JsonError};
use crate::report::{BaselineCell, CampaignCell, CampaignReport, CellError, CellStatus};
use crate::runner::{BackendKind, CampaignDesign, Shard};
use crate::sweep::{
    assemble_sweep_report, MarginMode, QuarantinedUnit, SweepPointParts, SweepReport,
};
use qra_circuit::GateCounts;
use std::fmt;
use std::fmt::Write as _;
use std::time::Duration;

/// Error reloading or merging serialized reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError(pub String);

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for MergeError {}

impl From<JsonError> for MergeError {
    fn from(e: JsonError) -> Self {
        MergeError(e.0)
    }
}

fn err(msg: impl Into<String>) -> MergeError {
    MergeError(msg.into())
}

// ---------------------------------------------------------------------------
// Report reconstruction
// ---------------------------------------------------------------------------

/// A report reloaded from JSON, with the global flattened index of every
/// baseline/cell entry (needed to verify coverage when merging shards).
#[derive(Debug, Clone)]
pub struct ParsedReport {
    /// The reconstructed report.
    pub report: CampaignReport,
    /// Global index of each entry of `report.baselines`, in order.
    pub baseline_indices: Vec<usize>,
    /// Global index of each entry of `report.cells`, in order.
    pub cell_indices: Vec<usize>,
}

fn parse_status(v: &Json) -> Result<CellStatus, MergeError> {
    match v.require("kind")?.as_str()? {
        "completed" => Ok(CellStatus::Completed {
            error_rate: v.require("error_rate")?.as_f64_or_nan()?,
            detected: v.require("detected")?.as_bool()?,
            retries: v.require("retries")?.as_usize()? as u32,
            backend: {
                let name = v.require("backend")?.as_str()?;
                BackendKind::from_name(name)
                    .ok_or_else(|| err(format!("unknown backend '{name}'")))?
            },
        }),
        "failed" => Ok(CellStatus::Failed {
            error: CellError::Opaque {
                panic: v.require("panic")?.as_bool()?,
                message: v.require("error")?.as_str()?.to_string(),
            },
        }),
        "skipped" => Ok(CellStatus::Skipped {
            reason: v.require("reason")?.as_str()?.to_string(),
        }),
        other => Err(err(format!("unknown status kind '{other}'"))),
    }
}

fn parse_cost(v: &Json) -> Result<GateCounts, MergeError> {
    Ok(GateCounts {
        cx: v.require("cx")?.as_usize()?,
        sg: v.require("sg")?.as_usize()?,
        ancilla: v.require("ancilla")?.as_usize()?,
        measure: v.require("measure")?.as_usize()?,
    })
}

fn parse_design(v: &Json) -> Result<CampaignDesign, MergeError> {
    let name = v.as_str()?;
    CampaignDesign::from_name(name).ok_or_else(|| err(format!("unknown design '{name}'")))
}

/// Reloads a report serialized by [`CampaignReport::to_json`] — either a
/// full report or one shard of a sharded campaign.
///
/// # Errors
///
/// Returns [`MergeError`] on malformed JSON or missing/ill-typed fields.
pub fn parse_report(text: &str) -> Result<ParsedReport, MergeError> {
    parse_report_value(&json::parse(text)?)
}

/// [`parse_report`] over an already-parsed [`Json`] value (sweep unit
/// records embed campaign reports as sub-objects).
fn parse_report_value(root: &Json) -> Result<ParsedReport, MergeError> {
    let designs: Vec<CampaignDesign> = root
        .require("designs")?
        .as_arr()?
        .iter()
        .map(parse_design)
        .collect::<Result<_, _>>()?;
    let shard = match root.get("shard") {
        Some(v) => Some(
            Shard::new(
                v.require("index")?.as_usize()?,
                v.require("count")?.as_usize()?,
            )
            .map_err(err)?,
        ),
        None => None,
    };

    let mut baseline_indices = Vec::new();
    let mut baselines = Vec::new();
    for b in root.require("baselines")?.as_arr()? {
        baseline_indices.push(b.require("index")?.as_usize()?);
        baselines.push(BaselineCell {
            design: parse_design(b.require("design")?)?,
            status: parse_status(b.require("status")?)?,
            assertion_cost: b.get("cost").map(parse_cost).transpose()?,
            program_cost: parse_cost(b.require("program_cost")?)?,
        });
    }

    let mut cell_indices = Vec::new();
    let mut cells = Vec::new();
    for c in root.require("cells")?.as_arr()? {
        cell_indices.push(c.require("index")?.as_usize()?);
        cells.push(CampaignCell {
            mutant_id: c.require("mutant")?.as_str()?.to_string(),
            kind_label: c.require("kind")?.as_str()?.to_string(),
            design: parse_design(c.require("design")?)?,
            status: parse_status(c.require("status")?)?,
        });
    }

    Ok(ParsedReport {
        report: CampaignReport {
            num_qubits: root.require("num_qubits")?.as_usize()?,
            shots: root.require("shots")?.as_u64()?,
            seed: root.require("seed")?.as_u64()?,
            detection_threshold: root.require("detection_threshold")?.as_f64_or_nan()?,
            mutant_count: root.require("mutant_count")?.as_usize()?,
            designs,
            baselines,
            cells,
            // Wall-clock time does not survive serialization (and is
            // deliberately excluded from rendering).
            elapsed: Duration::ZERO,
            deadline_hit: root.require("deadline_hit")?.as_bool()?,
            shard,
        },
        baseline_indices,
        cell_indices,
    })
}

/// Merges shard reports back into the full campaign report.
///
/// The shards must belong to the same campaign (identical qubit count,
/// shots, seed, threshold, mutant count and design list) and together cover
/// every cell index exactly once. The merged report has `shard: None` and —
/// because cell seeds derive from `(seed, cell index)` alone — renders
/// byte-identically to the unsharded run of the same campaign.
///
/// # Errors
///
/// Returns [`MergeError`] on mismatched campaign metadata, duplicate
/// indices, or incomplete coverage.
pub fn merge_reports(shards: &[ParsedReport]) -> Result<CampaignReport, MergeError> {
    let labelled: Vec<(String, &ParsedReport)> = shards
        .iter()
        .enumerate()
        .map(|(i, s)| (format!("shard {i}"), s))
        .collect();
    merge_reports_ref(&labelled)
}

/// [`merge_reports`] with a source label per shard (typically its file
/// name), so mismatch/duplicate errors name the offending input instead of
/// a bare shard position.
///
/// # Errors
///
/// Returns [`MergeError`] on mismatched campaign metadata, duplicate
/// indices, or incomplete coverage; the message names the offending shard.
pub fn merge_reports_named(
    shards: &[(String, ParsedReport)],
) -> Result<CampaignReport, MergeError> {
    let labelled: Vec<(String, &ParsedReport)> =
        shards.iter().map(|(label, s)| (label.clone(), s)).collect();
    merge_reports_ref(&labelled)
}

/// True when two reports cannot come from the same campaign run — the
/// shared identity check behind every merge path (campaign shards, a
/// sweep point's cell units, and cross-point consistency of an assembled
/// sweep).
fn different_campaign(a: &CampaignReport, b: &CampaignReport) -> bool {
    a.num_qubits != b.num_qubits
        || a.shots != b.shots
        || a.seed != b.seed
        || a.detection_threshold.to_bits() != b.detection_threshold.to_bits()
        || a.mutant_count != b.mutant_count
        || a.designs != b.designs
}

fn merge_reports_ref(shards: &[(String, &ParsedReport)]) -> Result<CampaignReport, MergeError> {
    let (first_label, first) = shards
        .first()
        .ok_or_else(|| err("no shard reports to merge"))?;
    let reference = &first.report;
    for (label, shard) in shards.iter().skip(1) {
        if different_campaign(&shard.report, reference) {
            return Err(err(format!(
                "{label} belongs to a different campaign than {first_label} \
                 (check seed/shots/designs/mutant count)"
            )));
        }
    }

    let num_designs = reference.designs.len();
    let total = reference.total_cells();
    // Remember which shard filled each slot so duplicates name both sources.
    let mut baseline_slots: Vec<Option<(usize, BaselineCell)>> = vec![None; num_designs];
    let mut cell_slots: Vec<Option<(usize, CampaignCell)>> = vec![None; total - num_designs];
    for (si, (label, shard)) in shards.iter().enumerate() {
        for (&index, baseline) in shard.baseline_indices.iter().zip(&shard.report.baselines) {
            if index >= num_designs {
                return Err(err(format!("{label}: baseline index {index} out of range")));
            }
            let slot = &mut baseline_slots[index];
            if let Some((prev, _)) = slot {
                return Err(err(format!(
                    "{label}: duplicate baseline index {index} (also in {})",
                    shards[*prev].0
                )));
            }
            *slot = Some((si, baseline.clone()));
        }
        for (&index, cell) in shard.cell_indices.iter().zip(&shard.report.cells) {
            if !(num_designs..total).contains(&index) {
                return Err(err(format!("{label}: cell index {index} out of range")));
            }
            let slot = &mut cell_slots[index - num_designs];
            if let Some((prev, _)) = slot {
                return Err(err(format!(
                    "{label}: duplicate cell index {index} (also in {})",
                    shards[*prev].0
                )));
            }
            *slot = Some((si, cell.clone()));
        }
    }
    let baselines: Vec<BaselineCell> = baseline_slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.map(|(_, b)| b)
                .ok_or_else(|| err(format!("missing baseline cell {i}")))
        })
        .collect::<Result<_, _>>()?;
    let cells: Vec<CampaignCell> = cell_slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.map(|(_, c)| c)
                .ok_or_else(|| err(format!("missing cell index {}", i + num_designs)))
        })
        .collect::<Result<_, _>>()?;

    Ok(CampaignReport {
        num_qubits: reference.num_qubits,
        shots: reference.shots,
        seed: reference.seed,
        detection_threshold: reference.detection_threshold,
        mutant_count: reference.mutant_count,
        designs: reference.designs.clone(),
        baselines,
        cells,
        elapsed: shards.iter().map(|(_, s)| s.report.elapsed).sum(),
        deadline_hit: shards.iter().any(|(_, s)| s.report.deadline_hit),
        shard: None,
    })
}

// ---------------------------------------------------------------------------
// Sweep units
// ---------------------------------------------------------------------------

/// What one completed sweep unit produced.
#[derive(Debug, Clone)]
pub enum SweepUnitPayload {
    /// A campaign cell: the single-cell shard report for this unit's
    /// `(point, cell)` coordinate.
    Cell(ParsedReport),
    /// The point's calibration unit (auto-margin mode only): the per-design
    /// margins derived from repeated baseline seeds.
    Margins(Vec<(CampaignDesign, f64)>),
}

/// One completed unit of distributed sweep work, as streamed to a JSONL
/// results file: `{"point":P,"cell":C,"campaign":{…}}` for campaign cells,
/// `{"point":P,"cell":C,"margins":[…]}` for a point's calibration unit. A
/// quarantined unit additionally carries
/// `"quarantined":{"attempts":[…]}` — its payload is then the
/// deterministic placeholder the orchestrator synthesized (a skipped
/// single-cell shard, or an empty margin list) rather than a computed
/// result.
#[derive(Debug, Clone)]
pub struct SweepUnitRecord {
    /// The noise point's index in sweep order.
    pub point: usize,
    /// The cell index within the point: `0..cells_per_point` for campaign
    /// cells, exactly `cells_per_point` for the calibration unit.
    pub cell: usize,
    /// The unit's result.
    pub payload: SweepUnitPayload,
    /// When the unit was quarantined after exhausting its attempts: the
    /// recorded attempt reasons, in attempt order.
    pub quarantined: Option<Vec<String>>,
}

impl SweepUnitRecord {
    /// Serializes the record as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let base = match &self.payload {
            SweepUnitPayload::Cell(parsed) => {
                cell_record_json(self.point, self.cell, &parsed.report)
            }
            SweepUnitPayload::Margins(margins) => {
                margin_record_json(self.point, self.cell, margins)
            }
        };
        let Some(attempts) = &self.quarantined else {
            return base;
        };
        let mut out = String::with_capacity(base.len() + 64);
        out.push_str(&base[..base.len() - 1]);
        out.push_str(",\"quarantined\":{\"attempts\":[");
        for (i, reason) in attempts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(reason));
        }
        out.push_str("]}}");
        out
    }
}

/// Serializes a completed campaign-cell unit as its JSONL record. The
/// report is the unit's single-cell shard output, embedded verbatim.
pub fn cell_record_json(point: usize, cell: usize, report: &CampaignReport) -> String {
    format!(
        "{{\"point\":{point},\"cell\":{cell},\"campaign\":{}}}",
        report.to_json()
    )
}

/// Serializes a completed margin-calibration unit as its JSONL record.
pub fn margin_record_json(point: usize, cell: usize, margins: &[(CampaignDesign, f64)]) -> String {
    let mut out = format!("{{\"point\":{point},\"cell\":{cell},\"margins\":[");
    for (i, (design, margin)) in margins.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"design\":{},\"margin\":{}}}",
            json_str(design.name()),
            json_f64(*margin)
        );
    }
    out.push_str("]}");
    out
}

fn parse_margins(v: &Json) -> Result<Vec<(CampaignDesign, f64)>, MergeError> {
    v.as_arr()?
        .iter()
        .map(|m| {
            Ok((
                parse_design(m.require("design")?)?,
                m.require("margin")?.as_f64_or_nan()?,
            ))
        })
        .collect()
}

/// Parses one sweep unit record (one line of a results JSONL file or one
/// element of a [`SweepPartial`]'s `units` array).
///
/// # Errors
///
/// Returns [`MergeError`] on malformed JSON or missing/ill-typed fields.
pub fn parse_unit_record(text: &str) -> Result<SweepUnitRecord, MergeError> {
    parse_unit_value(&json::parse(text)?)
}

fn parse_unit_value(root: &Json) -> Result<SweepUnitRecord, MergeError> {
    let point = root.require("point")?.as_usize()?;
    let cell = root.require("cell")?.as_usize()?;
    let payload = if let Some(campaign) = root.get("campaign") {
        SweepUnitPayload::Cell(parse_report_value(campaign)?)
    } else if let Some(margins) = root.get("margins") {
        SweepUnitPayload::Margins(parse_margins(margins)?)
    } else {
        return Err(err("unit record has neither 'campaign' nor 'margins'"));
    };
    let quarantined = match root.get("quarantined") {
        None => None,
        Some(q) => Some(
            q.require("attempts")?
                .as_arr()?
                .iter()
                .map(|r| Ok(r.as_str()?.to_string()))
                .collect::<Result<Vec<_>, MergeError>>()?,
        ),
    };
    Ok(SweepUnitRecord {
        point,
        cell,
        payload,
        quarantined,
    })
}

/// Reassembles completed sweep units into the full [`SweepReport`].
///
/// `labels` are the sweep's point labels in order and `cells_per_point` the
/// campaign's total cell count per point
/// ([`CampaignReport::total_cells`]). The units must cover every
/// `(point, cell)` coordinate exactly once — plus, in auto-margin mode,
/// exactly one calibration unit per point — in any order. Because each
/// cell unit ran with the same derived seed the sequential sweep would
/// have used, the assembled report renders **byte-identically** to
/// [`run_sweep`](crate::sweep::run_sweep) at the same seed.
///
/// # Errors
///
/// Returns [`MergeError`] on missing or duplicate units, units outside the
/// sweep's coordinates, mismatched campaign metadata between a point's
/// cells, or calibration units inconsistent with the margin mode.
pub fn assemble_sweep(
    margin: MarginMode,
    labels: &[String],
    cells_per_point: usize,
    units: &[SweepUnitRecord],
) -> Result<SweepReport, MergeError> {
    let mut cells: Vec<Vec<(String, ParsedReport)>> = vec![Vec::new(); labels.len()];
    let mut margins: Vec<Option<Vec<(CampaignDesign, f64)>>> = vec![None; labels.len()];
    for unit in units {
        if unit.point >= labels.len() {
            return Err(err(format!(
                "unit point {} out of range (sweep has {} point(s))",
                unit.point,
                labels.len()
            )));
        }
        let label = &labels[unit.point];
        match &unit.payload {
            SweepUnitPayload::Cell(parsed) => {
                if unit.cell >= cells_per_point {
                    return Err(err(format!(
                        "point {} ({label}): cell {} out of range (campaign has {} cell(s))",
                        unit.point, unit.cell, cells_per_point
                    )));
                }
                cells[unit.point].push((
                    format!("unit ({},{})", unit.point, unit.cell),
                    parsed.clone(),
                ));
            }
            SweepUnitPayload::Margins(m) => {
                if matches!(margin, MarginMode::Fixed(_)) {
                    return Err(err(format!(
                        "point {} ({label}): calibration unit present but margin mode is fixed",
                        unit.point
                    )));
                }
                if unit.cell != cells_per_point {
                    return Err(err(format!(
                        "point {} ({label}): calibration unit at cell {} (expected {})",
                        unit.point, unit.cell, cells_per_point
                    )));
                }
                if margins[unit.point].is_some() {
                    return Err(err(format!(
                        "point {} ({label}): duplicate calibration unit",
                        unit.point
                    )));
                }
                margins[unit.point] = Some(m.clone());
            }
        }
    }

    let mut parts: Vec<SweepPointParts> = Vec::with_capacity(labels.len());
    for (point, (label, point_cells)) in labels.iter().zip(cells).enumerate() {
        let report = merge_reports_named(&point_cells)
            .map_err(|e| err(format!("point {point} ({label}): {e}")))?;
        // Every point runs the *same* campaign at a different noise
        // model; a seed/shots/design mismatch across points means the
        // units came from different sweeps.
        if let Some(reference) = parts.first() {
            if different_campaign(&report, &reference.report) {
                return Err(err(format!(
                    "point {point} ({label}) belongs to a different campaign than \
                     point 0 ({}) (check seed/shots/designs/mutant count)",
                    reference.label
                )));
            }
        }
        if report.total_cells() != cells_per_point {
            return Err(err(format!(
                "point {point} ({label}): campaign has {} cell(s), sweep manifest says {}",
                report.total_cells(),
                cells_per_point
            )));
        }
        let point_margins = match margin {
            MarginMode::Fixed(_) => None,
            MarginMode::Auto { .. } => Some(margins[point].take().ok_or_else(|| {
                err(format!("point {point} ({label}): missing calibration unit"))
            })?),
        };
        parts.push(SweepPointParts {
            label: label.clone(),
            report,
            margins: point_margins,
        });
    }
    let mut report = assemble_sweep_report(margin, parts);
    // Quarantined units assemble as named skips: their placeholder
    // payloads merged like any other unit above; here their annotations
    // are collected in deterministic (point, cell) order so the listing is
    // identical regardless of scan or worker order.
    let mut quarantined: Vec<QuarantinedUnit> = units
        .iter()
        .filter_map(|unit| {
            unit.quarantined.as_ref().map(|attempts| QuarantinedUnit {
                label: labels[unit.point].clone(),
                point: unit.point,
                cell: unit.cell,
                attempts: attempts.clone(),
            })
        })
        .collect();
    quarantined.sort_by_key(|a| (a.point, a.cell));
    report.quarantined = quarantined;
    Ok(report)
}

// ---------------------------------------------------------------------------
// Sweep partials (`--sweep --shard i/n`)
// ---------------------------------------------------------------------------

/// One shard of a distributed sweep: the units a single
/// `qra campaign --sweep --shard i/n` invocation computed, plus the sweep
/// coordinates needed to validate reassembly.
#[derive(Debug, Clone)]
pub struct SweepPartial {
    /// How the sweep derives margins (must match across shards).
    pub margin: MarginMode,
    /// The sweep's point labels, in order (must match across shards).
    pub labels: Vec<String>,
    /// Campaign cells per point (must match across shards).
    pub cells_per_point: usize,
    /// This shard's slice of the unit list, `i/n` over the global unit
    /// index `point * units_per_point + cell`.
    pub shard: Shard,
    /// The completed units.
    pub units: Vec<SweepUnitRecord>,
}

impl SweepPartial {
    /// Serializes the partial; [`parse_sweep_partial`] reloads it.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"sweep_partial\":true,");
        let _ = write!(
            out,
            "\"margin\":{},\"cells_per_point\":{},\"shard\":{{\"index\":{},\"count\":{}}},\"labels\":[",
            json_str(&self.margin.to_string()),
            self.cells_per_point,
            self.shard.index,
            self.shard.count
        );
        for (i, label) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(label));
        }
        out.push_str("],\"units\":[");
        for (i, unit) in self.units.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&unit.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Returns whether `text` looks like a [`SweepPartial`] (as opposed to a
/// campaign report) without fully parsing it.
pub fn is_sweep_partial(text: &str) -> bool {
    text.trim_start()
        .strip_prefix('{')
        .is_some_and(|rest| rest.trim_start().starts_with("\"sweep_partial\""))
}

/// Reloads a sweep partial serialized by [`SweepPartial::to_json`].
///
/// # Errors
///
/// Returns [`MergeError`] on malformed JSON or missing/ill-typed fields.
pub fn parse_sweep_partial(text: &str) -> Result<SweepPartial, MergeError> {
    let root = json::parse(text)?;
    if root.get("sweep_partial").is_none() {
        return Err(err("not a sweep partial (missing 'sweep_partial' marker)"));
    }
    let margin: MarginMode = root
        .require("margin")?
        .as_str()?
        .parse()
        .map_err(|e: String| err(e))?;
    let labels = root
        .require("labels")?
        .as_arr()?
        .iter()
        .map(|l| Ok(l.as_str()?.to_string()))
        .collect::<Result<Vec<_>, MergeError>>()?;
    let shard_v = root.require("shard")?;
    let shard = Shard::new(
        shard_v.require("index")?.as_usize()?,
        shard_v.require("count")?.as_usize()?,
    )
    .map_err(err)?;
    let units = root
        .require("units")?
        .as_arr()?
        .iter()
        .map(parse_unit_value)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(SweepPartial {
        margin,
        labels,
        cells_per_point: root.require("cells_per_point")?.as_usize()?,
        shard,
        units,
    })
}

/// Merges sweep partials into the full [`SweepReport`]. Each partial is
/// labelled with its source (typically the file name) so mismatch errors
/// name the offending input.
///
/// # Errors
///
/// Returns [`MergeError`] when the partials disagree on sweep coordinates
/// (margin mode, point labels, cells per point) or their units do not
/// cover the sweep exactly once.
pub fn merge_sweep_partials_named(
    partials: &[(String, SweepPartial)],
) -> Result<SweepReport, MergeError> {
    let (first_label, first) = partials
        .first()
        .ok_or_else(|| err("no sweep partials to merge"))?;
    for (label, partial) in partials.iter().skip(1) {
        if partial.margin != first.margin
            || partial.labels != first.labels
            || partial.cells_per_point != first.cells_per_point
        {
            return Err(err(format!(
                "{label} belongs to a different sweep than {first_label} \
                 (check margin/points/mutant count)"
            )));
        }
    }
    // The header check above can't see the campaign identity (it lives in
    // the cell payloads), so compare every cell unit against the first one
    // found — this names the offending *file*, which the pooled
    // per-point/cross-point checks in `assemble_sweep` cannot.
    let mut reference: Option<(&str, &ParsedReport)> = None;
    for (label, partial) in partials {
        for unit in &partial.units {
            if let SweepUnitPayload::Cell(parsed) = &unit.payload {
                match reference {
                    None => reference = Some((label, parsed)),
                    Some((ref_label, ref_parsed)) => {
                        if different_campaign(&parsed.report, &ref_parsed.report) {
                            return Err(err(format!(
                                "{label}: unit ({},{}) belongs to a different campaign \
                                 than {ref_label} (check seed/shots/designs/mutant count)",
                                unit.point, unit.cell
                            )));
                        }
                    }
                }
            }
        }
    }
    let units: Vec<SweepUnitRecord> = partials
        .iter()
        .flat_map(|(_, p)| p.units.iter().cloned())
        .collect();
    assemble_sweep(first.margin, &first.labels, first.cells_per_point, &units)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_rejects_empty_mismatched_and_incomplete() {
        assert!(merge_reports(&[]).is_err());
        assert!(merge_sweep_partials_named(&[]).is_err());
    }

    #[test]
    fn unit_record_round_trips_margins() {
        let record = SweepUnitRecord {
            point: 2,
            cell: 6,
            payload: SweepUnitPayload::Margins(vec![
                (CampaignDesign::Ndd, 0.015625),
                (CampaignDesign::Stat, 1.0 / 3.0),
            ]),
            quarantined: None,
        };
        let json = record.to_json();
        let back = parse_unit_record(&json).unwrap();
        assert_eq!(back.point, 2);
        assert_eq!(back.cell, 6);
        match &back.payload {
            SweepUnitPayload::Margins(m) => {
                assert_eq!(m.len(), 2);
                assert_eq!(m[0].0, CampaignDesign::Ndd);
                assert_eq!(m[0].1.to_bits(), 0.015625f64.to_bits());
                assert_eq!(m[1].1.to_bits(), (1.0f64 / 3.0).to_bits());
            }
            other => panic!("expected margins, got {other:?}"),
        }
        // Serialization is stable through a round trip.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn unit_record_rejects_unknown_payloads() {
        assert!(parse_unit_record("{\"point\":0,\"cell\":0}").is_err());
        assert!(parse_unit_record("not json").is_err());
        // A quarantine annotation must carry its attempt list.
        assert!(
            parse_unit_record("{\"point\":0,\"cell\":0,\"margins\":[],\"quarantined\":{}}")
                .is_err()
        );
    }

    #[test]
    fn quarantined_unit_record_round_trips() {
        let record = SweepUnitRecord {
            point: 1,
            cell: 4,
            payload: SweepUnitPayload::Margins(vec![]),
            quarantined: Some(vec![
                "worker died before recording the unit".to_string(),
                "unit execution exceeded the 2000ms unit timeout".to_string(),
            ]),
        };
        let json = record.to_json();
        assert!(json.contains("\"quarantined\":{\"attempts\":["), "{json}");
        let back = parse_unit_record(&json).unwrap();
        let attempts = back.quarantined.as_ref().unwrap();
        assert_eq!(attempts.len(), 2);
        assert!(attempts[0].contains("worker died"));
        // Serialization is stable through a round trip.
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn sweep_partial_detection_is_cheap_and_specific() {
        assert!(is_sweep_partial(
            "{\"sweep_partial\":true,\"margin\":\"0.02\"}"
        ));
        assert!(is_sweep_partial("  {\n  \"sweep_partial\": true}"));
        assert!(!is_sweep_partial("{\"num_qubits\":2}"));
        assert!(!is_sweep_partial("[1,2]"));
    }

    #[test]
    fn assemble_rejects_out_of_range_and_mode_mismatch() {
        let labels = vec!["ideal".to_string()];
        let margin_unit = SweepUnitRecord {
            point: 0,
            cell: 4,
            payload: SweepUnitPayload::Margins(vec![(CampaignDesign::Ndd, 0.01)]),
            quarantined: None,
        };
        // Calibration unit under a fixed margin is a contract violation.
        let e = assemble_sweep(
            MarginMode::Fixed(0.02),
            &labels,
            4,
            std::slice::from_ref(&margin_unit),
        )
        .unwrap_err();
        assert!(e.0.contains("margin mode is fixed"), "{e}");
        // Out-of-range point.
        let stray = SweepUnitRecord {
            point: 3,
            ..margin_unit.clone()
        };
        let e = assemble_sweep(MarginMode::auto(), &labels, 4, &[stray]).unwrap_err();
        assert!(e.0.contains("point 3 out of range"), "{e}");
        // Misplaced calibration cell index.
        let misplaced = SweepUnitRecord {
            cell: 2,
            ..margin_unit
        };
        let e = assemble_sweep(MarginMode::auto(), &labels, 4, &[misplaced]).unwrap_err();
        assert!(e.0.contains("calibration unit at cell 2"), "{e}");
    }
}
