//! Property test for distributed sweep reassembly: any random partition
//! of a sweep's `(point × cell)` unit grid into k shards — executed
//! unit-by-unit exactly as the orchestrator's workers do — merges into a
//! [`SweepReport`] byte-identical to the sequential `run_sweep`, in both
//! margin modes, even when cells fail, retries are exhausted and rates
//! are NaN.

use qra_algorithms::states;
use qra_core::StateSpec;
use qra_faults::{
    auto_margins, cell_record_json, default_executor, margin_record_json,
    merge_sweep_partials_named, parse_sweep_partial, parse_unit_record, run_campaign_with_executor,
    run_sweep_with_executor, CampaignConfig, CampaignDesign, Executor, FaultInjector, MarginMode,
    Mutant, Shard, SweepConfig, SweepPartial, SweepPoint, SweepUnitRecord,
};
use qra_sim::{DevicePreset, SimError};

/// Seeded xorshift64* — the test's only randomness source, so every run
/// explores the same partitions.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

struct SweepInputs {
    program: qra_circuit::Circuit,
    qubits: Vec<usize>,
    spec: StateSpec,
    mutants: Vec<Mutant>,
    config: SweepConfig,
}

fn inputs(margin: MarginMode) -> SweepInputs {
    let program = states::ghz(2);
    let spec = StateSpec::pure(states::ghz_vector(2)).unwrap();
    let mutants: Vec<Mutant> = FaultInjector::new(21)
        .enumerate_single(&program)
        .into_iter()
        .take(3)
        .collect();
    let config = SweepConfig {
        points: vec![
            SweepPoint::preset(DevicePreset::Ideal),
            SweepPoint::preset(DevicePreset::LowNoise),
        ],
        base: CampaignConfig {
            shots: 64,
            seed: 21,
            designs: vec![CampaignDesign::Ndd, CampaignDesign::Stat],
            jobs: 1,
            max_retries: 0,
            ..CampaignConfig::default()
        },
        margin,
    };
    SweepInputs {
        program,
        qubits: vec![0, 1],
        spec,
        mutants,
        config,
    }
}

/// An executor that deterministically fails some cells: panics on one seed
/// class, NaN-errors another, and degrades to the real backends otherwise.
/// Failures depend only on the cell's derived seed, so the sequential
/// sweep and every distributed execution fail identically.
fn flaky(
    circuit: &qra_circuit::Circuit,
    config: &CampaignConfig,
    seed: u64,
) -> Result<(qra_sim::Counts, qra_faults::BackendKind), SimError> {
    match seed % 7 {
        0 => panic!("injected panic"),
        1 => Err(SimError::InvalidProbability { value: f64::NAN }),
        _ => default_executor(circuit, config, seed),
    }
}

/// Executes the sweep's whole unit grid one unit at a time — the same
/// single-cell shard and calibration recipe the CLI's workers run — and
/// round-trips every record through its JSONL serialization.
fn unit_records(inp: &SweepInputs, executor: &Executor<'_>) -> (Vec<SweepUnitRecord>, usize) {
    let cells_per_point = inp.config.base.designs.len() * (1 + inp.mutants.len());
    let mut units = Vec::new();
    for (point, sweep_point) in inp.config.points.iter().enumerate() {
        let point_config = CampaignConfig {
            noise: sweep_point.noise.clone(),
            ..inp.config.base.clone()
        };
        if let MarginMode::Auto { repeats, z } = inp.config.margin {
            let margins = auto_margins(&point_config, point, repeats, z, |cfg| {
                run_campaign_with_executor(&inp.program, &inp.qubits, &inp.spec, &[], cfg, executor)
            });
            let line = margin_record_json(point, cells_per_point, &margins);
            units.push(parse_unit_record(&line).unwrap());
        }
        for cell in 0..cells_per_point {
            let config = CampaignConfig {
                shard: Some(Shard {
                    index: cell,
                    count: cells_per_point,
                }),
                ..point_config.clone()
            };
            let report = run_campaign_with_executor(
                &inp.program,
                &inp.qubits,
                &inp.spec,
                &inp.mutants,
                &config,
                executor,
            );
            let line = cell_record_json(point, cell, &report);
            units.push(parse_unit_record(&line).unwrap());
        }
    }
    (units, cells_per_point)
}

fn assert_partitions_merge_identically(margin: MarginMode, executor: &Executor<'_>, rng: &mut u64) {
    let inp = inputs(margin);
    let sequential = run_sweep_with_executor(
        &inp.program,
        &inp.qubits,
        &inp.spec,
        &inp.mutants,
        &inp.config,
        executor,
    );
    let expected_json = sequential.to_json();
    let expected_text = sequential.render_text();

    let (units, cells_per_point) = unit_records(&inp, executor);
    let labels: Vec<String> = inp.config.points.iter().map(|p| p.label.clone()).collect();

    for trial in 0..3 {
        let k = 2 + trial % 2;
        // Random assignment of units to shards, in random order.
        let mut order: Vec<usize> = (0..units.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, (next(rng) % (i as u64 + 1)) as usize);
        }
        let mut shards: Vec<Vec<SweepUnitRecord>> = vec![Vec::new(); k];
        for &u in &order {
            shards[(next(rng) % k as u64) as usize].push(units[u].clone());
        }
        let partials: Vec<(String, SweepPartial)> = shards
            .into_iter()
            .enumerate()
            .map(|(index, shard_units)| {
                let partial = SweepPartial {
                    margin,
                    labels: labels.clone(),
                    cells_per_point,
                    shard: Shard { index, count: k },
                    units: shard_units,
                };
                // Round-trip through the on-disk format, as `campaign
                // merge` would see it.
                let reloaded = parse_sweep_partial(&partial.to_json()).unwrap();
                (format!("shard{index}.json"), reloaded)
            })
            .collect();
        let merged = merge_sweep_partials_named(&partials).unwrap();
        assert_eq!(
            merged.to_json(),
            expected_json,
            "margin {margin:?}, trial {trial}: JSON must be byte-identical"
        );
        assert_eq!(
            merged.render_text(),
            expected_text,
            "margin {margin:?}, trial {trial}: text must be byte-identical"
        );

        // Dropping any single unit is an explicit error, never a gap.
        let victim = (next(rng) as usize) % units.len();
        let mut incomplete: Vec<SweepUnitRecord> = units.clone();
        incomplete.remove(victim);
        let partial = SweepPartial {
            margin,
            labels: labels.clone(),
            cells_per_point,
            shard: Shard { index: 0, count: 1 },
            units: incomplete,
        };
        let e = merge_sweep_partials_named(&[("only.json".into(), partial)]).unwrap_err();
        assert!(e.to_string().contains("point"), "{e}");
    }
}

#[test]
fn random_partitions_merge_byte_identically_fixed_margin() {
    let mut rng = 0xDEAD_BEEF_CAFE_0001;
    assert_partitions_merge_identically(MarginMode::Fixed(0.02), &default_executor, &mut rng);
}

#[test]
fn random_partitions_merge_byte_identically_auto_margin() {
    let mut rng = 0xDEAD_BEEF_CAFE_0002;
    assert_partitions_merge_identically(
        MarginMode::Auto { repeats: 2, z: 2.0 },
        &default_executor,
        &mut rng,
    );
}

/// Partials whose shard boundary happens to align with a point boundary
/// still must not merge units from different campaigns: each point would
/// be internally consistent, so only the cross-campaign check (which
/// names the offending file) catches the mix.
#[test]
fn merge_rejects_partials_from_different_seeds_naming_the_file() {
    let margin = MarginMode::Fixed(0.02);
    let inp_a = inputs(margin);
    let mut inp_b = inputs(margin);
    inp_b.config.base.seed = 22;
    let (units_a, cells_per_point) = unit_records(&inp_a, &default_executor);
    let (units_b, _) = unit_records(&inp_b, &default_executor);
    let labels: Vec<String> = inp_a
        .config
        .points
        .iter()
        .map(|p| p.label.clone())
        .collect();
    let partial = |index: usize, units: Vec<SweepUnitRecord>| SweepPartial {
        margin,
        labels: labels.clone(),
        cells_per_point,
        shard: Shard { index, count: 2 },
        units,
    };
    // File A carries all of point 0 at seed 21; file B all of point 1 at
    // seed 22 — every per-point merge is self-consistent.
    let a: Vec<SweepUnitRecord> = units_a.iter().filter(|u| u.point == 0).cloned().collect();
    let b: Vec<SweepUnitRecord> = units_b.iter().filter(|u| u.point == 1).cloned().collect();
    let e = merge_sweep_partials_named(&[
        ("a.json".into(), partial(0, a)),
        ("b.json".into(), partial(1, b)),
    ])
    .unwrap_err();
    assert!(
        e.to_string().contains("b.json") && e.to_string().contains("different campaign"),
        "{e}"
    );
}

#[test]
fn random_partitions_merge_byte_identically_with_failures_and_nan() {
    let mut rng = 0xDEAD_BEEF_CAFE_0003;
    assert_partitions_merge_identically(MarginMode::Fixed(0.02), &flaky, &mut rng);
    assert_partitions_merge_identically(MarginMode::Auto { repeats: 3, z: 1.5 }, &flaky, &mut rng);
}
