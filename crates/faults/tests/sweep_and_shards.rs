//! Integration tests for sharded campaigns and noise sweeps: shard
//! reports merge back into output byte-identical to the unsharded run,
//! serialized reports survive a parse round-trip (including failures,
//! skips and NaN rates), and sweeps derive their detection thresholds
//! from each point's false-positive floor.

use qra_algorithms::states;
use qra_core::StateSpec;
use qra_faults::{
    merge_reports, parse_report, run_campaign, run_campaign_with_executor, run_sweep,
    CampaignConfig, CampaignDesign, FaultInjector, MarginMode, Shard, SweepConfig, SweepPoint,
};
use qra_sim::{DevicePreset, SimError};
use std::time::Duration;

fn ghz_campaign_inputs() -> (
    qra_circuit::Circuit,
    StateSpec,
    Vec<qra_faults::Mutant>,
    CampaignConfig,
) {
    let program = states::ghz(2);
    let spec = StateSpec::pure(states::ghz_vector(2)).unwrap();
    let mutants = FaultInjector::new(13).enumerate_single(&program);
    let config = CampaignConfig {
        shots: 128,
        seed: 13,
        designs: vec![
            CampaignDesign::Swap,
            CampaignDesign::Ndd,
            CampaignDesign::Stat,
        ],
        jobs: 1,
        ..CampaignConfig::default()
    };
    (program, spec, mutants, config)
}

#[test]
fn three_shards_merge_byte_identically_to_the_unsharded_run() {
    let (program, spec, mutants, config) = ghz_campaign_inputs();
    let qubits = [0, 1];
    let full = run_campaign(&program, &qubits, &spec, &mutants, &config);

    let mut parsed = Vec::new();
    for index in 0..3 {
        let shard_config = CampaignConfig {
            shard: Some(Shard { index, count: 3 }),
            ..config.clone()
        };
        let partial = run_campaign(&program, &qubits, &spec, &mutants, &shard_config);
        // Each shard holds exactly its slice of the flattened cell list.
        let (lo, hi) = Shard { index, count: 3 }.bounds(full.total_cells());
        assert_eq!(
            partial.baselines.len() + partial.cells.len(),
            hi - lo,
            "shard {index} cell count"
        );
        // Round-trip through JSON, as the CLI merge path does.
        parsed.push(parse_report(&partial.to_json()).unwrap());
    }

    // Merging in any order reproduces the unsharded rendering byte for
    // byte — JSON and text.
    parsed.rotate_left(1);
    let merged = merge_reports(&parsed).unwrap();
    assert_eq!(merged.to_json(), full.to_json());
    assert_eq!(merged.render_text(), full.render_text());

    // Dropping a shard is an explicit error, never a silent gap.
    let e = merge_reports(&parsed[..2]).unwrap_err();
    assert!(e.to_string().contains("missing"), "{e}");
    // Duplicating one is too.
    let doubled: Vec<_> = parsed
        .iter()
        .cloned()
        .chain(parsed.first().cloned())
        .collect();
    let e = merge_reports(&doubled).unwrap_err();
    assert!(e.to_string().contains("duplicate"), "{e}");
}

#[test]
fn merge_rejects_shards_from_different_campaigns() {
    let (program, spec, mutants, config) = ghz_campaign_inputs();
    let qubits = [0, 1];
    let shard = |index, seed| {
        let cfg = CampaignConfig {
            shard: Some(Shard { index, count: 2 }),
            seed,
            ..config.clone()
        };
        parse_report(&run_campaign(&program, &qubits, &spec, &mutants, &cfg).to_json()).unwrap()
    };
    let e = merge_reports(&[shard(0, 13), shard(1, 14)]).unwrap_err();
    assert!(e.to_string().contains("different campaign"), "{e}");
}

#[test]
fn parse_round_trips_failures_skips_and_nan_rates() {
    let (program, spec, mutants, mut config) = ghz_campaign_inputs();
    config.designs = vec![CampaignDesign::Ndd];
    config.max_retries = 0;
    // An executor that fails the baseline with a panic, errors the first
    // mutant row and stalls long enough afterwards for a deadline skip.
    config.deadline = Some(Duration::from_millis(400));
    let report = run_campaign_with_executor(
        &program,
        &[0, 1],
        &spec,
        &mutants,
        &config,
        &|_, _cfg, seed| match seed % 3 {
            0 => panic!("injected panic"),
            1 => Err(SimError::InvalidProbability { value: f64::NAN }),
            _ => {
                std::thread::sleep(Duration::from_millis(500));
                Err(SimError::InvalidProbability { value: f64::NAN })
            }
        },
    );
    assert!(report.failed() > 0 || report.skipped() > 0);

    let json = report.to_json();
    let parsed = parse_report(&json).unwrap();
    // Re-serializing the reloaded report is byte-identical: opaque errors
    // carry the rendered message, skips carry the reason, and NaN rates
    // round-trip through null.
    assert_eq!(parsed.report.to_json(), json);
    assert_eq!(parsed.report.render_text(), report.render_text());
    // Entry indices enumerate the whole flattened list.
    let total = parsed.baseline_indices.len() + parsed.cell_indices.len();
    assert_eq!(total, report.total_cells());
}

#[test]
fn sweep_thresholds_track_the_false_positive_floor() {
    let (program, spec, mutants, base) = ghz_campaign_inputs();
    let sweep_config = SweepConfig {
        points: vec![
            SweepPoint::preset(DevicePreset::Ideal),
            SweepPoint::preset(DevicePreset::LowNoise),
            SweepPoint::scaled(DevicePreset::LowNoise, 2.0),
        ],
        base,
        margin: MarginMode::Fixed(0.02),
    };
    let sweep = run_sweep(&program, &[0, 1], &spec, &mutants, &sweep_config);
    assert_eq!(sweep.points.len(), 3);

    for point in &sweep.points {
        // Every baseline completed here, so every threshold is derived.
        for t in &point.thresholds {
            let floor = t.floor.expect("baseline completed");
            assert!(
                (t.threshold - (floor + 0.02)).abs() < 1e-12,
                "{}: threshold {} vs floor {}",
                point.label,
                t.threshold,
                floor
            );
        }
        // The derived threshold sits above the floor, so baseline cells
        // are never misclassified as detections at their own point.
        let matrix = point.matrix();
        assert!(!matrix.is_empty());
    }

    // Noise raises the floor: the scaled low-noise point's floor is at
    // least the nominal one's for the noise-sensitive designs.
    let floor_at = |i: usize| sweep.points[i].fp_floor.expect("floor measured");
    assert!(floor_at(2) >= floor_at(0));
}
