//! Integration tests for the worker-pool execution mode: reports are
//! byte-identical for any job count, a panicking executor in parallel
//! mode poisons only its own cell, and the wall-clock deadline binds the
//! in-cell retry loop.

use qra_algorithms::states;
use qra_core::StateSpec;
use qra_faults::{
    default_executor, run_campaign, run_campaign_with_executor, CampaignConfig, CampaignDesign,
    CellError, CellStatus, FaultInjector,
};
use qra_sim::SimError;
use std::time::Duration;

#[test]
fn reports_are_byte_identical_across_job_counts() {
    let program = states::ghz(3);
    let spec = StateSpec::pure(states::ghz_vector(3)).unwrap();
    let qubits = [0, 1, 2];
    let mutants = FaultInjector::new(11).enumerate_single(&program);
    let config = |jobs: usize| CampaignConfig {
        shots: 512,
        seed: 11,
        designs: vec![
            CampaignDesign::Swap,
            CampaignDesign::Ndd,
            CampaignDesign::Stat,
        ],
        jobs,
        ..CampaignConfig::default()
    };

    let serial = run_campaign(&program, &qubits, &spec, &mutants, &config(1));
    let parallel = run_campaign(&program, &qubits, &spec, &mutants, &config(4));

    // Cell seeds derive from (seed, cell index) alone and results are
    // reassembled in index order, so the whole rendered report — JSON and
    // text — is byte-for-byte the same in both modes.
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.render_text(), parallel.render_text());
    assert!(serial.completed() > 0);
    assert_eq!(serial.failed(), 0);
}

#[test]
fn parallel_panic_poisons_only_its_own_cell() {
    let program = states::ghz(2);
    let spec = StateSpec::pure(states::ghz_vector(2)).unwrap();
    let mutants = FaultInjector::new(3).enumerate_single(&program);
    assert!(mutants.len() >= 3);
    let poisoned = mutants[1].circuit.clone();
    let config = CampaignConfig {
        shots: 256,
        designs: vec![CampaignDesign::Ndd],
        jobs: 4,
        ..CampaignConfig::default()
    };

    let report = run_campaign_with_executor(
        &program,
        &[0, 1],
        &spec,
        &mutants,
        &config,
        &move |circuit, cfg, seed| {
            let is_poisoned = circuit
                .instructions()
                .get(..poisoned.len())
                .is_some_and(|prefix| prefix == poisoned.instructions());
            if is_poisoned {
                panic!("worker crash");
            }
            default_executor(circuit, cfg, seed)
        },
    );

    // The panic fails exactly one cell; the worker that caught it keeps
    // draining the queue, so every other cell still completes.
    assert_eq!(report.cells.len(), mutants.len());
    assert_eq!(report.failed(), 1);
    assert_eq!(report.panicked(), 1);
    assert_eq!(report.completed(), mutants.len() - 1);
    let failed = report.cells.iter().find(|c| c.status.is_failed()).unwrap();
    assert_eq!(failed.mutant_id, mutants[1].id);
    match &failed.status {
        CellStatus::Failed {
            error: CellError::Panic(msg),
        } => assert!(msg.contains("worker crash")),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn deadline_bounds_the_retry_loop() {
    let program = states::ghz(2);
    let spec = StateSpec::pure(states::ghz_vector(2)).unwrap();
    let mutants = FaultInjector::new(1).enumerate_single(&program);
    // A pathological sampler that burns wall-clock on every attempt: with
    // effectively unbounded retries, only the deadline can stop the loop.
    let config = CampaignConfig {
        shots: 64,
        max_retries: 10_000,
        deadline: Some(Duration::from_millis(200)),
        designs: vec![CampaignDesign::Ndd],
        jobs: 1,
        ..CampaignConfig::default()
    };
    let report = run_campaign_with_executor(
        &program,
        &[0, 1],
        &spec,
        &mutants[..1],
        &config,
        &|_, _, _| {
            std::thread::sleep(Duration::from_millis(120));
            Err(SimError::InvalidProbability { value: f64::NAN })
        },
    );

    // The first cell (the baseline row) enters the retry loop before the
    // deadline and must be cut off *inside* it, not spin 10 000 times.
    assert!(report.deadline_hit);
    let reasons: Vec<&str> = report
        .baselines
        .iter()
        .map(|b| &b.status)
        .chain(report.cells.iter().map(|c| &c.status))
        .filter_map(|s| match s {
            CellStatus::Skipped { reason } => Some(reason.as_str()),
            _ => None,
        })
        .collect();
    assert!(
        reasons
            .iter()
            .any(|r| r.contains("deadline exceeded during retries")),
        "no cell was cut off mid-retry: {reasons:?}"
    );
    // Nothing is silently dropped: every cell is accounted for.
    assert_eq!(
        report.completed() + report.failed() + report.skipped(),
        report.cells.len()
    );
}
