//! Compiled-program cache integration: campaign cells sharing a circuit
//! reuse one lowered program, and cached execution is byte-identical to
//! compiling fresh per cell (DESIGN.md cache determinism contract).

use std::sync::Arc;

use qra_algorithms::states;
use qra_core::StateSpec;
use qra_faults::{
    default_executor, run_campaign, run_campaign_with_executor, CampaignConfig, CampaignDesign,
};
use qra_sim::ProgramCache;

#[test]
fn cells_sharing_a_circuit_hit_the_cache() {
    let program = states::ghz(3);
    let spec = StateSpec::pure(states::ghz_vector(3)).unwrap();
    let qubits = [0, 1, 2];
    let mutants = qra_faults::FaultInjector::new(5).enumerate_single(&program);
    // Duplicate a mutant: its cells lower circuits already cached by the
    // original's cells, which is exactly the "mutant leaves the design
    // circuit unchanged" shape the cache exists for.
    let mut doubled = mutants.clone();
    doubled.push(mutants[0].clone());

    let cache = Arc::new(ProgramCache::new());
    let config = CampaignConfig {
        shots: 256,
        seed: 9,
        designs: vec![CampaignDesign::Swap, CampaignDesign::Ndd],
        cache: Some(Arc::clone(&cache)),
        ..CampaignConfig::default()
    };
    let report = run_campaign(&program, &qubits, &spec, &doubled, &config);

    assert_eq!(report.failed(), 0);
    // The duplicated mutant contributes one asserted circuit per design,
    // each already lowered for the original mutant.
    assert!(
        cache.hits() >= config.designs.len() as u64,
        "expected >= {} cache hits, got {} (misses {})",
        config.designs.len(),
        cache.hits(),
        cache.misses()
    );
    assert!(cache.entries() > 0);
}

#[test]
fn repeat_campaign_is_all_hits_and_byte_identical() {
    let program = states::ghz(3);
    let spec = StateSpec::pure(states::ghz_vector(3)).unwrap();
    let qubits = [0, 1, 2];
    let mutants = qra_faults::FaultInjector::new(5).enumerate_single(&program);

    let cache = Arc::new(ProgramCache::new());
    let config = CampaignConfig {
        shots: 512,
        seed: 21,
        designs: vec![CampaignDesign::Swap, CampaignDesign::Ndd],
        jobs: 2,
        cache: Some(Arc::clone(&cache)),
        ..CampaignConfig::default()
    };

    // A cache-less reference: strip the cache before the executor sees
    // the config, so every cell compiles fresh.
    let uncached = run_campaign_with_executor(
        &program,
        &qubits,
        &spec,
        &mutants,
        &config,
        &|circuit, cfg, seed| {
            let fresh = CampaignConfig {
                cache: None,
                ..cfg.clone()
            };
            default_executor(circuit, &fresh, seed)
        },
    );

    let first = run_campaign(&program, &qubits, &spec, &mutants, &config);
    let misses_after_first = cache.misses();
    let second = run_campaign(&program, &qubits, &spec, &mutants, &config);

    // Same matrix again: every lowering is already cached.
    assert_eq!(cache.misses(), misses_after_first);
    assert!(cache.hits() > 0);

    // Cached vs fresh compilation must be byte-identical, cache hits or
    // not — the serve daemon's determinism contract rides on this.
    assert_eq!(uncached.to_json(), first.to_json());
    assert_eq!(first.to_json(), second.to_json());
    assert_eq!(first.render_text(), second.render_text());
}
