//! Integration tests for the campaign engine's resilience guarantees and
//! the acceptance-level detection physics: panics stay isolated, width
//! failures stay structured, deadlines yield well-formed partial reports,
//! and the three assertion designs all catch the sign-flip mutant class
//! on GHZ with zero false positives on the noiseless backend.

use qra_algorithms::states;
use qra_core::{AssertionError, StateSpec};
use qra_faults::{
    default_executor, run_campaign, run_campaign_with_executor, BackendKind, CampaignConfig,
    CampaignDesign, CampaignReport, CellError, CellStatus, FaultInjector, FaultKind,
};
use qra_sim::SimError;
use std::time::Duration;

fn ghz_campaign(n: usize, config: &CampaignConfig) -> CampaignReport {
    let program = states::ghz(n);
    let spec = StateSpec::pure(states::ghz_vector(n)).unwrap();
    let qubits: Vec<usize> = (0..n).collect();
    let mutants = FaultInjector::new(config.seed).enumerate_single(&program);
    run_campaign(&program, &qubits, &spec, &mutants, config)
}

#[test]
fn ghz_sign_flip_class_detected_by_all_designs_with_zero_false_positives() {
    let config = CampaignConfig {
        shots: 2048,
        seed: 42,
        designs: vec![
            CampaignDesign::Swap,
            CampaignDesign::LogicalOr,
            CampaignDesign::Ndd,
        ],
        ..CampaignConfig::default()
    };
    let report = ghz_campaign(3, &config);

    // No cell may be lost: every mutant × design pair is accounted for.
    assert_eq!(report.cells.len(), report.mutant_count * 3);
    assert_eq!(report.failed(), 0, "{}", report.render_text());
    assert_eq!(report.skipped(), 0);

    // The sign-flip classes: off-by-π on the GHZ prep (Bug1) and stray Z
    // after an entangler. Every design must see per-shot error > 0.4.
    let matrix = report.detection_matrix();
    for class in ["angle-off-by-pi", "stray-z"] {
        let row = &matrix[class];
        for (design, stat) in row {
            assert!(stat.completed > 0, "{class} × {design} never completed");
            assert!(
                stat.max_error_rate > 0.4,
                "{class} × {design}: max error rate {} ≤ 0.4",
                stat.max_error_rate
            );
        }
    }

    // Unmutated program: zero false positives on the noiseless backend.
    for design in &config.designs {
        assert_eq!(
            report.false_positive_rate(*design),
            Some(0.0),
            "{design} flagged the correct program"
        );
        // Gate-cost overhead is reported for every design.
        assert!(report.overhead(*design).unwrap() > 0.0);
    }
}

#[test]
fn campaign_is_reproducible_for_a_fixed_seed() {
    let config = CampaignConfig {
        shots: 512,
        seed: 9,
        designs: vec![CampaignDesign::Ndd],
        ..CampaignConfig::default()
    };
    let a = ghz_campaign(3, &config);
    let b = ghz_campaign(3, &config);
    assert_eq!(a.cells.len(), b.cells.len());
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.mutant_id, y.mutant_id);
        match (&x.status, &y.status) {
            (
                CellStatus::Completed { error_rate: ex, .. },
                CellStatus::Completed { error_rate: ey, .. },
            ) => assert_eq!(ex, ey, "mutant {} diverged across runs", x.mutant_id),
            (sx, sy) => panic!("non-completed cells {sx:?} / {sy:?}"),
        }
    }
    // A different seed actually changes sampled rates somewhere.
    let c = ghz_campaign(3, &CampaignConfig { seed: 10, ..config });
    let diverged = a.cells.iter().zip(&c.cells).any(|(x, y)| {
        matches!(
            (&x.status, &y.status),
            (
                CellStatus::Completed { error_rate: ex, .. },
                CellStatus::Completed { error_rate: ey, .. }
            ) if ex != ey
        )
    });
    assert!(diverged, "seed change had no observable effect");
}

#[test]
fn panicking_mutant_is_failed_without_aborting_the_rest() {
    let program = states::ghz(2);
    let spec = StateSpec::pure(states::ghz_vector(2)).unwrap();
    let mutants = FaultInjector::new(3).enumerate_single(&program);
    assert!(mutants.len() >= 3);
    let poisoned = mutants[1].circuit.clone();
    let config = CampaignConfig {
        shots: 256,
        designs: vec![CampaignDesign::Ndd],
        ..CampaignConfig::default()
    };

    // The executor panics for exactly one mutant's circuits (the asserted
    // circuit embeds the mutant's instructions as a prefix).
    let report = run_campaign_with_executor(
        &program,
        &[0, 1],
        &spec,
        &mutants,
        &config,
        &move |circuit, cfg, seed| {
            let is_poisoned = circuit
                .instructions()
                .get(..poisoned.len())
                .is_some_and(|prefix| prefix == poisoned.instructions());
            if is_poisoned {
                panic!("injected backend crash");
            }
            default_executor(circuit, cfg, seed)
        },
    );

    // A crash is a failure, not a benign skip: it must show up in
    // failed()/panicked(), never alongside deadline skips.
    assert_eq!(report.cells.len(), mutants.len());
    assert_eq!(report.failed(), 1);
    assert_eq!(report.panicked(), 1);
    assert_eq!(report.skipped(), 0);
    assert_eq!(report.completed(), mutants.len() - 1);
    let failed = report.cells.iter().find(|c| c.status.is_failed()).unwrap();
    assert_eq!(failed.mutant_id, mutants[1].id);
    match &failed.status {
        CellStatus::Failed {
            error: CellError::Panic(msg),
        } => assert!(msg.contains("injected backend crash"), "message: {msg}"),
        other => panic!("unexpected {other:?}"),
    }
    // The report renders the crash explicitly, as a failure.
    let text = report.render_text();
    assert!(text.contains("failed: panicked: injected backend crash"));
    assert!(text.contains("(1 panicked)"));
    assert!(report
        .to_json()
        .contains("\"kind\":\"failed\",\"panic\":true"));
}

#[test]
fn too_many_qubits_surfaces_as_structured_error_through_the_runner() {
    // A program one qubit past the unified statevector/trajectory width
    // ceiling, spec on the first 2 qubits only (so synthesis stays
    // small), noisy config with a starved memory budget: the runner
    // degrades to the trajectory backend, which rejects at lowering time
    // citing its actual ceiling.
    let mut program = states::ghz(2);
    program.expand_qubits(qra_sim::exec::MAX_QUBITS + 1);
    let spec = StateSpec::pure(states::ghz_vector(2)).unwrap();
    let mutants = FaultInjector::new(5).enumerate_single(&program);
    let config = CampaignConfig {
        shots: 8,
        designs: vec![CampaignDesign::Ndd],
        noise: qra_sim::DevicePreset::LowNoise.noise_model(),
        memory_budget_bytes: 1,
        ..CampaignConfig::default()
    };
    let report = run_campaign(&program, &[0, 1], &spec, &mutants, &config);

    // Nothing aborts, nothing is lost: every cell is reported, each as a
    // structured TooManyQubits failure.
    assert_eq!(report.cells.len(), mutants.len());
    assert_eq!(report.failed(), report.cells.len());
    for cell in &report.cells {
        match &cell.status {
            CellStatus::Failed {
                error:
                    CellError::Assertion(AssertionError::Sim(SimError::TooManyQubits {
                        num_qubits,
                        max,
                    })),
            } => {
                assert!(*num_qubits > qra_sim::exec::MAX_QUBITS);
                assert_eq!(*max, qra_sim::exec::MAX_QUBITS);
            }
            other => panic!("expected structured TooManyQubits, got {other:?}"),
        }
    }
    assert!(report.to_json().contains("exceeds simulator limit"));
}

#[test]
fn zero_deadline_yields_empty_but_well_formed_partial_report() {
    let config = CampaignConfig {
        shots: 256,
        deadline: Some(Duration::ZERO),
        designs: vec![CampaignDesign::Swap, CampaignDesign::Ndd],
        ..CampaignConfig::default()
    };
    let report = ghz_campaign(3, &config);

    assert!(report.deadline_hit);
    assert_eq!(report.completed(), 0);
    assert_eq!(report.failed(), 0);
    assert_eq!(report.skipped(), report.cells.len());
    // Baselines are skipped too — explicitly, not dropped.
    assert_eq!(report.baselines.len(), 2);
    for b in &report.baselines {
        assert!(b.status.is_skipped());
    }
    assert_eq!(report.false_positive_rate(CampaignDesign::Swap), None);
    // Rendering still works and says what happened.
    let text = report.render_text();
    assert!(text.contains("deadline hit"));
    assert!(text.contains("skipped: deadline exceeded"));
    let json = report.to_json();
    assert!(json.contains("\"deadline_hit\":true"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}

#[test]
fn bounded_retry_recovers_from_sampler_pathologies() {
    let program = states::ghz(2);
    let spec = StateSpec::pure(states::ghz_vector(2)).unwrap();
    let mutants = FaultInjector::new(1).enumerate_single(&program);
    // jobs = 1: the attempt-count-keyed executor below depends on the
    // serial cell order (the baseline row runs first).
    let config = CampaignConfig {
        shots: 128,
        max_retries: 2,
        designs: vec![CampaignDesign::Ndd],
        jobs: 1,
        ..CampaignConfig::default()
    };

    // Fail the first attempt of every cell with a retryable error.
    // Executors are shared across workers, so interior state lives behind
    // a Mutex, not a RefCell.
    use std::sync::Mutex;
    let failed_once: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let report = run_campaign_with_executor(
        &program,
        &[0, 1],
        &spec,
        &mutants,
        &config,
        &|circuit, cfg, seed| {
            let mut seen = failed_once.lock().unwrap();
            if !seen.contains(&seed) {
                seen.push(seed);
                return Err(SimError::InvalidProbability { value: f64::NAN });
            }
            drop(seen);
            default_executor(circuit, cfg, seed)
        },
    );

    // Wait: each retry uses a *different* derived seed, so the executor
    // above fails every attempt. With max_retries = 2 each cell fails
    // after 3 attempts — unless retries re-present a known seed. Assert
    // the bounded behaviour precisely instead:
    for cell in &report.cells {
        match &cell.status {
            CellStatus::Failed {
                error:
                    CellError::Assertion(AssertionError::Sim(SimError::InvalidProbability { .. })),
            } => {}
            other => panic!("expected bounded retry exhaustion, got {other:?}"),
        }
    }

    // And when the pathology is transient (keyed on attempt count, not
    // seed), the retry loop recovers and reports how many were needed.
    let attempts: Mutex<u32> = Mutex::new(0);
    let report = run_campaign_with_executor(
        &program,
        &[0, 1],
        &spec,
        &mutants[..1],
        &config,
        &|circuit, cfg, seed| {
            let mut n = attempts.lock().unwrap();
            *n += 1;
            if *n == 1 {
                return Err(SimError::InvalidProbability { value: 2.0 });
            }
            drop(n);
            default_executor(circuit, cfg, seed)
        },
    );
    // The first cell executed (the baseline row) absorbed the failure and
    // retried; every cell completed.
    assert_eq!(report.failed(), 0);
    assert_eq!(report.skipped(), 0);
    let retried = report
        .baselines
        .iter()
        .filter_map(|b| match b.status {
            CellStatus::Completed { retries, .. } => Some(retries),
            _ => None,
        })
        .sum::<u32>();
    assert_eq!(retried, 1, "exactly one retry should have been recorded");
}

#[test]
fn noisy_backend_degradation_is_visible_in_the_report() {
    let config = CampaignConfig {
        shots: 64,
        designs: vec![CampaignDesign::Ndd],
        noise: qra_sim::DevicePreset::LowNoise.noise_model(),
        memory_budget_bytes: 1, // force trajectory
        ..CampaignConfig::default()
    };
    let report = ghz_campaign(2, &config);
    assert!(report.completed() > 0);
    for cell in &report.cells {
        if let CellStatus::Completed { backend, .. } = cell.status {
            assert_eq!(backend, BackendKind::Trajectory);
        }
    }
    assert!(report.to_json().contains("\"backend\":\"trajectory\""));
}

#[test]
fn double_fault_mutants_run_through_the_same_pipeline() {
    let program = states::ghz(3);
    let spec = StateSpec::pure(states::ghz_vector(3)).unwrap();
    let mutants = FaultInjector::new(21).sample_double(&program, 4);
    assert_eq!(mutants.len(), 4);
    let config = CampaignConfig {
        shots: 256,
        designs: vec![CampaignDesign::Ndd],
        ..CampaignConfig::default()
    };
    let report = run_campaign(&program, &[0, 1, 2], &spec, &mutants, &config);
    assert_eq!(report.cells.len(), 4);
    assert_eq!(report.failed() + report.skipped(), 0);
    for cell in &report.cells {
        assert!(cell.kind_label.contains('+'));
    }
}

#[test]
fn stat_baseline_misses_sign_flips_that_assertions_catch() {
    // The statistical baseline compares distributions only, so the
    // sign-flip class is invisible to it — the motivating gap the paper's
    // designs close.
    let config = CampaignConfig {
        shots: 4096,
        seed: 8,
        designs: vec![CampaignDesign::Ndd, CampaignDesign::Stat],
        ..CampaignConfig::default()
    };
    let report = ghz_campaign(3, &config);
    let matrix = report.detection_matrix();
    let row = &matrix["angle-off-by-pi"];
    let ndd = row
        .iter()
        .find(|(d, _)| *d == CampaignDesign::Ndd)
        .unwrap()
        .1;
    let stat = row
        .iter()
        .find(|(d, _)| *d == CampaignDesign::Stat)
        .unwrap()
        .1;
    assert!(ndd.max_error_rate > 0.4);
    assert!(
        stat.max_error_rate < 0.1,
        "stat should not see the sign flip: {}",
        stat.max_error_rate
    );
}

// The `FaultKind` import is exercised here to keep the public surface
// honest: campaign consumers can filter mutants by class.
#[test]
fn mutants_can_be_filtered_by_class_before_a_campaign() {
    let program = states::ghz(3);
    let all = FaultInjector::new(1).enumerate_single(&program);
    let sign_flips: Vec<_> = all
        .into_iter()
        .filter(|m| m.kinds == vec![FaultKind::AngleOffByPi] || m.kinds == vec![FaultKind::StrayZ])
        .collect();
    assert!(!sign_flips.is_empty());
    let spec = StateSpec::pure(states::ghz_vector(3)).unwrap();
    let config = CampaignConfig {
        shots: 512,
        designs: vec![CampaignDesign::Swap],
        ..CampaignConfig::default()
    };
    let report = run_campaign(&program, &[0, 1, 2], &spec, &sign_flips, &config);
    assert_eq!(report.mutant_count, sign_flips.len());
}

/// A noisy campaign driven by the default executor (which lowers each
/// cell once through the compiled density engine) must render JSON
/// byte-identical to one driven by the legacy interpreted walker at the
/// same seed — the faults-level statement of the density
/// seed-compatibility contract in DESIGN.md.
#[test]
fn noisy_campaign_json_is_byte_identical_across_density_engines() {
    use qra_sim::{DensityMatrixSimulator, DevicePreset};

    let n = 3;
    let program = states::ghz(n);
    let spec = StateSpec::pure(states::ghz_vector(n)).unwrap();
    let qubits: Vec<usize> = (0..n).collect();
    let config = CampaignConfig {
        shots: 512,
        seed: 7,
        designs: vec![CampaignDesign::Ndd, CampaignDesign::Stat],
        noise: DevicePreset::melbourne_like(),
        ..CampaignConfig::default()
    };
    let mutants: Vec<_> = FaultInjector::new(config.seed)
        .enumerate_single(&program)
        .into_iter()
        .take(4)
        .collect();

    let compiled = run_campaign(&program, &qubits, &spec, &mutants, &config);
    let reference = run_campaign_with_executor(
        &program,
        &qubits,
        &spec,
        &mutants,
        &config,
        &|circuit, config, seed| {
            let sim = DensityMatrixSimulator::with_noise(config.noise.clone());
            let counts = sim.run_interpreted(circuit, config.shots, seed)?;
            Ok((counts, BackendKind::DensityMatrix))
        },
    );
    assert_eq!(
        compiled.to_json(),
        reference.to_json(),
        "compiled and interpreted density executors must agree byte-for-byte"
    );
}

#[test]
fn auto_campaign_on_clifford_workload_reports_stabilizer_cells() {
    use qra_circuit::Circuit;
    use qra_faults::BackendChoice;
    use qra_math::CVector;

    // A classical set spec {|000>, |111>} takes the linear-coset fast path,
    // so the inserted SWAP assertion is CX-only and the whole asserted
    // circuit stays Clifford for every Clifford mutant of the GHZ program.
    // The program uses the exact H/CX generators (`states::ghz` spells its
    // Hadamard as `u2(0, π)`, which exact Clifford matching rejects).
    let n = 3;
    let mut program = Circuit::new(n);
    program.h(0);
    for q in 0..n - 1 {
        program.cx(q, q + 1);
    }
    let spec = StateSpec::set(vec![
        CVector::basis_state(1 << n, 0),
        CVector::basis_state(1 << n, (1 << n) - 1),
    ])
    .unwrap();
    let qubits: Vec<usize> = (0..n).collect();
    let base = CampaignConfig {
        shots: 512,
        seed: 11,
        designs: vec![CampaignDesign::Swap],
        ..CampaignConfig::default()
    };
    let mutants = FaultInjector::new(base.seed).enumerate_single(&program);
    assert!(!mutants.is_empty());

    let auto = run_campaign(
        &program,
        &qubits,
        &spec,
        &mutants,
        &CampaignConfig {
            backend: BackendChoice::Auto,
            ..base.clone()
        },
    );
    let default = run_campaign(&program, &qubits, &spec, &mutants, &base);

    let mut stabilizer_cells = 0;
    for (a, d) in auto.cells.iter().zip(&default.cells) {
        match (&a.status, &d.status) {
            (
                CellStatus::Completed {
                    error_rate: ea,
                    backend: ba,
                    ..
                },
                CellStatus::Completed {
                    error_rate: ed,
                    backend: bd,
                    ..
                },
            ) => {
                // Auto must not change the physics: same seeds, same rates.
                assert_eq!(ea, ed, "mutant {} diverged under auto", a.mutant_id);
                assert_eq!(*bd, BackendKind::Statevector);
                if *ba == BackendKind::Stabilizer {
                    stabilizer_cells += 1;
                }
            }
            (sa, sd) => panic!("non-completed cells {sa:?} / {sd:?}"),
        }
    }
    // The GHZ gate set (H/CX) only admits Clifford mutants, so every cell
    // should have taken the tableau path.
    assert_eq!(stabilizer_cells, auto.cells.len());

    // The report makes the routing decision auditable.
    assert!(auto.to_json().contains("\"backend\":\"stabilizer\""));
    assert!(default.to_json().contains("\"backend\":\"statevector\""));
}
