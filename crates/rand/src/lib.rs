//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) slice of the `rand 0.8` API the workspace
//! actually uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`SeedableRng::from_entropy`], [`Rng::gen_range`] over float/integer
//! ranges and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64 — not the
//! ChaCha12 stream the real `StdRng` uses, so seeded streams differ from
//! upstream `rand`. Nothing in this workspace depends on the exact
//! stream, only on determinism for a fixed seed, which this crate
//! guarantees.

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Random number generator front-end, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} outside [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Creates a generator from ambient entropy (time + ASLR). Only used
    /// where reproducibility is explicitly not wanted.
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let stack_probe = 0u8;
        let aslr = std::ptr::addr_of!(stack_probe) as u64;
        Self::seed_from_u64(t ^ aslr.rotate_left(32))
    }
}

/// Generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seeded generator (xoshiro256\*\*).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0; 4] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range {self:?}");
        let u = unit_f64(rng.next_u64());
        let v = self.start + (self.end - self.start) * u;
        // Guard against rounding landing exactly on the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

fn uniform_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to avoid modulo bias.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range {self:?}");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
            let y = rng.gen_range(0.0..f64::MIN_POSITIVE);
            assert!((0.0..f64::MIN_POSITIVE).contains(&y));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            let v = rng.gen_range(0usize..6);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 reached");
        for _ in 0..1_000 {
            let v = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn from_entropy_constructs() {
        let mut rng = StdRng::from_entropy();
        let _ = rng.next_u64();
    }
}
