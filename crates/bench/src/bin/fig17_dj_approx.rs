//! Regenerates **Figure 17 + Table IV**: the Deutsch–Jozsa approximate
//! assertion histograms for a constant function versus an inconstant
//! (buggy) one, plus the constant/balanced output-state table.

use qra::algorithms::deutsch_jozsa::{
    balanced_output_set, constant_output_set, probe_circuit, Oracle,
};
use qra::prelude::*;
use qra_bench::Table;

const SHOTS: u64 = 8192;

fn histogram(oracle: &Oracle) -> (Counts, Vec<usize>) {
    let mut circuit = probe_circuit(oracle, 2).expect("probe");
    let set = StateSpec::set(constant_output_set(2)).unwrap();
    let handle = insert_assertion(&mut circuit, &[0, 1, 2], &set, Design::Swap).unwrap();
    let counts = StatevectorSimulator::with_seed(13)
        .run(&circuit, SHOTS)
        .unwrap();
    (counts, handle.clbits)
}

fn main() {
    // --- Table IV: the constant and balanced output-state sets ------------
    let mut t = Table::new(
        "Table IV — output-state sets for two-input oracles",
        &["members", "example member (amplitudes over |x⟩|f(x)⟩)"],
    );
    let constant = constant_output_set(2);
    let balanced = balanced_output_set(2);
    t.push(
        "constant set",
        vec![constant.len().to_string(), format!("{}", constant[0])],
    );
    t.push(
        "balanced set",
        vec![balanced.len().to_string(), format!("{}", balanced[0])],
    );
    t.print();

    // --- Fig. 17: ancilla histograms ---------------------------------------
    for (name, oracle) in [
        ("constant function (Fig. 17a)", Oracle::ConstantZero),
        ("inconstant function (Fig. 17b)", Oracle::buggy_and()),
    ] {
        let (counts, flags) = histogram(&oracle);
        println!("== {name}: assertion-ancilla histogram ==");
        // Marginalise onto the flag bits.
        let mut marg = std::collections::BTreeMap::new();
        for (key, n) in counts.iter() {
            let mut fk = 0u64;
            for (i, &b) in flags.iter().enumerate() {
                if (key >> b) & 1 == 1 {
                    fk |= 1 << i;
                }
            }
            *marg.entry(fk).or_insert(0u64) += n;
        }
        for (fk, n) in marg {
            let bits: String = (0..flags.len())
                .map(|i| if (fk >> i) & 1 == 1 { '1' } else { '0' })
                .collect();
            let frac = n as f64 / SHOTS as f64;
            let bar = "#".repeat((frac * 50.0).round() as usize);
            println!("  ancilla {bits}: {frac:.3} {bar}");
        }
        let err = counts.any_set_frequency(&flags);
        println!("  assertion error rate: {err:.3}\n");
    }
    println!("Paper's Fig. 17: the constant function never flags; the inconstant");
    println!("one flags part of the time (the state is not orthogonal to the");
    println!("constant set, so detection is probabilistic — rerun to amplify).");
}
