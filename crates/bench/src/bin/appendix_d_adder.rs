//! Regenerates the **Appendix D** case study: the controlled QFT-adder
//! recursion bug (rotation targets `qr[j]` instead of `qr[i]` in the
//! two-control branch) caught by precise pure-state and mixed-state
//! assertions inserted after the Fourier-space addition.

use qra::algorithms::adder::{add_const_fourier, AdderBug};
use qra::algorithms::qft::append_qft;
use qra::prelude::*;
use qra_bench::{verdict, Table};

const SHOTS: u64 = 4096;
const WIDTH: usize = 3;
const CONSTANT: u64 = 3;

/// Builds the double-controlled Fourier-space adder (controls active).
fn build(bug: AdderBug) -> Circuit {
    let mut c = Circuit::new(WIDTH + 2);
    c.x(WIDTH).x(WIDTH + 1);
    c.x(WIDTH - 1); // data register loaded with b = 1
    let data: Vec<usize> = (0..WIDTH).collect();
    append_qft(&mut c, &data);
    add_const_fourier(&mut c, &data, CONSTANT, &[WIDTH, WIDTH + 1], bug).unwrap();
    c
}

fn main() {
    let expected = build(AdderBug::None).statevector().unwrap();

    // --- Precise pure-state assertion over all five qubits -----------------
    let pure_spec = StateSpec::pure(expected.clone()).unwrap();
    let mut table = Table::new(
        "Appendix D — controlled-adder recursion bug",
        &["assertion", "error rate", "detected", "#CX"],
    );
    for (name, bug) in [
        ("correct", AdderBug::None),
        ("bug (j for i)", AdderBug::WrongTargetInDoubleControl),
    ] {
        let mut circuit = build(bug);
        let qubits: Vec<usize> = (0..WIDTH + 2).collect();
        let handle = insert_assertion(&mut circuit, &qubits, &pure_spec, Design::Swap).unwrap();
        let counts = StatevectorSimulator::with_seed(21)
            .run(&circuit, SHOTS)
            .unwrap();
        let rate = handle.error_rate(&counts);
        table.push(
            name,
            vec![
                "precise pure".into(),
                format!("{rate:.3}"),
                verdict(rate > 0.01),
                handle.counts.cx.to_string(),
            ],
        );
    }

    // --- Mixed-state assertion on the data register only --------------------
    let rho = CMatrix::outer(&expected, &expected)
        .partial_trace(&[WIDTH, WIDTH + 1])
        .unwrap();
    // The controls are classical |11⟩ here, so the data register is pure,
    // but we feed it through the mixed-state machinery as the paper does
    // for subset assertions.
    if let Ok(mixed_spec) = StateSpec::mixed(rho) {
        for (name, bug) in [
            ("correct", AdderBug::None),
            ("bug (j for i)", AdderBug::WrongTargetInDoubleControl),
        ] {
            let mut circuit = build(bug);
            let qubits: Vec<usize> = (0..WIDTH).collect();
            let handle =
                insert_assertion(&mut circuit, &qubits, &mixed_spec, Design::Auto).unwrap();
            let counts = StatevectorSimulator::with_seed(22)
                .run(&circuit, SHOTS)
                .unwrap();
            let rate = handle.error_rate(&counts);
            table.push(
                name,
                vec![
                    "data-register subset".into(),
                    format!("{rate:.3}"),
                    verdict(rate > 0.01),
                    handle.counts.cx.to_string(),
                ],
            );
        }
    }
    table.print();
    println!("Paper (Appendix D): the bug appears from the second rotation onward");
    println!("and is detectable with both precise and subset (mixed-state)");
    println!("assertions placed after the buggy recursion.");
}
