//! Regenerates **Table III**: circuit cost of each assertion design for
//! the three common state families — arbitrary single-qubit states,
//! n-qubit separable states, and n-qubit even-parity entangled sets —
//! sweeping n and printing the paper's four metrics.

use qra::core::baselines::primitive;
use qra::prelude::*;
use qra_bench::Table;

/// An arbitrary (non-axis-aligned) single-qubit state.
fn tilted() -> CVector {
    CVector::new(vec![C64::from(0.6), C64::new(0.48, 0.64)])
}

/// An n-qubit separable state with distinct per-qubit rotations.
fn separable(n: usize) -> CVector {
    let mut v = CVector::from_real(&[1.0]);
    for q in 0..n {
        let theta = 0.4 + 0.3 * q as f64;
        let single = CVector::new(vec![
            C64::from(theta.cos()),
            C64::cis(0.2 * q as f64).scale(theta.sin()),
        ]);
        v = v.kron(&single);
    }
    v
}

/// The even-parity basis set on n qubits: {|x⟩ : popcount(x) even}.
fn even_set(n: usize) -> StateSpec {
    let dim = 1usize << n;
    let members: Vec<CVector> = (0..dim)
        .filter(|x: &usize| x.count_ones().is_multiple_of(2))
        .map(|x| CVector::basis_state(dim, x))
        .collect();
    StateSpec::set(members).unwrap()
}

fn fmt(c: GateCounts) -> Vec<String> {
    vec![
        c.cx.to_string(),
        c.sg.to_string(),
        c.ancilla.to_string(),
        c.measure.to_string(),
    ]
}

fn design_cost(spec: &StateSpec, design: Design) -> GateCounts {
    synthesize_assertion(spec, design)
        .map(|a| a.gate_counts())
        .unwrap_or_default()
}

fn main() {
    // --- Single-qubit state ---------------------------------------------
    let single = StateSpec::pure(tilted()).unwrap();
    let mut t1 = Table::new(
        "Table III(a) — arbitrary single-qubit state",
        &["#CX", "#SG", "#ancilla", "#measure"],
    );
    for (name, d) in [
        ("SWAP based", Design::Swap),
        ("logical OR based", Design::LogicalOr),
        ("NDD based", Design::Ndd),
    ] {
        t1.push(name, fmt(design_cost(&single, d)));
    }
    // Proq: the two basis changes only.
    t1.push(
        "Proq (reference)",
        vec!["0".into(), "2".into(), "0".into(), "1".into()],
    );
    t1.print();
    println!("Paper row: Proq 0/2/0/1, SWAP 3/2/1/1, OR 1/2/1/1, NDD 2/6/1/1");
    println!("(our SWAP uses the optimised 2-CX ancilla swap, hence 2 vs 3).\n");

    // --- Separable states, n = 2..5 --------------------------------------
    let mut t2 = Table::new(
        "Table III(b) — n-qubit separable states",
        &["design", "#CX", "#SG", "#ancilla", "#measure"],
    );
    for n in 2..=5usize {
        let spec = StateSpec::pure(separable(n)).unwrap();
        for (name, d) in [
            ("SWAP", Design::Swap),
            ("OR", Design::LogicalOr),
            ("NDD", Design::Ndd),
        ] {
            let c = design_cost(&spec, d);
            let mut row = vec![name.to_string()];
            row.extend(fmt(c));
            t2.push(format!("n={n}"), row);
        }
        // The paper's linear-complexity OR regime: V-chain MCX with clean
        // helper ancillas.
        let cs = spec.correct_states().unwrap();
        if let Ok(built) = qra::core::logical_or::build_or_assertion_v_chain(&cs) {
            let c = GateCounts::of(&built.circuit)
                .unwrap()
                .with_ancilla(built.num_ancilla);
            let mut row = vec!["OR (v-chain)".to_string()];
            row.extend(fmt(c));
            t2.push(format!("n={n}"), row);
        }
    }
    t2.print();
    println!("Paper: SWAP 3n CX / 2n SG / n anc / n meas; OR 12n+1 CX / 16n SG / 1 / 1;");
    println!("NDD state-dependent. Our SWAP scales 2n CX (optimised swaps); our OR");
    println!("uses the exact ancilla-free MCX recursion, so it grows faster than the");
    println!("paper's linear borrowed-ancilla decomposition — same single-ancilla,");
    println!("single-measurement footprint.\n");

    // --- Even-parity entangled sets, n = 2..5 -----------------------------
    let mut t3 = Table::new(
        "Table III(c) — even-parity entangled sets {a|0…0⟩ + b|1…1⟩, …}",
        &["design", "#CX", "#SG", "#ancilla", "#measure"],
    );
    for n in 2..=5usize {
        let spec = even_set(n);
        for (name, d) in [
            ("SWAP", Design::Swap),
            ("OR", Design::LogicalOr),
            ("NDD", Design::Ndd),
        ] {
            let c = design_cost(&spec, d);
            let mut row = vec![name.to_string()];
            row.extend(fmt(c));
            t3.push(format!("n={n}"), row);
        }
        // The Primitive parity check, where it applies.
        if let Ok(built) = primitive::build(&spec) {
            let c = GateCounts::of(&built.circuit)
                .unwrap()
                .with_ancilla(built.num_ancilla);
            let mut row = vec!["Primitive".to_string()];
            row.extend(fmt(c));
            t3.push(format!("n={n}"), row);
        }
    }
    t3.print();
    println!("Paper: NDD n CX / 0 SG / 1 / 1 (a CZ chain); Primitive n CX / 0 SG / 1 / 1.");
    println!("Shape check: NDD is the cheapest design for parity sets at every n.");
}
