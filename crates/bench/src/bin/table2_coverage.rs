//! Regenerates **Table II**: the assertion-coverage matrix — which state
//! classes each scheme can assert (ALL / Part / N/A).
//!
//! Each cell is *computed* from a representative specification of the
//! class, not hard-coded: the proposed designs answer from their actual
//! synthesis coverage, the baselines from their documented limits.

use qra::core::coverage::{classify, support, Scheme};
use qra::prelude::*;
use qra_bench::Table;

fn representatives() -> Vec<(&'static str, StateSpec)> {
    let s = 0.5f64.sqrt();
    let ghz = {
        let mut v = CVector::zeros(8);
        v[0] = C64::from(s);
        v[7] = C64::from(s);
        v
    };
    let phased = CVector::new(vec![
        C64::from(s),
        C64::cis(std::f64::consts::FRAC_PI_4).scale(s),
    ]);
    let mixed = {
        let e0 = CVector::basis_state(4, 0);
        let e3 = CVector::basis_state(4, 3);
        CMatrix::outer(&e0, &e0)
            .scale(C64::from(0.5))
            .add(&CMatrix::outer(&e3, &e3).scale(C64::from(0.5)))
            .unwrap()
    };
    vec![
        (
            "classical",
            StateSpec::pure(CVector::basis_state(4, 2)).unwrap(),
        ),
        (
            "superposition",
            StateSpec::pure(CVector::from_real(&[s, s])).unwrap(),
        ),
        ("entanglement", StateSpec::pure(ghz).unwrap()),
        ("other pure (phase)", StateSpec::pure(phased).unwrap()),
        ("mixed state", StateSpec::mixed(mixed).unwrap()),
        (
            "set of states",
            StateSpec::set(vec![CVector::basis_state(4, 0), CVector::basis_state(4, 3)]).unwrap(),
        ),
    ]
}

fn main() {
    let mut table = Table::new(
        "Table II — assertion coverage per scheme (computed)",
        &["Stat", "Primitive", "Proq", "SWAP", "OR", "NDD"],
    );
    for (name, spec) in representatives() {
        let row: Vec<String> = Scheme::ALL
            .iter()
            .map(|&scheme| support(scheme, &spec).to_string())
            .collect();
        table.push(format!("{name} [{}]", classify(&spec)), row);
    }
    table.print();
    println!("Paper's Table II: the three proposed designs are the only schemes");
    println!("with non-N/A coverage on every row (Part for mixed states and sets,");
    println!("since probabilities are not checked).");
}
