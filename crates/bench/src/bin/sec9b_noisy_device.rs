//! Regenerates the **§IX-B** experiment on the melbourne-like noise model
//! (substituting for the real 15-qubit ibmq-melbourne; see DESIGN.md):
//! assertion-error rates with and without the parameter-order bug, and
//! the success-rate improvement from error filtering, for both our
//! SWAP-based assertion and the prior-work primitive circuit.

use qra::algorithms::qpe::{qpe, QpeBug, QpeConfig};
use qra::prelude::*;
use qra_bench::{pct, Table};

const SHOTS: u64 = 8192;

fn config() -> QpeConfig {
    QpeConfig {
        counting: 3,
        angle: std::f64::consts::FRAC_PI_2,
        ..QpeConfig::paper_sec9b()
    }
}

fn eigenstate() -> CVector {
    let s = 0.5f64.sqrt();
    CVector::new(vec![C64::from(s), C64::new(0.0, s)])
}

/// The prior-work single-qubit assertion primitive: same two-CX function
/// as our SWAP assertion but with four extra single-qubit gates (the
/// paper's §IX-B comparison is 2 CX / 6 SG prior versus 2 CX / 2 SG ours).
/// Emulated as our assertion bracketed by identity-equivalent 1q pairs so
/// the extra gates contribute noise without changing semantics.
fn primitive_style_assertion(circuit: &mut Circuit, qubit: usize) -> Vec<usize> {
    // Two extra single-qubit slots before…
    circuit.s(qubit);
    circuit.sdg(qubit);
    let spec = StateSpec::pure(eigenstate()).unwrap();
    let clbits = insert_assertion(circuit, &[qubit], &spec, Design::Swap)
        .unwrap()
        .clbits;
    // …and two after.
    circuit.h(qubit);
    circuit.h(qubit);
    clbits
}

struct Outcome {
    error_rate: f64,
    success: f64,
    filtered_success: f64,
}

fn run(bug: QpeBug, use_primitive: bool) -> Outcome {
    let cfg = config().with_bug(bug);
    let mut circuit = qpe(&cfg);
    let flag_bits: Vec<usize> = if use_primitive {
        primitive_style_assertion(&mut circuit, cfg.eigen_qubit())
    } else {
        let spec = StateSpec::pure(eigenstate()).unwrap();
        insert_assertion(&mut circuit, &[cfg.eigen_qubit()], &spec, Design::Swap)
            .unwrap()
            .clbits
    };
    let cl_base = circuit.num_clbits();
    circuit.expand_clbits(cl_base + cfg.counting);
    for q in 0..cfg.counting {
        circuit.measure(q, cl_base + q).unwrap();
    }
    let sim = DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like());
    let counts = sim.run(&circuit, SHOTS, 17).unwrap();

    let success = |c: &Counts| -> f64 {
        let mut good = 0u64;
        for (key, n) in c.iter() {
            let v: u64 = (0..cfg.counting)
                .map(|j| ((key >> (cl_base + j)) & 1) << j)
                .sum();
            if v == 7 {
                good += n;
            }
        }
        if c.total() == 0 {
            0.0
        } else {
            good as f64 / c.total() as f64
        }
    };
    let error_rate = counts.any_set_frequency(&flag_bits);
    let raw = success(&counts);
    let (filtered, _) = counts.post_select_zero(&flag_bits);
    Outcome {
        error_rate,
        success: raw,
        filtered_success: success(&filtered),
    }
}

fn main() {
    let mut table = Table::new(
        "§IX-B — noisy-device assertion experiment (melbourne-like model)",
        &["assert errors", "success", "filtered success"],
    );
    let mut floor_errors = 0u64;
    let mut bug_errors = 0u64;
    for (name, use_primitive) in [
        ("ours (SWAP, 2 CX/2 SG)", false),
        ("prior primitive (2 CX/6 SG)", true),
    ] {
        for (bug_name, bug) in [
            ("no bug", QpeBug::None),
            ("§IX-B bug", QpeBug::WrongParameterOrder),
        ] {
            let o = run(bug, use_primitive);
            if !use_primitive {
                let errs = (o.error_rate * SHOTS as f64).round() as u64;
                if bug == QpeBug::None {
                    floor_errors = errs;
                } else {
                    bug_errors = errs;
                }
            }
            table.push(
                format!("{name}, {bug_name}"),
                vec![pct(o.error_rate), pct(o.success), pct(o.filtered_success)],
            );
        }
    }
    table.print();
    // Statistical verdict on the detection (Wilson intervals at 95%).
    let detected =
        qra::core::analysis::detects_above_floor(bug_errors, SHOTS, floor_errors, SHOTS, 1.96);
    println!(
        "statistical verdict: bug {} above the noise floor (95% Wilson)",
        if detected { "DETECTED" } else { "NOT detected" }
    );
    println!("Paper: ours 36%→45% assertion errors (bug detectable from the jump),");
    println!("prior 42%→50%; success rate 19% raw → 33% (prior) → 36% (ours).");
    println!("Shape check: (1) the bug lifts the error rate well above the noise");
    println!("floor, (2) our cheaper circuit has a lower floor than the prior");
    println!("primitive, (3) filtering improves the success rate.");
}
