//! Assertion-service throughput: the same stream of `run`/`assert` jobs
//! executed (a) the one-shot way — one `qra` process spawned per request —
//! and (b) through an in-process `qra serve` daemon using the production
//! `daemon_executor` with its compiled-program cache. Every daemon
//! response is asserted byte-identical to the corresponding one-shot
//! stdout before any timing is recorded, and the results land in
//! `BENCH_serve.json` so the repo carries the service speedup over time.
//!
//! `--short` shrinks the job count for CI smoke; `--out PATH` overrides
//! the default `BENCH_serve.json`; `--qra PATH` points at the one-shot
//! binary (default: the `qra` sibling of this bench executable).

use qra::serve::{request_shutdown, submit_jobs, Server, ServerConfig};
use qra::sim::ProgramCache;
use qra_cli::daemon_executor;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut short = false;
    let mut out = String::from("BENCH_serve.json");
    let mut qra_bin: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--qra" => qra_bin = Some(PathBuf::from(args.next().expect("--qra needs a path"))),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let qra_bin = qra_bin.unwrap_or_else(|| {
        let mut exe = std::env::current_exe().expect("current_exe");
        exe.set_file_name("qra");
        exe
    });
    if !qra_bin.exists() {
        eprintln!(
            "one-shot binary not found at {} — build it first or pass --qra PATH",
            qra_bin.display()
        );
        std::process::exit(2);
    }

    let dir = std::env::temp_dir().join(format!("qra-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench tmpdir");
    let bell = dir.join("bell.qasm");
    std::fs::write(
        &bell,
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
         h q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n",
    )
    .expect("write bell.qasm");
    let bell = bell.to_str().expect("utf-8 path").to_string();

    // The job stream cycles a handful of seeds over one circuit, the
    // shape a debugging session produces: every compile after the first
    // few is a cache hit on the daemon side, and every spawn on the
    // baseline side pays full process startup.
    let baseline_jobs: usize = if short { 8 } else { 32 };
    let serve_jobs: usize = if short { 64 } else { 512 };
    let job = |i: usize| -> Vec<String> {
        [
            "run",
            &bell,
            "--shots",
            "128",
            "--seed",
            &format!("{}", i % 8),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect()
    };

    // Baseline: one process per request, sequential (a shell loop's view
    // of the service). Record each job's stdout as the reference bytes.
    let t0 = Instant::now();
    let mut reference = Vec::new();
    for i in 0..baseline_jobs {
        let output = Command::new(&qra_bin)
            .args(job(i))
            .output()
            .expect("spawn one-shot qra");
        assert!(output.status.success(), "one-shot job {i} failed");
        reference.push(String::from_utf8(output.stdout).expect("utf-8 output"));
    }
    let baseline_secs = t0.elapsed().as_secs_f64();
    let baseline_rps = baseline_jobs as f64 / baseline_secs;
    eprintln!("baseline: {baseline_jobs} process spawns in {baseline_secs:.3} s ({baseline_rps:.1} jobs/s)");

    // Service: in-process daemon over a Unix socket, production executor
    // and compiled-program cache, default worker count (one per core).
    let socket = dir.join("bench.sock");
    let cache = Arc::new(ProgramCache::new());
    let server = Arc::new(Server::new(
        ServerConfig {
            socket: socket.clone(),
            queue_depth: serve_jobs,
            cache: Some(cache.clone()),
            ..ServerConfig::default()
        },
        daemon_executor(cache.clone(), Vec::new()),
    ));
    let daemon = {
        let server = server.clone();
        std::thread::spawn(move || server.run().expect("daemon run"))
    };
    while std::os::unix::net::UnixStream::connect(&socket).is_err() {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let jobs: Vec<Vec<String>> = (0..serve_jobs).map(job).collect();
    let t0 = Instant::now();
    let responses = submit_jobs(&socket, &jobs).expect("submit jobs");
    let serve_secs = t0.elapsed().as_secs_f64();
    let serve_rps = serve_jobs as f64 / serve_secs;

    // Byte-identity gate: every daemon response must match the one-shot
    // stdout for the same argv, cache hits and misses alike.
    assert_eq!(responses.len(), serve_jobs);
    for (i, resp) in responses.iter().enumerate() {
        assert!(resp.ok, "daemon job {i} failed: {:?}", resp.error);
        assert_eq!(
            resp.output,
            reference[i % 8],
            "daemon job {i} diverged from one-shot bytes"
        );
    }
    request_shutdown(&socket).expect("shutdown");
    let summary = daemon.join().expect("daemon thread");
    let (hits, misses) = (cache.hits(), cache.misses());
    assert!(hits > 0, "repeat circuits must hit the cache");
    eprintln!(
        "serve: {serve_jobs} jobs in {serve_secs:.3} s ({serve_rps:.1} jobs/s), \
         cache {}/{} hit(s), p99 {} us",
        hits,
        hits + misses,
        summary.metrics.p99_us
    );

    let speedup = serve_rps / baseline_rps;
    eprintln!("speedup: {speedup:.1}x over per-request process startup");

    let json = format!(
        "{{\"bench\":\"serve_throughput\",\"mode\":\"{}\",\"circuit\":\"bell\",\"shots\":128,\
         \"baseline\":{{\"jobs\":{},\"secs\":{:.6},\"rps\":{:.2}}},\
         \"serve\":{{\"jobs\":{},\"secs\":{:.6},\"rps\":{:.2},\
         \"cache_hits\":{},\"cache_misses\":{},\
         \"p50_us\":{},\"p95_us\":{},\"p99_us\":{}}},\
         \"speedup\":{:.2},\"identical\":true}}\n",
        if short { "short" } else { "full" },
        baseline_jobs,
        baseline_secs,
        baseline_rps,
        serve_jobs,
        serve_secs,
        serve_rps,
        hits,
        misses,
        summary.metrics.p50_us,
        summary.metrics.p95_us,
        summary.metrics.p99_us,
        speedup,
    );
    std::fs::write(&out, &json).expect("write bench json");
    println!("{json}");
    let _ = std::fs::remove_dir_all(&dir);
}
