//! Noise-calibration sweep: how the §IX-B quantities (assertion-error
//! floor, bug-present error rate, raw and filtered success) move as the
//! two-qubit depolarizing rate scales from ideal toward and past the
//! melbourne-like preset.
//!
//! This supports the EXPERIMENTS.md substitution note: the paper's absolute
//! percentages (36%/45% errors, 19% success) correspond to a noisier device
//! than our default calibration; scaling the constants moves our numbers
//! toward theirs while preserving every ordering the paper relies on.

use qra::algorithms::states;
use qra::prelude::*;
use qra_bench::{pct, Table};

const SHOTS: u64 = 8192;

fn scaled_noise(factor: f64) -> NoiseModel {
    // `NoiseModel::scaled` clamps gate channels at 1.0 and readout at 0.5,
    // keeping the sweep monotone at large factors.
    DevicePreset::melbourne_like().scaled(factor)
}

struct Point {
    floor: f64,
    with_bug: f64,
    success: f64,
    filtered: f64,
}

fn measure(noise: &NoiseModel) -> Point {
    let spec = StateSpec::pure(states::ghz_vector(3)).unwrap();
    let run = |program: Circuit, seed: u64| {
        let mut circuit = program;
        let handle = insert_assertion(&mut circuit, &[0, 1, 2], &spec, Design::Swap).unwrap();
        let cl_base = circuit.num_clbits();
        circuit.expand_clbits(cl_base + 3);
        for q in 0..3 {
            circuit.measure(q, cl_base + q).unwrap();
        }
        let counts = DensityMatrixSimulator::with_noise(noise.clone())
            .run(&circuit, SHOTS, seed)
            .unwrap();
        let success = |c: &qra::prelude::Counts| {
            let mut good = 0u64;
            for (key, n) in c.iter() {
                let bits = (key >> cl_base) & 0b111;
                if bits == 0 || bits == 0b111 {
                    good += n;
                }
            }
            if c.total() == 0 {
                0.0
            } else {
                good as f64 / c.total() as f64
            }
        };
        let rate = handle.error_rate(&counts);
        let raw = success(&counts);
        let (kept, _) = handle.post_select(&counts);
        (rate, raw, success(&kept))
    };
    let (floor, success, filtered) = run(states::ghz(3), 31);
    let (with_bug, _, _) = run(states::ghz_bug1(3), 32);
    Point {
        floor,
        with_bug,
        success,
        filtered,
    }
}

fn main() {
    let mut table = Table::new(
        "Noise sweep — GHZ SWAP assertion vs scaled melbourne-like noise",
        &["floor", "with bug", "success", "filtered", "margin"],
    );
    for factor in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let p = measure(&scaled_noise(factor));
        table.push(
            format!("{factor:.2}× melbourne"),
            vec![
                pct(p.floor),
                pct(p.with_bug),
                pct(p.success),
                pct(p.filtered),
                pct(p.with_bug - p.floor),
            ],
        );
    }
    table.print();
    println!("Orderings to check at every noise level (the §IX-B claims):");
    println!("  (1) with-bug > floor by a detectable margin,");
    println!("  (2) filtered success ≥ raw success,");
    println!("  (3) both error rates grow monotonically with the noise scale.");
    println!("At ~4× the default calibration the absolute numbers reach the");
    println!("paper's regime (36%+ floors, sub-20% raw success).");
}
