//! Noise-aware campaign sweep on the GHZ-3 preparation: the full
//! single-fault matrix at Ideal, LowNoise, MelbourneLike and 2× Melbourne
//! noise, with each point's detection threshold derived from its measured
//! false-positive floor (§IX) instead of the fixed 0.05 default.
//!
//! Prints the sweep report: per-point floors and thresholds, the per-point
//! detection matrices, and the degradation table across noise points.
//! `--shots N` and `--jobs N` override the defaults.

use qra::algorithms::states;
use qra::faults::{
    run_sweep, CampaignConfig, CampaignDesign, FaultInjector, MarginMode, SweepConfig, SweepPoint,
};
use qra::prelude::StateSpec;
use qra::sim::DevicePreset;

const QUBITS: usize = 3;
const SEED: u64 = 7;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let shots: u64 = arg("--shots").and_then(|s| s.parse().ok()).unwrap_or(4096);
    let jobs: usize = arg("--jobs").and_then(|s| s.parse().ok()).unwrap_or(0);
    let program = states::ghz(QUBITS);
    let spec = StateSpec::pure(states::ghz_vector(QUBITS)).expect("ghz spec");
    let mutants = FaultInjector::new(SEED).enumerate_single(&program);
    let targets: Vec<usize> = (0..QUBITS).collect();
    let config = SweepConfig {
        points: vec![
            SweepPoint::preset(DevicePreset::Ideal),
            SweepPoint::preset(DevicePreset::LowNoise),
            SweepPoint::preset(DevicePreset::MelbourneLike),
            SweepPoint::scaled(DevicePreset::MelbourneLike, 2.0),
        ],
        base: CampaignConfig {
            shots,
            seed: SEED,
            designs: CampaignDesign::ALL.to_vec(),
            jobs,
            ..CampaignConfig::default()
        },
        margin: MarginMode::Fixed(0.02),
    };
    let sweep = run_sweep(&program, &targets, &spec, &mutants, &config);
    print!("{}", sweep.render_text());
}
