//! Runs a full single-fault campaign on the GHZ-3 preparation and prints
//! the per-fault-class detection matrix across all four schemes.
//!
//! This generalises Table I: instead of the paper's two hand-seeded bugs,
//! the [`qra::faults`] injector enumerates every single-fault mutant of
//! the preparation circuit and the resilient runner executes the whole
//! mutant × design matrix under one seed, so the output is reproducible.

use qra::algorithms::states;
use qra::faults::{run_campaign, CampaignConfig, CampaignDesign, FaultInjector};
use qra::prelude::StateSpec;
use qra_bench::Table;

const QUBITS: usize = 3;
const SHOTS: u64 = 4096;
const SEED: u64 = 7;

fn main() {
    let program = states::ghz(QUBITS);
    let spec = StateSpec::pure(states::ghz_vector(QUBITS)).expect("ghz spec");
    let mutants = FaultInjector::new(SEED).enumerate_single(&program);
    let config = CampaignConfig {
        shots: SHOTS,
        seed: SEED,
        designs: CampaignDesign::ALL.to_vec(),
        ..CampaignConfig::default()
    };
    let targets: Vec<usize> = (0..QUBITS).collect();
    let report = run_campaign(&program, &targets, &spec, &mutants, &config);

    let mut table = Table::new(
        format!(
            "GHZ-{QUBITS} single-fault campaign — detected/completed (mean error rate), \
             {n} mutants, {SHOTS} shots, seed {SEED}",
            n = mutants.len()
        ),
        &["Swap", "LogicalOr", "NDD", "Stat"],
    );
    for (label, per_design) in report.detection_matrix() {
        let mut values = Vec::new();
        for design in CampaignDesign::ALL {
            let cell = per_design
                .iter()
                .find(|(d, _)| *d == design)
                .map(|(_, stat)| {
                    format!(
                        "{}/{} ({:.3})",
                        stat.detected, stat.completed, stat.mean_error_rate
                    )
                })
                .unwrap_or_else(|| "-".into());
            values.push(cell);
        }
        table.push(label, values);
    }
    table.print();

    let mut costs = Table::new(
        "Per-design overhead on the unmutated program",
        &["false-positive rate", "CX overhead"],
    );
    for design in CampaignDesign::ALL {
        let fp = report
            .false_positive_rate(design)
            .map(|r| format!("{r:.4}"))
            .unwrap_or_else(|| "-".into());
        let overhead = report
            .overhead(design)
            .map(|o| format!("{o:.2}x"))
            .unwrap_or_else(|| "-".into());
        costs.push(design.name(), vec![fp, overhead]);
    }
    costs.print();

    println!("{}", report.render_text());
}
