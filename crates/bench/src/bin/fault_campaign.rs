//! Runs a full single-fault campaign on the GHZ-3 preparation and prints
//! the per-fault-class detection matrix across all four schemes.
//!
//! This generalises Table I: instead of the paper's two hand-seeded bugs,
//! the [`qra::faults`] injector enumerates every single-fault mutant of
//! the preparation circuit and the resilient runner executes the whole
//! mutant × design matrix under one seed, so the output is reproducible.
//!
//! The matrix runs twice — once serially, once on the worker pool
//! (`--jobs N`, default: available parallelism) — the two reports are
//! checked byte-identical, and the wall-clock speedup is printed.
//! `--preset ideal|low|melbourne` selects the device noise model.

use qra::algorithms::states;
use qra::faults::{run_campaign, CampaignConfig, CampaignDesign, FaultInjector};
use qra::prelude::StateSpec;
use qra::sim::DevicePreset;
use qra_bench::Table;
use std::str::FromStr;
use std::time::Instant;

const QUBITS: usize = 3;
const SHOTS: u64 = 4096;
const SEED: u64 = 7;

fn parse_jobs() -> usize {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--jobs") {
        Some(i) => args
            .get(i + 1)
            .and_then(|j| j.parse().ok())
            .filter(|&j| j > 0)
            .unwrap_or_else(|| {
                eprintln!("fault_campaign: bad --jobs value, expected a positive integer");
                std::process::exit(2);
            }),
        None => 0, // 0 = available parallelism
    }
}

fn parse_preset() -> DevicePreset {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--preset") {
        Some(i) => {
            let name = args.get(i + 1).map(String::as_str).unwrap_or("");
            DevicePreset::from_str(name).unwrap_or_else(|e| {
                eprintln!("fault_campaign: {e}");
                std::process::exit(2);
            })
        }
        None => DevicePreset::Ideal,
    }
}

fn main() {
    let jobs = parse_jobs();
    let preset = parse_preset();
    let program = states::ghz(QUBITS);
    let spec = StateSpec::pure(states::ghz_vector(QUBITS)).expect("ghz spec");
    let mutants = FaultInjector::new(SEED).enumerate_single(&program);
    let config = CampaignConfig {
        shots: SHOTS,
        seed: SEED,
        designs: CampaignDesign::ALL.to_vec(),
        jobs,
        noise: preset.noise_model(),
        ..CampaignConfig::default()
    };
    let targets: Vec<usize> = (0..QUBITS).collect();

    // Serial reference run, then the worker pool; same seed, so the two
    // reports must render byte-identically.
    let serial_config = CampaignConfig {
        jobs: 1,
        ..config.clone()
    };
    let t0 = Instant::now();
    let serial = run_campaign(&program, &targets, &spec, &mutants, &serial_config);
    let serial_elapsed = t0.elapsed();
    let t1 = Instant::now();
    let report = run_campaign(&program, &targets, &spec, &mutants, &config);
    let parallel_elapsed = t1.elapsed();
    assert_eq!(
        serial.to_json(),
        report.to_json(),
        "serial and parallel campaigns diverged"
    );

    let mut table = Table::new(
        format!(
            "GHZ-{QUBITS} single-fault campaign — detected/completed (mean error rate), \
             {n} mutants, {SHOTS} shots, seed {SEED}",
            n = mutants.len()
        ),
        &["Swap", "LogicalOr", "NDD", "Stat"],
    );
    for (label, per_design) in report.detection_matrix() {
        let mut values = Vec::new();
        for design in CampaignDesign::ALL {
            let cell = per_design
                .iter()
                .find(|(d, _)| *d == design)
                .map(|(_, stat)| {
                    format!(
                        "{}/{} ({:.3})",
                        stat.detected, stat.completed, stat.mean_error_rate
                    )
                })
                .unwrap_or_else(|| "-".into());
            values.push(cell);
        }
        table.push(label, values);
    }
    table.print();

    let mut costs = Table::new(
        "Per-design overhead on the unmutated program",
        &["false-positive rate", "CX overhead"],
    );
    for design in CampaignDesign::ALL {
        let fp = report
            .false_positive_rate(design)
            .map(|r| format!("{r:.4}"))
            .unwrap_or_else(|| "-".into());
        let overhead = report
            .overhead(design)
            .map(|o| format!("{o:.2}x"))
            .unwrap_or_else(|| "-".into());
        costs.push(design.name(), vec![fp, overhead]);
    }
    costs.print();

    println!("{}", report.render_text());
    println!(
        "timing: serial {:.3}s, {} jobs {:.3}s — {:.2}× speedup (reports byte-identical)",
        serial_elapsed.as_secs_f64(),
        config.effective_jobs(),
        parallel_elapsed.as_secs_f64(),
        serial_elapsed.as_secs_f64() / parallel_elapsed.as_secs_f64().max(1e-9)
    );
}
