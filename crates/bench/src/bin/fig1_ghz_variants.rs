//! Regenerates **Figure 1**: the three assertion variants for the GHZ
//! state and their entangling-gate costs, plus the two cheaper set
//! relaxations discussed in §III.
//!
//! Paper reference points: precise SWAP assertion 10 CX; 2-qubit mixed
//! SWAP assertion 4 CX; approximate SWAP vs {|000⟩,|111⟩} 8 CX; extended
//! 4-member set 4 CX; NDD parity-pair set 3 CX.

use qra::algorithms::states;
use qra::prelude::*;
use qra_bench::Table;

fn cost(spec: &StateSpec, design: Design) -> (Design, GateCounts) {
    let a = synthesize_assertion(spec, design).expect("synthesis");
    (a.design(), a.gate_counts())
}

fn main() {
    let mut table = Table::new(
        "Figure 1 — GHZ assertion variants (measured vs paper)",
        &["#CX", "#SG", "#ancilla", "#measure", "paper #CX"],
    );

    let precise = StateSpec::pure(states::ghz_vector(3)).unwrap();
    let (_, c) = cost(&precise, Design::Swap);
    table.push(
        "precise 3-qubit pure (SWAP)",
        vec![
            c.cx.to_string(),
            c.sg.to_string(),
            c.ancilla.to_string(),
            c.measure.to_string(),
            "10".into(),
        ],
    );

    let mixed = {
        let e0 = CVector::basis_state(4, 0);
        let e3 = CVector::basis_state(4, 3);
        let rho = CMatrix::outer(&e0, &e0)
            .scale(C64::from(0.5))
            .add(&CMatrix::outer(&e3, &e3).scale(C64::from(0.5)))
            .unwrap();
        StateSpec::mixed(rho).unwrap()
    };
    let (_, c) = cost(&mixed, Design::Swap);
    table.push(
        "precise 2-qubit mixed (SWAP)",
        vec![
            c.cx.to_string(),
            c.sg.to_string(),
            c.ancilla.to_string(),
            c.measure.to_string(),
            "4".into(),
        ],
    );

    let approx2 =
        StateSpec::set(vec![CVector::basis_state(8, 0), CVector::basis_state(8, 7)]).unwrap();
    let (_, c) = cost(&approx2, Design::Swap);
    table.push(
        "approx {000,111} (SWAP)",
        vec![
            c.cx.to_string(),
            c.sg.to_string(),
            c.ancilla.to_string(),
            c.measure.to_string(),
            "8".into(),
        ],
    );

    let approx4 = StateSpec::set(
        [0b000usize, 0b011, 0b100, 0b111]
            .iter()
            .map(|&i| CVector::basis_state(8, i))
            .collect(),
    )
    .unwrap();
    let (_, c) = cost(&approx4, Design::Swap);
    table.push(
        "approx {000,011,100,111} (SWAP)",
        vec![
            c.cx.to_string(),
            c.sg.to_string(),
            c.ancilla.to_string(),
            c.measure.to_string(),
            "4".into(),
        ],
    );

    // NDD with the ± parity-pair basis set.
    let s = 0.5f64.sqrt();
    let pair = |a: usize, b: usize| {
        let mut v = CVector::zeros(8);
        v[a] = C64::from(s);
        v[b] = C64::from(s);
        v
    };
    let ndd_set = StateSpec::set(vec![
        pair(0b000, 0b111),
        pair(0b001, 0b110),
        pair(0b011, 0b100),
        pair(0b010, 0b101),
    ])
    .unwrap();
    let (_, c) = cost(&ndd_set, Design::Ndd);
    table.push(
        "NDD approx parity-pair set",
        vec![
            c.cx.to_string(),
            c.sg.to_string(),
            c.ancilla.to_string(),
            c.measure.to_string(),
            "3".into(),
        ],
    );

    table.print();
    println!("Shape check: mixed (4) < approx-4 (4) < approx-2 (8) < precise (10),");
    println!("with the NDD parity-pair set cheapest overall — as in the paper.");
}
