//! Regenerates the **§IX-A / Fig. 15-16** experiment: QPE with six
//! assertion slots, showing how pure-state, mixed-state and approximate
//! assertions localise Bug1 (missing loop index) and Bug2 (cu3 → u3).

use qra::algorithms::qpe::{expected_slot_state, qpe_prefix, QpeBug, QpeConfig};
use qra::prelude::*;
use qra_bench::Table;

const SHOTS: u64 = 4096;

fn slot_rate(config: &QpeConfig, slot: usize, design: Design) -> f64 {
    let clean = config.with_bug(QpeBug::None);
    let mut circuit = qpe_prefix(config, slot);
    let expected = expected_slot_state(&clean, slot);
    let qubits: Vec<usize> = (0..config.num_qubits()).collect();
    let handle = insert_assertion(
        &mut circuit,
        &qubits,
        &StateSpec::pure(expected).unwrap(),
        design,
    )
    .expect("insert");
    let counts = StatevectorSimulator::with_seed(9)
        .run(&circuit, SHOTS)
        .expect("run");
    handle.error_rate(&counts)
}

fn main() {
    let base = QpeConfig::paper_sec9a();

    // --- Pure-state assertions at every slot ------------------------------
    let mut table = Table::new(
        "§IX-A1 — pure-state assertion error rate per slot",
        &["slot1", "slot2", "slot3", "slot4", "slot5", "slot6"],
    );
    for (name, bug) in [
        ("correct", QpeBug::None),
        ("Bug1 (loop index)", QpeBug::MissingLoopIndex),
        ("Bug2 (cu3→u3)", QpeBug::UncontrolledGate),
    ] {
        let config = base.with_bug(bug);
        let row: Vec<String> = (1..=config.num_slots())
            .map(|slot| format!("{:.2}", slot_rate(&config, slot, Design::Swap)))
            .collect();
        table.push(name, row);
    }
    table.print();
    println!("Paper: Bug1 passes slots 1-2 and fails 3-5 (bug between slot 2 and 3);");
    println!("Bug2 passes only slot 1 (bug between slot 1 and 2).\n");

    // --- Mixed-state assertion at slot 5 ----------------------------------
    let v5 = expected_slot_state(&base, 5);
    let rho = CMatrix::outer(&v5, &v5);
    let counting_rho = rho.partial_trace(&[4]).unwrap();
    let mixed_spec = StateSpec::mixed(counting_rho).unwrap();
    let mut table = Table::new(
        "§IX-A2 — 4-qubit mixed-state assertion at slot 5",
        &["error rate", "detected"],
    );
    for (name, bug) in [
        ("correct", QpeBug::None),
        ("Bug1", QpeBug::MissingLoopIndex),
        ("Bug2", QpeBug::UncontrolledGate),
    ] {
        let mut circuit = qpe_prefix(&base.with_bug(bug), 5);
        let handle =
            insert_assertion(&mut circuit, &[0, 1, 2, 3], &mixed_spec, Design::Ndd).unwrap();
        let counts = StatevectorSimulator::with_seed(10)
            .run(&circuit, SHOTS)
            .unwrap();
        let rate = handle.error_rate(&counts);
        table.push(
            name,
            vec![format!("{rate:.3}"), qra_bench::verdict(rate > 0.01)],
        );
    }
    table.print();
    println!("Paper: the mixed-state assertion flags Bug1 but NOT Bug2 (under Bug2");
    println!("the counting register is still the \"correct\" |++++⟩ basis state).\n");

    // --- Approximate assertion at slot 5 -----------------------------------
    let dim = v5.len();
    let mut branch0 = CVector::zeros(dim);
    let mut branch1 = CVector::zeros(dim);
    for i in 0..dim {
        if i & 1 == 0 {
            branch0[i] = v5.amplitude(i);
        } else {
            branch1[i] = v5.amplitude(i);
        }
    }
    let set = StateSpec::set(vec![
        branch0.normalized().unwrap(),
        branch1.normalized().unwrap(),
    ])
    .unwrap();
    let mut table = Table::new(
        "§IX-A3 — approximate assertion at slot 5 (set of 2 states)",
        &["error rate", "detected", "#CX"],
    );
    for (name, bug) in [
        ("correct", QpeBug::None),
        ("Bug1", QpeBug::MissingLoopIndex),
        ("Bug2", QpeBug::UncontrolledGate),
    ] {
        let mut circuit = qpe_prefix(&base.with_bug(bug), 5);
        let qubits: Vec<usize> = (0..base.num_qubits()).collect();
        let handle = insert_assertion(&mut circuit, &qubits, &set, Design::Auto).unwrap();
        let counts = StatevectorSimulator::with_seed(11)
            .run(&circuit, SHOTS)
            .unwrap();
        let rate = handle.error_rate(&counts);
        table.push(
            name,
            vec![
                format!("{rate:.3}"),
                qra_bench::verdict(rate > 0.01),
                handle.counts.cx.to_string(),
            ],
        );
    }
    table.print();
    println!("Paper: both bugs leave the set, so the approximate assertion");
    println!("catches both with a cheaper circuit than the full pure assertion.");
}
