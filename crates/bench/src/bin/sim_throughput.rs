//! Simulator throughput: compiled execution engine vs the legacy
//! instruction-walking interpreter, per workload, as machine-readable JSON
//! (`BENCH_sim.json`) so the repo carries a perf trajectory over time.
//!
//! Each workload runs the same seeded circuit through
//! [`StatevectorSimulator::run_interpreted`] (baseline) and
//! [`StatevectorSimulator::run`] (compiled), **panics if the counts
//! differ** (the engines are bit-for-bit seed-compatible by contract), and
//! reports wall time, shots/s and gates/s for both plus the speedup.
//!
//! Usage: `sim_throughput [--short] [--out PATH] [--threads T]`
//!
//! `--short` shrinks shots/repeats for CI smoke runs (validates the
//! pipeline and the identity contract, not the timing); `--out` overrides
//! the default `BENCH_sim.json` output path; `--threads` overrides the
//! amplitude/shot worker count used by the parallel sections (default:
//! one per available core). Beyond the interpreted-vs-compiled pairs,
//! three parallel sections exercise the threaded paths — amplitude-level
//! kernel threading on ≥18-qubit workloads, kernel fusion on rotation
//! chains, and batched trajectory shots — each asserting its counts are
//! identical to the sequential run before reporting a speedup.

use qra::algorithms::{qft, states};
use qra::prelude::*;
use qra::sim::threads::resolve_threads;
use qra::sim::{CompiledProgram, TrajectorySimulator};
use qra_bench::json_string;
use std::time::Instant;

/// A wide SWAP-style assertion campaign cell, all-Clifford by
/// construction: GHZ-`n` prepared with exact H/CX, uncomputed through the
/// linear coset map, three probe qubits parity-checked against fresh
/// ancillas, recomputed, ancillas measured. The probes skip qubit 0 (in
/// `|+⟩` after the uncompute, so its check would flag the correct state).
/// With `fault` set, a stray X lands on a probe qubit before the check —
/// the detection case. Only the tableau backend can run this at
/// n = 128/256.
fn wide_swap_assertion(n: usize, fault: bool) -> Circuit {
    let probes = [1, n / 2, n - 1];
    let mut c = Circuit::with_clbits(n + probes.len(), probes.len());
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    if fault {
        c.x(probes[0]);
    }
    for q in (0..n - 1).rev() {
        c.cx(q, q + 1);
    }
    for (i, &q) in probes.iter().enumerate() {
        c.cx(q, n + i);
        c.cx(n + i, q);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    for i in 0..probes.len() {
        c.measure(n + i, i).unwrap();
    }
    c
}

struct DensityWorkload {
    name: &'static str,
    circuit: Circuit,
    noise: NoiseModel,
    shots: u64,
    seed: u64,
}

/// Noisy density-matrix workloads: the legacy dense walker
/// ([`DensityMatrixSimulator::run_interpreted`]) against the compiled
/// kernel-conjugation engine, with the same bit-for-bit identity contract
/// as the state-vector pairs. The melbourne GHZ entry is the §IX-B
/// device-regime workload the compiled engine was built for.
fn density_workloads(short: bool) -> Vec<DensityWorkload> {
    let s = |full: u64, smoke: u64| if short { smoke } else { full };
    vec![
        DensityWorkload {
            name: "density_ghz8_melbourne",
            circuit: ghz_measured(8),
            noise: DevicePreset::melbourne_like(),
            shots: s(4096, 64),
            seed: 7,
        },
        DensityWorkload {
            name: "density_ghz5_midcircuit_melbourne",
            circuit: ghz_midcircuit(5),
            noise: DevicePreset::melbourne_like(),
            shots: s(4096, 64),
            seed: 11,
        },
        DensityWorkload {
            name: "density_ghz8_ideal",
            circuit: ghz_measured(8),
            noise: NoiseModel::ideal(),
            shots: s(4096, 64),
            seed: 13,
        },
    ]
}

struct Workload {
    name: &'static str,
    circuit: Circuit,
    shots: u64,
    seed: u64,
}

/// The paper's central workload shape: an `n`-qubit GHZ preparation with a
/// runtime assertion appended (terminal ancilla measurement). The
/// assertion probes a 3-qubit slice — the reduced GHZ state is the
/// classical set `{|000⟩, |111⟩}`, whose NDD unitary is diagonal ±1 and
/// synthesizes to the paper's Fig. 14 parity network — so the workload
/// cost is dominated by `(n+1)`-qubit state evolution and sampling, the
/// hot path this bench tracks.
fn ghz_assertion(n: usize, design: Design) -> Circuit {
    let mut c = states::ghz(n);
    let probe = [0, n / 2, n - 1];
    let spec = StateSpec::set(vec![CVector::basis_state(8, 0), CVector::basis_state(8, 7)])
        .expect("ghz slice spec");
    insert_assertion(&mut c, &probe, &spec, design).expect("assertion synthesis");
    c
}

fn ghz_measured(n: usize) -> Circuit {
    let mut c = states::ghz(n);
    c.measure_all();
    c
}

/// GHZ built from the exact H/CX generators — `states::ghz` spells its
/// Hadamard as `u2(0, π)`, which the exact Clifford recognizer rejects,
/// so the stabilizer rows use this variant.
fn ghz_clifford_measured(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure_all();
    c
}

/// GHZ with a mid-circuit syndrome measurement and reset: forces the
/// per-shot collapse path, where the cached unitary prefix pays off.
fn ghz_midcircuit(n: usize) -> Circuit {
    let mut c = Circuit::with_clbits(n, n + 1);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure(n - 1, n).unwrap();
    c.reset(n - 1).unwrap();
    c.cx(n - 2, n - 1);
    for q in 0..n {
        c.measure(q, q).unwrap();
    }
    c
}

fn qft_measured(n: usize) -> Circuit {
    let mut c = qft::qft(n);
    c.measure_all();
    c
}

/// Dense single-qubit rotation chains: `layers` sweeps of H·T·Rz·H per
/// qubit. Every adjacent pair on a qubit fuses, so this is the fusion
/// section's best case — and the identity contract's hardest test, since
/// fused stages must replay bit-for-bit.
fn rot_chain(n: usize, layers: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for layer in 0..layers {
        for q in 0..n {
            c.h(q).t(q).rz(0.1 * (layer + 1) as f64, q).h(q);
        }
    }
    c.measure_all();
    c
}

/// Past-20-qubit workloads for the amplitude-threading section: wide
/// terminal circuits whose cost is one big state evolution.
fn parallel_workloads(short: bool) -> Vec<Workload> {
    let s = |full: u64, smoke: u64| if short { smoke } else { full };
    vec![
        Workload {
            name: "ghz22_terminal",
            circuit: ghz_measured(22),
            shots: s(4096, 64),
            seed: 7,
        },
        Workload {
            name: "qft18_terminal",
            circuit: qft_measured(18),
            shots: s(1024, 32),
            seed: 13,
        },
    ]
}

fn workloads(short: bool) -> Vec<Workload> {
    let s = |full: u64, smoke: u64| if short { smoke } else { full };
    vec![
        Workload {
            name: "ghz16_terminal",
            circuit: ghz_measured(16),
            shots: s(8192, 128),
            seed: 7,
        },
        Workload {
            name: "ghz16_assert_ndd",
            circuit: ghz_assertion(16, Design::Ndd),
            shots: s(8192, 128),
            seed: 7,
        },
        Workload {
            name: "ghz12_midcircuit",
            circuit: ghz_midcircuit(12),
            shots: s(512, 16),
            seed: 11,
        },
        Workload {
            name: "qft8_terminal",
            circuit: qft_measured(8),
            shots: s(8192, 128),
            seed: 13,
        },
    ]
}

/// Times `runs` repetitions of `f`, returning (best seconds, counts).
fn time_best<F: FnMut() -> Counts>(runs: usize, mut f: F) -> (f64, Counts) {
    let mut best = f64::INFINITY;
    let mut counts = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let c = f();
        best = best.min(t0.elapsed().as_secs_f64());
        counts = Some(c);
    }
    (best, counts.expect("runs >= 1"))
}

fn engine_json(secs: f64, shots: u64, gate_evals: u64) -> String {
    format!(
        "{{\"secs\":{:.6},\"shots_per_s\":{:.1},\"gates_per_s\":{:.1}}}",
        secs,
        shots as f64 / secs,
        gate_evals as f64 / secs
    )
}

fn main() {
    let mut short = false;
    let mut out = String::from("BENCH_sim.json");
    let mut threads = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("--threads needs a number");
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let (cores, _) = resolve_threads(0);
    let threads = if threads == 0 { cores } else { threads };
    let runs = if short { 1 } else { 3 };
    // On a single-core machine (or a forced single-thread run) the
    // parallel/trajectory speedup columns measure scheduling overhead,
    // not scaling: their rows are flagged degenerate and exempt from any
    // speedup expectation instead of reporting a meaningless 1.00×.
    let degenerate = cores < 2 || threads < 2;
    let mut entries = Vec::new();
    for w in workloads(short) {
        let program = CompiledProgram::compile(&w.circuit).expect("compile");
        let gates = w.circuit.gate_count() as u64;
        // Terminal workloads evolve the circuit once regardless of shots;
        // per-shot workloads re-apply every gate each shot.
        let gate_evals = if program.is_terminal() {
            gates
        } else {
            gates * w.shots
        };
        let (interp_secs, interp_counts) = time_best(runs, || {
            StatevectorSimulator::with_seed(w.seed)
                .run_interpreted(&w.circuit, w.shots)
                .expect("interpreted run")
        });
        let (compiled_secs, compiled_counts) = time_best(runs, || {
            StatevectorSimulator::with_seed(w.seed)
                .run_compiled(&program, w.shots)
                .expect("compiled run")
        });
        assert_eq!(
            interp_counts, compiled_counts,
            "{}: compiled counts diverged from interpreter — seed-compatibility broken",
            w.name
        );
        let speedup = interp_secs / compiled_secs;
        let classes: Vec<String> = program
            .class_histogram()
            .into_iter()
            .map(|(class, count)| format!("{}:{}", json_string(class.name()), count))
            .collect();
        eprintln!(
            "{:>18}  n={:<2} gates={:<4} shots={:<5} interp {:>9.3} ms  compiled {:>9.3} ms  {:>6.1}x",
            w.name,
            w.circuit.num_qubits(),
            gates,
            w.shots,
            interp_secs * 1e3,
            compiled_secs * 1e3,
            speedup
        );
        entries.push(format!(
            "{{\"name\":{},\"qubits\":{},\"gates\":{},\"shots\":{},\"terminal\":{},\"kernel_classes\":{{{}}},\"interpreted\":{},\"compiled\":{},\"speedup\":{:.2},\"identical\":true}}",
            json_string(w.name),
            w.circuit.num_qubits(),
            gates,
            w.shots,
            program.is_terminal(),
            classes.join(","),
            engine_json(interp_secs, w.shots, gate_evals),
            engine_json(compiled_secs, w.shots, gate_evals),
            speedup
        ));
    }
    let mut density_entries = Vec::new();
    for w in density_workloads(short) {
        let sim = DensityMatrixSimulator::with_noise(w.noise.clone());
        let program = sim.compile(&w.circuit).expect("density compile");
        let gates = w.circuit.gate_count() as u64;
        // Density evolution applies every lowered op once per run; the
        // shot loop only samples the resulting distribution.
        let (interp_secs, interp_counts) = time_best(runs, || {
            sim.run_interpreted(&w.circuit, w.shots, w.seed)
                .expect("interpreted density run")
        });
        let (compiled_secs, compiled_counts) = time_best(runs, || {
            sim.run_compiled(&program, w.shots, w.seed)
                .expect("compiled density run")
        });
        assert_eq!(
            interp_counts, compiled_counts,
            "{}: compiled density counts diverged from the walker — seed-compatibility broken",
            w.name
        );
        let speedup = interp_secs / compiled_secs;
        let classes: Vec<String> = program
            .class_histogram()
            .into_iter()
            .map(|(class, count)| format!("{}:{}", json_string(class.name()), count))
            .collect();
        eprintln!(
            "{:>34}  n={:<2} gates={:<4} shots={:<5} interp {:>9.3} ms  compiled {:>9.3} ms  {:>6.1}x",
            w.name,
            w.circuit.num_qubits(),
            gates,
            w.shots,
            interp_secs * 1e3,
            compiled_secs * 1e3,
            speedup
        );
        density_entries.push(format!(
            "{{\"name\":{},\"qubits\":{},\"gates\":{},\"ops\":{},\"shots\":{},\"kernel_classes\":{{{}}},\"interpreted\":{},\"compiled\":{},\"speedup\":{:.2},\"identical\":true}}",
            json_string(w.name),
            w.circuit.num_qubits(),
            gates,
            program.op_count(),
            w.shots,
            classes.join(","),
            engine_json(interp_secs, w.shots, gates),
            engine_json(compiled_secs, w.shots, gates),
            speedup
        ));
    }
    // Amplitude-threading section: the same compiled program executed
    // sequentially and with `threads` workers per kernel sweep. Counts
    // must be bit-identical (the threaded chunking reproduces the exact
    // sequential arithmetic per amplitude); the speedup column is what
    // the thread pool buys on past-20-qubit workloads.
    let mut parallel_entries = Vec::new();
    for w in parallel_workloads(short) {
        let program = CompiledProgram::compile(&w.circuit).expect("compile");
        let (single_secs, single_counts) = time_best(runs, || {
            StatevectorSimulator::with_seed(w.seed)
                .run_compiled(&program, w.shots)
                .expect("sequential run")
        });
        let (threaded_secs, threaded_counts) = time_best(runs, || {
            StatevectorSimulator::with_seed(w.seed)
                .with_threads(threads)
                .run_compiled(&program, w.shots)
                .expect("threaded run")
        });
        assert_eq!(
            single_counts, threaded_counts,
            "{}: threaded counts diverged from sequential — thread identity broken",
            w.name
        );
        let speedup = single_secs / threaded_secs;
        eprintln!(
            "{:>18}  n={:<2} shots={:<5} 1-thread {:>9.3} ms  {}-thread {:>9.3} ms  {:>6.2}x",
            w.name,
            w.circuit.num_qubits(),
            w.shots,
            single_secs * 1e3,
            threads,
            threaded_secs * 1e3,
            speedup
        );
        parallel_entries.push(format!(
            "{{\"name\":{},\"qubits\":{},\"shots\":{},\"threads\":{},\"degenerate\":{},\"single\":{},\"threaded\":{},\"speedup\":{:.2},\"identical\":true}}",
            json_string(w.name),
            w.circuit.num_qubits(),
            w.shots,
            threads,
            degenerate,
            engine_json(single_secs, w.shots, w.circuit.gate_count() as u64),
            engine_json(threaded_secs, w.shots, w.circuit.gate_count() as u64),
            speedup
        ));
    }

    // Fusion section: the same circuit compiled with and without adjacent
    // same-tuple kernel fusion. Fused stage lists replay the identical
    // per-amplitude arithmetic, so counts must match bit-for-bit; the
    // fused_away column counts the kernel sweeps eliminated.
    // Short mode stays at 16 qubits for CI turnaround; full mode uses a
    // 20-qubit register (16 MiB state, well past last-level cache) where
    // eliminating whole state sweeps is a memory-bandwidth win rather
    // than a cache-resident dispatch tradeoff.
    let mut fusion_entries = Vec::new();
    {
        let (n, layers) = if short { (16, 2) } else { (20, 4) };
        let circuit = rot_chain(n, layers);
        let name = format!("rot_chain{n}");
        let shots = if short { 64u64 } else { 1024 };
        let seed = 17u64;
        let fused = CompiledProgram::compile(&circuit).expect("fused compile");
        let unfused = CompiledProgram::compile_unfused(&circuit).expect("unfused compile");
        let (unfused_secs, unfused_counts) = time_best(runs, || {
            StatevectorSimulator::with_seed(seed)
                .run_compiled(&unfused, shots)
                .expect("unfused run")
        });
        let (fused_secs, fused_counts) = time_best(runs, || {
            StatevectorSimulator::with_seed(seed)
                .run_compiled(&fused, shots)
                .expect("fused run")
        });
        assert_eq!(
            unfused_counts, fused_counts,
            "{name}: fused counts diverged from unfused — fusion identity broken"
        );
        let speedup = unfused_secs / fused_secs;
        eprintln!(
            "{:>18}  n={} shots={:<5} unfused {:>9.3} ms  fused {:>9.3} ms  {:>6.2}x (fused away {} of {} kernels)",
            name,
            n,
            shots,
            unfused_secs * 1e3,
            fused_secs * 1e3,
            speedup,
            fused.fused_away(),
            unfused.op_count()
        );
        fusion_entries.push(format!(
            "{{\"name\":\"{name}\",\"qubits\":{n},\"gates\":{},\"shots\":{},\"ops_unfused\":{},\"ops_fused\":{},\"fused_away\":{},\"unfused\":{},\"fused\":{},\"speedup\":{:.2},\"identical\":true}}",
            circuit.gate_count(),
            shots,
            unfused.op_count(),
            fused.op_count(),
            fused.fused_away(),
            engine_json(unfused_secs, shots, circuit.gate_count() as u64),
            engine_json(fused_secs, shots, circuit.gate_count() as u64),
            speedup
        ));
    }

    // Trajectory batch section: per-shot-seeded batched execution at one
    // worker vs `threads` workers. The histogram depends only on
    // (seed, shot index), so worker counts must not change a single count;
    // the speedup row tracks shot-level scaling.
    let mut trajectory_entries = Vec::new();
    {
        let circuit = ghz_midcircuit(if short { 10 } else { 14 });
        let shots = if short { 64u64 } else { 2048 };
        let noise = DevicePreset::LowNoise.noise_model();
        let seed = 23u64;
        let (single_secs, single_counts) = time_best(runs, || {
            TrajectorySimulator::new(noise.clone(), seed)
                .run_batched(&circuit, shots)
                .expect("single-worker batch")
        });
        let (batched_secs, batched_counts) = time_best(runs, || {
            TrajectorySimulator::new(noise.clone(), seed)
                .with_threads(threads)
                .run_batched(&circuit, shots)
                .expect("multi-worker batch")
        });
        assert_eq!(
            single_counts, batched_counts,
            "trajectory batch: worker count changed the histogram — shot-seed identity broken"
        );
        let speedup = single_secs / batched_secs;
        eprintln!(
            "{:>18}  n={:<2} shots={:<5} 1-worker {:>9.3} ms  {}-worker {:>9.3} ms  {:>6.2}x",
            "traj_ghz_mid",
            circuit.num_qubits(),
            shots,
            single_secs * 1e3,
            threads,
            batched_secs * 1e3,
            speedup
        );
        trajectory_entries.push(format!(
            "{{\"name\":\"traj_ghz_midcircuit\",\"qubits\":{},\"shots\":{},\"workers\":{},\"degenerate\":{},\"single\":{},\"batched\":{},\"speedup\":{:.2},\"identical\":true}}",
            circuit.num_qubits(),
            shots,
            threads,
            degenerate,
            engine_json(single_secs, shots, circuit.gate_count() as u64),
            engine_json(batched_secs, shots, circuit.gate_count() as u64),
            speedup
        ));
    }

    // Stabilizer section: the tableau backend's identity contract at an
    // overlapping width, then the wide Clifford campaign cells no dense
    // engine can touch. The GHZ-16 row asserts bit-identical counts
    // against the compiled statevector engine; the GHZ-128/GHZ-256 rows
    // are SWAP-assertion cells at a million shots, with the stray-X
    // variant proving the ancilla parity actually detects.
    let mut stabilizer_entries = Vec::new();
    {
        let circuit = ghz_clifford_measured(16);
        let shots = if short { 128u64 } else { 8192 };
        let seed = 7u64;
        let program = CompiledProgram::compile(&circuit).expect("compile");
        assert!(program.is_clifford(), "GHZ-16 must be tagged Clifford");
        let (sv_secs, sv_counts) = time_best(runs, || {
            StatevectorSimulator::with_seed(seed)
                .run_compiled(&program, shots)
                .expect("statevector run")
        });
        let (stab_secs, stab_counts) = time_best(runs, || {
            StabilizerSimulator::with_seed(seed)
                .run(&circuit, shots)
                .expect("stabilizer run")
        });
        assert_eq!(
            sv_counts, stab_counts,
            "ghz16: stabilizer counts diverged from statevector — backend identity broken"
        );
        let speedup = sv_secs / stab_secs;
        eprintln!(
            "{:>18}  n=16 shots={:<7} statevector {:>9.3} ms  stabilizer {:>9.3} ms  {:>6.2}x",
            "ghz16_stab_ident",
            shots,
            sv_secs * 1e3,
            stab_secs * 1e3,
            speedup
        );
        stabilizer_entries.push(format!(
            "{{\"name\":\"ghz16_stabilizer_identity\",\"qubits\":16,\"shots\":{},\"statevector\":{},\"stabilizer\":{},\"speedup\":{:.2},\"identical\":true}}",
            shots,
            engine_json(sv_secs, shots, circuit.gate_count() as u64),
            engine_json(stab_secs, shots, circuit.gate_count() as u64),
            speedup
        ));
    }
    for n in [128usize, 256] {
        let shots = if short { 4096u64 } else { 1_000_000 };
        let seed = 31u64;
        let clean = wide_swap_assertion(n, false);
        let faulted = wide_swap_assertion(n, true);
        let gates = clean.gate_count() as u64;
        let (secs, counts) = time_best(runs, || {
            StabilizerSimulator::with_seed(seed)
                .run(&clean, shots)
                .expect("wide clean run")
        });
        let flag_clean = counts.any_set_frequency(&[0, 1, 2]);
        let flag_faulted = StabilizerSimulator::with_seed(seed)
            .run(&faulted, shots)
            .expect("wide faulted run")
            .any_set_frequency(&[0, 1, 2]);
        assert_eq!(flag_clean, 0.0, "correct GHZ-{n} must never flag");
        assert!(flag_faulted > 0.99, "stray X on GHZ-{n} must flag");
        if !short {
            assert!(
                secs < 10.0,
                "GHZ-{n} swap assertion at {shots} shots took {secs:.1}s — \
                 the single-digit-seconds budget is broken"
            );
        }
        eprintln!(
            "{:>18}  n={:<3} shots={:<7} stabilizer {:>9.3} ms  ({:.2e} shots/s)  flag clean {:.3} faulted {:.3}",
            format!("ghz{n}_swap_assert"),
            n,
            shots,
            secs * 1e3,
            shots as f64 / secs,
            flag_clean,
            flag_faulted
        );
        stabilizer_entries.push(format!(
            "{{\"name\":\"ghz{n}_swap_assert\",\"qubits\":{},\"gates\":{gates},\"shots\":{shots},\"stabilizer\":{},\"flag_rate_clean\":{flag_clean:.4},\"flag_rate_faulted\":{flag_faulted:.4},\"detects\":true}}",
            clean.num_qubits(),
            engine_json(secs, shots, gates),
        ));
    }

    let json = format!(
        "{{\"bench\":\"sim_throughput\",\"short\":{},\"runs_per_engine\":{},\"cores\":{},\"threads\":{},\"workloads\":[{}],\"density\":[{}],\"parallel\":[{}],\"fusion\":[{}],\"trajectory\":[{}],\"stabilizer\":[{}]}}",
        short,
        runs,
        cores,
        threads,
        entries.join(","),
        density_entries.join(","),
        parallel_entries.join(","),
        fusion_entries.join(","),
        trajectory_entries.join(","),
        stabilizer_entries.join(",")
    );
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_sim.json");
    println!("{json}");
}
