//! Simulator throughput: compiled execution engine vs the legacy
//! instruction-walking interpreter, per workload, as machine-readable JSON
//! (`BENCH_sim.json`) so the repo carries a perf trajectory over time.
//!
//! Each workload runs the same seeded circuit through
//! [`StatevectorSimulator::run_interpreted`] (baseline) and
//! [`StatevectorSimulator::run`] (compiled), **panics if the counts
//! differ** (the engines are bit-for-bit seed-compatible by contract), and
//! reports wall time, shots/s and gates/s for both plus the speedup.
//!
//! Usage: `sim_throughput [--short] [--out PATH]`
//!
//! `--short` shrinks shots/repeats for CI smoke runs (validates the
//! pipeline and the identity contract, not the timing); `--out` overrides
//! the default `BENCH_sim.json` output path.

use qra::algorithms::{qft, states};
use qra::prelude::*;
use qra::sim::CompiledProgram;
use qra_bench::json_string;
use std::time::Instant;

struct DensityWorkload {
    name: &'static str,
    circuit: Circuit,
    noise: NoiseModel,
    shots: u64,
    seed: u64,
}

/// Noisy density-matrix workloads: the legacy dense walker
/// ([`DensityMatrixSimulator::run_interpreted`]) against the compiled
/// kernel-conjugation engine, with the same bit-for-bit identity contract
/// as the state-vector pairs. The melbourne GHZ entry is the §IX-B
/// device-regime workload the compiled engine was built for.
fn density_workloads(short: bool) -> Vec<DensityWorkload> {
    let s = |full: u64, smoke: u64| if short { smoke } else { full };
    vec![
        DensityWorkload {
            name: "density_ghz8_melbourne",
            circuit: ghz_measured(8),
            noise: DevicePreset::melbourne_like(),
            shots: s(4096, 64),
            seed: 7,
        },
        DensityWorkload {
            name: "density_ghz5_midcircuit_melbourne",
            circuit: ghz_midcircuit(5),
            noise: DevicePreset::melbourne_like(),
            shots: s(4096, 64),
            seed: 11,
        },
        DensityWorkload {
            name: "density_ghz8_ideal",
            circuit: ghz_measured(8),
            noise: NoiseModel::ideal(),
            shots: s(4096, 64),
            seed: 13,
        },
    ]
}

struct Workload {
    name: &'static str,
    circuit: Circuit,
    shots: u64,
    seed: u64,
}

/// The paper's central workload shape: an `n`-qubit GHZ preparation with a
/// runtime assertion appended (terminal ancilla measurement). The
/// assertion probes a 3-qubit slice — the reduced GHZ state is the
/// classical set `{|000⟩, |111⟩}`, whose NDD unitary is diagonal ±1 and
/// synthesizes to the paper's Fig. 14 parity network — so the workload
/// cost is dominated by `(n+1)`-qubit state evolution and sampling, the
/// hot path this bench tracks.
fn ghz_assertion(n: usize, design: Design) -> Circuit {
    let mut c = states::ghz(n);
    let probe = [0, n / 2, n - 1];
    let spec = StateSpec::set(vec![CVector::basis_state(8, 0), CVector::basis_state(8, 7)])
        .expect("ghz slice spec");
    insert_assertion(&mut c, &probe, &spec, design).expect("assertion synthesis");
    c
}

fn ghz_measured(n: usize) -> Circuit {
    let mut c = states::ghz(n);
    c.measure_all();
    c
}

/// GHZ with a mid-circuit syndrome measurement and reset: forces the
/// per-shot collapse path, where the cached unitary prefix pays off.
fn ghz_midcircuit(n: usize) -> Circuit {
    let mut c = Circuit::with_clbits(n, n + 1);
    c.h(0);
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.measure(n - 1, n).unwrap();
    c.reset(n - 1).unwrap();
    c.cx(n - 2, n - 1);
    for q in 0..n {
        c.measure(q, q).unwrap();
    }
    c
}

fn qft_measured(n: usize) -> Circuit {
    let mut c = qft::qft(n);
    c.measure_all();
    c
}

fn workloads(short: bool) -> Vec<Workload> {
    let s = |full: u64, smoke: u64| if short { smoke } else { full };
    vec![
        Workload {
            name: "ghz16_terminal",
            circuit: ghz_measured(16),
            shots: s(8192, 128),
            seed: 7,
        },
        Workload {
            name: "ghz16_assert_ndd",
            circuit: ghz_assertion(16, Design::Ndd),
            shots: s(8192, 128),
            seed: 7,
        },
        Workload {
            name: "ghz12_midcircuit",
            circuit: ghz_midcircuit(12),
            shots: s(512, 16),
            seed: 11,
        },
        Workload {
            name: "qft8_terminal",
            circuit: qft_measured(8),
            shots: s(8192, 128),
            seed: 13,
        },
    ]
}

/// Times `runs` repetitions of `f`, returning (best seconds, counts).
fn time_best<F: FnMut() -> Counts>(runs: usize, mut f: F) -> (f64, Counts) {
    let mut best = f64::INFINITY;
    let mut counts = None;
    for _ in 0..runs {
        let t0 = Instant::now();
        let c = f();
        best = best.min(t0.elapsed().as_secs_f64());
        counts = Some(c);
    }
    (best, counts.expect("runs >= 1"))
}

fn engine_json(secs: f64, shots: u64, gate_evals: u64) -> String {
    format!(
        "{{\"secs\":{:.6},\"shots_per_s\":{:.1},\"gates_per_s\":{:.1}}}",
        secs,
        shots as f64 / secs,
        gate_evals as f64 / secs
    )
}

fn main() {
    let mut short = false;
    let mut out = String::from("BENCH_sim.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let runs = if short { 1 } else { 3 };
    let mut entries = Vec::new();
    for w in workloads(short) {
        let program = CompiledProgram::compile(&w.circuit).expect("compile");
        let gates = w.circuit.gate_count() as u64;
        // Terminal workloads evolve the circuit once regardless of shots;
        // per-shot workloads re-apply every gate each shot.
        let gate_evals = if program.is_terminal() {
            gates
        } else {
            gates * w.shots
        };
        let (interp_secs, interp_counts) = time_best(runs, || {
            StatevectorSimulator::with_seed(w.seed)
                .run_interpreted(&w.circuit, w.shots)
                .expect("interpreted run")
        });
        let (compiled_secs, compiled_counts) = time_best(runs, || {
            StatevectorSimulator::with_seed(w.seed)
                .run_compiled(&program, w.shots)
                .expect("compiled run")
        });
        assert_eq!(
            interp_counts, compiled_counts,
            "{}: compiled counts diverged from interpreter — seed-compatibility broken",
            w.name
        );
        let speedup = interp_secs / compiled_secs;
        let classes: Vec<String> = program
            .class_histogram()
            .into_iter()
            .map(|(class, count)| format!("{}:{}", json_string(class.name()), count))
            .collect();
        eprintln!(
            "{:>18}  n={:<2} gates={:<4} shots={:<5} interp {:>9.3} ms  compiled {:>9.3} ms  {:>6.1}x",
            w.name,
            w.circuit.num_qubits(),
            gates,
            w.shots,
            interp_secs * 1e3,
            compiled_secs * 1e3,
            speedup
        );
        entries.push(format!(
            "{{\"name\":{},\"qubits\":{},\"gates\":{},\"shots\":{},\"terminal\":{},\"kernel_classes\":{{{}}},\"interpreted\":{},\"compiled\":{},\"speedup\":{:.2},\"identical\":true}}",
            json_string(w.name),
            w.circuit.num_qubits(),
            gates,
            w.shots,
            program.is_terminal(),
            classes.join(","),
            engine_json(interp_secs, w.shots, gate_evals),
            engine_json(compiled_secs, w.shots, gate_evals),
            speedup
        ));
    }
    let mut density_entries = Vec::new();
    for w in density_workloads(short) {
        let sim = DensityMatrixSimulator::with_noise(w.noise.clone());
        let program = sim.compile(&w.circuit).expect("density compile");
        let gates = w.circuit.gate_count() as u64;
        // Density evolution applies every lowered op once per run; the
        // shot loop only samples the resulting distribution.
        let (interp_secs, interp_counts) = time_best(runs, || {
            sim.run_interpreted(&w.circuit, w.shots, w.seed)
                .expect("interpreted density run")
        });
        let (compiled_secs, compiled_counts) = time_best(runs, || {
            sim.run_compiled(&program, w.shots, w.seed)
                .expect("compiled density run")
        });
        assert_eq!(
            interp_counts, compiled_counts,
            "{}: compiled density counts diverged from the walker — seed-compatibility broken",
            w.name
        );
        let speedup = interp_secs / compiled_secs;
        let classes: Vec<String> = program
            .class_histogram()
            .into_iter()
            .map(|(class, count)| format!("{}:{}", json_string(class.name()), count))
            .collect();
        eprintln!(
            "{:>34}  n={:<2} gates={:<4} shots={:<5} interp {:>9.3} ms  compiled {:>9.3} ms  {:>6.1}x",
            w.name,
            w.circuit.num_qubits(),
            gates,
            w.shots,
            interp_secs * 1e3,
            compiled_secs * 1e3,
            speedup
        );
        density_entries.push(format!(
            "{{\"name\":{},\"qubits\":{},\"gates\":{},\"ops\":{},\"shots\":{},\"kernel_classes\":{{{}}},\"interpreted\":{},\"compiled\":{},\"speedup\":{:.2},\"identical\":true}}",
            json_string(w.name),
            w.circuit.num_qubits(),
            gates,
            program.op_count(),
            w.shots,
            classes.join(","),
            engine_json(interp_secs, w.shots, gates),
            engine_json(compiled_secs, w.shots, gates),
            speedup
        ));
    }
    let json = format!(
        "{{\"bench\":\"sim_throughput\",\"short\":{},\"runs_per_engine\":{},\"workloads\":[{}],\"density\":[{}]}}",
        short,
        runs,
        entries.join(","),
        density_entries.join(",")
    );
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_sim.json");
    println!("{json}");
}
