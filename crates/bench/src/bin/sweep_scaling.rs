//! Distributed-sweep scaling: the GHZ-3 single-fault matrix swept over
//! three noise points, executed sequentially (`run_sweep`) and then as
//! orchestrated `(point × cell)` units through the crash-safe run-dir
//! work queue at 1, 2 and 4 workers. Every orchestrated run is asserted
//! byte-identical to the sequential report before its timing is recorded,
//! and the results land in `BENCH_sweep.json` so the repo carries a
//! scaling trajectory over time.
//!
//! `--short` shrinks shots for CI smoke; `--out PATH` overrides the
//! default `BENCH_sweep.json` output path.

use qra::algorithms::states;
use qra::faults::{
    assemble_sweep, cell_record_json, run_campaign, run_sweep, CampaignConfig, CampaignDesign,
    FaultInjector, MarginMode, Shard, SweepConfig, SweepPoint,
};
use qra::orch::{run_threaded, Manifest, RunDir};
use qra::prelude::StateSpec;
use qra::sim::DevicePreset;
use std::time::Instant;

const QUBITS: usize = 3;
const SEED: u64 = 7;

fn main() {
    let mut short = false;
    let mut out = String::from("BENCH_sweep.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--short" => short = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    let shots: u64 = if short { 256 } else { 2048 };

    let program = states::ghz(QUBITS);
    let spec = StateSpec::pure(states::ghz_vector(QUBITS)).expect("ghz spec");
    let mutants = FaultInjector::new(SEED).enumerate_single(&program);
    let targets: Vec<usize> = (0..QUBITS).collect();
    let margin = MarginMode::Fixed(0.02);
    let points = vec![
        SweepPoint::preset(DevicePreset::Ideal),
        SweepPoint::preset(DevicePreset::LowNoise),
        SweepPoint::preset(DevicePreset::MelbourneLike),
    ];
    let base = CampaignConfig {
        shots,
        seed: SEED,
        designs: CampaignDesign::ALL.to_vec(),
        jobs: 1,
        ..CampaignConfig::default()
    };
    let config = SweepConfig {
        points: points.clone(),
        base: base.clone(),
        margin,
    };

    let t0 = Instant::now();
    let sequential = run_sweep(&program, &targets, &spec, &mutants, &config);
    let sequential_secs = t0.elapsed().as_secs_f64();
    let expected = sequential.to_json();

    let cells_per_point = base.designs.len() * (1 + mutants.len());
    let labels: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
    let total_units = points.len() * cells_per_point;
    eprintln!(
        "sequential: {} point(s) x {} cell(s) = {} units in {:.3} s",
        points.len(),
        cells_per_point,
        total_units,
        sequential_secs
    );

    let run_unit = |point: usize, cell: usize| {
        let sweep_point = &points[point];
        let cell_config = CampaignConfig {
            noise: sweep_point.noise.clone(),
            shard: Some(Shard {
                index: cell,
                count: cells_per_point,
            }),
            ..base.clone()
        };
        let report = run_campaign(&program, &targets, &spec, &mutants, &cell_config);
        Ok(cell_record_json(point, cell, &report))
    };

    let mut entries = Vec::new();
    let mut one_worker_secs = None;
    for workers in [1usize, 2, 4] {
        let manifest = Manifest {
            argv: vec!["bench:sweep_scaling".into()],
            labels: labels.clone(),
            cells_per_point,
            units_per_point: cells_per_point,
            margin: margin.to_string(),
            workers,
            unit_timeout_ms: None,
            max_attempts: qra::orch::DEFAULT_MAX_ATTEMPTS,
            hosts: vec![],
        };
        let root =
            std::env::temp_dir().join(format!("qra-bench-sweep-{}-w{workers}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let dir = RunDir::init(&root, &manifest).expect("init run dir");
        let t0 = Instant::now();
        let no_quarantine =
            |_: usize, _: usize, _: &[String]| -> Result<String, qra::orch::OrchError> {
                unreachable!("bench units never exhaust their attempts")
            };
        let outcome =
            run_threaded(&dir, &manifest, workers, &run_unit, &no_quarantine).expect("epoch");
        let secs = t0.elapsed().as_secs_f64();
        assert!(outcome.complete(&manifest), "epoch left units unfinished");
        let merged = assemble_sweep(margin, &labels, cells_per_point, &outcome.state.records)
            .expect("assemble");
        assert_eq!(
            merged.to_json(),
            expected,
            "{workers} worker(s): orchestrated sweep diverged from sequential"
        );
        let _ = std::fs::remove_dir_all(&root);
        let one = *one_worker_secs.get_or_insert(secs);
        eprintln!(
            "workers={workers}: {secs:.3} s  ({:.1} units/s, {:.2}x vs 1 worker)",
            total_units as f64 / secs,
            one / secs
        );
        entries.push(format!(
            "{{\"workers\":{workers},\"secs\":{secs:.6},\"units_per_s\":{:.1},\"speedup_vs_1\":{:.2},\"identical\":true}}",
            total_units as f64 / secs,
            one / secs
        ));
    }

    let json = format!(
        "{{\"bench\":\"sweep_scaling\",\"short\":{short},\"qubits\":{QUBITS},\"shots\":{shots},\"points\":{},\"cells_per_point\":{cells_per_point},\"total_units\":{total_units},\"sequential_secs\":{sequential_secs:.6},\"orchestrated\":[{}]}}",
        points.len(),
        entries.join(",")
    );
    std::fs::write(&out, format!("{json}\n")).expect("write BENCH_sweep.json");
    println!("{json}");
}
