//! Regenerates **Table I**: assertion coverage and circuit cost for the
//! GHZ preparation bugs of §III, across all six schemes.
//!
//! Bug1 = wrong u2 parameter order (sign flip); Bug2 = reordered CX lines
//! (wrong entanglement). A scheme "detects" a bug when its assertion-error
//! rate exceeds the detection threshold on 8192 shots.

use qra::algorithms::states;
use qra::core::baselines::{primitive, proq, statistical_assertion};
use qra::prelude::*;
use qra_bench::{verdict, Table};

const SHOTS: u64 = 8192;
const THRESHOLD: f64 = 0.05;

fn assertion_rate(program: &Circuit, spec: &StateSpec, design: Design) -> (f64, GateCounts) {
    let mut circuit = program.clone();
    let handle = insert_assertion(&mut circuit, &[0, 1, 2], spec, design).expect("insert");
    let counts = StatevectorSimulator::with_seed(1)
        .run(&circuit, SHOTS)
        .expect("run");
    (handle.error_rate(&counts), handle.counts)
}

fn mixed_rate(program: &Circuit, spec: &StateSpec) -> (f64, GateCounts) {
    let mut circuit = program.clone();
    let handle = insert_assertion(&mut circuit, &[1, 2], spec, Design::Swap).expect("insert");
    let counts = StatevectorSimulator::with_seed(1)
        .run(&circuit, SHOTS)
        .expect("run");
    (handle.error_rate(&counts), handle.counts)
}

fn main() {
    let good = states::ghz(3);
    let bug1 = states::ghz_bug1(3);
    let bug2 = states::ghz_bug2(3);
    let precise = StateSpec::pure(states::ghz_vector(3)).unwrap();

    let mut table = Table::new(
        "Table I — GHZ bug coverage and circuit cost",
        &["Bug1", "Bug2", "#CX", "#SG", "#ancilla", "#measure"],
    );

    // Stat: distribution test only.
    {
        let b1 = statistical_assertion(&bug1, &[0, 1, 2], &precise, SHOTS, 2).unwrap();
        let b2 = statistical_assertion(&bug2, &[0, 1, 2], &precise, SHOTS, 3).unwrap();
        table.push(
            "Stat",
            vec![
                verdict(!b1.passed(THRESHOLD)),
                verdict(!b2.passed(THRESHOLD)),
                "N/A".into(),
                "N/A".into(),
                "N/A".into(),
                "3 (destructive)".into(),
            ],
        );
    }

    // Primitive: no GHZ support.
    {
        let na = primitive::supports(&precise).is_none();
        table.push(
            "Primitive",
            vec![
                if na { "N/A".into() } else { "?".into() },
                "N/A".into(),
                "N/A".into(),
                "N/A".into(),
                "N/A".into(),
                "N/A".into(),
            ],
        );
    }

    // Proq: projection-based, no ancillas.
    {
        let rate = |program: &Circuit| {
            let mut c = program.clone();
            let h = proq::insert(&mut c, &[0, 1, 2], &precise).unwrap();
            let counts = StatevectorSimulator::with_seed(4).run(&c, SHOTS).unwrap();
            h.error_rate(&counts)
        };
        // Cost: the two basis-change circuits.
        let mut probe = good.clone();
        let _ = proq::insert(&mut probe, &[0, 1, 2], &precise).unwrap();
        let full = GateCounts::of(&probe).unwrap();
        let base = GateCounts::of(&good).unwrap();
        table.push(
            "Proq",
            vec![
                verdict(rate(&bug1) > THRESHOLD),
                verdict(rate(&bug2) > THRESHOLD),
                (full.cx - base.cx).to_string(),
                (full.sg - base.sg).to_string(),
                "0".into(),
                full.measure.to_string(),
            ],
        );
    }

    // SWAP-based precise assertion.
    {
        let (r1, c) = assertion_rate(&bug1, &precise, Design::Swap);
        let (r2, _) = assertion_rate(&bug2, &precise, Design::Swap);
        table.push(
            "SWAP-based precise",
            vec![
                verdict(r1 > THRESHOLD),
                verdict(r2 > THRESHOLD),
                c.cx.to_string(),
                c.sg.to_string(),
                c.ancilla.to_string(),
                c.measure.to_string(),
            ],
        );
    }

    // SWAP-based mixed-state assertion (last two qubits).
    {
        let mixed = {
            let e0 = CVector::basis_state(4, 0);
            let e3 = CVector::basis_state(4, 3);
            let rho = CMatrix::outer(&e0, &e0)
                .scale(C64::from(0.5))
                .add(&CMatrix::outer(&e3, &e3).scale(C64::from(0.5)))
                .unwrap();
            StateSpec::mixed(rho).unwrap()
        };
        let (r1, c) = mixed_rate(&bug1, &mixed);
        let (r2, _) = mixed_rate(&bug2, &mixed);
        table.push(
            "SWAP-based mixed state",
            vec![
                verdict(r1 > THRESHOLD),
                verdict(r2 > THRESHOLD),
                c.cx.to_string(),
                c.sg.to_string(),
                c.ancilla.to_string(),
                c.measure.to_string(),
            ],
        );
    }

    // NDD-based approximate assertion (parity-pair set).
    {
        let s = 0.5f64.sqrt();
        let pair = |a: usize, b: usize| {
            let mut v = CVector::zeros(8);
            v[a] = C64::from(s);
            v[b] = C64::from(s);
            v
        };
        let ndd_set = StateSpec::set(vec![
            pair(0b000, 0b111),
            pair(0b001, 0b110),
            pair(0b011, 0b100),
            pair(0b010, 0b101),
        ])
        .unwrap();
        let (r1, c) = assertion_rate(&bug1, &ndd_set, Design::Ndd);
        let (r2, _) = assertion_rate(&bug2, &ndd_set, Design::Ndd);
        table.push(
            "NDD-based approximate",
            vec![
                verdict(r1 > THRESHOLD),
                verdict(r2 > THRESHOLD),
                c.cx.to_string(),
                c.sg.to_string(),
                c.ancilla.to_string(),
                c.measure.to_string(),
            ],
        );
    }

    table.print();
    println!("Paper's Table I: Stat False/True; Primitive N/A; Proq True/True 4/2/0/3;");
    println!("SWAP precise True/True 10/2/3/3; SWAP mixed False/True 4/0/1/1;");
    println!("NDD approximate True/True 3/2/1/1.");
}
