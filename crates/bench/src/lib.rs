//! Shared reporting helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation; this library provides the row formatting and the
//! paper-vs-measured comparison printing used by all of them, plus
//! [`micro`], a dependency-free micro-benchmark harness backing the
//! `benches/` targets (the build environment has no registry access, so
//! criterion is not available).

#![deny(missing_docs)]

/// One row of a regenerated table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (scheme / configuration name).
    pub label: String,
    /// Column values as preformatted strings.
    pub values: Vec<String>,
}

/// A regenerated table with a title and column headers.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table title (e.g. "Table I").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<String>) {
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Pretty-prints the table with aligned columns.
    pub fn print(&self) {
        println!("== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        let label_width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        for row in &self.rows {
            for (i, v) in row.values.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(v.len());
                }
            }
        }
        print!("{:label_width$}", "");
        for (h, w) in self.headers.iter().zip(&widths) {
            print!("  {h:>w$}");
        }
        println!();
        for row in &self.rows {
            print!("{:label_width$}", row.label);
            for (v, w) in row.values.iter().zip(&widths) {
                print!("  {v:>w$}");
            }
            println!();
        }
        println!();
    }

    /// Renders the table as a JSON object for tooling, without any
    /// serialisation dependency.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"title\":{},", json_string(&self.title)));
        out.push_str("\"headers\":[");
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_string(h));
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":{},\"values\":[",
                json_string(&row.label)
            ));
            for (j, v) in row.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(v));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// Escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a boolean detection verdict the way the paper's Table I does.
pub fn verdict(detected: bool) -> String {
    if detected { "True" } else { "False" }.to_string()
}

/// Formats a rate as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

pub mod micro {
    //! A dependency-free micro-benchmark harness exposing the slice of the
    //! criterion API the `benches/` targets use (`benchmark_group`,
    //! `bench_with_input`, `bench_function`, `Bencher::iter`,
    //! `criterion_group!`/`criterion_main!`), so the bench sources read the
    //! same as they would against criterion while running offline.

    use std::hint::black_box;
    use std::time::{Duration, Instant};

    /// Top-level harness handle.
    #[derive(Debug, Default)]
    pub struct Criterion {
        _private: (),
    }

    impl Criterion {
        /// Creates a harness.
        pub fn new() -> Self {
            Self::default()
        }

        /// Starts a named group of related benchmarks.
        pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
            let name = name.into();
            println!("group: {name}");
            BenchmarkGroup {
                name,
                sample_size: 50,
            }
        }

        /// Runs one stand-alone benchmark.
        pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F)
        where
            F: FnMut(&mut Bencher),
        {
            run_one(&name.into(), 50, f);
        }
    }

    /// A named benchmark group; `sample_size` tunes iteration counts.
    #[derive(Debug)]
    pub struct BenchmarkGroup {
        name: String,
        sample_size: usize,
    }

    impl BenchmarkGroup {
        /// Sets the measured-iteration count for subsequent benches.
        pub fn sample_size(&mut self, n: usize) -> &mut Self {
            self.sample_size = n.max(1);
            self
        }

        /// Records expected throughput (informational only here).
        pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
            self
        }

        /// Runs a benchmark parameterised by `input`.
        pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
        where
            F: FnMut(&mut Bencher, &I),
        {
            let label = format!("{}/{}", self.name, id.label);
            run_one(&label, self.sample_size, |b| f(b, input));
            self
        }

        /// Runs an unparameterised benchmark inside the group.
        pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
        where
            F: FnMut(&mut Bencher),
        {
            let label = format!("{}/{}", self.name, name.into());
            run_one(&label, self.sample_size, f);
            self
        }

        /// Ends the group.
        pub fn finish(&mut self) {}
    }

    /// Identifier for a parameterised benchmark.
    #[derive(Debug)]
    pub struct BenchmarkId {
        label: String,
    }

    impl BenchmarkId {
        /// Builds an id from a function name and a parameter display value.
        pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
            Self {
                label: format!("{}/{param}", name.into()),
            }
        }
    }

    /// Throughput hint accepted for criterion source compatibility.
    #[derive(Debug, Clone, Copy)]
    pub enum Throughput {
        /// Elements processed per iteration.
        Elements(u64),
        /// Bytes processed per iteration.
        Bytes(u64),
    }

    /// Passed to benchmark closures; call [`Bencher::iter`].
    #[derive(Debug)]
    pub struct Bencher {
        samples: usize,
        result: Option<(Duration, usize)>,
    }

    impl Bencher {
        /// Times `f` over the configured number of iterations (after a
        /// short warm-up) and records the mean.
        pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
            for _ in 0..self.samples.min(3) {
                black_box(f());
            }
            let start = Instant::now();
            for _ in 0..self.samples {
                black_box(f());
            }
            self.result = Some((start.elapsed(), self.samples));
        }
    }

    fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
        let mut b = Bencher {
            samples,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((total, iters)) => {
                let mean = total.as_secs_f64() / iters as f64;
                println!("  {label}: {:.3} µs/iter ({iters} iters)", mean * 1e6);
            }
            None => println!("  {label}: no measurement recorded"),
        }
    }

    /// Collects benchmark functions into one runner, mirroring
    /// `criterion::criterion_group!`.
    #[macro_export]
    macro_rules! criterion_group {
        ($name:ident, $($target:path),+ $(,)?) => {
            fn $name() {
                let mut c = $crate::micro::Criterion::new();
                $( $target(&mut c); )+
            }
        };
    }

    /// Entry point for a bench binary, mirroring `criterion::criterion_main!`.
    #[macro_export]
    macro_rules! criterion_main {
        ($($group:path),+ $(,)?) => {
            fn main() {
                $( $group(); )+
            }
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_builds_and_prints() {
        let mut t = Table::new("Test", &["A", "B"]);
        t.push("row1", vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
        t.print(); // smoke: must not panic
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(verdict(true), "True");
        assert_eq!(verdict(false), "False");
        assert_eq!(pct(0.361), "36.1%");
    }

    #[test]
    fn table_json_is_wellformed() {
        let mut t = Table::new("T \"x\"", &["A"]);
        t.push("r\n1", vec!["v".into()]);
        let json = t.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\\\"x\\\""));
        assert!(json.contains("r\\n1"));
    }

    #[test]
    fn micro_harness_runs() {
        let mut c = micro::Criterion::new();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        group.bench_with_input(micro::BenchmarkId::new("add", 1), &1, |b, &x| {
            b.iter(|| x + 1);
        });
        group.bench_function("noop", |b| b.iter(|| ()));
        group.finish();
        c.bench_function("top", |b| b.iter(|| 2 + 2));
    }
}
