//! Shared reporting helpers for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper's evaluation; this library provides the row formatting and the
//! paper-vs-measured comparison printing used by all of them.

#![deny(missing_docs)]

use serde::Serialize;

/// One row of a regenerated table, serialisable to JSON for tooling.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Row label (scheme / configuration name).
    pub label: String,
    /// Column values as preformatted strings.
    pub values: Vec<String>,
}

/// A regenerated table with a title and column headers.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title (e.g. "Table I").
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, label: impl Into<String>, values: Vec<String>) {
        self.rows.push(Row {
            label: label.into(),
            values,
        });
    }

    /// Pretty-prints the table with aligned columns.
    pub fn print(&self) {
        println!("== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        let label_width = self
            .rows
            .iter()
            .map(|r| r.label.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        for row in &self.rows {
            for (i, v) in row.values.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(v.len());
                }
            }
        }
        print!("{:label_width$}", "");
        for (h, w) in self.headers.iter().zip(&widths) {
            print!("  {h:>w$}");
        }
        println!();
        for row in &self.rows {
            print!("{:label_width$}", row.label);
            for (v, w) in row.values.iter().zip(&widths) {
                print!("  {v:>w$}");
            }
            println!();
        }
        println!();
    }
}

/// Formats a boolean detection verdict the way the paper's Table I does.
pub fn verdict(detected: bool) -> String {
    if detected { "True" } else { "False" }.to_string()
}

/// Formats a rate as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_builds_and_prints() {
        let mut t = Table::new("Test", &["A", "B"]);
        t.push("row1", vec!["1".into(), "2".into()]);
        assert_eq!(t.rows.len(), 1);
        t.print(); // smoke: must not panic
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(verdict(true), "True");
        assert_eq!(verdict(false), "False");
        assert_eq!(pct(0.361), "36.1%");
    }
}
