//! Criterion benches for the simulation substrate: state-vector evolution
//! and shot sampling, density-matrix evolution with and without noise.

use qra::algorithms::{qft, states};
use qra::prelude::*;
use qra_bench::micro::{BenchmarkId, Criterion, Throughput};
use qra_bench::{criterion_group, criterion_main};

fn ghz_measured(n: usize) -> Circuit {
    let mut c = states::ghz(n);
    c.measure_all();
    c
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    for n in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::new("ghz_evolve", n), &n, |b, &n| {
            let circuit = states::ghz(n);
            let sim = StatevectorSimulator::with_seed(1);
            b.iter(|| sim.evolve(&circuit).unwrap());
        });
    }
    for n in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("qft_evolve", n), &n, |b, &n| {
            let circuit = qft::qft(n);
            let sim = StatevectorSimulator::with_seed(1);
            b.iter(|| sim.evolve(&circuit).unwrap());
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shot_sampling");
    for shots in [1024u64, 8192] {
        group.throughput(Throughput::Elements(shots));
        group.bench_with_input(
            BenchmarkId::new("ghz4_terminal", shots),
            &shots,
            |b, &shots| {
                let circuit = ghz_measured(4);
                b.iter(|| {
                    StatevectorSimulator::with_seed(2)
                        .run(&circuit, shots)
                        .unwrap()
                });
            },
        );
    }
    // Mid-circuit measurement forces the per-shot path.
    group.sample_size(10);
    group.bench_function("mid_circuit_per_shot_1024", |b| {
        let mut circuit = Circuit::with_clbits(2, 2);
        circuit.h(0);
        circuit.measure(0, 0).unwrap();
        circuit.h(0);
        circuit.measure(0, 1).unwrap();
        b.iter(|| {
            StatevectorSimulator::with_seed(3)
                .run(&circuit, 1024)
                .unwrap()
        });
    });
    group.finish();
}

fn bench_density(c: &mut Criterion) {
    let mut group = c.benchmark_group("density_matrix");
    group.sample_size(10);
    for n in [2usize, 4, 6] {
        group.bench_with_input(BenchmarkId::new("ghz_ideal", n), &n, |b, &n| {
            let circuit = states::ghz(n);
            let sim = DensityMatrixSimulator::new();
            b.iter(|| sim.evolve(&circuit).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("ghz_noisy", n), &n, |b, &n| {
            let circuit = states::ghz(n);
            let sim = DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like());
            b.iter(|| sim.evolve(&circuit).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_statevector, bench_sampling, bench_density);
criterion_main!(benches);
