//! Ablation benches for the design choices called out in DESIGN.md:
//! synthesis fast paths versus the general route, the peephole optimizer's
//! effect on assertion circuits, and the MCX decomposition strategies.

use qra::circuit::passes::peephole_optimize;
use qra::circuit::synthesis::mc_gate::{mcx, mcx_v_chain, ControlState};
use qra::circuit::synthesis::prepare_state;
use qra::prelude::*;
use qra_bench::micro::{BenchmarkId, Criterion};
use qra_bench::{criterion_group, criterion_main};

/// Fast path (two-term superposition) vs the general disentangling route:
/// perturbing one GHZ amplitude by ε forces the general path.
fn bench_fast_path_vs_general(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_state_prep_fast_paths");
    for n in [3usize, 5] {
        let dim = 1usize << n;
        let s = C64::from(0.5f64.sqrt());
        let mut ghz = CVector::zeros(dim);
        ghz[0] = s;
        ghz[dim - 1] = s;
        // Perturbed: tiny third amplitude disables the two-term path.
        let mut perturbed = ghz.clone();
        perturbed[1] = C64::from(0.05);
        let perturbed = perturbed.normalized().unwrap();

        group.bench_with_input(BenchmarkId::new("fast_two_term", n), &n, |b, _| {
            b.iter(|| prepare_state(&ghz).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("general_route", n), &n, |b, _| {
            b.iter(|| prepare_state(&perturbed).unwrap());
        });
        // Report the cost difference once per size.
        let fast = GateCounts::of(&prepare_state(&ghz).unwrap()).unwrap();
        let slow = GateCounts::of(&prepare_state(&perturbed).unwrap()).unwrap();
        eprintln!(
            "[ablation] n={n}: fast-path CX={}, general CX={}",
            fast.cx, slow.cx
        );
    }
    group.finish();
}

/// Peephole optimizer on assertion circuits: time plus achieved reduction.
fn bench_optimizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_peephole");
    let spec = StateSpec::pure({
        let s = C64::from(0.5f64.sqrt());
        let mut v = CVector::zeros(8);
        v[0] = s;
        v[7] = s;
        v
    })
    .unwrap();
    let assertion = synthesize_assertion(&spec, Design::Ndd).unwrap();
    let circuit = assertion.circuit().clone();
    group.bench_function("optimize_ndd_ghz", |b| {
        b.iter(|| peephole_optimize(&circuit));
    });
    let before = circuit.gate_count();
    let after = peephole_optimize(&circuit).gate_count();
    eprintln!("[ablation] peephole: {before} gates → {after}");
    group.finish();
}

/// MCX strategies: ancilla-free recursion vs the linear V-chain.
fn bench_mcx_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_mcx");
    for k in [3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::new("recursive", k), &k, |b, &k| {
            b.iter(|| {
                let mut circuit = Circuit::new(k + 1);
                let controls: Vec<(usize, ControlState)> =
                    (0..k).map(|q| (q, ControlState::Closed)).collect();
                mcx(&mut circuit, &controls, k).unwrap();
                circuit
            });
        });
        group.bench_with_input(BenchmarkId::new("v_chain", k), &k, |b, &k| {
            b.iter(|| {
                let mut circuit = Circuit::new(2 * k);
                let controls: Vec<usize> = (0..k).collect();
                let ancillas: Vec<usize> = (k + 1..2 * k).collect();
                mcx_v_chain(&mut circuit, &controls, k, &ancillas).unwrap();
                circuit
            });
        });
        // Cost comparison.
        let rec = {
            let mut circuit = Circuit::new(k + 1);
            let controls: Vec<(usize, ControlState)> =
                (0..k).map(|q| (q, ControlState::Closed)).collect();
            mcx(&mut circuit, &controls, k).unwrap();
            GateCounts::of(&circuit).unwrap().cx
        };
        let chain = {
            let mut circuit = Circuit::new(2 * k);
            let controls: Vec<usize> = (0..k).collect();
            let ancillas: Vec<usize> = (k + 1..2 * k).collect();
            mcx_v_chain(&mut circuit, &controls, k, &ancillas).unwrap();
            GateCounts::of(&circuit).unwrap().cx
        };
        eprintln!("[ablation] mcx k={k}: recursive CX={rec}, v-chain CX={chain}");
    }
    group.finish();
}

/// SWAP placement ablation: the optimised 2-CX swap versus the full 3-CX
/// SWAP — the accounting difference between the paper's Fig. 1 and
/// Table III (see DESIGN.md).
fn bench_swap_placement(c: &mut Criterion) {
    use qra::core::swap::{build_swap_assertion_with_placement, SwapPlacement};
    let mut group = c.benchmark_group("ablation_swap_placement");
    let spec = StateSpec::pure({
        let s = C64::from(0.5f64.sqrt());
        let mut v = CVector::zeros(8);
        v[0] = s;
        v[7] = s;
        v
    })
    .unwrap();
    let cs = spec.correct_states().unwrap();
    for (name, placement) in [
        ("optimized_2cx", SwapPlacement::Optimized),
        ("full_3cx", SwapPlacement::FullSwap),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| build_swap_assertion_with_placement(&cs, placement).unwrap());
        });
        let built = build_swap_assertion_with_placement(&cs, placement).unwrap();
        let counts = GateCounts::of(&built.circuit).unwrap();
        eprintln!("[ablation] swap placement {name}: {counts}");
    }
    group.finish();
}

/// Auto design selection versus committing to one design, across specs.
fn bench_auto_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_auto_design");
    group.sample_size(10);
    let parity =
        StateSpec::set(vec![CVector::basis_state(4, 0), CVector::basis_state(4, 3)]).unwrap();
    group.bench_function("auto_parity_set", |b| {
        b.iter(|| synthesize_assertion(&parity, Design::Auto).unwrap());
    });
    group.bench_function("fixed_ndd_parity_set", |b| {
        b.iter(|| synthesize_assertion(&parity, Design::Ndd).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fast_path_vs_general,
    bench_optimizer,
    bench_mcx_strategies,
    bench_swap_placement,
    bench_auto_selection
);
criterion_main!(benches);
