//! Criterion benches for end-to-end assertion overhead: program + inserted
//! assertion, synthesised and executed, versus the bare program — the
//! runtime-cost companion to Tables I and III.

use qra::algorithms::{qpe, states};
use qra::prelude::*;
use qra_bench::micro::{BenchmarkId, Criterion};
use qra_bench::{criterion_group, criterion_main};

const SHOTS: u64 = 1024;

fn bench_ghz_assertions(c: &mut Criterion) {
    let mut group = c.benchmark_group("ghz_assertion_end_to_end");
    group.sample_size(20);
    group.bench_function("bare_program", |b| {
        let mut circuit = states::ghz(3);
        circuit.measure_all();
        b.iter(|| {
            StatevectorSimulator::with_seed(1)
                .run(&circuit, SHOTS)
                .unwrap()
        });
    });
    for (name, design) in [
        ("swap", Design::Swap),
        ("logical_or", Design::LogicalOr),
        ("ndd", Design::Ndd),
    ] {
        group.bench_function(format!("with_{name}_assertion"), |b| {
            b.iter(|| {
                let mut circuit = states::ghz(3);
                let handle = insert_assertion(
                    &mut circuit,
                    &[0, 1, 2],
                    &StateSpec::pure(states::ghz_vector(3)).unwrap(),
                    design,
                )
                .unwrap();
                let counts = StatevectorSimulator::with_seed(1)
                    .run(&circuit, SHOTS)
                    .unwrap();
                handle.error_rate(&counts)
            });
        });
    }
    group.finish();
}

fn bench_qpe_slots(c: &mut Criterion) {
    let mut group = c.benchmark_group("qpe_slot_assertions");
    group.sample_size(10);
    let config = qpe::QpeConfig::paper_sec9a();
    for slot in [1usize, 3, 6] {
        group.bench_with_input(BenchmarkId::new("slot", slot), &slot, |b, &slot| {
            b.iter(|| {
                let mut circuit = qpe::qpe_prefix(&config, slot);
                let expected = qpe::expected_slot_state(&config, slot);
                let qubits: Vec<usize> = (0..config.num_qubits()).collect();
                let handle = insert_assertion(
                    &mut circuit,
                    &qubits,
                    &StateSpec::pure(expected).unwrap(),
                    Design::Swap,
                )
                .unwrap();
                let counts = StatevectorSimulator::with_seed(2)
                    .run(&circuit, SHOTS)
                    .unwrap();
                handle.error_rate(&counts)
            });
        });
    }
    group.finish();
}

fn bench_noisy_assertion(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_density_assertion");
    group.sample_size(10);
    group.bench_function("ghz3_swap_melbourne", |b| {
        let mut circuit = states::ghz(3);
        let _handle = insert_assertion(
            &mut circuit,
            &[0, 1, 2],
            &StateSpec::pure(states::ghz_vector(3)).unwrap(),
            Design::Swap,
        )
        .unwrap();
        let sim = DensityMatrixSimulator::with_noise(DevicePreset::melbourne_like());
        b.iter(|| sim.outcome_distribution(&circuit).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_ghz_assertions,
    bench_qpe_slots,
    bench_noisy_assertion
);
criterion_main!(benches);
