//! Criterion benches for the synthesis substrate: state preparation,
//! unitary synthesis and full assertion synthesis across the state
//! families of Table III.

use qra::circuit::synthesis::{prepare_state, unitary_circuit};
use qra::prelude::*;
use qra_bench::micro::{BenchmarkId, Criterion};
use qra_bench::{criterion_group, criterion_main};

fn ghz_vector(n: usize) -> CVector {
    let dim = 1usize << n;
    let s = C64::from(0.5f64.sqrt());
    let mut v = CVector::zeros(dim);
    v[0] = s;
    v[dim - 1] = s;
    v
}

fn random_state(n: usize, seed: u64) -> CVector {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let dim = 1usize << n;
    CVector::new(
        (0..dim)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect(),
    )
    .normalized()
    .unwrap()
}

fn bench_state_prep(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_preparation");
    for n in [2usize, 3, 4, 5] {
        group.bench_with_input(BenchmarkId::new("ghz_fast_path", n), &n, |b, &n| {
            let v = ghz_vector(n);
            b.iter(|| prepare_state(&v).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("random_general", n), &n, |b, &n| {
            let v = random_state(n, 42);
            b.iter(|| prepare_state(&v).unwrap());
        });
    }
    group.finish();
}

fn bench_unitary_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("unitary_synthesis");
    group.sample_size(10);
    for n in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("random_unitary", n), &n, |b, &n| {
            // Derive a random unitary from a random circuit.
            let mut circ = Circuit::new(n);
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            for _ in 0..3 * n {
                let q = rng.gen_range(0..n);
                circ.u3(
                    rng.gen_range(0.0..3.0),
                    rng.gen_range(0.0..3.0),
                    rng.gen_range(0.0..3.0),
                    q,
                );
                if n > 1 {
                    let p = (q + 1) % n;
                    circ.cx(q, p);
                }
            }
            let u = circ.unitary_matrix().unwrap();
            b.iter(|| unitary_circuit(&u).unwrap());
        });
    }
    group.finish();
}

fn bench_assertion_synthesis(c: &mut Criterion) {
    let mut group = c.benchmark_group("assertion_synthesis");
    group.sample_size(10);
    for n in [2usize, 3, 4] {
        let spec = StateSpec::pure(ghz_vector(n)).unwrap();
        for (name, design) in [
            ("swap", Design::Swap),
            ("logical_or", Design::LogicalOr),
            ("ndd", Design::Ndd),
        ] {
            group.bench_with_input(BenchmarkId::new(format!("ghz_{name}"), n), &n, |b, _| {
                b.iter(|| synthesize_assertion(&spec, design).unwrap());
            });
        }
        // Parity-set approximate assertion (the paper's cheapest NDD case).
        let dim = 1usize << n;
        let even: Vec<CVector> = (0..dim)
            .filter(|x: &usize| x.count_ones().is_multiple_of(2))
            .map(|x| CVector::basis_state(dim, x))
            .collect();
        let set_spec = StateSpec::set(even).unwrap();
        group.bench_with_input(BenchmarkId::new("parity_set_ndd", n), &n, |b, _| {
            b.iter(|| synthesize_assertion(&set_spec, Design::Ndd).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_state_prep,
    bench_unitary_synthesis,
    bench_assertion_synthesis
);
criterion_main!(benches);
