//! End-to-end tests of the distributed sweep orchestrator, driving the
//! real `qra` binary: orchestrated sweeps are byte-identical to the
//! sequential run for any worker count, survive SIGKILLed workers, and
//! `sweep resume` finishes an interrupted run to the identical report.

use qra::orch::parse_progress;
use std::fs;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn qra() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qra"))
}

fn run_ok(args: &[&str]) -> String {
    let out = qra().args(args).output().unwrap();
    assert!(
        out.status.success(),
        "qra {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qra-orch-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn orchestrated_sweep_matches_sequential_for_any_worker_count() {
    // Auto margin included: calibration units must distribute too.
    let base = [
        "--ghz",
        "2",
        "--designs",
        "ndd,stat",
        "--shots",
        "128",
        "--seed",
        "17",
        "--sweep",
        "ideal,low",
        "--margin",
        "auto:2",
        "--jobs",
        "1",
    ];
    let sequential = run_ok(&[&["campaign"][..], &base[..], &["--json"][..]].concat());
    assert!(sequential.starts_with('{'), "{sequential}");

    for workers in ["1", "2", "4"] {
        let dir = tmpdir(&format!("workers{workers}"));
        let dir_str = dir.to_str().unwrap();
        let args = [
            &["sweep", "run", "--run-dir", dir_str, "--workers", workers][..],
            &base[..],
            &["--json"][..],
        ]
        .concat();
        let orchestrated = run_ok(&args);
        assert_eq!(
            orchestrated, sequential,
            "{workers} worker(s) must render the sequential bytes"
        );

        // The completed run dir answers status and re-renders on resume.
        let status = run_ok(&["sweep", "status", dir_str]);
        assert!(status.contains("status: complete"), "{status}");
        let resumed = run_ok(&["sweep", "resume", dir_str, "--json"]);
        assert_eq!(resumed, sequential, "resume of a complete run re-renders");

        // Re-running into the same directory refuses to clobber it.
        let out = qra().args(&args).output().unwrap();
        assert!(!out.status.success(), "second sweep run must refuse");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn sigkilled_workers_resume_to_the_identical_report() {
    // A grid big enough that two workers cannot finish before the kill
    // lands (the poll below also bails out if they somehow do).
    let base = [
        "--ghz",
        "3",
        "--designs",
        "ndd,stat",
        "--shots",
        "1024",
        "--seed",
        "23",
        "--sweep",
        "ideal,low",
        "--margin",
        "0.02",
        "--jobs",
        "1",
    ];
    let sequential = run_ok(&[&["campaign"][..], &base[..], &["--json"][..]].concat());

    let dir = tmpdir("kill");
    let dir_str = dir.to_str().unwrap();
    let mut child = qra()
        .args(
            [
                &["sweep", "run", "--run-dir", dir_str, "--workers", "2"][..],
                &base[..],
                &["--json"][..],
            ]
            .concat(),
        )
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Wait until at least one unit is recorded (so the resume genuinely
    // merges work from the killed epoch), then SIGKILL every worker.
    let progress_path = dir.join("progress.json");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut raced_to_completion = false;
    loop {
        if Instant::now() > deadline {
            panic!("orchestrated sweep made no progress within the deadline");
        }
        if child.try_wait().unwrap().is_some() {
            raced_to_completion = true;
            break;
        }
        let done = fs::read_to_string(&progress_path)
            .ok()
            .and_then(|text| parse_progress(&text).ok())
            .map_or(0, |(done, _, _, _)| done);
        if done >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    if !raced_to_completion {
        // Worker pids are readable from their results stream names.
        for entry in fs::read_dir(dir.join("results")).unwrap() {
            let name = entry.unwrap().file_name();
            let name = name.to_str().unwrap().to_string();
            if let Some(pid) = name
                .strip_prefix('w')
                .and_then(|n| n.strip_suffix(".jsonl"))
            {
                let _ = Command::new("sh")
                    .arg("-c")
                    .arg(format!("kill -9 {pid}"))
                    .status();
            }
        }
    }

    let status = child.wait().unwrap();
    if status.success() || raced_to_completion {
        // The kill lost the race — the run completed; identity still holds.
        let mut stdout = String::new();
        use std::io::Read as _;
        child
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut stdout)
            .unwrap();
        assert_eq!(stdout, sequential);
        let _ = fs::remove_dir_all(&dir);
        return;
    }

    // The interrupted run is visibly incomplete…
    let status_out = run_ok(&["sweep", "status", dir_str]);
    assert!(status_out.contains("incomplete"), "{status_out}");

    // …and resume finishes exactly the missing units: the merged report is
    // byte-identical to the sequential sweep.
    let resumed = run_ok(&["sweep", "resume", dir_str, "--json"]);
    assert_eq!(resumed, sequential);
    let _ = fs::remove_dir_all(&dir);
}
