//! End-to-end tests of the `qra serve` daemon, driving the real binary:
//! daemon responses are byte-identical to one-shot invocations at fixed
//! seeds (for any worker count, cache hits included), repeat circuits hit
//! the compiled-program cache, SIGTERM drains gracefully, and multi-host
//! sweeps attribute progress per host in `sweep status --json`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

fn qra() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qra"))
}

fn run_ok(args: &[&str]) -> String {
    let out = qra().args(args).output().unwrap();
    assert!(
        out.status.success(),
        "qra {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qra-serve-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_bell(dir: &Path) -> String {
    let path = dir.join("bell.qasm");
    fs::write(
        &path,
        "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
         h q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n",
    )
    .unwrap();
    path.to_str().unwrap().to_string()
}

fn wait_for_socket(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while Instant::now() < deadline {
        if std::os::unix::net::UnixStream::connect(socket).is_ok() {
            return;
        }
        thread::sleep(Duration::from_millis(20));
    }
    panic!("daemon never bound {}", socket.display());
}

fn spawn_daemon(socket: &Path, workers: &str) -> Child {
    let daemon = qra()
        .args([
            "serve",
            "--socket",
            socket.to_str().unwrap(),
            "--workers",
            workers,
            "--queue-depth",
            "64",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap();
    wait_for_socket(socket);
    daemon
}

/// Pulls the integer value of `"key":N` out of a status JSON line.
fn json_counter(text: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key} in {text}"));
    text[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} in {text}"))
}

#[test]
fn daemon_jobs_are_byte_identical_to_one_shot_runs() {
    let dir = tmpdir("identical");
    let bell = write_bell(&dir);
    let socket = dir.join("d.sock");
    let sock = socket.to_str().unwrap();

    let run_args = ["run", &bell, "--shots", "256", "--seed", "5"];
    let assert_args = [
        "assert", &bell, "--qubits", "0,1", "--state", "bell", "--shots", "512", "--seed", "9",
    ];
    let campaign_args = [
        "campaign",
        "--ghz",
        "2",
        "--designs",
        "ndd",
        "--shots",
        "64",
        "--seed",
        "13",
        "--jobs",
        "1",
        "--json",
    ];
    let direct_run = run_ok(&run_args);
    let direct_assert = run_ok(&assert_args);
    let direct_campaign = run_ok(&campaign_args);

    let daemon = spawn_daemon(&socket, "3");

    // Concurrent submits from separate client processes, each job
    // repeated — responses must match the one-shot outputs byte for byte
    // whether its compile was a cache miss (first) or a hit (repeats).
    let mut clients = Vec::new();
    for _ in 0..3 {
        for (args, want) in [
            (&run_args[..], direct_run.clone()),
            (&assert_args[..], direct_assert.clone()),
            (&campaign_args[..], direct_campaign.clone()),
        ] {
            let argv: Vec<String> = ["submit", "--socket", sock]
                .iter()
                .map(|s| s.to_string())
                .chain(args.iter().map(|s| s.to_string()))
                .collect();
            clients.push(thread::spawn(move || {
                let out = Command::new(env!("CARGO_BIN_EXE_qra"))
                    .args(&argv)
                    .output()
                    .unwrap();
                assert!(
                    out.status.success(),
                    "submit failed:\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                assert_eq!(String::from_utf8(out.stdout).unwrap(), want);
            }));
        }
    }
    for c in clients {
        c.join().unwrap();
    }

    // The repeated circuits hit the daemon's compile cache, and the
    // latency percentiles are live.
    let status = run_ok(&["serve", "--status", "--socket", sock]);
    assert_eq!(json_counter(&status, "processed"), 9, "{status}");
    assert_eq!(json_counter(&status, "dropped"), 0, "{status}");
    assert!(json_counter(&status, "hits") > 0, "{status}");
    assert!(json_counter(&status, "count") >= 9, "{status}");
    assert!(status.contains("\"p99\":"), "{status}");

    // SIGTERM drains gracefully: zero exit, socket removed, summary line.
    let pid = daemon.id().to_string();
    assert!(Command::new("kill").arg(&pid).status().unwrap().success());
    let out = daemon.wait_with_output().unwrap();
    assert!(out.status.success(), "daemon exited nonzero on SIGTERM");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("serve: drained after 9 job(s)"), "{stdout}");
    assert!(!socket.exists(), "socket not removed after drain");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn daemon_batch_reports_per_job_verdicts_and_stops_cleanly() {
    let dir = tmpdir("batch");
    let bell = write_bell(&dir);
    let socket = dir.join("d.sock");
    let sock = socket.to_str().unwrap();

    let jobs = dir.join("jobs.txt");
    fs::write(
        &jobs,
        format!(
            "# repeated circuit: the second and third run hit the cache\n\
             run {bell} --shots 128 --seed 3\n\
             run {bell} --shots 128 --seed 3\n\
             run {bell} --shots 128 --seed 4\n\
             \n\
             info {bell}\n"
        ),
    )
    .unwrap();

    let daemon = spawn_daemon(&socket, "2");
    let out = run_ok(&["batch", jobs.to_str().unwrap(), "--socket", sock]);
    assert!(out.contains("batch: 4/4 job(s) ok"), "{out}");

    let status = run_ok(&["serve", "--status", "--socket", sock]);
    assert!(json_counter(&status, "hits") > 0, "{status}");

    // `serve --stop` drains like SIGTERM and acknowledges the client.
    let ack = run_ok(&["serve", "--stop", "--socket", sock]);
    assert!(ack.contains("draining"), "{ack}");
    let out = daemon.wait_with_output().unwrap();
    assert!(out.status.success());
    assert!(!socket.exists(), "socket not removed after drain");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn multi_host_sweep_attributes_progress_per_host() {
    let dir = tmpdir("hosts");
    let rd = dir.join("run");
    let rd_str = rd.to_str().unwrap();
    let base = [
        "--ghz",
        "2",
        "--designs",
        "ndd",
        "--shots",
        "64",
        "--seed",
        "17",
        "--sweep",
        "ideal,low",
        "--jobs",
        "1",
    ];
    // `local`-prefixed labels spawn locally but write host-labelled
    // result streams — the testable multi-host shape.
    let sweep = run_ok(
        &[
            &[
                "sweep",
                "run",
                "--run-dir",
                rd_str,
                "--workers",
                "2",
                "--hosts",
                "localA,localB",
            ][..],
            &base[..],
            &["--json"][..],
        ]
        .concat(),
    );
    let sequential = run_ok(&[&["campaign"][..], &base[..], &["--json"][..]].concat());
    assert_eq!(sweep, sequential, "multi-host sweep must not change bytes");

    // Machine-readable status: complete (exit 0), with every completed
    // unit attributed to one of the two host labels.
    let out = qra()
        .args(["sweep", "status", rd_str, "--json"])
        .output()
        .unwrap();
    assert!(out.status.success(), "complete sweep must exit 0");
    let status = String::from_utf8(out.stdout).unwrap();
    assert!(status.contains("\"complete\":true"), "{status}");
    assert!(status.contains("\"code\":0"), "{status}");
    assert!(status.contains("\"quarantined\":[]"), "{status}");
    let total = json_counter(&status, "total");
    assert_eq!(json_counter(&status, "done"), total, "{status}");
    let hosts_at = status.find("\"hosts\":[").unwrap();
    let hosts = &status[hosts_at..];
    let host_done: u64 = ["localA", "localB"]
        .iter()
        .map(|h| {
            let at = hosts
                .find(&format!("\"host\":\"{h}\""))
                .unwrap_or_else(|| panic!("no {h} attribution in {status}"));
            json_counter(&hosts[at..], "done")
        })
        .sum();
    assert_eq!(host_done, total, "every unit attributed to a host");
    // progress.json carries the same attribution.
    let progress = fs::read_to_string(rd.join("progress.json")).unwrap();
    assert!(progress.contains("\"host\":\"localA\""), "{progress}");
    assert!(progress.contains("\"host\":\"localB\""), "{progress}");
    let _ = fs::remove_dir_all(&dir);
}
