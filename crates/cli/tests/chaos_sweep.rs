//! Chaos-hardened orchestration, end to end against the real `qra`
//! binary: every injected fault — worker kills, torn writes, corrupt
//! records, claim races, hung workers, poison units — either recovers to
//! the byte-identical sequential report or converges to a deterministic
//! quarantine annotation, identically for any worker count and across a
//! SIGKILL of the orchestrator itself.
//!
//! Fault injection is driven by the `QRA_CHAOS` environment variable
//! (debug builds only; see `qra_orch::chaos`), so the binary under test
//! is the production binary, not a test double.

use qra::orch::parse_progress;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

/// The small sweep every scenario runs: GHZ-2 x ndd over two noise
/// points, fixed margin (no calibration unit), single-job cells.
const BASE: &[&str] = &[
    "--ghz",
    "2",
    "--designs",
    "ndd",
    "--shots",
    "64",
    "--seed",
    "17",
    "--sweep",
    "ideal,low",
    "--margin",
    "0.02",
    "--jobs",
    "1",
];

fn qra() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qra"))
}

fn run_ok(args: &[&str]) -> String {
    let out = qra().args(args).output().unwrap();
    assert!(
        out.status.success(),
        "qra {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// Runs `sweep run` into `dir` under the given chaos spec and returns
/// its stdout; panics (with stderr) if the run fails.
fn chaos_run(dir: &Path, chaos: &str, workers: &str, extra: &[&str]) -> String {
    let dir_str = dir.to_str().unwrap();
    let args = [
        &["sweep", "run", "--run-dir", dir_str, "--workers", workers][..],
        extra,
        BASE,
        &["--json"][..],
    ]
    .concat();
    let out = qra()
        .args(&args)
        .env("QRA_CHAOS", chaos)
        .env("QRA_CHAOS_SEED", "7")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "chaos '{chaos}' run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).unwrap()
}

/// `sweep status`, returning stdout and the exit code.
fn status_of(dir: &Path) -> (String, i32) {
    let out = qra()
        .args(["sweep", "status", dir.to_str().unwrap()])
        .output()
        .unwrap();
    (
        String::from_utf8(out.stdout).unwrap(),
        out.status.code().unwrap_or(-1),
    )
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qra-chaos-e2e-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn recoverable_faults_render_the_sequential_bytes() {
    let sequential = run_ok(&[&["campaign"][..], BASE, &["--json"][..]].concat());
    assert!(sequential.starts_with('{'), "{sequential}");

    // Every recoverable fault, against two racing workers. `kill=3`
    // aborts each worker after three clean records; `torn` truncates one
    // record mid-write and aborts; `corrupt` flips a byte of one record;
    // `race` forces every worker to walk the grid from unit 0; `hang`
    // stalls one unit forever (recovered by the unit timeout killing and
    // reclaiming it).
    let matrix: &[(&str, &str, &[&str])] = &[
        ("kill", "kill=3", &[]),
        ("torn", "torn=1:2", &[]),
        ("corrupt", "corrupt=1:2", &[]),
        ("race", "race", &[]),
        ("hang", "hang=1:2", &["--unit-timeout", "1"]),
    ];
    for &(tag, chaos, extra) in matrix {
        let dir = tmpdir(tag);
        let report = chaos_run(&dir, chaos, "2", extra);
        assert_eq!(
            report, sequential,
            "chaos '{chaos}' must recover to the sequential bytes"
        );
        let (status, code) = status_of(&dir);
        assert_eq!(code, 0, "recovered run must exit 0:\n{status}");
        assert!(status.contains("0 quarantined"), "{status}");
        assert!(status.contains("status: complete"), "{status}");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn poison_unit_quarantines_identically_for_any_worker_count() {
    // Unit (1,2) panics its worker on every attempt; after two failed
    // attempts the next claimer must quarantine it as a named skip.
    let expected = {
        let dir = tmpdir("poison-ref");
        let report = chaos_run(&dir, "panic=1:2", "1", &["--max-attempts", "2"]);
        let (status, code) = status_of(&dir);
        assert_eq!(code, 3, "quarantined run must exit 3:\n{status}");
        assert!(status.contains("1 quarantined"), "{status}");
        assert!(status.contains("quarantined: unit"), "{status}");
        let _ = fs::remove_dir_all(&dir);
        report
    };
    assert!(
        expected.contains("\"quarantined\""),
        "report must carry the quarantine annotation: {expected}"
    );
    assert!(
        expected.contains("quarantined after 2 failed attempt(s)"),
        "{expected}"
    );

    for workers in ["2", "4"] {
        let dir = tmpdir(&format!("poison-w{workers}"));
        let report = chaos_run(&dir, "panic=1:2", workers, &["--max-attempts", "2"]);
        assert_eq!(
            report, expected,
            "{workers} worker(s) must render the identical quarantine annotation"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    // The acceptance scenario: a permanently hung worker AND an
    // always-panicking unit in the same run, completed unattended — the
    // hang recovered by the unit timeout, the poison unit quarantined.
    let dir = tmpdir("poison-hang");
    let report = chaos_run(
        &dir,
        "hang=0:1,panic=1:2",
        "2",
        &["--unit-timeout", "2", "--max-attempts", "2"],
    );
    assert_eq!(
        report, expected,
        "a recovered hang must leave no trace beside the quarantine"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sigkilled_orchestrator_resumes_to_the_identical_quarantine() {
    let expected = {
        let dir = tmpdir("resume-ref");
        let report = chaos_run(&dir, "panic=1:2", "2", &["--max-attempts", "2"]);
        let _ = fs::remove_dir_all(&dir);
        report
    };

    let dir = tmpdir("resume-kill");
    let dir_str = dir.to_str().unwrap();
    let mut child = qra()
        .args(
            [
                &[
                    "sweep",
                    "run",
                    "--run-dir",
                    dir_str,
                    "--workers",
                    "2",
                    "--max-attempts",
                    "2",
                ][..],
                BASE,
                &["--json"][..],
            ]
            .concat(),
        )
        .env("QRA_CHAOS", "panic=1:2")
        .env("QRA_CHAOS_SEED", "7")
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();

    // Wait for real progress, then SIGKILL the orchestrator itself.
    let progress_path = dir.join("progress.json");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut raced_to_completion = false;
    loop {
        if Instant::now() > deadline {
            panic!("chaos sweep made no progress within the deadline");
        }
        if child.try_wait().unwrap().is_some() {
            raced_to_completion = true;
            break;
        }
        let done = fs::read_to_string(&progress_path)
            .ok()
            .and_then(|text| parse_progress(&text).ok())
            .map_or(0, |(done, _, _, _)| done);
        if done >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    if raced_to_completion {
        // The kill lost the race — identity still holds.
        let out = child.wait_with_output().unwrap();
        assert_eq!(String::from_utf8(out.stdout).unwrap(), expected);
        let _ = fs::remove_dir_all(&dir);
        return;
    }
    let _ = child.kill();
    let _ = child.wait();

    // Orphaned workers keep running; `sweep resume` clears stale claims,
    // which is only safe once they exit. Their pids are the results
    // stream names.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let live = fs::read_dir(dir.join("results"))
            .map(|entries| {
                entries
                    .filter_map(|e| {
                        let name = e.ok()?.file_name().to_str()?.to_string();
                        let pid = name.strip_prefix('w')?.strip_suffix(".jsonl")?.to_string();
                        Path::new(&format!("/proc/{pid}")).exists().then_some(pid)
                    })
                    .count()
            })
            .unwrap_or(0);
        if live == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "orphaned workers did not exit ({live} live)"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Resume under the same chaos: the poison unit still panics every
    // claimer until it quarantines, and the merged report must be
    // byte-identical to the uninterrupted chaos run.
    let out = qra()
        .args(["sweep", "resume", dir_str, "--json"])
        .env("QRA_CHAOS", "panic=1:2")
        .env("QRA_CHAOS_SEED", "7")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "resume failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8(out.stdout).unwrap(), expected);
    let (status, code) = status_of(&dir);
    assert_eq!(code, 3, "{status}");
    let _ = fs::remove_dir_all(&dir);
}
