//! Library backing the `qra` command-line tool.
//!
//! All logic lives here (argument parsing, state specification parsing,
//! command execution) so it is unit-testable; `main.rs` is a thin shim.
//!
//! ```text
//! qra run <file.qasm> [--shots N] [--seed S] [--noise ideal|low|melbourne]
//! qra assert <file.qasm> --qubits 0,1,2 --state ghz [--design auto] …
//! qra cost --qubits-count 3 --state ghz
//! qra info <file.qasm>
//! qra campaign (<file.qasm> | --ghz N) [--sweep …] [--shard I/N] [--margin R|auto]
//! qra sweep run --run-dir <dir> [--workers W] (<file.qasm> | --ghz N) --sweep …
//! qra sweep resume <dir> [--workers W] [--json]
//! qra sweep status <dir> [--json]
//! qra worker --run-dir <dir> [--host LABEL]
//! qra serve [--socket PATH] [--workers W] [--queue-depth N] [--hosts a,b]
//! qra serve --status | --stop [--socket PATH]
//! qra submit [--socket PATH] <job argv…>
//! qra batch <jobs.txt> [--socket PATH]
//! ```

#![deny(missing_docs)]

use qra::circuit::qasm_parser::from_qasm;
use qra::faults::json::json_str;
use qra::faults::{
    auto_margins, cell_record_json, is_sweep_partial, margin_record_json, parse_sweep_partial,
    parse_unit_record, BackendChoice, BaselineCell, CampaignCell, ParsedReport,
};
use qra::orch::{
    monitor_workers, spawn_workers_on, worker_loop_on, EpochOutcome, OrchError,
    DEFAULT_MAX_ATTEMPTS, LOCAL_HOST,
};
use qra::prelude::*;
use qra::serve::{
    request_shutdown, request_status, submit_jobs, JobExecutor, Server, ServerConfig,
};
use qra::sim::ProgramCache;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;

/// Default Unix socket path shared by `qra serve`, `qra submit` and
/// `qra batch`.
pub const DEFAULT_SOCKET: &str = "qra-serve.sock";

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

impl From<AssertionError> for CliError {
    fn from(e: AssertionError) -> Self {
        CliError(e.to_string())
    }
}

impl From<qra::circuit::CircuitError> for CliError {
    fn from(e: qra::circuit::CircuitError) -> Self {
        CliError(e.to_string())
    }
}

impl From<qra::sim::SimError> for CliError {
    fn from(e: qra::sim::SimError) -> Self {
        CliError(e.to_string())
    }
}

impl From<OrchError> for CliError {
    fn from(e: OrchError) -> Self {
        CliError(e.0)
    }
}

impl From<qra::faults::MergeError> for CliError {
    fn from(e: qra::faults::MergeError) -> Self {
        CliError(e.0)
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run a QASM file and print the outcome histogram.
    Run {
        /// Path to the QASM file.
        file: String,
        /// Shot count.
        shots: u64,
        /// RNG seed.
        seed: u64,
        /// Device noise preset.
        noise: DevicePreset,
        /// Amplitude-level simulator threads (`0` = one per core).
        /// Histograms are bit-identical at every thread count.
        sim_threads: usize,
        /// Backend routing: the noise-aware default, per-circuit
        /// stabilizer auto-engage, or the strict tableau backend.
        backend: BackendChoice,
    },
    /// Insert an assertion at the end of a QASM program and report.
    Assert {
        /// Path to the QASM file.
        file: String,
        /// Qubits under test.
        qubits: Vec<usize>,
        /// State specification string.
        state: String,
        /// Design name.
        design: Design,
        /// Shot count.
        shots: u64,
        /// RNG seed.
        seed: u64,
        /// Device noise preset.
        noise: DevicePreset,
        /// Amplitude-level simulator threads (`0` = one per core).
        sim_threads: usize,
        /// Backend routing: the noise-aware default, per-circuit
        /// stabilizer auto-engage, or the strict tableau backend.
        backend: BackendChoice,
    },
    /// Print the per-design circuit cost of asserting a state.
    Cost {
        /// Number of qubits the state covers.
        num_qubits: usize,
        /// State specification string.
        state: String,
    },
    /// Print structural information about a QASM file.
    Info {
        /// Path to the QASM file.
        file: String,
    },
    /// Run a fault-injection campaign over a program.
    Campaign(CampaignArgs),
    /// Reassemble partial outputs into the full report: campaign shard
    /// reports (`campaign --shard i/n --json`) or sweep partials
    /// (`campaign --sweep … --shard i/n`).
    CampaignMerge {
        /// Paths of the shard/partial JSON files, in any order.
        files: Vec<String>,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// Start an orchestrated sweep: initialize a run directory and drive
    /// worker subprocesses until the unit grid is covered.
    SweepRun {
        /// The run directory to create.
        dir: String,
        /// Worker subprocess count (`None` = available parallelism).
        workers: Option<usize>,
        /// Per-unit execution deadline in milliseconds (`None` = none).
        /// A worker whose claimed unit outlives it is killed and the
        /// unit reclaimed for another attempt.
        unit_timeout_ms: Option<u64>,
        /// Failed attempts before a unit is quarantined as a named skip.
        max_attempts: u32,
        /// Worker host labels (`--hosts`); empty means local-only.
        hosts: Vec<String>,
        /// The sweep's campaign description (must have `sweep` set).
        args: Box<CampaignArgs>,
    },
    /// Resume an interrupted orchestrated sweep: clear stale claims, spawn
    /// fresh workers for the remaining units, and print the merged report.
    SweepResume {
        /// The run directory.
        dir: String,
        /// Worker count override (`None` = the manifest's count).
        workers: Option<usize>,
        /// Emit JSON instead of text.
        json: bool,
    },
    /// Print an orchestrated sweep's progress without running anything.
    SweepStatus {
        /// The run directory.
        dir: String,
        /// Emit machine-readable JSON instead of text.
        json: bool,
    },
    /// Run one worker over an orchestrated sweep's run directory
    /// (normally spawned by `sweep run`, not invoked by hand).
    Worker {
        /// The run directory.
        dir: String,
        /// Host label for the worker's results stream (`None` = local).
        host: Option<String>,
    },
    /// Run the streaming assertion daemon over a Unix socket — or, with
    /// `--status`/`--stop`, query or drain a live one.
    Serve {
        /// Unix socket path.
        socket: String,
        /// Worker threads (`0` = available parallelism).
        workers: usize,
        /// Work-queue depth; jobs beyond it are refused (backpressure).
        queue_depth: usize,
        /// Host labels appended to sweep-run jobs (`--hosts`).
        hosts: Vec<String>,
        /// Print a live daemon's status JSON instead of serving.
        status: bool,
        /// Ask a live daemon to drain and exit instead of serving.
        stop: bool,
    },
    /// Submit one job to a live daemon and print its output.
    Submit {
        /// Unix socket path.
        socket: String,
        /// The job's `qra` argv (e.g. `run prog.qasm --shots 100`).
        argv: Vec<String>,
    },
    /// Submit a file of jobs (one whitespace-split argv per line) to a
    /// live daemon and summarize the responses.
    Batch {
        /// Unix socket path.
        socket: String,
        /// Path of the jobs file.
        file: String,
    },
    /// Print usage help.
    Help,
}

/// Everything a fault-injection campaign (or sweep) needs — the parsed
/// form of the `qra campaign` flag set, reusable by the orchestrator
/// (whose manifests store the equivalent argv, see
/// [`CampaignArgs::to_argv`]).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignArgs {
    /// Program source: a QASM file, or a built-in GHZ preparation.
    pub source: CampaignSource,
    /// State specification string (defaults to `ghz`).
    pub state: String,
    /// Schemes to evaluate.
    pub designs: Vec<CampaignDesign>,
    /// Number of double-fault mutants to sample (0 = singles only).
    pub doubles: usize,
    /// Shot count per cell.
    pub shots: u64,
    /// Base seed (campaigns are reproducible per seed).
    pub seed: u64,
    /// Wall-clock deadline in milliseconds (`None` = unbounded).
    pub deadline_ms: Option<u64>,
    /// Memory budget for the exact density-matrix backend, in MiB.
    pub memory_budget_mb: u64,
    /// Worker threads for the cell matrix (`None` = available
    /// parallelism). Reports are byte-identical for any job count.
    pub jobs: Option<usize>,
    /// Amplitude-level simulator threads per cell (`None` = auto:
    /// `max(1, cores / jobs)`). Like `jobs`, never affects report bytes.
    pub sim_threads: Option<usize>,
    /// Device noise preset (ignored when `sweep` is set).
    pub noise: DevicePreset,
    /// Detection threshold for the single-point campaign (sweeps
    /// derive per-point thresholds from the false-positive floor).
    pub threshold: f64,
    /// Backend routing: the noise-aware default, per-cell stabilizer
    /// auto-engage, or the strict tableau backend.
    pub backend: BackendChoice,
    /// Run only this shard: of the cell list for a single campaign, or of
    /// the `(point × cell)` unit grid when `sweep` is also set (emitting a
    /// mergeable sweep partial).
    pub shard: Option<Shard>,
    /// When set, run the campaign at each `(preset, scale)` noise
    /// point instead of a single point.
    pub sweep: Option<Vec<(DevicePreset, f64)>>,
    /// How each sweep point's detection margin over its false-positive
    /// floor is derived: a fixed rate, or auto-calibrated from baseline
    /// variance across repeated seeds.
    pub margin: MarginMode,
    /// Emit JSON instead of text.
    pub json: bool,
}

impl CampaignArgs {
    /// The canonical `qra` argv reproducing these args (modulo `--json`,
    /// which is an output concern). Orchestrator manifests store this so
    /// workers and `sweep resume` rebuild the identical campaign; every
    /// numeric field round-trips exactly (shortest-representation floats).
    pub fn to_argv(&self) -> Vec<String> {
        let mut argv = vec!["campaign".to_string()];
        match &self.source {
            CampaignSource::File(file) => argv.push(file.clone()),
            CampaignSource::Ghz(n) => argv.extend(["--ghz".into(), n.to_string()]),
        }
        argv.extend(["--state".into(), self.state.clone()]);
        argv.extend([
            "--designs".into(),
            self.designs
                .iter()
                .map(|d| d.name())
                .collect::<Vec<_>>()
                .join(","),
        ]);
        argv.extend(["--doubles".into(), self.doubles.to_string()]);
        argv.extend(["--shots".into(), self.shots.to_string()]);
        argv.extend(["--seed".into(), self.seed.to_string()]);
        if let Some(ms) = self.deadline_ms {
            argv.extend(["--deadline-ms".into(), ms.to_string()]);
        }
        argv.extend([
            "--memory-budget-mb".into(),
            self.memory_budget_mb.to_string(),
        ]);
        if let Some(jobs) = self.jobs {
            argv.extend(["--jobs".into(), jobs.to_string()]);
        }
        if let Some(sim_threads) = self.sim_threads {
            argv.extend(["--sim-threads".into(), sim_threads.to_string()]);
        }
        argv.extend(["--noise".into(), self.noise.name().to_string()]);
        argv.extend(["--threshold".into(), format!("{}", self.threshold)]);
        argv.extend(["--backend".into(), self.backend.name().to_string()]);
        if let Some(points) = &self.sweep {
            argv.extend([
                "--sweep".into(),
                points
                    .iter()
                    .map(|&(preset, factor)| {
                        if factor == 1.0 {
                            preset.name().to_string()
                        } else {
                            format!("{}:{factor}", preset.name())
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(","),
            ]);
        }
        argv.extend(["--margin".into(), self.margin.to_string()]);
        if let Some(shard) = self.shard {
            argv.extend(["--shard".into(), format!("{}/{}", shard.index, shard.count)]);
        }
        argv
    }
}

/// Where a campaign's program under test comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignSource {
    /// A QASM file on disk.
    File(String),
    /// The built-in n-qubit GHZ preparation.
    Ghz(usize),
}

/// Parses the command line (without the program name).
///
/// # Errors
///
/// Returns [`CliError`] with a usage-style message on malformed input.
pub fn parse_args(args: &[String]) -> Result<Command, CliError> {
    let mut it = args.iter();
    let cmd = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    let rest: Vec<&String> = it.collect();
    let flag = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .map(|s| s.as_str())
    };
    let positional: Vec<&str> = {
        let mut out = Vec::new();
        let mut skip = false;
        for a in &rest {
            if skip {
                skip = false;
                continue;
            }
            if a.as_str() == "--json" {
                continue; // boolean flag: consumes no value
            }
            if a.starts_with("--") {
                skip = true;
                continue;
            }
            out.push(a.as_str());
        }
        out
    };
    let shots = match flag("--shots") {
        Some(s) => s.parse().map_err(|_| err(format!("bad --shots '{s}'")))?,
        None => 8192,
    };
    let seed = match flag("--seed") {
        Some(s) => s.parse().map_err(|_| err(format!("bad --seed '{s}'")))?,
        None => 1,
    };
    // All preset parsing goes through `DevicePreset::from_str`, so the CLI,
    // the bench binaries and the library accept the same names (and report
    // the same "expected one of" list on a typo).
    let noise = match flag("--noise") {
        Some(name) => DevicePreset::from_str(name).map_err(|e| err(e.to_string()))?,
        None => DevicePreset::Ideal,
    };
    let design = match flag("--design") {
        None | Some("auto") => Design::Auto,
        Some("swap") => Design::Swap,
        Some("or") | Some("logical-or") => Design::LogicalOr,
        Some("ndd") => Design::Ndd,
        Some(other) => return Err(err(format!("unknown design '{other}'"))),
    };
    let sim_threads = match flag("--sim-threads") {
        Some(t) => t
            .parse()
            .map_err(|_| err(format!("bad --sim-threads '{t}'")))?,
        None => 1,
    };
    // `run`/`assert` share `--backend` spelling and routing with
    // campaigns (and therefore with jobs executed by the daemon).
    let backend = match flag("--backend") {
        Some(b) => BackendChoice::from_name(b).ok_or_else(|| {
            err(format!(
                "unknown backend '{b}' (expected default, auto or stabilizer)"
            ))
        })?,
        None => BackendChoice::default(),
    };
    let hosts: Vec<String> = flag("--hosts")
        .map(|list| {
            list.split(',')
                .map(str::trim)
                .filter(|h| !h.is_empty())
                .map(str::to_string)
                .collect()
        })
        .unwrap_or_default();
    let socket = flag("--socket").unwrap_or(DEFAULT_SOCKET).to_string();

    match cmd {
        "run" => {
            let file = positional
                .first()
                .ok_or_else(|| err("run: missing <file.qasm>"))?
                .to_string();
            Ok(Command::Run {
                file,
                shots,
                seed,
                noise,
                sim_threads,
                backend,
            })
        }
        "assert" => {
            let file = positional
                .first()
                .ok_or_else(|| err("assert: missing <file.qasm>"))?
                .to_string();
            let qubits =
                parse_qubit_list(flag("--qubits").ok_or_else(|| err("assert: missing --qubits"))?)?;
            let state = flag("--state")
                .ok_or_else(|| err("assert: missing --state"))?
                .to_string();
            Ok(Command::Assert {
                file,
                qubits,
                state,
                design,
                shots,
                seed,
                noise,
                sim_threads,
                backend,
            })
        }
        "cost" => {
            let num_qubits = flag("--qubits-count")
                .ok_or_else(|| err("cost: missing --qubits-count"))?
                .parse()
                .map_err(|_| err("bad --qubits-count"))?;
            let state = flag("--state")
                .ok_or_else(|| err("cost: missing --state"))?
                .to_string();
            Ok(Command::Cost { num_qubits, state })
        }
        "info" => {
            let file = positional
                .first()
                .ok_or_else(|| err("info: missing <file.qasm>"))?
                .to_string();
            Ok(Command::Info { file })
        }
        "campaign" => {
            if positional.first() == Some(&"merge") {
                let files: Vec<String> = positional[1..].iter().map(|s| s.to_string()).collect();
                if files.is_empty() {
                    return Err(err("campaign merge: missing shard files"));
                }
                let json = rest.iter().any(|a| a.as_str() == "--json");
                return Ok(Command::CampaignMerge { files, json });
            }
            let source = campaign_source(flag("--ghz"), positional.first().copied())?;
            let args = parse_campaign_args(&rest, Some(source), shots, seed, noise)?;
            Ok(Command::Campaign(args))
        }
        "sweep" => {
            let json = rest.iter().any(|a| a.as_str() == "--json");
            let workers = match flag("--workers") {
                Some(w) => {
                    let w: usize = w.parse().map_err(|_| err(format!("bad --workers '{w}'")))?;
                    if w == 0 {
                        return Err(err("sweep: --workers needs at least 1 worker"));
                    }
                    Some(w)
                }
                None => None,
            };
            match positional.first().copied() {
                Some("run") => {
                    let dir = flag("--run-dir")
                        .ok_or_else(|| err("sweep run: missing --run-dir <dir>"))?
                        .to_string();
                    // Seconds on the command line (fractions allowed — tests
                    // time out in well under a second), milliseconds in the
                    // manifest.
                    let unit_timeout_ms = match flag("--unit-timeout") {
                        Some(t) => {
                            let secs: f64 = t
                                .parse()
                                .map_err(|_| err(format!("bad --unit-timeout '{t}'")))?;
                            if !secs.is_finite() || secs <= 0.0 {
                                return Err(err(
                                    "sweep run: --unit-timeout must be a positive number \
                                     of seconds",
                                ));
                            }
                            Some(((secs * 1000.0).round() as u64).max(1))
                        }
                        None => None,
                    };
                    let max_attempts = match flag("--max-attempts") {
                        Some(m) => {
                            let m: u32 = m
                                .parse()
                                .map_err(|_| err(format!("bad --max-attempts '{m}'")))?;
                            if m == 0 {
                                return Err(err(
                                    "sweep run: --max-attempts needs at least 1 attempt",
                                ));
                            }
                            m
                        }
                        None => DEFAULT_MAX_ATTEMPTS,
                    };
                    let source = campaign_source(flag("--ghz"), positional.get(1).copied())?;
                    let args = parse_campaign_args(&rest, Some(source), shots, seed, noise)?;
                    if args.sweep.is_none() {
                        return Err(err(
                            "sweep run: --sweep is required (the orchestrator distributes \
                             sweep points)",
                        ));
                    }
                    if args.shard.is_some() {
                        return Err(err(
                            "sweep run: --shard conflicts with orchestration (the run \
                             directory already splits the unit grid)",
                        ));
                    }
                    Ok(Command::SweepRun {
                        dir,
                        workers,
                        unit_timeout_ms,
                        max_attempts,
                        hosts,
                        args: Box::new(args),
                    })
                }
                Some("resume") => {
                    let dir = positional
                        .get(1)
                        .ok_or_else(|| err("sweep resume: missing <run-dir>"))?
                        .to_string();
                    Ok(Command::SweepResume { dir, workers, json })
                }
                Some("status") => {
                    let dir = positional
                        .get(1)
                        .ok_or_else(|| err("sweep status: missing <run-dir>"))?
                        .to_string();
                    Ok(Command::SweepStatus { dir, json })
                }
                _ => Err(err("sweep: expected run, resume or status; try 'qra help'")),
            }
        }
        "worker" => {
            let dir = flag("--run-dir")
                .ok_or_else(|| err("worker: missing --run-dir <dir>"))?
                .to_string();
            let host = flag("--host").map(str::to_string);
            Ok(Command::Worker { dir, host })
        }
        "serve" => {
            let workers = match flag("--workers") {
                Some(w) => w.parse().map_err(|_| err(format!("bad --workers '{w}'")))?,
                None => 0, // available parallelism
            };
            let queue_depth = match flag("--queue-depth") {
                Some(q) => {
                    let q: usize = q
                        .parse()
                        .map_err(|_| err(format!("bad --queue-depth '{q}'")))?;
                    if q == 0 {
                        return Err(err("serve: --queue-depth needs at least 1 slot"));
                    }
                    q
                }
                None => 256,
            };
            let status = rest.iter().any(|a| a.as_str() == "--status");
            let stop = rest.iter().any(|a| a.as_str() == "--stop");
            if status && stop {
                return Err(err("serve: --status and --stop are mutually exclusive"));
            }
            Ok(Command::Serve {
                socket,
                workers,
                queue_depth,
                hosts,
                status,
                stop,
            })
        }
        "submit" => {
            // Everything from the first non-flag token on (or after a
            // literal `--`) is the job's own argv, flags included.
            let mut argv = Vec::new();
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--" => {
                        argv.extend(rest[i + 1..].iter().map(|s| s.to_string()));
                        break;
                    }
                    "--socket" => i += 2,
                    _ => {
                        argv.extend(rest[i..].iter().map(|s| s.to_string()));
                        break;
                    }
                }
            }
            if argv.is_empty() {
                return Err(err(
                    "submit: missing the job argv (e.g. `qra submit run prog.qasm`)",
                ));
            }
            Ok(Command::Submit { socket, argv })
        }
        "batch" => {
            let file = positional
                .first()
                .ok_or_else(|| err("batch: missing <jobs.txt>"))?
                .to_string();
            Ok(Command::Batch { socket, file })
        }
        other => Err(err(format!("unknown command '{other}'; try 'qra help'"))),
    }
}

/// Resolves a campaign's program source from `--ghz N` or the positional
/// QASM path.
fn campaign_source(
    ghz: Option<&str>,
    positional: Option<&str>,
) -> Result<CampaignSource, CliError> {
    match ghz {
        Some(n) => {
            let n: usize = n.parse().map_err(|_| err(format!("bad --ghz '{n}'")))?;
            if n == 0 {
                return Err(err("campaign: --ghz needs at least 1 qubit"));
            }
            Ok(CampaignSource::Ghz(n))
        }
        None => Ok(CampaignSource::File(
            positional
                .ok_or_else(|| err("campaign: missing <file.qasm> or --ghz N"))?
                .to_string(),
        )),
    }
}

/// Parses the campaign flag set shared by `qra campaign` and
/// `qra sweep run` into [`CampaignArgs`].
fn parse_campaign_args(
    rest: &[&String],
    source: Option<CampaignSource>,
    shots: u64,
    seed: u64,
    noise: DevicePreset,
) -> Result<CampaignArgs, CliError> {
    let flag = |name: &str| -> Option<&str> {
        rest.iter()
            .position(|a| a.as_str() == name)
            .and_then(|i| rest.get(i + 1))
            .map(|s| s.as_str())
    };
    let source = source.ok_or_else(|| err("campaign: missing <file.qasm> or --ghz N"))?;
    let state = flag("--state").unwrap_or("ghz").to_string();
    let designs = parse_design_list(flag("--designs").unwrap_or("swap,or,ndd"))?;
    let doubles = match flag("--doubles") {
        Some(d) => d.parse().map_err(|_| err(format!("bad --doubles '{d}'")))?,
        None => 0,
    };
    let deadline_ms = match flag("--deadline-ms") {
        Some(d) => Some(
            d.parse()
                .map_err(|_| err(format!("bad --deadline-ms '{d}'")))?,
        ),
        None => None,
    };
    let memory_budget_mb = match flag("--memory-budget-mb") {
        Some(m) => m
            .parse()
            .map_err(|_| err(format!("bad --memory-budget-mb '{m}'")))?,
        None => 256,
    };
    let jobs = match flag("--jobs") {
        Some(j) => {
            let j: usize = j.parse().map_err(|_| err(format!("bad --jobs '{j}'")))?;
            if j == 0 {
                return Err(err("campaign: --jobs needs at least 1 worker"));
            }
            Some(j)
        }
        None => None,
    };
    let sim_threads = match flag("--sim-threads") {
        Some(t) => {
            let t: usize = t
                .parse()
                .map_err(|_| err(format!("bad --sim-threads '{t}'")))?;
            if t == 0 {
                return Err(err("campaign: --sim-threads needs at least 1 thread"));
            }
            Some(t)
        }
        None => None,
    };
    let threshold = match flag("--threshold") {
        Some(t) => {
            let t: f64 = t
                .parse()
                .map_err(|_| err(format!("bad --threshold '{t}'")))?;
            if !t.is_finite() || t < 0.0 {
                return Err(err("campaign: --threshold must be a finite rate >= 0"));
            }
            t
        }
        None => 0.05,
    };
    let backend = match flag("--backend") {
        Some(b) => BackendChoice::from_name(b).ok_or_else(|| {
            err(format!(
                "campaign: unknown backend '{b}' (expected default, auto or stabilizer)"
            ))
        })?,
        None => BackendChoice::default(),
    };
    let margin = match flag("--margin") {
        Some(m) => MarginMode::from_str(m).map_err(|e| err(format!("campaign: {e}")))?,
        None => MarginMode::default(),
    };
    let shard = match flag("--shard") {
        Some(s) => {
            Some(Shard::from_str(s).map_err(|e| err(format!("campaign: bad --shard: {e}")))?)
        }
        None => None,
    };
    let sweep = flag("--sweep").map(parse_sweep_list).transpose()?;
    if sweep.is_none() && matches!(margin, MarginMode::Auto { .. }) {
        return Err(err(
            "campaign: --margin auto calibrates sweep thresholds; it needs --sweep",
        ));
    }
    let json = rest.iter().any(|a| a.as_str() == "--json");
    Ok(CampaignArgs {
        source,
        state,
        designs,
        doubles,
        shots,
        seed,
        deadline_ms,
        memory_budget_mb,
        jobs,
        sim_threads,
        noise,
        threshold,
        backend,
        shard,
        sweep,
        margin,
        json,
    })
}

/// Parses `0,1,2` into qubit indices.
///
/// # Errors
///
/// Returns [`CliError`] on malformed numbers.
pub fn parse_qubit_list(text: &str) -> Result<Vec<usize>, CliError> {
    text.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().map_err(|_| err(format!("bad qubit '{s}'"))))
        .collect()
}

/// Parses `swap,or,ndd,stat` (or `all`) into campaign schemes.
///
/// # Errors
///
/// Returns [`CliError`] on unknown scheme names or an empty list.
pub fn parse_design_list(text: &str) -> Result<Vec<CampaignDesign>, CliError> {
    if text == "all" {
        return Ok(CampaignDesign::ALL.to_vec());
    }
    let designs: Result<Vec<CampaignDesign>, CliError> = text
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| match s {
            "swap" => Ok(CampaignDesign::Swap),
            "or" | "logical-or" => Ok(CampaignDesign::LogicalOr),
            "ndd" => Ok(CampaignDesign::Ndd),
            "stat" => Ok(CampaignDesign::Stat),
            other => Err(err(format!("unknown campaign design '{other}'"))),
        })
        .collect();
    let designs = designs?;
    if designs.is_empty() {
        return Err(err("campaign: --designs must not be empty"));
    }
    Ok(designs)
}

/// Parses `ideal,low,melbourne:2.0` into sweep points: comma-separated
/// device presets, each optionally scaled by `:FACTOR`
/// ([`NoiseModel::scaled`] clamping rules apply).
///
/// # Errors
///
/// Returns [`CliError`] on unknown presets, malformed or non-positive
/// factors, or an empty list.
pub fn parse_sweep_list(text: &str) -> Result<Vec<(DevicePreset, f64)>, CliError> {
    let points: Result<Vec<(DevicePreset, f64)>, CliError> = text
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|item| {
            let (name, factor) = match item.split_once(':') {
                Some((name, factor)) => {
                    let factor: f64 = factor
                        .parse()
                        .map_err(|_| err(format!("bad sweep factor '{factor}'")))?;
                    if !factor.is_finite() || factor <= 0.0 {
                        return Err(err(format!(
                            "sweep factor must be a finite positive number, got '{factor}'"
                        )));
                    }
                    (name, factor)
                }
                None => (item, 1.0),
            };
            let preset = DevicePreset::from_str(name).map_err(|e| err(e.to_string()))?;
            Ok((preset, factor))
        })
        .collect();
    let points = points?;
    if points.is_empty() {
        return Err(err("campaign: --sweep must name at least one preset"));
    }
    Ok(points)
}

/// Parses a state specification string into a [`StateSpec`] over
/// `num_qubits` qubits. Supported forms:
///
/// * `ghz`, `bell`, `w`, `plus`, `zero` — named states;
/// * `basis:IDX` — the computational basis state `|IDX⟩`;
/// * `set:IDX1;IDX2;…` — approximate assertion over basis states;
/// * `amps:re,im;re,im;…` — explicit amplitudes (length `2ⁿ`).
///
/// # Errors
///
/// Returns [`CliError`] for unknown names or malformed values.
pub fn parse_state(text: &str, num_qubits: usize) -> Result<StateSpec, CliError> {
    let dim = 1usize << num_qubits;
    let s = 0.5f64.sqrt();
    match text {
        "ghz" => {
            let mut v = CVector::zeros(dim);
            v[0] = C64::from(s);
            v[dim - 1] = C64::from(s);
            Ok(StateSpec::pure(v)?)
        }
        "bell" => {
            if num_qubits != 2 {
                return Err(err("bell needs exactly 2 qubits"));
            }
            let mut v = CVector::zeros(4);
            v[0] = C64::from(s);
            v[3] = C64::from(s);
            Ok(StateSpec::pure(v)?)
        }
        "w" => {
            let amp = C64::from(1.0 / (num_qubits as f64).sqrt());
            let mut v = CVector::zeros(dim);
            for q in 0..num_qubits {
                v[1usize << (num_qubits - 1 - q)] = amp;
            }
            Ok(StateSpec::pure(v)?)
        }
        "plus" => {
            let amp = C64::from(1.0 / (dim as f64).sqrt());
            let v = CVector::new(vec![amp; dim]);
            Ok(StateSpec::pure(v)?)
        }
        "zero" => Ok(StateSpec::pure(CVector::basis_state(dim, 0))?),
        other => {
            if let Some(idx) = other.strip_prefix("basis:") {
                let i: usize = idx.parse().map_err(|_| err(format!("bad index '{idx}'")))?;
                if i >= dim {
                    return Err(err(format!("basis index {i} out of range for {dim}")));
                }
                return Ok(StateSpec::pure(CVector::basis_state(dim, i))?);
            }
            if let Some(list) = other.strip_prefix("set:") {
                let members: Result<Vec<CVector>, CliError> = list
                    .split(';')
                    .filter(|p| !p.is_empty())
                    .map(|p| {
                        let i: usize = p
                            .trim()
                            .parse()
                            .map_err(|_| err(format!("bad index '{p}'")))?;
                        if i >= dim {
                            return Err(err(format!("set index {i} out of range")));
                        }
                        Ok(CVector::basis_state(dim, i))
                    })
                    .collect();
                return Ok(StateSpec::set(members?)?);
            }
            if let Some(list) = other.strip_prefix("amps:") {
                let amps: Result<Vec<C64>, CliError> = list
                    .split(';')
                    .filter(|p| !p.is_empty())
                    .map(|pair| {
                        let (re, im) = pair
                            .split_once(',')
                            .ok_or_else(|| err(format!("bad amplitude '{pair}'")))?;
                        Ok(C64::new(
                            re.trim().parse().map_err(|_| err("bad real part"))?,
                            im.trim().parse().map_err(|_| err("bad imag part"))?,
                        ))
                    })
                    .collect();
                let amps = amps?;
                if amps.len() != dim {
                    return Err(err(format!(
                        "amps length {} does not match 2^{num_qubits}",
                        amps.len()
                    )));
                }
                return Ok(StateSpec::pure(CVector::new(amps))?);
            }
            Err(err(format!("unknown state '{other}'")))
        }
    }
}

/// Executes a parsed command, returning the text to print.
///
/// # Errors
///
/// Returns [`CliError`] on I/O, parsing or simulation failures.
pub fn execute(command: &Command) -> Result<String, CliError> {
    execute_with_cache(command, None)
}

/// [`execute`] with an optional shared [`ProgramCache`]: `run`, `assert`
/// and `campaign` route their circuit lowering through it, so a long-lived
/// caller (the `qra serve` daemon) amortizes compilation across repeat
/// circuits. Cached and fresh compiles are bit-identical, so the cache
/// never changes any output.
///
/// # Errors
///
/// Returns [`CliError`] on I/O, parsing or simulation failures.
pub fn execute_with_cache(
    command: &Command,
    cache: Option<&Arc<ProgramCache>>,
) -> Result<String, CliError> {
    match command {
        Command::Help => Ok(usage()),
        Command::Info { file } => {
            let circuit = load(file)?;
            let mut out = String::new();
            let _ = writeln!(out, "qubits:   {}", circuit.num_qubits());
            let _ = writeln!(out, "clbits:   {}", circuit.num_clbits());
            let _ = writeln!(out, "gates:    {}", circuit.gate_count());
            let _ = writeln!(out, "depth:    {}", circuit.depth());
            let _ = writeln!(out, "2q-depth: {}", circuit.two_qubit_depth());
            let counts = GateCounts::of(&circuit)?;
            let _ = writeln!(out, "cost:     {counts}");
            let _ = writeln!(out, "ops:");
            for (name, n) in circuit.count_ops() {
                let _ = writeln!(out, "  {name:10} {n}");
            }
            Ok(out)
        }
        Command::Run {
            file,
            shots,
            seed,
            noise,
            sim_threads,
            backend,
        } => {
            let circuit = load(file)?;
            let counts = run_counts(
                &circuit,
                *shots,
                *seed,
                *noise,
                *sim_threads,
                *backend,
                cache,
            )?;
            let mut out = String::new();
            let _ = writeln!(out, "shots: {}", counts.total());
            for (key, n) in counts.iter() {
                let _ = writeln!(
                    out,
                    "  {}: {n} ({:.3})",
                    counts.key_to_string(key),
                    n as f64 / counts.total() as f64
                );
            }
            Ok(out)
        }
        Command::Assert {
            file,
            qubits,
            state,
            design,
            shots,
            seed,
            noise,
            sim_threads,
            backend,
        } => {
            let mut circuit = load(file)?;
            let spec = parse_state(state, qubits.len())?;
            let handle = insert_assertion(&mut circuit, qubits, &spec, *design)?;
            let counts = run_counts(
                &circuit,
                *shots,
                *seed,
                *noise,
                *sim_threads,
                *backend,
                cache,
            )?;
            let rate = handle.error_rate(&counts);
            let mut out = String::new();
            let _ = writeln!(out, "design:        {}", handle.design);
            let _ = writeln!(out, "circuit cost:  {}", handle.counts);
            let _ = writeln!(out, "error rate:    {rate:.4}");
            let verdict = if rate > 0.01 { "FAIL" } else { "pass" };
            let _ = writeln!(out, "verdict:       {verdict}");
            Ok(out)
        }
        Command::CampaignMerge { files, json } => {
            let texts: Vec<(String, String)> = files
                .iter()
                .map(|file| {
                    std::fs::read_to_string(file)
                        .map(|text| (file.clone(), text))
                        .map_err(|e| err(format!("cannot read {file}: {e}")))
                })
                .collect::<Result<_, _>>()?;
            // One partial makes this a sweep merge: mixing the two report
            // kinds is a user error named after the odd file out.
            if texts.iter().any(|(_, text)| is_sweep_partial(text)) {
                if let Some((file, _)) = texts.iter().find(|(_, text)| !is_sweep_partial(text)) {
                    return Err(err(format!(
                        "{file} is a campaign shard, not a sweep partial; the two cannot \
                         be merged together"
                    )));
                }
                let partials: Vec<(String, SweepPartial)> = texts
                    .iter()
                    .map(|(file, text)| {
                        parse_sweep_partial(text)
                            .map(|p| (file.clone(), p))
                            .map_err(|e| err(format!("{file}: {e}")))
                    })
                    .collect::<Result<_, _>>()?;
                let report = merge_sweep_partials_named(&partials)?;
                return Ok(if *json {
                    report.to_json()
                } else {
                    report.render_text()
                });
            }
            let shards: Vec<(String, ParsedReport)> = texts
                .iter()
                .map(|(file, text)| {
                    qra::faults::parse_report(text)
                        .map(|p| (file.clone(), p))
                        .map_err(|e| err(format!("{file}: {e}")))
                })
                .collect::<Result<_, _>>()?;
            let report = merge_reports_named(&shards)?;
            Ok(if *json {
                report.to_json()
            } else {
                report.render_text()
            })
        }
        Command::Campaign(args) => run_campaign_command(args, cache),
        Command::SweepRun {
            dir,
            workers,
            unit_timeout_ms,
            max_attempts,
            hosts,
            args,
        } => sweep_run(dir, *workers, *unit_timeout_ms, *max_attempts, hosts, args),
        Command::SweepResume { dir, workers, json } => sweep_resume(dir, *workers, *json),
        Command::SweepStatus { dir, json } => sweep_status(dir, *json).map(|(out, _code)| out),
        Command::Worker { dir, host } => run_worker(dir, host.as_deref()),
        Command::Serve {
            socket,
            workers,
            queue_depth,
            hosts,
            status,
            stop,
        } => serve_command(socket, *workers, *queue_depth, hosts, *status, *stop),
        Command::Submit { socket, argv } => submit_command(socket, argv).map(|(out, _code)| out),
        Command::Batch { socket, file } => batch_command(socket, file).map(|(out, _code)| out),
        Command::Cost { num_qubits, state } => {
            let spec = parse_state(state, *num_qubits)?;
            let mut out = String::new();
            for design in [Design::Swap, Design::LogicalOr, Design::Ndd] {
                match synthesize_assertion(&spec, design) {
                    Ok(a) => {
                        let _ = writeln!(out, "{design:12} {}", a.gate_counts());
                    }
                    Err(e) => {
                        let _ = writeln!(out, "{design:12} unavailable: {e}");
                    }
                }
            }
            let auto = synthesize_assertion(&spec, Design::Auto)?;
            let _ = writeln!(out, "auto picks:  {}", auto.design());
            Ok(out)
        }
    }
}

/// Executes a parsed command, returning the text to print and the process
/// exit code. Most commands exit 0 on success; `sweep status` also reports
/// through the code so scripts can branch without parsing text: 0 when the
/// unit grid is complete, 2 while units remain, 3 when quarantined units
/// are present (complete or not). `submit` exits with the remote job's own
/// code; `batch` exits 1 when any job failed.
///
/// # Errors
///
/// Returns [`CliError`] on I/O, parsing or simulation failures.
pub fn execute_with_code(command: &Command) -> Result<(String, i32), CliError> {
    execute_with_code_cached(command, None)
}

/// [`execute_with_code`] with an optional shared [`ProgramCache`] — the
/// entry point the `qra serve` daemon's job executor uses, so daemon jobs
/// report the same exit codes as one-shot invocations.
///
/// # Errors
///
/// Returns [`CliError`] on I/O, parsing or simulation failures.
pub fn execute_with_code_cached(
    command: &Command,
    cache: Option<&Arc<ProgramCache>>,
) -> Result<(String, i32), CliError> {
    match command {
        Command::SweepStatus { dir, json } => sweep_status(dir, *json),
        Command::Submit { socket, argv } => submit_command(socket, argv),
        Command::Batch { socket, file } => batch_command(socket, file),
        other => execute_with_cache(other, cache).map(|out| (out, 0)),
    }
}

/// The program, spec, mutant list and base configuration shared by every
/// execution path of a campaign (single, sharded, sweep, sweep unit).
struct CampaignSetup {
    program: Circuit,
    qubits: Vec<usize>,
    spec: StateSpec,
    mutants: Vec<Mutant>,
    config: CampaignConfig,
}

fn campaign_setup(args: &CampaignArgs) -> Result<CampaignSetup, CliError> {
    let program = match &args.source {
        CampaignSource::File(file) => load(file)?,
        CampaignSource::Ghz(n) => qra::algorithms::states::ghz(*n),
    };
    let qubits: Vec<usize> = (0..program.num_qubits()).collect();
    // Reject oversized programs before building the 2^n-amplitude
    // spec: campaigns assert every program qubit, and the CLI's state
    // specs materialize 2^n amplitudes regardless of backend, so even
    // the 4096-qubit stabilizer engine can't rescue a wider run here.
    // Wide tableau campaigns go through the library API, which accepts
    // circuits directly (see README "Stabilizer fast path"). Wired to
    // the dense-backend constant so the two can't drift.
    const MAX_CAMPAIGN_QUBITS: usize = qra::sim::exec::MAX_QUBITS;
    if qubits.len() > MAX_CAMPAIGN_QUBITS {
        return Err(err(format!(
            "campaign: program has {} qubits; the widest CLI backend supports \
             {MAX_CAMPAIGN_QUBITS} — shrink the program under test, or drive \
             wider Clifford campaigns through the library API",
            qubits.len()
        )));
    }
    let spec = parse_state(&args.state, qubits.len())?;
    let injector = FaultInjector::new(args.seed);
    let mut mutants = injector.enumerate_single(&program);
    mutants.extend(injector.sample_double(&program, args.doubles));
    let config = CampaignConfig {
        shots: args.shots,
        seed: args.seed,
        designs: args.designs.clone(),
        deadline: args.deadline_ms.map(std::time::Duration::from_millis),
        memory_budget_bytes: args.memory_budget_mb.saturating_mul(1 << 20),
        jobs: args.jobs.unwrap_or(0), // 0 = available parallelism
        sim_threads: args.sim_threads.unwrap_or(0), // 0 = max(1, cores / jobs)
        noise: args.noise.noise_model(),
        detection_threshold: args.threshold,
        backend: args.backend,
        shard: None, // single-campaign path re-applies args.shard itself
        ..CampaignConfig::default()
    };
    Ok(CampaignSetup {
        program,
        qubits,
        spec,
        mutants,
        config,
    })
}

/// Materializes `--sweep` points as labelled noise models.
fn sweep_points(points: &[(DevicePreset, f64)]) -> Vec<SweepPoint> {
    points
        .iter()
        .map(|&(preset, factor)| {
            if factor == 1.0 {
                SweepPoint::preset(preset)
            } else {
                SweepPoint::scaled(preset, factor)
            }
        })
        .collect()
}

/// The sweep's `(cells_per_point, units_per_point)` grid: one unit per
/// campaign cell, plus one calibration unit per point in auto-margin mode.
fn sweep_grid(args: &CampaignArgs, setup: &CampaignSetup) -> (usize, usize) {
    let cells = args.designs.len() * (1 + setup.mutants.len());
    let units = cells + usize::from(matches!(args.margin, MarginMode::Auto { .. }));
    (cells, units)
}

/// Executes one sweep unit and serializes its JSONL record. Cell units run
/// the campaign's single-cell shard at the point's noise (same derived
/// seeds as the sequential sweep); the calibration unit (auto-margin mode)
/// runs the repeated no-mutant baselines.
fn run_sweep_unit(
    args: &CampaignArgs,
    setup: &CampaignSetup,
    points: &[SweepPoint],
    point: usize,
    cell: usize,
) -> Result<String, CliError> {
    let (cells_per_point, units_per_point) = sweep_grid(args, setup);
    if point >= points.len() || cell >= units_per_point {
        return Err(err(format!("unit ({point},{cell}) outside the sweep grid")));
    }
    let point_config = CampaignConfig {
        noise: points[point].noise.clone(),
        ..setup.config.clone()
    };
    if cell < cells_per_point {
        let config = CampaignConfig {
            shard: Some(Shard {
                index: cell,
                count: cells_per_point,
            }),
            ..point_config
        };
        let report = run_campaign(
            &setup.program,
            &setup.qubits,
            &setup.spec,
            &setup.mutants,
            &config,
        );
        Ok(cell_record_json(point, cell, &report))
    } else {
        let MarginMode::Auto { repeats, z } = args.margin else {
            return Err(err(format!(
                "unit ({point},{cell}): no calibration unit exists in fixed-margin mode"
            )));
        };
        let margins = auto_margins(&point_config, point, repeats, z, |cfg| {
            run_campaign(&setup.program, &setup.qubits, &setup.spec, &[], cfg)
        });
        Ok(margin_record_json(point, cell, &margins))
    }
}

/// Serializes the record for a unit quarantined after exhausting its
/// attempts: the unit's real payload shape with its cell marked skipped
/// (the skip reason names the quarantine), annotated with the attempt
/// history. Derived from the manifest and the attempt history alone, so
/// every worker — any count, any kill history — renders identical bytes.
fn quarantined_unit_record(
    args: &CampaignArgs,
    setup: &CampaignSetup,
    points: &[SweepPoint],
    point: usize,
    cell: usize,
    attempts: &[String],
) -> Result<String, CliError> {
    let (cells_per_point, units_per_point) = sweep_grid(args, setup);
    if point >= points.len() || cell >= units_per_point {
        return Err(err(format!("unit ({point},{cell}) outside the sweep grid")));
    }
    let payload = if cell < cells_per_point {
        // The single-cell shard report the unit would have produced, with
        // the cell skipped instead of run — assemble_sweep then counts it
        // like a deadline skip, but named after the quarantine.
        let status = CellStatus::Skipped {
            reason: format!("quarantined after {} failed attempt(s)", attempts.len()),
        };
        let program_cost = GateCounts::of(&setup.program).unwrap_or_default();
        let d = args.designs.len();
        let (baselines, cells) = if cell < d {
            let baseline = BaselineCell {
                design: args.designs[cell],
                status,
                assertion_cost: None,
                program_cost,
            };
            (vec![baseline], vec![])
        } else {
            let mi = (cell - d) / d;
            let di = (cell - d) % d;
            let grid_cell = CampaignCell {
                mutant_id: setup.mutants[mi].id.clone(),
                kind_label: setup.mutants[mi].kind_label(),
                design: args.designs[di],
                status,
            };
            (vec![], vec![grid_cell])
        };
        let report = CampaignReport {
            num_qubits: setup.program.num_qubits(),
            shots: args.shots,
            seed: args.seed,
            detection_threshold: args.threshold,
            mutant_count: setup.mutants.len(),
            designs: args.designs.clone(),
            baselines,
            cells,
            elapsed: std::time::Duration::ZERO,
            deadline_hit: false,
            shard: Some(Shard {
                index: cell,
                count: cells_per_point,
            }),
        };
        SweepUnitPayload::Cell(ParsedReport {
            report,
            baseline_indices: if cell < d { vec![cell] } else { vec![] },
            cell_indices: if cell < d { vec![] } else { vec![cell] },
        })
    } else {
        // A quarantined calibration unit carries no margins; assembly
        // falls back to the fixed auto-margin default for its point.
        SweepUnitPayload::Margins(vec![])
    };
    let record = SweepUnitRecord {
        point,
        cell,
        payload,
        quarantined: Some(attempts.to_vec()),
    };
    Ok(record.to_json())
}

fn run_campaign_command(
    args: &CampaignArgs,
    cache: Option<&Arc<ProgramCache>>,
) -> Result<String, CliError> {
    let mut setup = campaign_setup(args)?;
    // A daemon-shared cache spans campaigns; without one, run_campaign /
    // run_sweep install their own per-invocation cache.
    setup.config.cache = cache.cloned();
    if let Some(points) = &args.sweep {
        if let Some(shard) = args.shard {
            return sweep_shard_partial(args, &setup, shard);
        }
        let sweep_config = SweepConfig {
            points: sweep_points(points),
            base: setup.config,
            margin: args.margin,
        };
        let sweep_report = run_sweep(
            &setup.program,
            &setup.qubits,
            &setup.spec,
            &setup.mutants,
            &sweep_config,
        );
        return Ok(if args.json {
            sweep_report.to_json()
        } else {
            sweep_report.render_text()
        });
    }
    let config = CampaignConfig {
        shard: args.shard,
        ..setup.config
    };
    let report = run_campaign(
        &setup.program,
        &setup.qubits,
        &setup.spec,
        &setup.mutants,
        &config,
    );
    Ok(if args.json {
        // JSON stays exactly the report's deterministic rendering.
        report.to_json()
    } else {
        // Timing lives outside the report text, which is
        // byte-identical for a fixed seed across job counts.
        let mut out = report.render_text();
        let plan = config.thread_plan();
        let _ = writeln!(
            out,
            "\nelapsed: {:.3}s ({} jobs x {} sim threads)",
            report.elapsed.as_secs_f64(),
            plan.jobs,
            plan.sim_threads
        );
        out
    })
}

/// `campaign --sweep … --shard i/n`: runs this shard's slice of the global
/// `(point × cell)` unit grid and emits a mergeable [`SweepPartial`]
/// (always JSON — partials exist to be merged).
fn sweep_shard_partial(
    args: &CampaignArgs,
    setup: &CampaignSetup,
    shard: Shard,
) -> Result<String, CliError> {
    let points = sweep_points(args.sweep.as_deref().unwrap_or(&[]));
    let (cells_per_point, units_per_point) = sweep_grid(args, setup);
    let total_units = points.len() * units_per_point;
    let (lo, hi) = shard.bounds(total_units);
    let mut units = Vec::with_capacity(hi - lo);
    for unit in lo..hi {
        let line = run_sweep_unit(
            args,
            setup,
            &points,
            unit / units_per_point,
            unit % units_per_point,
        )?;
        units.push(parse_unit_record(&line)?);
    }
    let partial = SweepPartial {
        margin: args.margin,
        labels: points.iter().map(|p| p.label.clone()).collect(),
        cells_per_point,
        shard,
        units,
    };
    Ok(partial.to_json())
}

fn default_worker_count() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// `sweep run`: initializes the run directory, spawns the workers and
/// drives retry epochs to completion.
fn sweep_run(
    dir: &str,
    workers: Option<usize>,
    unit_timeout_ms: Option<u64>,
    max_attempts: u32,
    hosts: &[String],
    args: &CampaignArgs,
) -> Result<String, CliError> {
    let mut args = args.clone();
    if let CampaignSource::File(file) = &args.source {
        // Workers and resumes may start in any directory: pin the program
        // path before it enters the manifest.
        let abs =
            std::fs::canonicalize(file).map_err(|e| err(format!("cannot resolve {file}: {e}")))?;
        args.source = CampaignSource::File(abs.to_string_lossy().into_owned());
    }
    let setup = campaign_setup(&args)?;
    let points = sweep_points(args.sweep.as_deref().unwrap_or(&[]));
    let (cells_per_point, units_per_point) = sweep_grid(&args, &setup);
    let workers = workers.unwrap_or_else(default_worker_count);
    let manifest = Manifest {
        argv: args.to_argv(),
        labels: points.iter().map(|p| p.label.clone()).collect(),
        cells_per_point,
        units_per_point,
        margin: args.margin.to_string(),
        workers,
        unit_timeout_ms,
        max_attempts,
        hosts: hosts.to_vec(),
    };
    let rundir = RunDir::init(dir, &manifest)?;
    let outcome = drive_epochs(&rundir, &manifest, workers)?;
    finish_epoch(dir, &manifest, outcome, args.margin, args.json)
}

/// Drives worker epochs until the unit grid is covered or an epoch makes
/// no progress: each epoch spawns fresh workers and monitors them to
/// exit; when units remain, the stale claims dead workers left behind
/// are cleared and a new epoch starts after an exponential backoff.
///
/// Terminates: every cleared stale claim recorded a failed attempt,
/// attempts are capped at the manifest's `max_attempts` (after which the
/// unit quarantines into a completed record), and an epoch that neither
/// completes a unit nor clears a claim ends the loop — so retry epochs
/// are bounded by `total_units x max_attempts`.
fn drive_epochs(
    rundir: &RunDir,
    manifest: &Manifest,
    workers: usize,
) -> Result<EpochOutcome, CliError> {
    let mut backoff = std::time::Duration::from_millis(100);
    let mut last_done = None;
    loop {
        let children = spawn_workers_on(rundir, workers, &manifest.hosts)?;
        let outcome = monitor_workers(rundir, manifest, children)?;
        if outcome.complete(manifest) {
            return Ok(outcome);
        }
        let done = outcome.state.completed.len();
        let cleared = rundir.clear_stale_claims(&outcome.state.completed)?;
        if last_done == Some(done) && cleared == 0 {
            // Nothing completed and nothing reclaimable: retrying would
            // replay the identical epoch. Hand the incomplete outcome to
            // the caller, whose error points at `sweep resume`.
            return Ok(outcome);
        }
        last_done = Some(done);
        eprintln!(
            "sweep: epoch ended at {done}/{} unit(s), cleared {cleared} stale claim(s); \
             retrying in {:.1}s",
            manifest.total_units(),
            backoff.as_secs_f64()
        );
        std::thread::sleep(backoff);
        backoff = (backoff * 2).min(std::time::Duration::from_secs(5));
    }
}

/// `sweep resume`: clears stale claims, respawns workers for the remaining
/// units and prints the merged report.
fn sweep_resume(dir: &str, workers: Option<usize>, json: bool) -> Result<String, CliError> {
    let (rundir, manifest) = RunDir::open(dir)?;
    let margin =
        MarginMode::from_str(&manifest.margin).map_err(|e| err(format!("manifest: {e}")))?;
    let state = rundir.scan(&manifest)?;
    // Safe while no workers run: `sweep resume` is the single entry point
    // for restarting a run.
    let cleared = rundir.clear_stale_claims(&state.completed)?;
    if cleared > 0 {
        eprintln!("sweep: cleared {cleared} stale claim(s)");
    }
    if state.completed.len() == manifest.total_units() {
        let outcome = EpochOutcome {
            state,
            workers_failed: 0,
        };
        return finish_epoch(dir, &manifest, outcome, margin, json);
    }
    let workers = workers.unwrap_or(manifest.workers).max(1);
    let outcome = drive_epochs(&rundir, &manifest, workers)?;
    finish_epoch(dir, &manifest, outcome, margin, json)
}

/// Renders an epoch's end state: the assembled sweep report when the unit
/// grid is covered, an actionable error pointing at `sweep resume` when
/// it is not.
fn finish_epoch(
    dir: &str,
    manifest: &Manifest,
    outcome: EpochOutcome,
    margin: MarginMode,
    json: bool,
) -> Result<String, CliError> {
    if !outcome.complete(manifest) {
        return Err(err(format!(
            "sweep incomplete: {}/{} unit(s) recorded, {} worker(s) failed; \
             run `qra sweep resume {dir}` to finish",
            outcome.state.completed.len(),
            manifest.total_units(),
            outcome.workers_failed
        )));
    }
    let report = assemble_sweep(
        margin,
        &manifest.labels,
        manifest.cells_per_point,
        &outcome.state.records,
    )?;
    Ok(if json {
        report.to_json()
    } else {
        report.render_text()
    })
}

/// `sweep status`: reports progress from the run directory alone. The
/// second element is the process exit code: 0 complete, 2 incomplete,
/// 3 when quarantined units are present. With `json`, the same facts are
/// rendered machine-readably (the exit code rides along as `"code"`).
fn sweep_status(dir: &str, json: bool) -> Result<(String, i32), CliError> {
    let (rundir, manifest) = RunDir::open(dir)?;
    let state = rundir.scan(&manifest)?;
    let complete = state.completed.len() == manifest.total_units();
    let code = match (complete, state.quarantined.is_empty()) {
        (true, true) => 0,
        (_, false) => 3,
        (false, true) => 2,
    };
    if json {
        let mut out = format!(
            "{{\"root\":{},\"total\":{},\"done\":{},\"in_flight\":{},\"failed\":{},\
             \"torn_lines\":{},\"complete\":{complete},\"code\":{code},\"quarantined\":[",
            json_str(&rundir.root().display().to_string()),
            manifest.total_units(),
            state.completed.len(),
            state.in_flight.len(),
            state.failed.len(),
            state.torn_lines
        );
        for (i, &unit) in state.quarantined.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"unit\":{unit},\"label\":{},\"cell\":{}}}",
                json_str(&manifest.labels[unit / manifest.units_per_point]),
                unit % manifest.units_per_point
            );
        }
        out.push_str("],\"corrupt\":[");
        for (i, report) in state.corrupt.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(report));
        }
        out.push_str("],\"points\":[");
        for (p, label) in manifest.labels.iter().enumerate() {
            if p > 0 {
                out.push(',');
            }
            let done = state
                .completed
                .iter()
                .filter(|&&u| u / manifest.units_per_point == p)
                .count();
            let _ = write!(
                out,
                "{{\"label\":{},\"done\":{done},\"total\":{}}}",
                json_str(label),
                manifest.units_per_point
            );
        }
        out.push_str("],\"hosts\":[");
        for (i, (host, done)) in state.host_done.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"host\":{},\"done\":{done}}}", json_str(host));
        }
        out.push_str("]}\n");
        return Ok((out, code));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "run {}: {}/{} unit(s) done, {} in-flight, {} failed, {} quarantined, {} torn line(s)",
        rundir.root().display(),
        state.completed.len(),
        manifest.total_units(),
        state.in_flight.len(),
        state.failed.len(),
        state.quarantined.len(),
        state.torn_lines
    );
    for report in &state.corrupt {
        let _ = writeln!(out, "  corrupt: {report}");
    }
    for (p, label) in manifest.labels.iter().enumerate() {
        let done = state
            .completed
            .iter()
            .filter(|&&u| u / manifest.units_per_point == p)
            .count();
        let _ = writeln!(
            out,
            "  {label:<16} {done}/{} unit(s)",
            manifest.units_per_point
        );
    }
    for &unit in &state.quarantined {
        let _ = writeln!(
            out,
            "  quarantined: unit {unit} ({}, cell {})",
            manifest.labels[unit / manifest.units_per_point],
            unit % manifest.units_per_point
        );
    }
    let verdict = match (complete, state.quarantined.is_empty()) {
        (true, true) => "complete — `qra sweep resume` prints the merged report",
        (true, false) => "complete with quarantined unit(s) — the report names them as skips",
        (false, false) => "incomplete with quarantined unit(s) — `qra sweep resume` will finish it",
        (false, true) => "incomplete — `qra sweep resume` will finish it",
    };
    let _ = writeln!(out, "status: {verdict}");
    Ok((out, code))
}

/// `worker`: rebuilds the campaign from the manifest's argv and runs the
/// claim-execute-record loop until no claimable unit remains. `host`
/// labels the worker's results stream for per-host progress attribution
/// (`None` = the legacy local stream name).
fn run_worker(dir: &str, host: Option<&str>) -> Result<String, CliError> {
    let (rundir, manifest) = RunDir::open(dir)?;
    let Command::Campaign(args) = parse_args(&manifest.argv)? else {
        return Err(err("worker: manifest argv is not a campaign invocation"));
    };
    let setup = campaign_setup(&args)?;
    let points = sweep_points(args.sweep.as_deref().unwrap_or(&[]));
    let run_unit = |point: usize, cell: usize| {
        run_sweep_unit(&args, &setup, &points, point, cell).map_err(|e| OrchError(e.0))
    };
    let quarantine = |point: usize, cell: usize, attempts: &[String]| {
        quarantined_unit_record(&args, &setup, &points, point, cell, attempts)
            .map_err(|e| OrchError(e.0))
    };
    let done = worker_loop_on(
        &rundir,
        &manifest,
        std::process::id() as usize,
        host.unwrap_or(LOCAL_HOST),
        &run_unit,
        &quarantine,
    )?;
    Ok(format!("worker: completed {done} unit(s)\n"))
}

fn load(file: &str) -> Result<Circuit, CliError> {
    let text =
        std::fs::read_to_string(file).map_err(|e| err(format!("cannot read {file}: {e}")))?;
    Ok(from_qasm(&text)?)
}

/// Runs one circuit through the campaign layer's backend routing
/// ([`qra::faults::default_executor`]): ideal → state vector, noisy →
/// density matrix (trajectory beyond the exact backend's width),
/// `--backend auto|stabilizer` → the tableau engine. One routing for
/// `run`, `assert`, campaign cells and daemon jobs — and one cache
/// contract: with `cache` set, repeat circuits skip lowering,
/// bit-identically.
fn run_counts(
    circuit: &Circuit,
    shots: u64,
    seed: u64,
    noise: DevicePreset,
    sim_threads: usize,
    backend: BackendChoice,
    cache: Option<&Arc<ProgramCache>>,
) -> Result<Counts, CliError> {
    let config = CampaignConfig {
        shots,
        seed,
        noise: noise.noise_model(),
        // One-shot runs have no cell matrix: a single job keeps
        // `sim_threads` meaning what the flag says (0 = one per core).
        jobs: 1,
        sim_threads,
        // No budget gate: `run --noise` always prefers the exact density
        // backend, degrading to trajectories only past its width ceiling.
        memory_budget_bytes: u64::MAX,
        backend,
        cache: cache.cloned(),
        ..CampaignConfig::default()
    };
    let (counts, _backend) = qra::faults::default_executor(circuit, &config, seed)?;
    Ok(counts)
}

/// Builds the `qra serve` daemon's job executor: parses one job argv with
/// [`parse_args`] and runs it through [`execute_with_code_cached`] over
/// the daemon's shared compile cache — so a daemon job's output and exit
/// code are byte-identical to the same argv run one-shot. Nested service
/// commands (`serve`, `submit`, `batch`) are refused; `sweep run` jobs
/// with no host list inherit the daemon's `--hosts`.
///
/// Exposed so benches and tests can stand up an in-process daemon with
/// the production executor.
pub fn daemon_executor(cache: Arc<ProgramCache>, hosts: Vec<String>) -> Arc<JobExecutor> {
    Arc::new(move |argv: &[String]| {
        let command = parse_args(argv).map_err(|e| e.0)?;
        let command = match command {
            Command::Serve { .. } | Command::Submit { .. } | Command::Batch { .. } => {
                return Err(
                    "the daemon does not accept nested serve/submit/batch commands".to_string(),
                )
            }
            Command::SweepRun {
                dir,
                workers,
                unit_timeout_ms,
                max_attempts,
                hosts: job_hosts,
                args,
            } => Command::SweepRun {
                dir,
                workers,
                unit_timeout_ms,
                max_attempts,
                hosts: if job_hosts.is_empty() {
                    hosts.clone()
                } else {
                    job_hosts
                },
                args,
            },
            other => other,
        };
        execute_with_code_cached(&command, Some(&cache)).map_err(|e| e.0)
    })
}

/// `serve`: runs the streaming daemon (or, with `status`/`stop`, talks to
/// a live one). Blocks until SIGTERM or a shutdown control drains it.
fn serve_command(
    socket: &str,
    workers: usize,
    queue_depth: usize,
    hosts: &[String],
    status: bool,
    stop: bool,
) -> Result<String, CliError> {
    let socket = PathBuf::from(socket);
    if status {
        let line = request_status(&socket).map_err(|e| err(e.0))?;
        return Ok(format!("{line}\n"));
    }
    if stop {
        let ack = request_shutdown(&socket).map_err(|e| err(e.0))?;
        return Ok(format!("{ack}\n"));
    }
    let cache = Arc::new(ProgramCache::new());
    let executor = daemon_executor(Arc::clone(&cache), hosts.to_vec());
    let server = Server::new(
        ServerConfig {
            socket,
            workers,
            queue_depth,
            cache: Some(cache),
            hosts: hosts.to_vec(),
            handle_sigterm: true,
        },
        executor,
    );
    let summary = server.run().map_err(|e| err(e.0))?;
    Ok(format!(
        "serve: drained after {} job(s) ({} dropped), p99 {} us, uptime {:.1}s\n",
        summary.metrics.processed,
        summary.metrics.dropped,
        summary.metrics.p99_us,
        summary.uptime.as_secs_f64()
    ))
}

/// `submit`: one job to a live daemon; prints the job's output verbatim
/// and exits with its code, so scripting against the daemon behaves like
/// scripting against one-shot `qra`.
fn submit_command(socket: &str, argv: &[String]) -> Result<(String, i32), CliError> {
    let mut responses = submit_jobs(Path::new(socket), &[argv.to_vec()]).map_err(|e| err(e.0))?;
    let response = responses
        .pop()
        .ok_or_else(|| err("submit: the daemon sent no response"))?;
    if response.ok {
        Ok((response.output, response.code))
    } else {
        Err(err(format!(
            "submit: {}",
            response.error.as_deref().unwrap_or("job failed")
        )))
    }
}

/// `batch`: submits every job in the file (one whitespace-split argv per
/// line; blank lines and `#` comments skipped) over one connection and
/// summarizes the verdicts. Exit code 0 only when every job executed
/// with code 0.
fn batch_command(socket: &str, file: &str) -> Result<(String, i32), CliError> {
    let text =
        std::fs::read_to_string(file).map_err(|e| err(format!("cannot read {file}: {e}")))?;
    let jobs: Vec<Vec<String>> = text
        .lines()
        .map(str::trim)
        .filter(|line| !line.is_empty() && !line.starts_with('#'))
        .map(|line| line.split_whitespace().map(str::to_string).collect())
        .collect();
    if jobs.is_empty() {
        return Err(err(format!("batch: {file} holds no jobs")));
    }
    let responses = submit_jobs(Path::new(socket), &jobs).map_err(|e| err(e.0))?;
    let mut out = String::new();
    let mut failed = 0;
    for (i, r) in responses.iter().enumerate() {
        if r.ok && r.code == 0 {
            let _ = writeln!(out, "job {i}: ok ({} us)", r.latency_us);
        } else if r.ok {
            failed += 1;
            let _ = writeln!(out, "job {i}: exit {} ({} us)", r.code, r.latency_us);
        } else {
            failed += 1;
            let _ = writeln!(
                out,
                "job {i}: {}",
                r.error.as_deref().unwrap_or("job failed")
            );
        }
    }
    let _ = writeln!(
        out,
        "batch: {}/{} job(s) ok",
        responses.len() - failed,
        responses.len()
    );
    Ok((out, i32::from(failed > 0)))
}

/// The usage text.
pub fn usage() -> String {
    "qra — quantum runtime assertions\n\
     \n\
     USAGE:\n\
     qra run <file.qasm> [--shots N] [--seed S] [--noise ideal|low|melbourne]\n\
     \x20                  [--sim-threads T] [--backend default|auto|stabilizer]\n\
     qra assert <file.qasm> --qubits 0,1,2 --state <spec> [--design auto|swap|or|ndd]\n\
     \x20                  [--shots N] [--seed S] [--noise ideal|low|melbourne]\n\
     \x20                  [--sim-threads T] [--backend default|auto|stabilizer]\n\
     qra cost --qubits-count N --state <spec>\n\
     qra info <file.qasm>\n\
     qra campaign (<file.qasm> | --ghz N) [--state <spec>] [--designs swap,or,ndd,stat|all]\n\
     \x20                  [--doubles K] [--shots N] [--seed S] [--deadline-ms T]\n\
     \x20                  [--jobs W] [--sim-threads T] [--memory-budget-mb M] [--threshold R]\n\
     \x20                  [--noise ideal|low|melbourne] [--shard I/N]\n\
     \x20                  [--backend default|auto|stabilizer]\n\
     \x20                  [--sweep ideal,low,melbourne:2.0] [--margin R|auto[:REPEATS[:Z]]]\n\
     \x20                  [--json]\n\
     qra campaign merge <shard.json|partial.json>… [--json]\n\
     qra sweep run --run-dir <dir> [--workers W] [--unit-timeout SECS] [--max-attempts N]\n\
     \x20                  [--hosts a,b,…] (<file.qasm> | --ghz N) --sweep … [flags]\n\
     qra sweep resume <dir> [--workers W] [--json]\n\
     qra sweep status <dir> [--json]\n\
     qra worker --run-dir <dir> [--host LABEL]\n\
     qra serve [--socket PATH] [--workers W] [--queue-depth N] [--hosts a,b,…]\n\
     qra serve --status | --stop [--socket PATH]\n\
     qra submit [--socket PATH] <job argv…>\n\
     qra batch <jobs.txt> [--socket PATH]\n\
     \n\
     STATE SPECS: ghz | bell | w | plus | zero | basis:IDX | set:I1;I2;… | amps:re,im;…\n\
     \n\
     --sim-threads T lets each simulator parallelize its amplitude sweeps\n\
     over T threads (0 = auto; campaigns default to max(1, cores / jobs) so\n\
     the two layers multiply to at most the machine's cores). Results are\n\
     bit-identical at every thread count.\n\
     --shard I/N runs shard I of N and emits a partial: a slice of the cell\n\
     list for a single campaign, or a slice of the (point x cell) unit grid\n\
     when combined with --sweep. 'campaign merge' reassembles either kind of\n\
     partial into the full report, byte-identical to the undistributed run.\n\
     --backend picks the cell executor: 'default' routes by noise model,\n\
     'auto' additionally engages the O(n^2) stabilizer tableau per cell\n\
     when the cell is noiseless and all-Clifford (counts bit-identical to\n\
     the statevector engine; non-Clifford mutants fall back per cell),\n\
     'stabilizer' forces the tableau and errors on noise or non-Clifford\n\
     gates. Reports name the backend that executed each cell.\n\
     --sweep runs the campaign at each noise point (PRESET[:SCALE]); each\n\
     point's detection threshold is derived as its measured false-positive\n\
     floor + margin. --margin auto calibrates the margin per design and per\n\
     point from the baseline variance across repeated seeds.\n\
     'sweep run' executes the sweep's unit grid across worker subprocesses\n\
     over a crash-safe run directory: kill anything mid-run, then\n\
     'sweep resume' finishes the rest and prints the identical report.\n\
     --unit-timeout kills a worker whose claimed unit outlives SECS and\n\
     reclaims the unit; a unit that fails --max-attempts times (default 3)\n\
     is quarantined — recorded as a named skip carrying its attempt\n\
     history instead of blocking the sweep forever. 'sweep status' exits\n\
     0 when complete, 2 while units remain, 3 when units are quarantined\n\
     (--json emits the same facts machine-readably, per-host included).\n\
     --hosts distributes workers round-robin over the listed hosts: labels\n\
     prefixed 'local' spawn locally (with labelled result streams), the\n\
     rest are reached over ssh assuming a shared run directory mount.\n\
     'serve' runs the streaming assertion daemon: line-delimited JSON jobs\n\
     over a Unix socket, a bounded work queue with backpressure, and a\n\
     compiled-program cache so repeat circuits skip lowering. Responses\n\
     are byte-identical to one-shot runs at the same argv. 'submit' sends\n\
     one job (exits with the job's code); 'batch' streams a file of jobs.\n\
     'serve --status' prints processed/dropped counters, queue depth,\n\
     cache hits and p50/p95/p99 latency; SIGTERM (or 'serve --stop')\n\
     drains accepted jobs before exit.\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_run_command() {
        let cmd = parse_args(&args(&["run", "foo.qasm", "--shots", "100", "--seed", "9"])).unwrap();
        assert_eq!(
            cmd,
            Command::Run {
                file: "foo.qasm".into(),
                shots: 100,
                seed: 9,
                noise: DevicePreset::Ideal,
                sim_threads: 1,
                backend: BackendChoice::Default,
            }
        );
        let cmd = parse_args(&args(&["run", "foo.qasm", "--sim-threads", "4"])).unwrap();
        assert!(matches!(cmd, Command::Run { sim_threads: 4, .. }));
        assert!(parse_args(&args(&["run", "foo.qasm", "--sim-threads", "x"])).is_err());
    }

    #[test]
    fn parses_assert_command_with_noise() {
        let cmd = parse_args(&args(&[
            "assert",
            "foo.qasm",
            "--qubits",
            "0,1,2",
            "--state",
            "ghz",
            "--design",
            "ndd",
            "--noise",
            "melbourne",
        ]))
        .unwrap();
        match cmd {
            Command::Assert {
                qubits,
                state,
                design,
                noise,
                ..
            } => {
                assert_eq!(qubits, vec![0, 1, 2]);
                assert_eq!(state, "ghz");
                assert_eq!(design, Design::Ndd);
                assert_eq!(noise, DevicePreset::MelbourneLike);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn help_and_errors() {
        assert_eq!(parse_args(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse_args(&args(&["--help"])).unwrap(), Command::Help);
        assert!(parse_args(&args(&["frobnicate"])).is_err());
        assert!(parse_args(&args(&["assert", "f.qasm"])).is_err());
        assert!(parse_args(&args(&["run"])).is_err());
        assert!(parse_args(&args(&["run", "f", "--noise", "hot"])).is_err());
    }

    #[test]
    fn parses_named_states() {
        assert!(parse_state("ghz", 3).is_ok());
        assert!(parse_state("bell", 2).is_ok());
        assert!(parse_state("bell", 3).is_err());
        assert!(parse_state("w", 3).is_ok());
        assert!(parse_state("plus", 2).is_ok());
        assert!(parse_state("zero", 1).is_ok());
        assert!(parse_state("nope", 1).is_err());
    }

    #[test]
    fn parses_basis_set_and_amps() {
        let spec = parse_state("basis:2", 2).unwrap();
        assert!(!spec.is_approximate());
        assert!(parse_state("basis:4", 2).is_err());
        let spec = parse_state("set:0;3", 2).unwrap();
        assert!(spec.is_approximate());
        assert!(parse_state("set:0;9", 2).is_err());
        let spec = parse_state("amps:0.7071,0;0,0.7071", 1).unwrap();
        assert!(matches!(spec, StateSpec::Pure(_)));
        assert!(parse_state("amps:1,0", 2).is_err());
        assert!(parse_state("amps:x,0;0,0", 1).is_err());
    }

    #[test]
    fn end_to_end_assert_on_temp_file() {
        let dir = std::env::temp_dir().join("qra_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ghz.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\nh q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n",
        )
        .unwrap();
        let file = path.to_str().unwrap().to_string();

        let out = execute(&Command::Info { file: file.clone() }).unwrap();
        assert!(out.contains("qubits:   3"));
        assert!(out.contains("cx"));

        let out = execute(&Command::Assert {
            file: file.clone(),
            qubits: vec![0, 1, 2],
            state: "ghz".into(),
            design: Design::Swap,
            shots: 512,
            seed: 1,
            noise: DevicePreset::Ideal,
            sim_threads: 1,
            backend: BackendChoice::Default,
        })
        .unwrap();
        assert!(out.contains("error rate:    0.0000"), "{out}");
        assert!(out.contains("pass"));

        // Wrong expectation fails.
        let out = execute(&Command::Assert {
            file: file.clone(),
            qubits: vec![0, 1, 2],
            state: "w".into(),
            design: Design::Swap,
            shots: 512,
            seed: 1,
            noise: DevicePreset::Ideal,
            sim_threads: 1,
            backend: BackendChoice::Default,
        })
        .unwrap();
        assert!(out.contains("FAIL"), "{out}");

        let out = execute(&Command::Run {
            file,
            shots: 256,
            seed: 2,
            noise: DevicePreset::Ideal,
            sim_threads: 1,
            backend: BackendChoice::Default,
        })
        .unwrap();
        assert!(out.contains("shots: 256"));
    }

    #[test]
    fn end_to_end_with_user_defined_gate() {
        // The CLI's QASM loader handles gate definitions; assert the Bell
        // state produced by a user-defined bellpair gate.
        let dir = std::env::temp_dir().join("qra_cli_gatedef_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bell.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\ngate bellpair a,b { h a; cx a,b; }\nqreg q[2];\nbellpair q[0],q[1];\n",
        )
        .unwrap();
        let out = execute(&Command::Assert {
            file: path.to_str().unwrap().to_string(),
            qubits: vec![0, 1],
            state: "bell".into(),
            design: Design::Auto,
            shots: 512,
            seed: 3,
            noise: DevicePreset::Ideal,
            sim_threads: 1,
            backend: BackendChoice::Default,
        })
        .unwrap();
        assert!(out.contains("pass"), "{out}");
    }

    #[test]
    fn cost_command_lists_designs() {
        let out = execute(&Command::Cost {
            num_qubits: 2,
            state: "set:0;3".into(),
        })
        .unwrap();
        assert!(out.contains("swap"));
        assert!(out.contains("ndd"));
        assert!(out.contains("auto picks"));
    }

    #[test]
    fn usage_mentions_all_commands() {
        let u = usage();
        for word in [
            "run",
            "assert",
            "cost",
            "info",
            "campaign",
            "ghz",
            "sweep run",
            "sweep resume",
            "sweep status",
            "worker",
            "--margin R|auto",
            "--unit-timeout",
            "--max-attempts",
        ] {
            assert!(u.contains(word), "usage misses {word}");
        }
    }

    #[test]
    fn parses_sweep_and_worker_commands() {
        let cmd = parse_args(&args(&[
            "sweep",
            "run",
            "--run-dir",
            "rd",
            "--workers",
            "2",
            "--ghz",
            "2",
            "--sweep",
            "ideal,low",
            "--shots",
            "64",
        ]))
        .unwrap();
        match cmd {
            Command::SweepRun {
                dir,
                workers,
                unit_timeout_ms,
                max_attempts,
                hosts,
                args,
            } => {
                assert_eq!(dir, "rd");
                assert_eq!(workers, Some(2));
                assert_eq!(unit_timeout_ms, None, "no timeout unless asked");
                assert_eq!(max_attempts, DEFAULT_MAX_ATTEMPTS);
                assert!(hosts.is_empty());
                assert_eq!(args.source, CampaignSource::Ghz(2));
                assert_eq!(args.shots, 64);
                assert_eq!(args.sweep.as_ref().map(Vec::len), Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Fractional timeouts land in milliseconds; attempts override.
        let cmd = parse_args(&args(&[
            "sweep",
            "run",
            "--run-dir",
            "rd",
            "--ghz",
            "2",
            "--sweep",
            "low",
            "--unit-timeout",
            "1.5",
            "--max-attempts",
            "2",
        ]))
        .unwrap();
        match cmd {
            Command::SweepRun {
                unit_timeout_ms,
                max_attempts,
                ..
            } => {
                assert_eq!(unit_timeout_ms, Some(1500));
                assert_eq!(max_attempts, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        for bad in [
            ["--unit-timeout", "0"],
            ["--unit-timeout", "-1"],
            ["--unit-timeout", "inf"],
            ["--unit-timeout", "x"],
            ["--max-attempts", "0"],
            ["--max-attempts", "x"],
        ] {
            let argv = [
                "sweep",
                "run",
                "--run-dir",
                "rd",
                "--ghz",
                "2",
                "--sweep",
                "low",
                bad[0],
                bad[1],
            ];
            assert!(
                parse_args(&args(&argv)).is_err(),
                "{bad:?} should not parse"
            );
        }
        // A QASM file rides as the positional after `run`.
        let cmd = parse_args(&args(&[
            "sweep",
            "run",
            "--run-dir",
            "rd",
            "f.qasm",
            "--sweep",
            "low",
        ]))
        .unwrap();
        match cmd {
            Command::SweepRun { args, .. } => {
                assert_eq!(args.source, CampaignSource::File("f.qasm".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse_args(&args(&["sweep", "resume", "rd", "--json"])).unwrap(),
            Command::SweepResume {
                dir: "rd".into(),
                workers: None,
                json: true,
            }
        );
        assert_eq!(
            parse_args(&args(&["sweep", "status", "rd"])).unwrap(),
            Command::SweepStatus {
                dir: "rd".into(),
                json: false,
            }
        );
        assert_eq!(
            parse_args(&args(&["worker", "--run-dir", "rd"])).unwrap(),
            Command::Worker {
                dir: "rd".into(),
                host: None,
            }
        );
        // A worker can carry a host label for its results stream.
        assert_eq!(
            parse_args(&args(&["worker", "--run-dir", "rd", "--host", "hostA"])).unwrap(),
            Command::Worker {
                dir: "rd".into(),
                host: Some("hostA".into()),
            }
        );
        assert_eq!(
            parse_args(&args(&["sweep", "status", "rd", "--json"])).unwrap(),
            Command::SweepStatus {
                dir: "rd".into(),
                json: true,
            }
        );
        // Orchestration needs a sweep; its run dir already shards the grid.
        assert!(parse_args(&args(&["sweep", "run", "--run-dir", "rd", "--ghz", "2"])).is_err());
        assert!(parse_args(&args(&[
            "sweep",
            "run",
            "--run-dir",
            "rd",
            "--ghz",
            "2",
            "--sweep",
            "low",
            "--shard",
            "0/2",
        ]))
        .is_err());
        assert!(parse_args(&args(&["sweep", "run", "--ghz", "2", "--sweep", "low"])).is_err());
        assert!(parse_args(&args(&["sweep", "resume"])).is_err());
        assert!(parse_args(&args(&["sweep", "frobnicate", "rd"])).is_err());
        assert!(parse_args(&args(&["worker"])).is_err());
        assert!(parse_args(&args(&[
            "sweep",
            "run",
            "--run-dir",
            "rd",
            "--ghz",
            "2",
            "--sweep",
            "low",
            "--workers",
            "0"
        ]))
        .is_err());
    }

    #[test]
    fn parses_service_commands() {
        let cmd = parse_args(&args(&[
            "serve",
            "--socket",
            "/tmp/q.sock",
            "--workers",
            "2",
            "--queue-depth",
            "8",
            "--hosts",
            "localA,localB",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                socket: "/tmp/q.sock".into(),
                workers: 2,
                queue_depth: 8,
                hosts: vec!["localA".into(), "localB".into()],
                status: false,
                stop: false,
            }
        );
        assert!(matches!(
            parse_args(&args(&["serve"])).unwrap(),
            Command::Serve {
                workers: 0,
                queue_depth: 256,
                status: false,
                stop: false,
                ..
            }
        ));
        assert!(matches!(
            parse_args(&args(&["serve", "--status"])).unwrap(),
            Command::Serve { status: true, .. }
        ));
        assert!(matches!(
            parse_args(&args(&["serve", "--stop"])).unwrap(),
            Command::Serve { stop: true, .. }
        ));
        assert!(parse_args(&args(&["serve", "--status", "--stop"])).is_err());
        assert!(parse_args(&args(&["serve", "--queue-depth", "0"])).is_err());

        // The job argv starts at the first non-flag token, flags included…
        let cmd = parse_args(&args(&[
            "submit", "--socket", "s.sock", "run", "f.qasm", "--shots", "64",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Submit {
                socket: "s.sock".into(),
                argv: args(&["run", "f.qasm", "--shots", "64"]),
            }
        );
        // …or after a literal `--`.
        let cmd = parse_args(&args(&["submit", "--", "sweep", "status", "rd", "--json"])).unwrap();
        assert_eq!(
            cmd,
            Command::Submit {
                socket: DEFAULT_SOCKET.into(),
                argv: args(&["sweep", "status", "rd", "--json"]),
            }
        );
        assert!(parse_args(&args(&["submit"])).is_err());
        assert!(parse_args(&args(&["submit", "--socket", "s.sock"])).is_err());

        assert_eq!(
            parse_args(&args(&["batch", "jobs.txt", "--socket", "s.sock"])).unwrap(),
            Command::Batch {
                socket: "s.sock".into(),
                file: "jobs.txt".into(),
            }
        );
        assert!(parse_args(&args(&["batch"])).is_err());
    }

    #[test]
    fn parses_backend_for_run_and_assert() {
        assert!(matches!(
            parse_args(&args(&["run", "f.qasm", "--backend", "stabilizer"])).unwrap(),
            Command::Run {
                backend: BackendChoice::Stabilizer,
                ..
            }
        ));
        assert!(matches!(
            parse_args(&args(&[
                "assert",
                "f.qasm",
                "--qubits",
                "0",
                "--state",
                "zero",
                "--backend",
                "auto",
            ]))
            .unwrap(),
            Command::Assert {
                backend: BackendChoice::Auto,
                ..
            }
        ));
        assert!(parse_args(&args(&["run", "f.qasm", "--backend", "quantum"])).is_err());
    }

    #[test]
    fn run_backends_agree_on_clifford_circuits() {
        // `--backend stabilizer` and the default statevector routing are
        // documented to produce bit-identical histograms on Clifford
        // circuits — the CLI layer must preserve that.
        let dir = std::env::temp_dir().join("qra_cli_backend_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bell.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
             h q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n",
        )
        .unwrap();
        let run = |backend| {
            execute(&Command::Run {
                file: path.to_str().unwrap().to_string(),
                shots: 512,
                seed: 7,
                noise: DevicePreset::Ideal,
                sim_threads: 1,
                backend,
            })
            .unwrap()
        };
        let default = run(BackendChoice::Default);
        assert_eq!(default, run(BackendChoice::Stabilizer));
        assert_eq!(default, run(BackendChoice::Auto));
        // Forcing the tableau under noise is a hard error, same as in
        // campaigns.
        let e = execute(&Command::Run {
            file: path.to_str().unwrap().to_string(),
            shots: 512,
            seed: 7,
            noise: DevicePreset::LowNoise,
            sim_threads: 1,
            backend: BackendChoice::Stabilizer,
        })
        .unwrap_err();
        assert!(e.0.contains("stabilizer"), "{e}");
    }

    #[test]
    fn sweep_shard_partials_merge_to_the_sequential_sweep() {
        let campaign = |shard: Option<Shard>, json: bool| {
            Command::Campaign(CampaignArgs {
                source: CampaignSource::Ghz(2),
                state: "ghz".into(),
                designs: vec![CampaignDesign::Ndd],
                doubles: 0,
                shots: 64,
                seed: 13,
                deadline_ms: None,
                memory_budget_mb: 64,
                jobs: Some(1),
                sim_threads: None,
                noise: DevicePreset::Ideal,
                threshold: 0.05,
                backend: BackendChoice::default(),
                shard,
                sweep: Some(vec![
                    (DevicePreset::Ideal, 1.0),
                    (DevicePreset::LowNoise, 1.0),
                ]),
                margin: MarginMode::Auto { repeats: 2, z: 2.0 },
                json,
            })
        };
        let sequential = execute(&campaign(None, true)).unwrap();

        let dir = std::env::temp_dir().join("qra_cli_sweep_shard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut files = Vec::new();
        for index in 0..3 {
            let out = execute(&campaign(Some(Shard { index, count: 3 }), true)).unwrap();
            assert!(is_sweep_partial(&out), "{out}");
            let path = dir.join(format!("partial{index}.json"));
            std::fs::write(&path, &out).unwrap();
            files.push(path.to_str().unwrap().to_string());
        }
        let merged = execute(&Command::CampaignMerge {
            files: files.clone(),
            json: true,
        })
        .unwrap();
        assert_eq!(merged, sequential, "merged partials must be byte-identical");

        // Dropping a partial names the gap; mixing kinds names the odd file.
        let incomplete = execute(&Command::CampaignMerge {
            files: files[..2].to_vec(),
            json: true,
        })
        .unwrap_err();
        assert!(incomplete.0.contains("point"), "{incomplete}");
    }

    #[test]
    fn quarantined_records_are_deterministic_and_round_trip() {
        let args = CampaignArgs {
            source: CampaignSource::Ghz(2),
            state: "ghz".into(),
            designs: vec![CampaignDesign::Ndd],
            doubles: 0,
            shots: 64,
            seed: 17,
            deadline_ms: None,
            memory_budget_mb: 64,
            jobs: Some(1),
            sim_threads: None,
            noise: DevicePreset::Ideal,
            threshold: 0.05,
            backend: BackendChoice::default(),
            shard: None,
            sweep: Some(vec![
                (DevicePreset::Ideal, 1.0),
                (DevicePreset::LowNoise, 1.0),
            ]),
            margin: MarginMode::Auto { repeats: 2, z: 2.0 },
            json: true,
        };
        let setup = campaign_setup(&args).unwrap();
        let points = sweep_points(args.sweep.as_deref().unwrap());
        let (cells_per_point, units_per_point) = sweep_grid(&args, &setup);
        let attempts: Vec<String> = (0..3).map(|_| "backend exploded".to_string()).collect();
        // A baseline cell, a mutant cell, and the calibration unit all
        // render stably and parse back to the same bytes.
        for cell in [0, cells_per_point - 1, units_per_point - 1] {
            let a = quarantined_unit_record(&args, &setup, &points, 1, cell, &attempts).unwrap();
            let b = quarantined_unit_record(&args, &setup, &points, 1, cell, &attempts).unwrap();
            assert_eq!(a, b, "record must not depend on the renderer instance");
            assert!(
                a.contains("quarantined after 3 failed attempt(s)") || cell == units_per_point - 1,
                "{a}"
            );
            let record = parse_unit_record(&a).unwrap();
            assert_eq!(record.point, 1);
            assert_eq!(record.cell, cell);
            assert_eq!(record.quarantined.as_deref(), Some(&attempts[..]));
            assert_eq!(record.to_json(), a, "record round-trips byte-identically");
        }
        // Out-of-grid coordinates are an error, not a bogus record.
        assert!(quarantined_unit_record(&args, &setup, &points, 2, 0, &attempts).is_err());
        assert!(
            quarantined_unit_record(&args, &setup, &points, 0, units_per_point, &attempts).is_err()
        );
    }

    #[test]
    fn parses_campaign_command() {
        let cmd = parse_args(&args(&[
            "campaign",
            "--ghz",
            "3",
            "--designs",
            "ndd,stat",
            "--doubles",
            "4",
            "--shots",
            "128",
            "--seed",
            "7",
            "--deadline-ms",
            "5000",
            "--jobs",
            "4",
            "--json",
        ]))
        .unwrap();
        match cmd {
            Command::Campaign(a) => {
                assert_eq!(a.source, CampaignSource::Ghz(3));
                assert_eq!(a.designs, vec![CampaignDesign::Ndd, CampaignDesign::Stat]);
                assert_eq!(a.doubles, 4);
                assert_eq!(a.shots, 128);
                assert_eq!(a.seed, 7);
                assert_eq!(a.deadline_ms, Some(5000));
                assert_eq!(a.jobs, Some(4));
                assert!(a.json);
                // The canonical argv round-trips to the identical command
                // (modulo --json, an output concern).
                let reparsed = parse_args(&a.to_argv()).unwrap();
                let expected = CampaignArgs { json: false, ..a };
                assert_eq!(reparsed, Command::Campaign(expected));
            }
            other => panic!("unexpected {other:?}"),
        }
        // File source with default designs and auto parallelism.
        let cmd = parse_args(&args(&["campaign", "f.qasm"])).unwrap();
        match cmd {
            Command::Campaign(a) => {
                assert_eq!(a.source, CampaignSource::File("f.qasm".into()));
                assert_eq!(a.designs.len(), 3);
                assert_eq!(a.jobs, None);
                assert_eq!(a.margin, MarginMode::Fixed(0.02));
            }
            other => panic!("unexpected {other:?}"),
        }
        // Backend routing parses, round-trips, and rejects unknown names.
        for (name, choice) in [
            ("default", BackendChoice::Default),
            ("auto", BackendChoice::Auto),
            ("stabilizer", BackendChoice::Stabilizer),
        ] {
            let cmd = parse_args(&args(&["campaign", "f.qasm", "--backend", name])).unwrap();
            match cmd {
                Command::Campaign(a) => {
                    assert_eq!(a.backend, choice);
                    assert_eq!(parse_args(&a.to_argv()).unwrap(), Command::Campaign(a));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        assert!(parse_args(&args(&["campaign", "f", "--backend", "statevector"])).is_err());
        assert!(parse_args(&args(&["campaign"])).is_err());
        assert!(parse_args(&args(&["campaign", "--ghz", "0"])).is_err());
        assert!(parse_args(&args(&["campaign", "f", "--designs", "bogus"])).is_err());
        assert!(parse_args(&args(&["campaign", "f", "--jobs", "0"])).is_err());
        assert!(parse_args(&args(&["campaign", "f", "--jobs", "x"])).is_err());
    }

    #[test]
    fn parses_campaign_shard_sweep_and_merge() {
        let cmd = parse_args(&args(&["campaign", "--ghz", "2", "--shard", "1/3"])).unwrap();
        match cmd {
            Command::Campaign(a) => {
                assert_eq!(a.shard, Some(Shard { index: 1, count: 3 }));
                assert_eq!(a.sweep, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Malformed shard coordinates.
        for bad in ["3/3", "x/2", "1-2", "2/0"] {
            assert!(
                parse_args(&args(&["campaign", "f", "--shard", bad])).is_err(),
                "{bad} should not parse"
            );
        }

        let cmd = parse_args(&args(&[
            "campaign",
            "--ghz",
            "2",
            "--sweep",
            "ideal,low,melbourne:2.5",
            "--margin",
            "0.03",
            "--threshold",
            "0.1",
        ]))
        .unwrap();
        match cmd {
            Command::Campaign(a) => {
                assert_eq!(
                    a.sweep,
                    Some(vec![
                        (DevicePreset::Ideal, 1.0),
                        (DevicePreset::LowNoise, 1.0),
                        (DevicePreset::MelbourneLike, 2.5),
                    ])
                );
                assert_eq!(a.margin, MarginMode::Fixed(0.03));
                assert_eq!(a.threshold, 0.1);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Unknown presets report the accepted names.
        let e = parse_args(&args(&["campaign", "f", "--sweep", "hot"])).unwrap_err();
        assert!(e.0.contains("expected one of"), "{e}");
        assert!(parse_args(&args(&["campaign", "f", "--sweep", "low:-1"])).is_err());
        assert!(parse_args(&args(&["campaign", "f", "--sweep", "low:x"])).is_err());
        assert!(parse_args(&args(&["campaign", "f", "--threshold", "-0.1"])).is_err());
        // Sharding a sweep distributes its (point x cell) unit grid.
        let cmd = parse_args(&args(&[
            "campaign",
            "f",
            "--shard",
            "0/2",
            "--sweep",
            "ideal,low",
            "--margin",
            "auto:3",
        ]))
        .unwrap();
        match cmd {
            Command::Campaign(a) => {
                assert_eq!(a.shard, Some(Shard { index: 0, count: 2 }));
                assert_eq!(a.sweep.as_ref().map(Vec::len), Some(2));
                assert_eq!(a.margin, MarginMode::Auto { repeats: 3, z: 2.0 });
            }
            other => panic!("unexpected {other:?}"),
        }
        // Auto margins calibrate sweep thresholds; without --sweep there is
        // nothing to calibrate.
        assert!(parse_args(&args(&["campaign", "f", "--margin", "auto"])).is_err());
        assert!(parse_args(&args(&["campaign", "f", "--margin", "auto:1"])).is_err());

        let cmd = parse_args(&args(&["campaign", "merge", "a.json", "b.json", "--json"])).unwrap();
        assert_eq!(
            cmd,
            Command::CampaignMerge {
                files: vec!["a.json".into(), "b.json".into()],
                json: true,
            }
        );
        assert!(parse_args(&args(&["campaign", "merge"])).is_err());
    }

    #[test]
    fn campaign_shards_merge_to_the_unsharded_report() {
        let campaign = |shard: Option<Shard>| {
            Command::Campaign(CampaignArgs {
                source: CampaignSource::Ghz(2),
                state: "ghz".into(),
                designs: vec![CampaignDesign::Ndd, CampaignDesign::Stat],
                doubles: 0,
                shots: 64,
                seed: 11,
                deadline_ms: None,
                memory_budget_mb: 64,
                jobs: Some(1),
                sim_threads: None,
                noise: DevicePreset::Ideal,
                threshold: 0.05,
                backend: BackendChoice::default(),
                shard,
                sweep: None,
                margin: MarginMode::Fixed(0.02),
                json: true,
            })
        };
        let full = execute(&campaign(None)).unwrap();

        let dir = std::env::temp_dir().join("qra_cli_shard_test");
        std::fs::create_dir_all(&dir).unwrap();
        let mut files = Vec::new();
        for index in 0..2 {
            let out = execute(&campaign(Some(Shard { index, count: 2 }))).unwrap();
            assert!(out.contains("\"shard\""), "{out}");
            let path = dir.join(format!("shard{index}.json"));
            std::fs::write(&path, &out).unwrap();
            files.push(path.to_str().unwrap().to_string());
        }
        let merged = execute(&Command::CampaignMerge { files, json: true }).unwrap();
        assert_eq!(merged, full);
    }

    #[test]
    fn campaign_sweep_end_to_end() {
        let out = execute(&Command::Campaign(CampaignArgs {
            source: CampaignSource::Ghz(2),
            state: "ghz".into(),
            designs: vec![CampaignDesign::Ndd],
            doubles: 0,
            shots: 64,
            seed: 3,
            deadline_ms: None,
            memory_budget_mb: 64,
            jobs: Some(1),
            sim_threads: None,
            noise: DevicePreset::Ideal,
            threshold: 0.05,
            backend: BackendChoice::default(),
            shard: None,
            sweep: Some(vec![
                (DevicePreset::Ideal, 1.0),
                (DevicePreset::LowNoise, 2.0),
            ]),
            margin: MarginMode::Fixed(0.02),
            json: false,
        }))
        .unwrap();
        assert!(out.contains("Noise sweep: 2 point(s)"), "{out}");
        assert!(out.contains("--- noise point: low x2 ---"), "{out}");
        assert!(out.contains("Detection degradation"), "{out}");
    }

    #[test]
    fn campaign_auto_backend_end_to_end_reports_stabilizer() {
        // A Clifford GHZ program (exact h/cx, unlike the built-in --ghz
        // source whose Hadamard is u2(0,pi)) with a classical set spec:
        // every auto cell should run on the tableau and say so.
        let dir = std::env::temp_dir().join("qra_cli_auto_backend_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ghz3_clifford.qasm");
        std::fs::write(
            &path,
            "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[3];\n\
             h q[0];\ncx q[0],q[1];\ncx q[1],q[2];\n",
        )
        .unwrap();
        let campaign = |backend: BackendChoice| {
            execute(&Command::Campaign(CampaignArgs {
                source: CampaignSource::File(path.to_str().unwrap().to_string()),
                state: "set:0;7".into(),
                designs: vec![CampaignDesign::Swap],
                doubles: 0,
                shots: 128,
                seed: 5,
                deadline_ms: None,
                memory_budget_mb: 64,
                jobs: Some(1),
                sim_threads: None,
                noise: DevicePreset::Ideal,
                threshold: 0.05,
                backend,
                shard: None,
                sweep: None,
                margin: MarginMode::Fixed(0.02),
                json: true,
            }))
            .unwrap()
        };
        let auto = campaign(BackendChoice::Auto);
        assert!(auto.contains("\"backend\":\"stabilizer\""), "{auto}");
        assert!(!auto.contains("\"backend\":\"statevector\""), "{auto}");
        // Auto never changes the physics: identical bytes modulo the
        // backend labels.
        let default = campaign(BackendChoice::Default);
        assert_eq!(
            auto.replace("\"backend\":\"stabilizer\"", "\"backend\":\"statevector\""),
            default
        );
    }

    #[test]
    fn campaign_rejects_oversized_programs_fast() {
        // Must error out before building the 2^25-amplitude spec.
        let e = execute(&Command::Campaign(CampaignArgs {
            source: CampaignSource::Ghz(25),
            state: "ghz".into(),
            designs: vec![CampaignDesign::Swap],
            doubles: 0,
            shots: 16,
            seed: 1,
            deadline_ms: None,
            memory_budget_mb: 64,
            jobs: None,
            sim_threads: None,
            noise: DevicePreset::Ideal,
            threshold: 0.05,
            backend: BackendChoice::default(),
            shard: None,
            sweep: None,
            margin: MarginMode::Fixed(0.02),
            json: false,
        }))
        .unwrap_err();
        assert!(e.0.contains("25 qubits"), "{e}");
    }

    #[test]
    fn design_list_parsing() {
        assert_eq!(
            parse_design_list("all").unwrap(),
            CampaignDesign::ALL.to_vec()
        );
        assert_eq!(
            parse_design_list("swap, logical-or").unwrap(),
            vec![CampaignDesign::Swap, CampaignDesign::LogicalOr]
        );
        assert!(parse_design_list("").is_err());
        assert!(parse_design_list("qft").is_err());
    }

    #[test]
    fn campaign_end_to_end_on_builtin_ghz() {
        let campaign = |jobs: Option<usize>, json: bool| {
            Command::Campaign(CampaignArgs {
                source: CampaignSource::Ghz(2),
                state: "ghz".into(),
                designs: vec![CampaignDesign::Ndd],
                doubles: 2,
                shots: 128,
                seed: 5,
                deadline_ms: None,
                memory_budget_mb: 64,
                jobs,
                sim_threads: None,
                noise: DevicePreset::Ideal,
                threshold: 0.05,
                backend: BackendChoice::default(),
                shard: None,
                sweep: None,
                margin: MarginMode::Fixed(0.02),
                json,
            })
        };
        let base = campaign(Some(1), false);
        let text = execute(&base).unwrap();
        assert!(text.contains("fault-injection campaign"), "{text}");
        assert!(text.contains("false-positive rate 0.0000"), "{text}");
        assert!(text.contains("angle-off-by-pi"));
        assert!(text.contains("elapsed:"), "{text}");

        // Identical seeds render identical reports (minus timing).
        let again = execute(&base).unwrap();
        let strip = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("elapsed:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(strip(&text), strip(&again));

        // The worker pool renders the very same report text.
        let parallel = execute(&campaign(Some(4), false)).unwrap();
        assert_eq!(strip(&text), strip(&parallel));

        // JSON output carries no timing, so it is byte-identical across
        // job counts.
        let json_serial = execute(&campaign(Some(1), true)).unwrap();
        assert!(json_serial.starts_with('{') && json_serial.ends_with('}'));
        assert!(json_serial.contains("\"mutant_count\""));
        let json_parallel = execute(&campaign(Some(4), true)).unwrap();
        assert_eq!(json_serial, json_parallel);
    }
}
