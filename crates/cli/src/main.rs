//! The `qra` command-line tool: a thin shim over [`qra_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match qra_cli::parse_args(&args).and_then(|cmd| qra_cli::execute_with_code(&cmd)) {
        Ok((output, code)) => {
            print!("{output}");
            if code != 0 {
                std::process::exit(code);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{}", qra_cli::usage());
            std::process::exit(1);
        }
    }
}
