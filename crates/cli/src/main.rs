//! The `qra` command-line tool: a thin shim over [`qra_cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match qra_cli::parse_args(&args).and_then(|cmd| qra_cli::execute(&cmd)) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprint!("{}", qra_cli::usage());
            std::process::exit(1);
        }
    }
}
