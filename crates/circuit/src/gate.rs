//! The gate set: names, arities, matrices and inverses.

use qra_math::{CMatrix, C64};
use std::fmt;
use std::sync::Arc;

/// A quantum gate with an exact unitary matrix.
///
/// The parameterised gates follow the Qiskit 0.18 conventions the paper's
/// pseudo-code uses: `U3(θ,φ,λ)`, `U2(φ,λ) = U3(π/2,φ,λ)`,
/// `Phase(λ) = U1(λ) = diag(1, e^{iλ})`, `Rz(θ) = diag(e^{-iθ/2}, e^{iθ/2})`.
///
/// ```rust
/// use qra_circuit::Gate;
/// use std::f64::consts::PI;
///
/// // The paper's Fig. 2 uses u2(0, π), which equals Hadamard.
/// let u2 = Gate::U2(0.0, PI);
/// assert!(u2.matrix().approx_eq(&Gate::H.matrix(), 1e-12));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// S†.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T†.
    Tdg,
    /// √X.
    Sx,
    /// √X†.
    Sxdg,
    /// Rotation about X by the given angle.
    Rx(f64),
    /// Rotation about Y by the given angle.
    Ry(f64),
    /// Rotation about Z by the given angle.
    Rz(f64),
    /// Phase gate `diag(1, e^{iλ})` (Qiskit `u1`/`p`).
    Phase(f64),
    /// `U2(φ, λ) = U3(π/2, φ, λ)`.
    U2(f64, f64),
    /// The generic single-qubit gate `U3(θ, φ, λ)`.
    U3(f64, f64, f64),
    /// Controlled-X (CNOT); qubit order is `(control, target)`.
    Cx,
    /// Controlled-Y.
    Cy,
    /// Controlled-Z.
    Cz,
    /// Controlled-H.
    Ch,
    /// SWAP.
    Swap,
    /// Controlled phase `diag(1,1,1,e^{iλ})`.
    Cp(f64),
    /// Controlled Rx.
    Crx(f64),
    /// Controlled Ry.
    Cry(f64),
    /// Controlled Rz.
    Crz(f64),
    /// Controlled U3.
    Cu3(f64, f64, f64),
    /// Toffoli (CCX); qubit order `(control, control, target)`.
    Ccx,
    /// Doubly-controlled Z.
    Ccz,
    /// Controlled SWAP (Fredkin).
    Cswap,
    /// An arbitrary unitary with a label; arity is `log₂(dim)`.
    Unitary(Arc<CMatrix>, String),
}

impl Gate {
    /// Creates an arbitrary-unitary gate after validating unitarity.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CircuitError::NotUnitary`] when `matrix` fails the
    /// `U†U = I` check, and [`crate::CircuitError::Math`] when the dimension
    /// is not a power of two.
    pub fn unitary(matrix: CMatrix, label: impl Into<String>) -> Result<Self, crate::CircuitError> {
        qra_math::qubits_for_dim(matrix.rows()).map_err(crate::CircuitError::Math)?;
        if !matrix.is_unitary(1e-8) {
            let dev = matrix
                .adjoint()
                .mul(&matrix)
                .map(|p| p.max_abs_diff(&CMatrix::identity(matrix.rows())))
                .unwrap_or(f64::INFINITY);
            return Err(crate::CircuitError::NotUnitary { deviation: dev });
        }
        Ok(Gate::Unitary(Arc::new(matrix), label.into()))
    }

    /// The number of qubits the gate acts on.
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Sxdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::U2(_, _)
            | Gate::U3(_, _, _) => 1,
            Gate::Cx
            | Gate::Cy
            | Gate::Cz
            | Gate::Ch
            | Gate::Swap
            | Gate::Cp(_)
            | Gate::Crx(_)
            | Gate::Cry(_)
            | Gate::Crz(_)
            | Gate::Cu3(_, _, _) => 2,
            Gate::Ccx | Gate::Ccz | Gate::Cswap => 3,
            Gate::Unitary(m, _) => {
                qra_math::qubits_for_dim(m.rows()).expect("validated at construction")
            }
        }
    }

    /// The lowercase OpenQASM-style name.
    pub fn name(&self) -> &str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::U2(_, _) => "u2",
            Gate::U3(_, _, _) => "u3",
            Gate::Cx => "cx",
            Gate::Cy => "cy",
            Gate::Cz => "cz",
            Gate::Ch => "ch",
            Gate::Swap => "swap",
            Gate::Cp(_) => "cp",
            Gate::Crx(_) => "crx",
            Gate::Cry(_) => "cry",
            Gate::Crz(_) => "crz",
            Gate::Cu3(_, _, _) => "cu3",
            Gate::Ccx => "ccx",
            Gate::Ccz => "ccz",
            Gate::Cswap => "cswap",
            Gate::Unitary(_, _) => "unitary",
        }
    }

    /// Borrows the backing matrix of a [`Gate::Unitary`] without cloning;
    /// `None` for named gates (use [`Gate::matrix`] to materialize those).
    /// Lowering passes use this to avoid a per-instruction matrix copy.
    pub fn unitary_matrix(&self) -> Option<&CMatrix> {
        match self {
            Gate::Unitary(m, _) => Some(m),
            _ => None,
        }
    }

    /// The gate's unitary matrix in the big-endian qubit convention
    /// (qubit 0 of the gate = most significant bit).
    pub fn matrix(&self) -> CMatrix {
        let o = C64::one;
        let z = C64::zero;
        match self {
            Gate::I => CMatrix::identity(2),
            Gate::X => CMatrix::new(2, 2, vec![z(), o(), o(), z()]),
            Gate::Y => CMatrix::new(
                2,
                2,
                vec![z(), C64::new(0.0, -1.0), C64::new(0.0, 1.0), z()],
            ),
            Gate::Z => CMatrix::diagonal(&[o(), C64::from(-1.0)]),
            Gate::H => {
                let s = C64::from(0.5f64.sqrt());
                CMatrix::new(2, 2, vec![s, s, s, -s])
            }
            Gate::S => CMatrix::diagonal(&[o(), C64::i()]),
            Gate::Sdg => CMatrix::diagonal(&[o(), -C64::i()]),
            Gate::T => CMatrix::diagonal(&[o(), C64::cis(std::f64::consts::FRAC_PI_4)]),
            Gate::Tdg => CMatrix::diagonal(&[o(), C64::cis(-std::f64::consts::FRAC_PI_4)]),
            Gate::Sx => {
                let a = C64::new(0.5, 0.5);
                let b = C64::new(0.5, -0.5);
                CMatrix::new(2, 2, vec![a, b, b, a])
            }
            Gate::Sxdg => {
                let a = C64::new(0.5, -0.5);
                let b = C64::new(0.5, 0.5);
                CMatrix::new(2, 2, vec![a, b, b, a])
            }
            Gate::Rx(theta) => {
                let c = C64::from((theta / 2.0).cos());
                let s = C64::new(0.0, -(theta / 2.0).sin());
                CMatrix::new(2, 2, vec![c, s, s, c])
            }
            Gate::Ry(theta) => {
                let c = C64::from((theta / 2.0).cos());
                let s = C64::from((theta / 2.0).sin());
                CMatrix::new(2, 2, vec![c, -s, s, c])
            }
            Gate::Rz(theta) => CMatrix::diagonal(&[C64::cis(-theta / 2.0), C64::cis(theta / 2.0)]),
            Gate::Phase(lambda) => CMatrix::diagonal(&[o(), C64::cis(*lambda)]),
            Gate::U2(phi, lambda) => u3_matrix(std::f64::consts::FRAC_PI_2, *phi, *lambda),
            Gate::U3(theta, phi, lambda) => u3_matrix(*theta, *phi, *lambda),
            Gate::Cx => controlled(&Gate::X.matrix()),
            Gate::Cy => controlled(&Gate::Y.matrix()),
            Gate::Cz => controlled(&Gate::Z.matrix()),
            Gate::Ch => controlled(&Gate::H.matrix()),
            Gate::Swap => {
                let mut m = CMatrix::zeros(4, 4);
                m.set(0, 0, o());
                m.set(1, 2, o());
                m.set(2, 1, o());
                m.set(3, 3, o());
                m
            }
            Gate::Cp(lambda) => controlled(&Gate::Phase(*lambda).matrix()),
            Gate::Crx(theta) => controlled(&Gate::Rx(*theta).matrix()),
            Gate::Cry(theta) => controlled(&Gate::Ry(*theta).matrix()),
            Gate::Crz(theta) => controlled(&Gate::Rz(*theta).matrix()),
            Gate::Cu3(theta, phi, lambda) => controlled(&u3_matrix(*theta, *phi, *lambda)),
            Gate::Ccx => controlled(&controlled(&Gate::X.matrix())),
            Gate::Ccz => controlled(&controlled(&Gate::Z.matrix())),
            Gate::Cswap => controlled(&Gate::Swap.matrix()),
            Gate::Unitary(m, _) => (**m).clone(),
        }
    }

    /// The inverse gate (`U†`).
    pub fn inverse(&self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Phase(l) => Gate::Phase(-l),
            Gate::U2(phi, lambda) => {
                // U2(φ,λ)† = U3(-π/2, -λ, -φ) = U3(π/2, π-λ... ; use U3 form.
                Gate::U3(-std::f64::consts::FRAC_PI_2, -lambda, -phi)
            }
            Gate::U3(t, p, l) => Gate::U3(-t, -l, -p),
            Gate::Cp(l) => Gate::Cp(-l),
            Gate::Crx(t) => Gate::Crx(-t),
            Gate::Cry(t) => Gate::Cry(-t),
            Gate::Crz(t) => Gate::Crz(-t),
            Gate::Cu3(t, p, l) => Gate::Cu3(-t, -l, -p),
            Gate::Unitary(m, label) => Gate::Unitary(Arc::new(m.adjoint()), format!("{label}_dg")),
            // Self-inverse gates.
            g => g.clone(),
        }
    }

    /// Returns `true` for gates counted as entangling two-qubit gates in the
    /// paper's cost model (CX-equivalents). See [`crate::cost`].
    pub fn is_two_qubit_entangler(&self) -> bool {
        matches!(
            self,
            Gate::Cx
                | Gate::Cy
                | Gate::Cz
                | Gate::Ch
                | Gate::Cp(_)
                | Gate::Crx(_)
                | Gate::Cry(_)
                | Gate::Crz(_)
                | Gate::Cu3(_, _, _)
        )
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) => {
                write!(f, "{}({t:.4})", self.name())
            }
            Gate::U2(p, l) => write!(f, "u2({p:.4},{l:.4})"),
            Gate::U3(t, p, l) => write!(f, "u3({t:.4},{p:.4},{l:.4})"),
            Gate::Cp(t) | Gate::Crx(t) | Gate::Cry(t) | Gate::Crz(t) => {
                write!(f, "{}({t:.4})", self.name())
            }
            Gate::Cu3(t, p, l) => write!(f, "cu3({t:.4},{p:.4},{l:.4})"),
            Gate::Unitary(m, label) => write!(f, "unitary[{label}]({}q)", {
                qra_math::qubits_for_dim(m.rows()).unwrap_or(0)
            }),
            _ => write!(f, "{}", self.name()),
        }
    }
}

/// `U3(θ,φ,λ)` in the Qiskit convention.
pub fn u3_matrix(theta: f64, phi: f64, lambda: f64) -> CMatrix {
    let (c, s) = ((theta / 2.0).cos(), (theta / 2.0).sin());
    CMatrix::new(
        2,
        2,
        vec![
            C64::from(c),
            -C64::cis(lambda).scale(s),
            C64::cis(phi).scale(s),
            C64::cis(phi + lambda).scale(c),
        ],
    )
}

/// `|0⟩⟨0| ⊗ I + |1⟩⟨1| ⊗ U` with the control as the more significant qubit.
pub fn controlled(u: &CMatrix) -> CMatrix {
    let d = u.rows();
    let mut out = CMatrix::identity(2 * d);
    for r in 0..d {
        for c in 0..d {
            out.set(d + r, d + c, u.get(r, c));
        }
    }
    out
}

/// Embeds a `k`-qubit gate matrix acting on `qubits` (in gate order, qubit 0
/// of the gate = `qubits[0]`) into the full `2ⁿ × 2ⁿ` unitary of an
/// `n`-qubit system, big-endian bit convention.
///
/// # Panics
///
/// Panics when `qubits` contains duplicates or out-of-range indices, or when
/// its length disagrees with the gate dimension.
pub fn embed(gate: &CMatrix, qubits: &[usize], n: usize) -> CMatrix {
    let k = qubits.len();
    assert_eq!(gate.rows(), 1 << k, "gate dimension mismatch");
    for (i, &q) in qubits.iter().enumerate() {
        assert!(q < n, "qubit {q} out of range");
        assert!(
            !qubits[..i].contains(&q),
            "duplicate qubit {q} in embedding"
        );
    }
    let dim = 1usize << n;
    // For each full index, extract the sub-index formed by the gate qubits.
    let sub_index = |full: usize| -> usize {
        let mut s = 0usize;
        for (pos, &q) in qubits.iter().enumerate() {
            let bit = (full >> (n - 1 - q)) & 1;
            s |= bit << (k - 1 - pos);
        }
        s
    };
    let rest_mask: usize = {
        let mut m = dim - 1;
        for &q in qubits {
            m &= !(1usize << (n - 1 - q));
        }
        m
    };
    CMatrix::from_fn(dim, dim, |r, c| {
        if (r & rest_mask) != (c & rest_mask) {
            C64::zero()
        } else {
            gate.get(sub_index(r), sub_index(c))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_math::CVector;
    use std::f64::consts::{FRAC_PI_2, PI};

    const TOL: f64 = 1e-12;

    #[test]
    fn all_fixed_gates_are_unitary() {
        let gates = [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Ch,
            Gate::Swap,
            Gate::Ccx,
            Gate::Ccz,
            Gate::Cswap,
        ];
        for g in gates {
            assert!(g.matrix().is_unitary(TOL), "{g} not unitary");
        }
    }

    #[test]
    fn parameterised_gates_are_unitary() {
        for k in 0..8 {
            let t = 0.3 + k as f64;
            for g in [
                Gate::Rx(t),
                Gate::Ry(t),
                Gate::Rz(t),
                Gate::Phase(t),
                Gate::U2(t, t / 2.0),
                Gate::U3(t, t / 2.0, t / 3.0),
                Gate::Cp(t),
                Gate::Crx(t),
                Gate::Cry(t),
                Gate::Crz(t),
                Gate::Cu3(t, t / 2.0, t / 3.0),
            ] {
                assert!(g.matrix().is_unitary(TOL), "{g} not unitary");
            }
        }
    }

    #[test]
    fn inverses_multiply_to_identity() {
        let gates = [
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.7),
            Gate::Ry(-1.3),
            Gate::Rz(2.1),
            Gate::Phase(0.9),
            Gate::U2(0.4, 1.1),
            Gate::U3(0.5, 1.5, -0.7),
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Cp(0.6),
            Gate::Cu3(1.0, 0.2, -0.4),
            Gate::Ccx,
        ];
        for g in gates {
            let m = g.matrix();
            let inv = g.inverse().matrix();
            let prod = m.mul(&inv).unwrap();
            assert!(
                prod.approx_eq(&CMatrix::identity(m.rows()), 1e-10),
                "{g} inverse wrong"
            );
        }
    }

    #[test]
    fn u2_zero_pi_is_hadamard() {
        // The paper's GHZ preparation uses u2(0, π) as the Hadamard.
        assert!(Gate::U2(0.0, PI).matrix().approx_eq(&Gate::H.matrix(), TOL));
    }

    #[test]
    fn u3_special_cases() {
        assert!(Gate::U3(0.0, 0.0, 0.7)
            .matrix()
            .approx_eq(&Gate::Phase(0.7).matrix(), TOL));
        assert!(Gate::U3(FRAC_PI_2, 0.1, 0.2)
            .matrix()
            .approx_eq(&Gate::U2(0.1, 0.2).matrix(), TOL));
    }

    #[test]
    fn cx_truth_table() {
        let cx = Gate::Cx.matrix();
        // |10⟩ → |11⟩ (control=qubit0 set).
        let out = cx.mul_vec(&CVector::basis_state(4, 2));
        assert!(out.approx_eq(&CVector::basis_state(4, 3), TOL));
        // |01⟩ unchanged.
        let out = cx.mul_vec(&CVector::basis_state(4, 1));
        assert!(out.approx_eq(&CVector::basis_state(4, 1), TOL));
    }

    #[test]
    fn ccx_truth_table() {
        let ccx = Gate::Ccx.matrix();
        let out = ccx.mul_vec(&CVector::basis_state(8, 6)); // |110⟩
        assert!(out.approx_eq(&CVector::basis_state(8, 7), TOL));
        let out = ccx.mul_vec(&CVector::basis_state(8, 4)); // |100⟩ fixed
        assert!(out.approx_eq(&CVector::basis_state(8, 4), TOL));
    }

    #[test]
    fn swap_exchanges_qubits() {
        let sw = Gate::Swap.matrix();
        let out = sw.mul_vec(&CVector::basis_state(4, 1)); // |01⟩ → |10⟩
        assert!(out.approx_eq(&CVector::basis_state(4, 2), TOL));
    }

    #[test]
    fn unitary_gate_validation() {
        assert!(Gate::unitary(CMatrix::identity(4), "ok").is_ok());
        let bad = CMatrix::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        assert!(matches!(
            Gate::unitary(bad, "bad"),
            Err(crate::CircuitError::NotUnitary { .. })
        ));
        let not_pow2 = CMatrix::identity(3);
        assert!(Gate::unitary(not_pow2, "dim").is_err());
    }

    #[test]
    fn embed_on_full_register() {
        let h = Gate::H.matrix();
        let full = embed(&h, &[0], 1);
        assert!(full.approx_eq(&h, TOL));
    }

    #[test]
    fn embed_respects_big_endian_order() {
        // X on qubit 0 of 2: flips most significant bit.
        let x0 = embed(&Gate::X.matrix(), &[0], 2);
        let out = x0.mul_vec(&CVector::basis_state(4, 0));
        assert!(out.approx_eq(&CVector::basis_state(4, 2), TOL));
        // X on qubit 1 of 2: flips least significant bit.
        let x1 = embed(&Gate::X.matrix(), &[1], 2);
        let out = x1.mul_vec(&CVector::basis_state(4, 0));
        assert!(out.approx_eq(&CVector::basis_state(4, 1), TOL));
    }

    #[test]
    fn embed_cx_reversed_qubits() {
        // CX with control=qubit1, target=qubit0 on a 2-qubit system.
        let cx = embed(&Gate::Cx.matrix(), &[1, 0], 2);
        let out = cx.mul_vec(&CVector::basis_state(4, 1)); // |01⟩: control set
        assert!(out.approx_eq(&CVector::basis_state(4, 3), TOL));
    }

    #[test]
    fn embed_matches_kron_for_adjacent_gates() {
        let h = Gate::H.matrix();
        let id = CMatrix::identity(2);
        let lhs = embed(&h, &[0], 2);
        let rhs = h.kron(&id);
        assert!(lhs.approx_eq(&rhs, TOL));
        let lhs = embed(&h, &[1], 2);
        let rhs = id.kron(&h);
        assert!(lhs.approx_eq(&rhs, TOL));
    }

    #[test]
    #[should_panic]
    fn embed_rejects_duplicates() {
        let _ = embed(&Gate::Cx.matrix(), &[0, 0], 2);
    }

    #[test]
    fn names_and_arities() {
        assert_eq!(Gate::Cx.name(), "cx");
        assert_eq!(Gate::Cx.num_qubits(), 2);
        assert_eq!(Gate::Ccx.num_qubits(), 3);
        assert_eq!(Gate::U3(0.0, 0.0, 0.0).num_qubits(), 1);
        let u = Gate::unitary(CMatrix::identity(8), "u8").unwrap();
        assert_eq!(u.num_qubits(), 3);
    }

    #[test]
    fn entangler_classification() {
        assert!(Gate::Cx.is_two_qubit_entangler());
        assert!(Gate::Cz.is_two_qubit_entangler());
        assert!(!Gate::H.is_two_qubit_entangler());
        assert!(!Gate::Swap.is_two_qubit_entangler()); // lowered to 3 CX in cost
        assert!(!Gate::Ccx.is_two_qubit_entangler());
    }

    #[test]
    fn display_contains_name() {
        assert!(format!("{}", Gate::Rz(1.0)).starts_with("rz"));
        assert!(format!("{}", Gate::Cu3(1.0, 2.0, 3.0)).starts_with("cu3"));
    }
}
