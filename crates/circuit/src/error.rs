//! Error types for circuit construction and synthesis.

use qra_math::MathError;
use std::error::Error;
use std::fmt;

/// Error produced when building, composing or synthesising circuits.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A qubit index was out of range for the circuit.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// Number of qubits in the circuit.
        num_qubits: usize,
    },
    /// A classical bit index was out of range for the circuit.
    ClbitOutOfRange {
        /// The offending classical bit index.
        clbit: usize,
        /// Number of classical bits in the circuit.
        num_clbits: usize,
    },
    /// The same qubit was supplied twice to a multi-qubit gate.
    DuplicateQubit {
        /// The duplicated qubit index.
        qubit: usize,
    },
    /// A gate was applied to the wrong number of qubits.
    ArityMismatch {
        /// The gate's name.
        gate: String,
        /// Number of qubits the gate acts on.
        expected: usize,
        /// Number of qubits supplied.
        actual: usize,
    },
    /// A matrix supplied as a gate was not unitary.
    NotUnitary {
        /// Deviation of `U†U` from the identity.
        deviation: f64,
    },
    /// The circuit contains a non-unitary operation (measure/reset) where a
    /// purely unitary circuit is required.
    NonUnitaryOperation {
        /// Name of the offending operation.
        operation: &'static str,
    },
    /// Circuit is too wide for a dense-matrix operation.
    TooManyQubits {
        /// Number of qubits requested.
        num_qubits: usize,
        /// Maximum supported for this operation.
        max: usize,
    },
    /// An underlying numerical operation failed.
    Math(MathError),
    /// Synthesis could not handle the requested object.
    Synthesis {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit circuit"
                )
            }
            CircuitError::ClbitOutOfRange { clbit, num_clbits } => {
                write!(
                    f,
                    "clbit {clbit} out of range for {num_clbits} classical bits"
                )
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "qubit {qubit} supplied more than once to a gate")
            }
            CircuitError::ArityMismatch {
                gate,
                expected,
                actual,
            } => write!(f, "gate {gate} acts on {expected} qubits, got {actual}"),
            CircuitError::NotUnitary { deviation } => {
                write!(f, "matrix is not unitary (deviation {deviation:.3e})")
            }
            CircuitError::NonUnitaryOperation { operation } => {
                write!(f, "operation {operation} is not unitary")
            }
            CircuitError::TooManyQubits { num_qubits, max } => {
                write!(
                    f,
                    "{num_qubits} qubits exceeds the limit of {max} for this operation"
                )
            }
            CircuitError::Math(e) => write!(f, "numerical error: {e}"),
            CircuitError::Synthesis { reason } => write!(f, "synthesis failed: {reason}"),
        }
    }
}

impl Error for CircuitError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CircuitError::Math(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MathError> for CircuitError {
    fn from(e: MathError) -> Self {
        CircuitError::Math(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs: Vec<CircuitError> = vec![
            CircuitError::QubitOutOfRange {
                qubit: 7,
                num_qubits: 3,
            },
            CircuitError::ClbitOutOfRange {
                clbit: 7,
                num_clbits: 3,
            },
            CircuitError::DuplicateQubit { qubit: 1 },
            CircuitError::ArityMismatch {
                gate: "cx".into(),
                expected: 2,
                actual: 3,
            },
            CircuitError::NotUnitary { deviation: 0.1 },
            CircuitError::NonUnitaryOperation {
                operation: "measure",
            },
            CircuitError::TooManyQubits {
                num_qubits: 30,
                max: 20,
            },
            CircuitError::Math(MathError::LinearlyDependent),
            CircuitError::Synthesis {
                reason: "example".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn from_math_error_preserves_source() {
        let e = CircuitError::from(MathError::LinearlyDependent);
        assert!(e.source().is_some());
    }
}
