//! Gate-cost accounting in the paper's metric.
//!
//! The paper's Tables I and III report four metrics per assertion circuit:
//! `#CX` (two-qubit entangling gates, with CZ counted the same as CX),
//! `#SG` (single-qubit gates), `#ancilla` and `#measure`. [`GateCounts`]
//! computes the first two by lowering every instruction to the
//! `{1-qubit, CX/CZ}` basis:
//!
//! * 1-qubit gates count one SG each (identity counts zero);
//! * CX / CY / CZ / CH count one CX-equivalent (they are all Clifford
//!   entanglers — the paper counts the CZ chains of its NDD circuits as
//!   "CNOT gates");
//! * controlled rotations lower to the standard 2-CX ABC decomposition;
//! * SWAP lowers to 3 CX; Toffoli to the standard 6-CX network; CCZ and
//!   CSWAP via Toffoli;
//! * opaque `Unitary` gates are synthesised with
//!   [`crate::synthesis::unitary_circuit`] and counted recursively.

use crate::synthesis::unitary_circuit;
use crate::{Circuit, CircuitError, Gate, Operation};
use std::fmt;
use std::ops::Add;

/// The paper's circuit-cost quadruple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GateCounts {
    /// Two-qubit entangling gates (CX-equivalents; CZ counts as 1).
    pub cx: usize,
    /// Single-qubit gates.
    pub sg: usize,
    /// Ancilla qubits used by the (assertion) circuit.
    pub ancilla: usize,
    /// Measurements.
    pub measure: usize,
}

impl GateCounts {
    /// Counts the gates of `circuit` after lowering to the CX basis.
    ///
    /// # Errors
    ///
    /// Returns a [`CircuitError`] when an opaque unitary fails to
    /// synthesise (non-power-of-two dimensions cannot occur for validated
    /// gates).
    pub fn of(circuit: &Circuit) -> Result<GateCounts, CircuitError> {
        let mut counts = GateCounts::default();
        for inst in circuit.instructions() {
            match &inst.operation {
                Operation::Measure => counts.measure += 1,
                Operation::Reset | Operation::Barrier => {}
                Operation::Gate(g) => {
                    let (cx, sg) = gate_cost(g)?;
                    counts.cx += cx;
                    counts.sg += sg;
                }
            }
        }
        Ok(counts)
    }

    /// Sets the ancilla count (builder-style helper for assertion
    /// constructors that know their ancilla usage).
    pub fn with_ancilla(mut self, ancilla: usize) -> Self {
        self.ancilla = ancilla;
        self
    }
}

impl Add for GateCounts {
    type Output = GateCounts;
    fn add(self, rhs: GateCounts) -> GateCounts {
        GateCounts {
            cx: self.cx + rhs.cx,
            sg: self.sg + rhs.sg,
            ancilla: self.ancilla + rhs.ancilla,
            measure: self.measure + rhs.measure,
        }
    }
}

impl fmt::Display for GateCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#CX={} #SG={} #ancilla={} #measure={}",
            self.cx, self.sg, self.ancilla, self.measure
        )
    }
}

/// Cost `(cx, sg)` of a single gate in the lowered basis.
fn gate_cost(g: &Gate) -> Result<(usize, usize), CircuitError> {
    Ok(match g {
        Gate::I => (0, 0),
        // Plain single-qubit gates.
        Gate::X
        | Gate::Y
        | Gate::Z
        | Gate::H
        | Gate::S
        | Gate::Sdg
        | Gate::T
        | Gate::Tdg
        | Gate::Sx
        | Gate::Sxdg
        | Gate::Rx(_)
        | Gate::Ry(_)
        | Gate::Rz(_)
        | Gate::Phase(_)
        | Gate::U2(_, _)
        | Gate::U3(_, _, _) => (0, 1),
        // Clifford entanglers count one CX-equivalent.
        Gate::Cx | Gate::Cy | Gate::Cz | Gate::Ch => (1, 0),
        // SWAP = 3 CX.
        Gate::Swap => (3, 0),
        // Controlled rotations: ABC decomposition = 2 CX + rotations.
        Gate::Crx(_) | Gate::Cry(_) | Gate::Crz(_) => (2, 2),
        Gate::Cp(_) => (2, 3),
        Gate::Cu3(_, _, _) => (2, 3),
        // Toffoli network: 6 CX, 2 H + 7 T-layer single-qubit gates.
        Gate::Ccx => (6, 9),
        Gate::Ccz => (6, 8),
        // CSWAP = CX + CCX + CX.
        Gate::Cswap => (8, 9),
        Gate::Unitary(m, _) => {
            if m.rows() == 2 {
                (0, 1)
            } else {
                let synth = unitary_circuit(m)?;
                let c = GateCounts::of(&synth)?;
                (c.cx, c.sg)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_simple_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2);
        let counts = GateCounts::of(&c).unwrap();
        assert_eq!(counts.cx, 2);
        assert_eq!(counts.sg, 2);
        assert_eq!(counts.measure, 0);
    }

    #[test]
    fn cz_counts_as_one_cx() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(0, 1);
        let counts = GateCounts::of(&c).unwrap();
        assert_eq!(counts.cx, 2);
        assert_eq!(counts.sg, 0);
    }

    #[test]
    fn swap_counts_three() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert_eq!(GateCounts::of(&c).unwrap().cx, 3);
    }

    #[test]
    fn toffoli_counts_six() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let counts = GateCounts::of(&c).unwrap();
        assert_eq!(counts.cx, 6);
        assert!(counts.sg >= 7);
    }

    #[test]
    fn controlled_rotation_counts_two() {
        let mut c = Circuit::new(2);
        c.crz(0.4, 0, 1).cp(0.2, 0, 1).cu3(0.1, 0.2, 0.3, 0, 1);
        let counts = GateCounts::of(&c).unwrap();
        assert_eq!(counts.cx, 6);
    }

    #[test]
    fn measures_counted() {
        let mut c = Circuit::with_clbits(2, 2);
        c.h(0);
        c.measure(0, 0).unwrap();
        c.measure(1, 1).unwrap();
        let counts = GateCounts::of(&c).unwrap();
        assert_eq!(counts.measure, 2);
        assert_eq!(counts.sg, 1);
    }

    #[test]
    fn identity_and_barrier_free() {
        let mut c = Circuit::new(1);
        c.append(Gate::I, &[0]).unwrap();
        c.barrier();
        let counts = GateCounts::of(&c).unwrap();
        assert_eq!(counts, GateCounts::default());
    }

    #[test]
    fn opaque_unitary_is_synthesized() {
        let mut c = Circuit::new(2);
        c.unitary(Gate::Cx.matrix(), &[0, 1], "mystery").unwrap();
        let counts = GateCounts::of(&c).unwrap();
        assert!(counts.cx >= 1, "synthesised CX must appear in counts");
    }

    #[test]
    fn opaque_1q_unitary_counts_one_sg() {
        let mut c = Circuit::new(1);
        c.unitary(Gate::H.matrix(), &[0], "h-ish").unwrap();
        let counts = GateCounts::of(&c).unwrap();
        assert_eq!(
            counts,
            GateCounts {
                cx: 0,
                sg: 1,
                ancilla: 0,
                measure: 0
            }
        );
    }

    #[test]
    fn add_and_with_ancilla() {
        let a = GateCounts {
            cx: 1,
            sg: 2,
            ancilla: 0,
            measure: 1,
        };
        let b = GateCounts {
            cx: 3,
            sg: 0,
            ancilla: 1,
            measure: 0,
        };
        let s = a + b;
        assert_eq!(s.cx, 4);
        assert_eq!(s.sg, 2);
        assert_eq!(s.ancilla, 1);
        assert_eq!(s.measure, 1);
        assert_eq!(s.with_ancilla(5).ancilla, 5);
    }

    #[test]
    fn display_mentions_all_fields() {
        let s = format!("{}", GateCounts::default());
        for key in ["#CX", "#SG", "#ancilla", "#measure"] {
            assert!(s.contains(key));
        }
    }
}
