//! The [`Circuit`] builder and its unitary/state-vector semantics.

use crate::{
    gate::{self, Gate},
    instruction::{Instruction, Operation},
    register::{ClassicalRegister, QuantumRegister},
    CircuitError,
};
use qra_math::{CMatrix, CVector, C64};
use std::fmt;

/// Maximum width for dense whole-circuit unitary construction.
const MAX_DENSE_QUBITS: usize = 12;

/// A quantum circuit: an ordered list of [`Instruction`]s over `n` qubits
/// and `m` classical bits.
///
/// Builder methods (`h`, `cx`, …) return `&mut Self` for chaining and
/// validate qubit indices eagerly, panicking on misuse like an index out of
/// range (matching the fail-fast semantics of Qiskit's Python API). The
/// fallible [`Circuit::append`] is available where a `Result` is preferred.
///
/// ```rust
/// use qra_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1);
/// let sv = bell.statevector()?;
/// assert!((sv.probability(0b00) - 0.5).abs() < 1e-12);
/// assert!((sv.probability(0b11) - 0.5).abs() < 1e-12);
/// # Ok::<(), qra_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    num_clbits: usize,
    instructions: Vec<Instruction>,
    qregs: Vec<QuantumRegister>,
    cregs: Vec<ClassicalRegister>,
}

impl Circuit {
    /// Creates a circuit over `num_qubits` qubits and no classical bits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            ..Self::default()
        }
    }

    /// Creates a circuit over `num_qubits` qubits and `num_clbits`
    /// classical bits.
    pub fn with_clbits(num_qubits: usize, num_clbits: usize) -> Self {
        Self {
            num_qubits,
            num_clbits,
            ..Self::default()
        }
    }

    /// Appends a named quantum register of `size` qubits and returns it.
    pub fn add_quantum_register(
        &mut self,
        name: impl Into<String>,
        size: usize,
    ) -> QuantumRegister {
        let reg = QuantumRegister::new(name, self.num_qubits, size);
        self.num_qubits += size;
        self.qregs.push(reg.clone());
        reg
    }

    /// Appends a named classical register of `size` bits and returns it.
    pub fn add_classical_register(
        &mut self,
        name: impl Into<String>,
        size: usize,
    ) -> ClassicalRegister {
        let reg = ClassicalRegister::new(name, self.num_clbits, size);
        self.num_clbits += size;
        self.cregs.push(reg.clone());
        reg
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of classical bits.
    pub fn num_clbits(&self) -> usize {
        self.num_clbits
    }

    /// The instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` when the circuit has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The declared quantum registers.
    pub fn quantum_registers(&self) -> &[QuantumRegister] {
        &self.qregs
    }

    /// The declared classical registers.
    pub fn classical_registers(&self) -> &[ClassicalRegister] {
        &self.cregs
    }

    /// Grows the circuit to at least `n` qubits (no-op if already wider).
    pub fn expand_qubits(&mut self, n: usize) {
        self.num_qubits = self.num_qubits.max(n);
    }

    /// Grows the circuit to at least `n` classical bits.
    pub fn expand_clbits(&mut self, n: usize) {
        self.num_clbits = self.num_clbits.max(n);
    }

    fn validate_qubits(
        &self,
        gate_name: &str,
        arity: usize,
        qubits: &[usize],
    ) -> Result<(), CircuitError> {
        if qubits.len() != arity {
            return Err(CircuitError::ArityMismatch {
                gate: gate_name.to_string(),
                expected: arity,
                actual: qubits.len(),
            });
        }
        for (i, &q) in qubits.iter().enumerate() {
            if q >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
            if qubits[..i].contains(&q) {
                return Err(CircuitError::DuplicateQubit { qubit: q });
            }
        }
        Ok(())
    }

    /// Appends `gate` on `qubits`, validating arity and indices.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ArityMismatch`],
    /// [`CircuitError::QubitOutOfRange`] or [`CircuitError::DuplicateQubit`]
    /// on invalid input.
    pub fn append(&mut self, gate: Gate, qubits: &[usize]) -> Result<&mut Self, CircuitError> {
        self.validate_qubits(gate.name(), gate.num_qubits(), qubits)?;
        self.instructions
            .push(Instruction::gate(gate, qubits.to_vec()));
        Ok(self)
    }

    fn push_gate(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.append(gate, qubits).expect("invalid gate application");
        self
    }

    /// Applies a Hadamard to `q`.
    ///
    /// # Panics
    ///
    /// All single-letter builder methods panic on invalid qubit indices.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::H, &[q])
    }

    /// Applies Pauli-X to `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::X, &[q])
    }

    /// Applies Pauli-Y to `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Y, &[q])
    }

    /// Applies Pauli-Z to `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Z, &[q])
    }

    /// Applies the S gate to `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::S, &[q])
    }

    /// Applies S† to `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Sdg, &[q])
    }

    /// Applies the T gate to `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::T, &[q])
    }

    /// Applies T† to `q`.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push_gate(Gate::Tdg, &[q])
    }

    /// Applies Rx(θ) to `q`.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::Rx(theta), &[q])
    }

    /// Applies Ry(θ) to `q`.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::Ry(theta), &[q])
    }

    /// Applies Rz(θ) to `q`.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::Rz(theta), &[q])
    }

    /// Applies the phase gate P(λ) to `q`.
    pub fn p(&mut self, lambda: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::Phase(lambda), &[q])
    }

    /// Applies U2(φ, λ) to `q`.
    pub fn u2(&mut self, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::U2(phi, lambda), &[q])
    }

    /// Applies U3(θ, φ, λ) to `q`.
    pub fn u3(&mut self, theta: f64, phi: f64, lambda: f64, q: usize) -> &mut Self {
        self.push_gate(Gate::U3(theta, phi, lambda), &[q])
    }

    /// Applies CNOT with `control` and `target`.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::Cx, &[control, target])
    }

    /// Applies controlled-Y.
    pub fn cy(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::Cy, &[control, target])
    }

    /// Applies controlled-Z.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::Cz, &[control, target])
    }

    /// Applies controlled-H.
    pub fn ch(&mut self, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::Ch, &[control, target])
    }

    /// Applies SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push_gate(Gate::Swap, &[a, b])
    }

    /// Applies controlled phase CP(λ).
    pub fn cp(&mut self, lambda: f64, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::Cp(lambda), &[control, target])
    }

    /// Applies controlled Rz.
    pub fn crz(&mut self, theta: f64, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::Crz(theta), &[control, target])
    }

    /// Applies controlled Ry.
    pub fn cry(&mut self, theta: f64, control: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::Cry(theta), &[control, target])
    }

    /// Applies controlled U3.
    pub fn cu3(
        &mut self,
        theta: f64,
        phi: f64,
        lambda: f64,
        control: usize,
        target: usize,
    ) -> &mut Self {
        self.push_gate(Gate::Cu3(theta, phi, lambda), &[control, target])
    }

    /// Applies the Toffoli gate.
    pub fn ccx(&mut self, c0: usize, c1: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::Ccx, &[c0, c1, target])
    }

    /// Applies the doubly-controlled Z gate.
    pub fn ccz(&mut self, c0: usize, c1: usize, target: usize) -> &mut Self {
        self.push_gate(Gate::Ccz, &[c0, c1, target])
    }

    /// Applies an arbitrary unitary gate on `qubits`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotUnitary`] for non-unitary matrices and the
    /// usual index errors.
    pub fn unitary(
        &mut self,
        matrix: CMatrix,
        qubits: &[usize],
        label: impl Into<String>,
    ) -> Result<&mut Self, CircuitError> {
        let g = Gate::unitary(matrix, label)?;
        self.append(g, qubits)
    }

    /// Measures `qubit` into classical bit `clbit`.
    ///
    /// # Errors
    ///
    /// Returns index errors for out-of-range qubit/clbit.
    pub fn measure(&mut self, qubit: usize, clbit: usize) -> Result<&mut Self, CircuitError> {
        if qubit >= self.num_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit,
                num_qubits: self.num_qubits,
            });
        }
        if clbit >= self.num_clbits {
            return Err(CircuitError::ClbitOutOfRange {
                clbit,
                num_clbits: self.num_clbits,
            });
        }
        self.instructions.push(Instruction::measure(qubit, clbit));
        Ok(self)
    }

    /// Measures every qubit `i` into classical bit `i`, growing the
    /// classical register as needed.
    pub fn measure_all(&mut self) -> &mut Self {
        self.expand_clbits(self.num_qubits);
        for q in 0..self.num_qubits {
            self.instructions.push(Instruction::measure(q, q));
        }
        self
    }

    /// Resets `qubit` to `|0⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] when out of range.
    pub fn reset(&mut self, qubit: usize) -> Result<&mut Self, CircuitError> {
        if qubit >= self.num_qubits {
            return Err(CircuitError::QubitOutOfRange {
                qubit,
                num_qubits: self.num_qubits,
            });
        }
        self.instructions.push(Instruction::reset(qubit));
        Ok(self)
    }

    /// Adds a barrier over all qubits.
    pub fn barrier(&mut self) -> &mut Self {
        let qs: Vec<usize> = (0..self.num_qubits).collect();
        self.instructions.push(Instruction::barrier(qs));
        self
    }

    /// Adds a barrier over a specific set of qubits.
    pub fn barrier_on(&mut self, qubits: Vec<usize>) -> &mut Self {
        self.instructions.push(Instruction::barrier(qubits));
        self
    }

    /// Appends every instruction of `other`, mapping its qubit `i` to
    /// `qubit_map[i]` and its clbit `j` to `clbit_map[j]`.
    ///
    /// # Errors
    ///
    /// Returns index errors when a mapped index is out of range, or
    /// [`CircuitError::ArityMismatch`] when a map is too short.
    pub fn compose(
        &mut self,
        other: &Circuit,
        qubit_map: &[usize],
        clbit_map: &[usize],
    ) -> Result<&mut Self, CircuitError> {
        if qubit_map.len() < other.num_qubits {
            return Err(CircuitError::ArityMismatch {
                gate: "compose(qubit_map)".into(),
                expected: other.num_qubits,
                actual: qubit_map.len(),
            });
        }
        if clbit_map.len() < other.num_clbits {
            return Err(CircuitError::ArityMismatch {
                gate: "compose(clbit_map)".into(),
                expected: other.num_clbits,
                actual: clbit_map.len(),
            });
        }
        for inst in &other.instructions {
            let qubits: Vec<usize> = inst.qubits.iter().map(|&q| qubit_map[q]).collect();
            let clbits: Vec<usize> = inst.clbits.iter().map(|&c| clbit_map[c]).collect();
            match &inst.operation {
                Operation::Gate(g) => {
                    self.append(g.clone(), &qubits)?;
                }
                Operation::Measure => {
                    self.measure(qubits[0], clbits[0])?;
                }
                Operation::Reset => {
                    self.reset(qubits[0])?;
                }
                Operation::Barrier => {
                    self.instructions.push(Instruction::barrier(qubits));
                }
            }
        }
        Ok(self)
    }

    /// The inverse circuit (gates reversed and inverted).
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NonUnitaryOperation`] if the circuit contains
    /// measurements or resets.
    pub fn inverse(&self) -> Result<Circuit, CircuitError> {
        let mut inv = Circuit::with_clbits(self.num_qubits, self.num_clbits);
        inv.qregs = self.qregs.clone();
        inv.cregs = self.cregs.clone();
        for inst in self.instructions.iter().rev() {
            match &inst.operation {
                Operation::Gate(g) => {
                    inv.instructions
                        .push(Instruction::gate(g.inverse(), inst.qubits.clone()));
                }
                Operation::Barrier => {
                    inv.instructions
                        .push(Instruction::barrier(inst.qubits.clone()));
                }
                Operation::Measure => {
                    return Err(CircuitError::NonUnitaryOperation {
                        operation: "measure",
                    })
                }
                Operation::Reset => {
                    return Err(CircuitError::NonUnitaryOperation { operation: "reset" })
                }
            }
        }
        Ok(inv)
    }

    /// Computes the full `2ⁿ × 2ⁿ` unitary of the circuit.
    ///
    /// # Errors
    ///
    /// * [`CircuitError::NonUnitaryOperation`] when the circuit contains
    ///   measurements or resets;
    /// * [`CircuitError::TooManyQubits`] beyond 12 qubits (4096² dense
    ///   matrix) — use the simulator crate for wider circuits.
    pub fn unitary_matrix(&self) -> Result<CMatrix, CircuitError> {
        if self.num_qubits > MAX_DENSE_QUBITS {
            return Err(CircuitError::TooManyQubits {
                num_qubits: self.num_qubits,
                max: MAX_DENSE_QUBITS,
            });
        }
        let dim = 1usize << self.num_qubits;
        let mut acc = CMatrix::identity(dim);
        for inst in &self.instructions {
            match &inst.operation {
                Operation::Gate(g) => {
                    let full = gate::embed(&g.matrix(), &inst.qubits, self.num_qubits);
                    acc = full.mul(&acc)?;
                }
                Operation::Barrier => {}
                Operation::Measure => {
                    return Err(CircuitError::NonUnitaryOperation {
                        operation: "measure",
                    })
                }
                Operation::Reset => {
                    return Err(CircuitError::NonUnitaryOperation { operation: "reset" })
                }
            }
        }
        Ok(acc)
    }

    /// Applies the circuit's gates to `|0…0⟩` and returns the resulting
    /// state vector (measurements are rejected; use the simulator crate for
    /// sampling semantics).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Circuit::unitary_matrix`], minus the width limit
    /// (state vectors scale as `2ⁿ`, not `4ⁿ`).
    pub fn statevector(&self) -> Result<CVector, CircuitError> {
        let dim = 1usize << self.num_qubits;
        let mut state = CVector::basis_state(dim, 0);
        let mut scratch = Vec::new();
        for inst in &self.instructions {
            match &inst.operation {
                Operation::Gate(g) => {
                    crate::kernel::Kernel::for_gate(g, &inst.qubits, self.num_qubits)
                        .apply(state.as_mut_slice(), &mut scratch);
                }
                Operation::Barrier => {}
                Operation::Measure => {
                    return Err(CircuitError::NonUnitaryOperation {
                        operation: "measure",
                    })
                }
                Operation::Reset => {
                    return Err(CircuitError::NonUnitaryOperation { operation: "reset" })
                }
            }
        }
        Ok(state)
    }

    /// Counts instructions that are gates (excludes measure/reset/barrier).
    pub fn gate_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i.operation, Operation::Gate(_)))
            .count()
    }

    /// Counts measurement instructions.
    pub fn measure_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| matches!(i.operation, Operation::Measure))
            .count()
    }

    /// The circuit depth: the longest chain of instructions sharing qubits
    /// (barriers are transparent, measurements and resets count one layer).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut max = 0;
        for inst in &self.instructions {
            if matches!(inst.operation, Operation::Barrier) {
                continue;
            }
            let layer = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &inst.qubits {
                level[q] = layer;
            }
            max = max.max(layer);
        }
        max
    }

    /// The depth counting only multi-qubit gates (the entangling depth, a
    /// common hardware-oriented metric).
    pub fn two_qubit_depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut max = 0;
        for inst in &self.instructions {
            let Operation::Gate(_) = inst.operation else {
                continue;
            };
            if inst.qubits.len() < 2 {
                continue;
            }
            let layer = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &inst.qubits {
                level[q] = layer;
            }
            max = max.max(layer);
        }
        max
    }

    /// Histogram of operation names (`{"h": 2, "cx": 3, "measure": 1}`).
    pub fn count_ops(&self) -> std::collections::BTreeMap<String, usize> {
        let mut map = std::collections::BTreeMap::new();
        for inst in &self.instructions {
            *map.entry(inst.operation.name().to_string()).or_insert(0) += 1;
        }
        map
    }
}

/// Applies a `k`-qubit gate matrix to `state` in place, on `qubits` (gate
/// order), big-endian convention. This is the work-horse used by both the
/// circuit evaluator and the state-vector simulator.
///
/// # Panics
///
/// Panics on dimension mismatch or invalid qubit indices.
pub fn apply_gate_inplace(state: &mut CVector, matrix: &CMatrix, qubits: &[usize], n: usize) {
    let k = qubits.len();
    let sub_dim = 1usize << k;
    assert_eq!(matrix.rows(), sub_dim, "gate dimension mismatch");
    assert_eq!(state.len(), 1usize << n, "state dimension mismatch");

    // Bit positions (from the most significant end) of each gate qubit.
    let shifts: Vec<usize> = qubits.iter().map(|&q| n - 1 - q).collect();
    let gate_mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
    let dim = state.len();

    let mut scratch = vec![C64::zero(); sub_dim];
    let mut base = 0usize;
    loop {
        // `base` iterates over all indices with zero bits at gate positions.
        // Gather amplitudes of the 2^k sub-block.
        for (s, slot) in scratch.iter_mut().enumerate() {
            let mut idx = base;
            for (pos, &sh) in shifts.iter().enumerate() {
                if (s >> (k - 1 - pos)) & 1 == 1 {
                    idx |= 1 << sh;
                }
            }
            *slot = state.amplitude(idx);
        }
        // Apply the gate to the sub-block.
        for (r, row) in (0..sub_dim).map(|r| (r, r)) {
            let mut acc = C64::zero();
            for (c, &amp) in scratch.iter().enumerate() {
                acc += matrix.get(row, c) * amp;
            }
            let mut idx = base;
            for (pos, &sh) in shifts.iter().enumerate() {
                if (r >> (k - 1 - pos)) & 1 == 1 {
                    idx |= 1 << sh;
                }
            }
            state[idx] = acc;
        }
        // Advance `base` to the next index with zeros at the gate positions
        // (add 1 in the complement mask arithmetic).
        base = (base | gate_mask).wrapping_add(1) & !gate_mask;
        if base == 0 || base >= dim {
            break;
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit({} qubits, {} clbits, {} instructions)",
            self.num_qubits,
            self.num_clbits,
            self.instructions.len()
        )?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn bell_state_vector() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = c.statevector().unwrap();
        let s = 0.5f64.sqrt();
        let expect = CVector::from_real(&[s, 0.0, 0.0, s]);
        assert!(sv.approx_eq(&expect, TOL));
    }

    #[test]
    fn ghz_matches_paper_fig2() {
        let mut c = Circuit::new(3);
        c.u2(0.0, std::f64::consts::PI, 0).cx(0, 1).cx(1, 2);
        let sv = c.statevector().unwrap();
        assert!((sv.probability(0) - 0.5).abs() < TOL);
        assert!((sv.probability(7) - 0.5).abs() < TOL);
    }

    #[test]
    fn ghz_bug1_flips_sign() {
        // Paper §III Bug1: u2(π, 0) instead of u2(0, π).
        let mut c = Circuit::new(3);
        c.u2(std::f64::consts::PI, 0.0, 0).cx(0, 1).cx(1, 2);
        let sv = c.statevector().unwrap();
        // Output is (|000⟩ − |111⟩)/√2 up to global phase.
        let s = 0.5f64.sqrt();
        let mut expect = CVector::zeros(8);
        expect[0] = C64::from(s);
        expect[7] = C64::from(-s);
        assert!(sv.approx_eq_up_to_phase(&expect, TOL));
    }

    #[test]
    fn ghz_bug2_wrong_entanglement() {
        // Paper §III Bug2: lines 2 and 3 reordered — cx(1,2) before cx(0,1).
        // The paper prints |011⟩ in Qiskit's little-endian ket convention,
        // which is |110⟩ in our big-endian indexing (qubits 0 and 1 set).
        let mut c = Circuit::new(3);
        c.h(0).cx(1, 2).cx(0, 1);
        let sv = c.statevector().unwrap();
        let s = 0.5f64.sqrt();
        let mut expect = CVector::zeros(8);
        expect[0] = C64::from(s);
        expect[0b110] = C64::from(s);
        assert!(sv.approx_eq_up_to_phase(&expect, TOL));
    }

    #[test]
    fn unitary_matrix_of_bell_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let u = c.unitary_matrix().unwrap();
        assert!(u.is_unitary(TOL));
        let sv = u.mul_vec(&CVector::basis_state(4, 0));
        assert!(sv.approx_eq(&c.statevector().unwrap(), TOL));
    }

    #[test]
    fn inverse_undoes_circuit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .rz(0.7, 2)
            .cu3(0.3, 0.2, 0.1, 1, 2)
            .t(0)
            .swap(0, 2);
        let mut all = c.clone();
        let inv = c.inverse().unwrap();
        let map: Vec<usize> = (0..3).collect();
        all.compose(&inv, &map, &[]).unwrap();
        let sv = all.statevector().unwrap();
        assert!(sv.approx_eq(&CVector::basis_state(8, 0), TOL));
    }

    #[test]
    fn compose_maps_qubits() {
        let mut inner = Circuit::new(2);
        inner.cx(0, 1);
        let mut outer = Circuit::new(3);
        outer.x(2);
        outer.compose(&inner, &[2, 0], &[]).unwrap();
        // CX control=2, target=0 after X on 2: |001⟩ → |101⟩.
        let sv = outer.statevector().unwrap();
        assert!(sv.approx_eq(&CVector::basis_state(8, 0b101), TOL));
    }

    #[test]
    fn compose_rejects_short_map() {
        let inner = Circuit::new(2);
        let mut outer = Circuit::new(3);
        assert!(outer.compose(&inner, &[0], &[]).is_err());
    }

    #[test]
    fn registers_allocate_contiguously() {
        let mut c = Circuit::new(0);
        let qr = c.add_quantum_register("qr", 4);
        let ar = c.add_quantum_register("ar", 1);
        let cr = c.add_classical_register("cr", 4);
        assert_eq!(c.num_qubits(), 5);
        assert_eq!(c.num_clbits(), 4);
        assert_eq!(qr.index(0), 0);
        assert_eq!(ar.index(0), 4);
        assert_eq!(cr.index(3), 3);
        assert_eq!(c.quantum_registers().len(), 2);
        assert_eq!(c.classical_registers().len(), 1);
    }

    #[test]
    fn append_validates() {
        let mut c = Circuit::new(2);
        assert!(c.append(Gate::Cx, &[0, 5]).is_err());
        assert!(c.append(Gate::Cx, &[1, 1]).is_err());
        assert!(c.append(Gate::Cx, &[0]).is_err());
        assert!(c.append(Gate::Cx, &[0, 1]).is_ok());
    }

    #[test]
    #[should_panic]
    fn builder_panics_on_bad_index() {
        let mut c = Circuit::new(1);
        c.cx(0, 1);
    }

    #[test]
    fn measure_validation_and_counts() {
        let mut c = Circuit::with_clbits(2, 1);
        assert!(c.measure(0, 0).is_ok());
        assert!(c.measure(0, 1).is_err());
        assert!(c.measure(2, 0).is_err());
        assert_eq!(c.measure_count(), 1);
        assert_eq!(c.gate_count(), 0);
    }

    #[test]
    fn measure_all_expands_clbits() {
        let mut c = Circuit::new(3);
        c.h(0).measure_all();
        assert_eq!(c.num_clbits(), 3);
        assert_eq!(c.measure_count(), 3);
    }

    #[test]
    fn statevector_rejects_measurement() {
        let mut c = Circuit::with_clbits(1, 1);
        c.h(0);
        c.measure(0, 0).unwrap();
        assert!(matches!(
            c.statevector(),
            Err(CircuitError::NonUnitaryOperation { .. })
        ));
        assert!(c.unitary_matrix().is_err());
        assert!(c.inverse().is_err());
    }

    #[test]
    fn barrier_is_identity_semantics() {
        let mut a = Circuit::new(2);
        a.h(0).barrier().cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1);
        assert!(a
            .statevector()
            .unwrap()
            .approx_eq(&b.statevector().unwrap(), TOL));
    }

    #[test]
    fn apply_gate_inplace_matches_embed() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let n = 4;
            let dim = 1 << n;
            // Random normalized state.
            let raw: Vec<C64> = (0..dim)
                .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                .collect();
            let state = CVector::new(raw).normalized().unwrap();
            // Random 2-qubit gate position (distinct qubits).
            let q0 = rng.gen_range(0..n);
            let mut q1 = rng.gen_range(0..n);
            while q1 == q0 {
                q1 = rng.gen_range(0..n);
            }
            let g = Gate::Cu3(
                rng.gen_range(0.0..3.0),
                rng.gen_range(0.0..3.0),
                rng.gen_range(0.0..3.0),
            );
            let mut fast = state.clone();
            apply_gate_inplace(&mut fast, &g.matrix(), &[q0, q1], n);
            let slow = gate::embed(&g.matrix(), &[q0, q1], n).mul_vec(&state);
            assert!(fast.approx_eq(&slow, 1e-9));
            // The compiled kernel must agree with both paths bitwise: Cu3
            // lowers to the generic kernel, which replicates the legacy
            // gather/accumulate order exactly.
            let mut compiled = state.clone();
            crate::kernel::Kernel::for_gate(&g, &[q0, q1], n)
                .apply(compiled.as_mut_slice(), &mut Vec::new());
            assert_eq!(compiled.as_slice(), fast.as_slice());
        }
    }

    #[test]
    fn reset_and_display() {
        let mut c = Circuit::with_clbits(2, 2);
        c.h(0);
        c.reset(1).unwrap();
        c.measure(0, 0).unwrap();
        let text = format!("{c}");
        assert!(text.contains("h"));
        assert!(text.contains("reset"));
        assert!(text.contains("measure"));
        assert!(c.reset(5).is_err());
    }

    #[test]
    fn too_many_qubits_for_dense_unitary() {
        let c = Circuit::new(13);
        assert!(matches!(
            c.unitary_matrix(),
            Err(CircuitError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn depth_counts_longest_chain() {
        let mut c = Circuit::new(3);
        // Layer 1: H(0), H(2); layer 2: CX(0,1); layer 3: CX(1,2).
        c.h(0).h(2).cx(0, 1).cx(1, 2);
        assert_eq!(c.depth(), 3);
        assert_eq!(c.two_qubit_depth(), 2);
        // Parallel single-qubit gates do not add depth.
        let mut p = Circuit::new(4);
        p.h(0).h(1).h(2).h(3);
        assert_eq!(p.depth(), 1);
        assert_eq!(p.two_qubit_depth(), 0);
    }

    #[test]
    fn depth_ignores_barriers_counts_measures() {
        let mut c = Circuit::with_clbits(2, 1);
        c.h(0).barrier();
        c.measure(0, 0).unwrap();
        assert_eq!(c.depth(), 2);
        assert_eq!(Circuit::new(2).depth(), 0);
    }

    #[test]
    fn count_ops_histogram() {
        let mut c = Circuit::with_clbits(2, 1);
        c.h(0).h(1).cx(0, 1);
        c.measure(0, 0).unwrap();
        let ops = c.count_ops();
        assert_eq!(ops["h"], 2);
        assert_eq!(ops["cx"], 1);
        assert_eq!(ops["measure"], 1);
    }
}
