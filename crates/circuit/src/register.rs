//! Named quantum and classical registers.
//!
//! Registers are a thin naming layer over the flat qubit/clbit indices of a
//! [`crate::Circuit`], mirroring the `QuantumRegister` / `ClassicalRegister`
//! objects in the paper's pseudo-code (Fig. 16).

use std::fmt;

/// A named, contiguous block of qubits within a circuit.
///
/// ```rust
/// use qra_circuit::{Circuit, QuantumRegister};
///
/// let mut c = Circuit::new(0);
/// let qr = c.add_quantum_register("qr", 4);
/// let ar = c.add_quantum_register("ar", 1);
/// assert_eq!(qr.index(3), 3);
/// assert_eq!(ar.index(0), 4);
/// assert_eq!(c.num_qubits(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuantumRegister {
    name: String,
    start: usize,
    size: usize,
}

impl QuantumRegister {
    pub(crate) fn new(name: impl Into<String>, start: usize, size: usize) -> Self {
        Self {
            name: name.into(),
            start,
            size,
        }
    }

    /// The register's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits in the register.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Returns `true` when the register is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The circuit-level index of the `i`-th qubit of this register.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn index(&self, i: usize) -> usize {
        assert!(
            i < self.size,
            "register index {i} out of range {}",
            self.size
        );
        self.start + i
    }

    /// All circuit-level qubit indices of this register.
    pub fn indices(&self) -> Vec<usize> {
        (self.start..self.start + self.size).collect()
    }
}

impl fmt::Display for QuantumRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.name, self.size)
    }
}

/// A named, contiguous block of classical bits within a circuit.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClassicalRegister {
    name: String,
    start: usize,
    size: usize,
}

impl ClassicalRegister {
    pub(crate) fn new(name: impl Into<String>, start: usize, size: usize) -> Self {
        Self {
            name: name.into(),
            start,
            size,
        }
    }

    /// The register's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of bits in the register.
    pub fn len(&self) -> usize {
        self.size
    }

    /// Returns `true` when the register is empty.
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// The circuit-level index of the `i`-th bit of this register.
    ///
    /// # Panics
    ///
    /// Panics when `i >= len()`.
    pub fn index(&self, i: usize) -> usize {
        assert!(
            i < self.size,
            "register index {i} out of range {}",
            self.size
        );
        self.start + i
    }

    /// All circuit-level bit indices of this register.
    pub fn indices(&self) -> Vec<usize> {
        (self.start..self.start + self.size).collect()
    }
}

impl fmt::Display for ClassicalRegister {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.name, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantum_register_indexing() {
        let r = QuantumRegister::new("qr", 3, 4);
        assert_eq!(r.name(), "qr");
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        assert_eq!(r.index(0), 3);
        assert_eq!(r.index(3), 6);
        assert_eq!(r.indices(), vec![3, 4, 5, 6]);
        assert_eq!(format!("{r}"), "qr[4]");
    }

    #[test]
    #[should_panic]
    fn quantum_register_out_of_range() {
        QuantumRegister::new("qr", 0, 2).index(2);
    }

    #[test]
    fn classical_register_indexing() {
        let r = ClassicalRegister::new("cr", 1, 2);
        assert_eq!(r.index(1), 2);
        assert_eq!(r.indices(), vec![1, 2]);
        assert_eq!(format!("{r}"), "cr[2]");
    }
}
