//! Peephole circuit optimisation passes.
//!
//! The assertion builders synthesise circuits compositionally, which leaves
//! easy local redundancies: adjacent self-inverse pairs (`H·H`, `CX·CX`),
//! mergeable rotations (`Rz(a)·Rz(b)`), and zero-angle rotations. The
//! [`peephole_optimize`] pass removes them, iterating to a fixpoint. It is
//! deliberately conservative: gates only cancel/merge when no intervening
//! instruction touches any of their qubits.

use crate::{Circuit, Gate, Instruction, Operation};

const ANGLE_TOL: f64 = 1e-12;

/// Runs the peephole optimizer until no further reduction applies and
/// returns the optimised circuit.
///
/// ```rust
/// use qra_circuit::{Circuit, passes::peephole_optimize};
///
/// let mut c = Circuit::new(2);
/// c.h(0).h(0).cx(0, 1).cx(0, 1).rz(0.4, 1).rz(-0.4, 1);
/// let opt = peephole_optimize(&c);
/// assert_eq!(opt.len(), 0);
/// ```
pub fn peephole_optimize(circuit: &Circuit) -> Circuit {
    let mut insts: Vec<Option<Instruction>> =
        circuit.instructions().iter().cloned().map(Some).collect();
    loop {
        let mut changed = false;
        changed |= drop_trivial(&mut insts);
        changed |= cancel_and_merge(&mut insts);
        changed |= cancel_cx_through_commuting(&mut insts);
        if !changed {
            break;
        }
    }
    let mut out = Circuit::with_clbits(circuit.num_qubits(), circuit.num_clbits());
    for inst in insts.into_iter().flatten() {
        push_raw(&mut out, inst);
    }
    out
}

fn push_raw(c: &mut Circuit, inst: Instruction) {
    match &inst.operation {
        Operation::Gate(g) => {
            c.append(g.clone(), &inst.qubits)
                .expect("valid instruction");
        }
        Operation::Measure => {
            c.measure(inst.qubits[0], inst.clbits[0])
                .expect("valid measure");
        }
        Operation::Reset => {
            c.reset(inst.qubits[0]).expect("valid reset");
        }
        Operation::Barrier => {
            c.barrier_on(inst.qubits);
        }
    }
}

fn drop_trivial(insts: &mut [Option<Instruction>]) -> bool {
    let mut changed = false;
    for slot in insts.iter_mut() {
        let Some(inst) = slot else { continue };
        let Operation::Gate(g) = &inst.operation else {
            continue;
        };
        let trivial = match g {
            Gate::I => true,
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) => t.abs() < ANGLE_TOL,
            Gate::Cp(t) | Gate::Crx(t) | Gate::Cry(t) | Gate::Crz(t) => t.abs() < ANGLE_TOL,
            Gate::U3(t, p, l) => t.abs() < ANGLE_TOL && p.abs() < ANGLE_TOL && l.abs() < ANGLE_TOL,
            _ => false,
        };
        if trivial {
            *slot = None;
            changed = true;
        }
    }
    changed
}

/// Returns the merged gate when `a` then `b` (same qubits) combine, or
/// `None`. `Some(None)` means the pair cancels entirely.
#[allow(clippy::option_option)]
fn merge_pair(a: &Gate, b: &Gate) -> Option<Option<Gate>> {
    use Gate::*;
    // Self-inverse identical pairs cancel.
    let self_inverse = matches!(
        a,
        I | X | Y | Z | H | Cx | Cy | Cz | Ch | Swap | Ccx | Ccz | Cswap
    );
    if self_inverse && a == b {
        return Some(None);
    }
    // Inverse pairs cancel (S·Sdg etc.).
    match (a, b) {
        (S, Sdg) | (Sdg, S) | (T, Tdg) | (Tdg, T) | (Sx, Sxdg) | (Sxdg, Sx) => return Some(None),
        _ => {}
    }
    // Mergeable rotations.
    let merged = match (a, b) {
        (Rx(x), Rx(y)) => Some(Rx(x + y)),
        (Ry(x), Ry(y)) => Some(Ry(x + y)),
        (Rz(x), Rz(y)) => Some(Rz(x + y)),
        (Phase(x), Phase(y)) => Some(Phase(x + y)),
        (Cp(x), Cp(y)) => Some(Cp(x + y)),
        (Crx(x), Crx(y)) => Some(Crx(x + y)),
        (Cry(x), Cry(y)) => Some(Cry(x + y)),
        (Crz(x), Crz(y)) => Some(Crz(x + y)),
        (S, S) => Some(Z),
        (Sdg, Sdg) => Some(Z),
        (T, T) => Some(S),
        (Tdg, Tdg) => Some(Sdg),
        _ => None,
    }?;
    Some(Some(merged))
}

fn cancel_and_merge(insts: &mut Vec<Option<Instruction>>) -> bool {
    let mut changed = false;
    let len = insts.len();
    for idx in 0..len {
        let Some(inst) = insts[idx].clone() else {
            continue;
        };
        let Operation::Gate(g) = &inst.operation else {
            continue;
        };
        // Find the next instruction that shares a qubit.
        let mut next_idx = None;
        'scan: for (j, slot) in insts.iter().enumerate().skip(idx + 1) {
            let Some(other) = slot else { continue };
            if other.qubits.iter().any(|q| inst.qubits.contains(q)) {
                next_idx = Some(j);
                break 'scan;
            }
        }
        let Some(j) = next_idx else { continue };
        let other = insts[j].clone().expect("checked");
        let Operation::Gate(h) = &other.operation else {
            continue;
        };
        // Must act on identical qubit lists (same order) to merge safely,
        // except CZ/CCZ/Swap-style symmetric gates where order is free.
        let same_qubits = if is_symmetric(g) && is_symmetric(h) {
            let mut a = inst.qubits.clone();
            let mut b = other.qubits.clone();
            a.sort_unstable();
            b.sort_unstable();
            a == b && g.name() == h.name()
        } else {
            inst.qubits == other.qubits
        };
        if !same_qubits {
            continue;
        }
        if let Some(result) = merge_pair(g, h) {
            match result {
                None => {
                    insts[idx] = None;
                    insts[j] = None;
                }
                Some(merged) => {
                    insts[idx] = Some(Instruction::gate(merged, inst.qubits.clone()));
                    insts[j] = None;
                }
            }
            changed = true;
        }
    }
    if changed {
        insts.retain(Option::is_some);
    }
    changed
}

fn is_symmetric(g: &Gate) -> bool {
    matches!(g, Gate::Cz | Gate::Swap | Gate::Ccz | Gate::Cp(_))
}

/// Cancels identical CX(a,b) pairs separated by instructions that commute
/// with the CX: gates acting Z-diagonally on the control `a` and/or
/// X-axis-wise on the target `b`. This catches the `CX … Rz(a) … CX` and
/// `CX … CX(a,c) … CX` patterns the local-adjacency rule misses.
fn cancel_cx_through_commuting(insts: &mut [Option<Instruction>]) -> bool {
    let mut changed = false;
    let len = insts.len();
    for idx in 0..len {
        let Some(inst) = insts[idx].clone() else {
            continue;
        };
        let Some(Gate::Cx) = inst.as_gate() else {
            continue;
        };
        let (a, b) = (inst.qubits[0], inst.qubits[1]);
        for j in idx + 1..len {
            let Some(other) = insts[j].clone() else {
                continue;
            };
            if let Some(Gate::Cx) = other.as_gate() {
                if other.qubits == inst.qubits {
                    insts[idx] = None;
                    insts[j] = None;
                    changed = true;
                    break;
                }
            }
            let touches_a = other.qubits.contains(&a);
            let touches_b = other.qubits.contains(&b);
            if !touches_a && !touches_b {
                continue;
            }
            let Operation::Gate(g) = &other.operation else {
                break; // measure/reset on a or b blocks cancellation
            };
            let ok_a = !touches_a || z_diagonal_on(g, &other.qubits, a);
            let ok_b = !touches_b || x_axis_on(g, &other.qubits, b);
            if !(ok_a && ok_b) {
                break;
            }
        }
    }
    changed
}

/// Does `g` act Z-diagonally on qubit `q` (i.e. commute with `|0⟩⟨0|_q`,
/// `|1⟩⟨1|_q` projectors)?
fn z_diagonal_on(g: &Gate, qubits: &[usize], q: usize) -> bool {
    let pos = qubits.iter().position(|&x| x == q).expect("q in qubits");
    match g {
        // Fully diagonal gates qualify at every position.
        Gate::I
        | Gate::Z
        | Gate::S
        | Gate::Sdg
        | Gate::T
        | Gate::Tdg
        | Gate::Rz(_)
        | Gate::Phase(_)
        | Gate::Cz
        | Gate::Cp(_)
        | Gate::Crz(_)
        | Gate::Ccz => true,
        // Controlled gates are diagonal in their controls.
        Gate::Cx | Gate::Cy | Gate::Ch | Gate::Crx(_) | Gate::Cry(_) | Gate::Cu3(_, _, _) => {
            pos == 0
        }
        Gate::Ccx => pos <= 1,
        _ => false,
    }
}

/// Does `g` act purely along the X axis on qubit `q` (i.e. commute with
/// `X_q`)?
fn x_axis_on(g: &Gate, qubits: &[usize], q: usize) -> bool {
    let pos = qubits.iter().position(|&x| x == q).expect("q in qubits");
    match g {
        Gate::I | Gate::X | Gate::Rx(_) | Gate::Sx | Gate::Sxdg => true,
        Gate::Cx | Gate::Crx(_) => pos == 1,
        Gate::Ccx => pos == 2,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancels_adjacent_self_inverse() {
        let mut c = Circuit::new(2);
        c.h(0).h(0).x(1).x(1).cx(0, 1).cx(0, 1);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 0);
    }

    #[test]
    fn merges_rotations() {
        let mut c = Circuit::new(1);
        c.rz(0.25, 0).rz(0.5, 0);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 1);
        match opt.instructions()[0].as_gate().unwrap() {
            Gate::Rz(t) => assert!((t - 0.75).abs() < 1e-12),
            g => panic!("unexpected gate {g}"),
        }
    }

    #[test]
    fn rotation_pair_summing_to_zero_disappears() {
        let mut c = Circuit::new(1);
        c.ry(1.1, 0).ry(-1.1, 0);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 0);
    }

    #[test]
    fn does_not_cancel_across_blockers() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 3, "H…CX…H must not cancel");
    }

    #[test]
    fn cancels_through_unrelated_qubits() {
        let mut c = Circuit::new(3);
        c.h(0).x(2).h(0); // X on qubit 2 does not block the H pair
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].as_gate().unwrap().name(), "x");
    }

    #[test]
    fn symmetric_gate_cancels_with_swapped_operands() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(1, 0);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 0);
    }

    #[test]
    fn cx_with_swapped_operands_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 2);
    }

    #[test]
    fn drops_zero_rotations_and_identity() {
        let mut c = Circuit::new(1);
        c.rz(0.0, 0).rx(0.0, 0).append(Gate::I, &[0]).unwrap();
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 0);
    }

    #[test]
    fn t_pairs_promote_to_s() {
        let mut c = Circuit::new(1);
        c.t(0).t(0);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 1);
        assert_eq!(opt.instructions()[0].as_gate().unwrap().name(), "s");
    }

    #[test]
    fn preserves_semantics_on_random_circuit() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        for _ in 0..5 {
            let n = 3;
            let mut c = Circuit::new(n);
            for _ in 0..30 {
                match rng.gen_range(0..6) {
                    0 => {
                        c.h(rng.gen_range(0..n));
                    }
                    1 => {
                        c.rz(rng.gen_range(-1.0..1.0), rng.gen_range(0..n));
                    }
                    2 => {
                        let a = rng.gen_range(0..n);
                        let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                        c.cx(a, b);
                    }
                    3 => {
                        c.x(rng.gen_range(0..n));
                    }
                    4 => {
                        c.t(rng.gen_range(0..n));
                    }
                    _ => {
                        let a = rng.gen_range(0..n);
                        let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                        c.cz(a, b);
                    }
                }
            }
            let opt = peephole_optimize(&c);
            assert!(opt.len() <= c.len());
            let u1 = c.unitary_matrix().unwrap();
            let u2 = opt.unitary_matrix().unwrap();
            assert!(u1.approx_eq_up_to_phase(&u2, 1e-8), "semantics changed");
        }
    }

    #[test]
    fn cx_cancels_through_rz_on_control() {
        // CX(0,1) · Rz(0) · CX(0,1): the Rz is diagonal on the control.
        let mut c = Circuit::new(2);
        c.cx(0, 1).rz(0.7, 0).cx(0, 1);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 1, "only the Rz must remain");
        assert_eq!(opt.instructions()[0].as_gate().unwrap().name(), "rz");
        let u1 = c.unitary_matrix().unwrap();
        let u2 = opt.unitary_matrix().unwrap();
        assert!(u1.approx_eq_up_to_phase(&u2, 1e-10));
    }

    #[test]
    fn cx_cancels_through_x_on_target() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).x(1).cx(0, 1);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 1);
        let u1 = c.unitary_matrix().unwrap();
        let u2 = opt.unitary_matrix().unwrap();
        assert!(u1.approx_eq_up_to_phase(&u2, 1e-10));
    }

    #[test]
    fn cx_cancels_through_other_cx_sharing_control() {
        // CX(0,1) · CX(0,2) · CX(0,1): middle gate is diagonal on qubit 0.
        let mut c = Circuit::new(3);
        c.cx(0, 1).cx(0, 2).cx(0, 1);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 1);
        let u1 = c.unitary_matrix().unwrap();
        let u2 = opt.unitary_matrix().unwrap();
        assert!(u1.approx_eq_up_to_phase(&u2, 1e-10));
    }

    #[test]
    fn cx_blocked_by_h_on_control() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(0).cx(0, 1);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 3, "H on the control must block cancellation");
    }

    #[test]
    fn cx_blocked_by_z_on_target() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).z(1).cx(0, 1);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.len(), 3, "Z on the target must block cancellation");
    }

    #[test]
    fn cx_blocked_by_reversed_cx() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0).cx(0, 1);
        let opt = peephole_optimize(&c);
        // The swap-like pattern must survive untouched.
        assert_eq!(opt.len(), 3);
        let u1 = c.unitary_matrix().unwrap();
        let u2 = opt.unitary_matrix().unwrap();
        assert!(u1.approx_eq_up_to_phase(&u2, 1e-10));
    }

    #[test]
    fn cx_commuting_cancellation_preserves_semantics_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(97);
        for _ in 0..10 {
            let n = 3;
            let mut c = Circuit::new(n);
            for _ in 0..24 {
                match rng.gen_range(0..8) {
                    0 => {
                        let a = rng.gen_range(0..n);
                        let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                        c.cx(a, b);
                    }
                    1 => {
                        c.rz(rng.gen_range(-1.0..1.0), rng.gen_range(0..n));
                    }
                    2 => {
                        c.rx(rng.gen_range(-1.0..1.0), rng.gen_range(0..n));
                    }
                    3 => {
                        c.x(rng.gen_range(0..n));
                    }
                    4 => {
                        c.t(rng.gen_range(0..n));
                    }
                    5 => {
                        let a = rng.gen_range(0..n);
                        let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                        c.cz(a, b);
                    }
                    6 => {
                        c.h(rng.gen_range(0..n));
                    }
                    _ => {
                        let a = rng.gen_range(0..n);
                        let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
                        c.crz(rng.gen_range(-1.0..1.0), a, b);
                    }
                }
            }
            let opt = peephole_optimize(&c);
            let u1 = c.unitary_matrix().unwrap();
            let u2 = opt.unitary_matrix().unwrap();
            assert!(
                u1.approx_eq_up_to_phase(&u2, 1e-8),
                "commuting cancellation changed semantics"
            );
        }
    }

    #[test]
    fn preserves_measurements() {
        let mut c = Circuit::with_clbits(1, 1);
        c.h(0).h(0);
        c.measure(0, 0).unwrap();
        let opt = peephole_optimize(&c);
        assert_eq!(opt.measure_count(), 1);
        assert_eq!(opt.gate_count(), 0);
    }

    #[test]
    fn measurement_blocks_cancellation() {
        let mut c = Circuit::with_clbits(1, 1);
        c.h(0);
        c.measure(0, 0).unwrap();
        c.h(0);
        let opt = peephole_optimize(&c);
        assert_eq!(opt.gate_count(), 2);
    }
}
