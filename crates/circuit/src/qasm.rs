//! OpenQASM 2.0 export.
//!
//! Lets circuits (including synthesised assertion circuits) be inspected or
//! fed to external toolchains. Opaque `Unitary` gates must be synthesised
//! first; exporting them directly is an error.

use crate::{Circuit, CircuitError, Gate, Operation};
use std::fmt::Write as _;

/// Serialises `circuit` as an OpenQASM 2.0 program over one flat register.
///
/// # Errors
///
/// Returns [`CircuitError::Synthesis`] when the circuit contains an opaque
/// unitary gate that OpenQASM 2.0 cannot express; synthesise it first with
/// [`crate::synthesis::unitary_circuit`].
///
/// ```rust
/// use qra_circuit::{Circuit, qasm::to_qasm};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let text = to_qasm(&c)?;
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0],q[1];"));
/// # Ok::<(), qra_circuit::CircuitError>(())
/// ```
pub fn to_qasm(circuit: &Circuit) -> Result<String, CircuitError> {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits().max(1));
    if circuit.num_clbits() > 0 {
        let _ = writeln!(out, "creg c[{}];", circuit.num_clbits());
    }
    for inst in circuit.instructions() {
        match &inst.operation {
            Operation::Measure => {
                let _ = writeln!(
                    out,
                    "measure q[{}] -> c[{}];",
                    inst.qubits[0], inst.clbits[0]
                );
            }
            Operation::Reset => {
                let _ = writeln!(out, "reset q[{}];", inst.qubits[0]);
            }
            Operation::Barrier => {
                let args: Vec<String> = inst.qubits.iter().map(|q| format!("q[{q}]")).collect();
                let _ = writeln!(out, "barrier {};", args.join(","));
            }
            Operation::Gate(g) => {
                let args: Vec<String> = inst.qubits.iter().map(|q| format!("q[{q}]")).collect();
                let call = gate_call(g)?;
                let _ = writeln!(out, "{call} {};", args.join(","));
            }
        }
    }
    Ok(out)
}

fn gate_call(g: &Gate) -> Result<String, CircuitError> {
    Ok(match g {
        Gate::I => "id".to_string(),
        Gate::Rx(t) => format!("rx({t})"),
        Gate::Ry(t) => format!("ry({t})"),
        Gate::Rz(t) => format!("rz({t})"),
        Gate::Phase(t) => format!("u1({t})"),
        Gate::U2(p, l) => format!("u2({p},{l})"),
        Gate::U3(t, p, l) => format!("u3({t},{p},{l})"),
        Gate::Cp(t) => format!("cu1({t})"),
        Gate::Crx(t) => format!("crx({t})"),
        Gate::Cry(t) => format!("cry({t})"),
        Gate::Crz(t) => format!("crz({t})"),
        Gate::Cu3(t, p, l) => format!("cu3({t},{p},{l})"),
        Gate::Unitary(_, label) => {
            return Err(CircuitError::Synthesis {
                reason: format!("opaque unitary '{label}' cannot be exported to OpenQASM 2"),
            })
        }
        // ccz has no qelib1 entry; decompose conceptually via h+ccx+h.
        Gate::Ccz => {
            return Err(CircuitError::Synthesis {
                reason: "ccz has no OpenQASM 2 primitive; lower it first".into(),
            })
        }
        // sxdg predates qelib1; emit the exact u3 equivalent instead.
        Gate::Sxdg => format!(
            "u3({},{},{})",
            -std::f64::consts::FRAC_PI_2,
            -std::f64::consts::FRAC_PI_2,
            std::f64::consts::FRAC_PI_2
        ),
        other => other.name().to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_header_and_gates() {
        let mut c = Circuit::with_clbits(3, 3);
        c.h(0).cx(0, 1).rz(0.5, 2).swap(1, 2).ccx(0, 1, 2);
        c.measure(0, 0).unwrap();
        c.reset(1).unwrap();
        c.barrier();
        let text = to_qasm(&c).unwrap();
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("creg c[3];"));
        assert!(text.contains("h q[0];"));
        assert!(text.contains("cx q[0],q[1];"));
        assert!(text.contains("rz(0.5) q[2];"));
        assert!(text.contains("swap q[1],q[2];"));
        assert!(text.contains("ccx q[0],q[1],q[2];"));
        assert!(text.contains("measure q[0] -> c[0];"));
        assert!(text.contains("reset q[1];"));
        assert!(text.contains("barrier"));
    }

    #[test]
    fn parameterised_forms() {
        let mut c = Circuit::new(2);
        c.u3(0.1, 0.2, 0.3, 0)
            .cp(0.7, 0, 1)
            .cu3(1.0, 2.0, 3.0, 0, 1);
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("u3(0.1,0.2,0.3) q[0];"));
        assert!(text.contains("cu1(0.7) q[0],q[1];"));
        assert!(text.contains("cu3(1,2,3) q[0],q[1];"));
    }

    #[test]
    fn rejects_opaque_unitary() {
        let mut c = Circuit::new(2);
        c.unitary(Gate::Cx.matrix(), &[0, 1], "blob").unwrap();
        assert!(to_qasm(&c).is_err());
    }

    #[test]
    fn rejects_ccz() {
        let mut c = Circuit::new(3);
        c.ccz(0, 1, 2);
        assert!(to_qasm(&c).is_err());
    }

    #[test]
    fn sxdg_emits_exact_u3_form() {
        let mut c = Circuit::new(1);
        c.append(Gate::Sxdg, &[0]).unwrap();
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("u3("), "got: {text}");
        // The emitted u3 must equal Sx† up to global phase.
        let parsed = crate::qasm_parser::from_qasm(&text).unwrap();
        let u = parsed.unitary_matrix().unwrap();
        assert!(u.approx_eq_up_to_phase(&Gate::Sxdg.matrix(), 1e-9));
    }

    #[test]
    fn empty_circuit_has_min_register() {
        let c = Circuit::new(0);
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("qreg q[1];"));
    }
}
