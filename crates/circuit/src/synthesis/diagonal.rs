//! Synthesis of diagonal ±1 unitaries via algebraic normal form.
//!
//! The NDD assertion matrix `U = Σ_correct |ψᵢ⟩⟨ψᵢ| − Σ_incorrect |ψᵢ⟩⟨ψᵢ|`
//! is diagonal with ±1 entries whenever the assertion basis is the
//! computational basis (classical sets, parity sets). Writing the sign
//! pattern as `(−1)^{g(x)}` for a boolean function `g`, the Möbius (ANF)
//! transform of `g` yields a set of monomials; each monomial `x_{q₁}⋯x_{qₖ}`
//! becomes a multi-controlled Z on those qubits. Parity functions give pure
//! CZ chains — exactly the paper's `n`-CX NDD circuits (Fig. 14).

use crate::synthesis::mc_gate::{mcz, ControlState};
use crate::{Circuit, CircuitError};
use qra_math::CMatrix;

/// Returns `Some(signs)` when `u` is diagonal with entries `±1` (within
/// `tol`), where `signs[x]` is `true` for `−1`.
pub fn is_diagonal_pm_one(u: &CMatrix, tol: f64) -> Option<Vec<bool>> {
    if !u.is_square() {
        return None;
    }
    let d = u.rows();
    let mut signs = Vec::with_capacity(d);
    for r in 0..d {
        for c in 0..d {
            let z = u.get(r, c);
            if r == c {
                if (z.re - 1.0).abs() <= tol && z.im.abs() <= tol {
                    signs.push(false);
                } else if (z.re + 1.0).abs() <= tol && z.im.abs() <= tol {
                    signs.push(true);
                } else {
                    return None;
                }
            } else if z.norm() > tol {
                return None;
            }
        }
    }
    Some(signs)
}

/// Synthesises the diagonal unitary `diag((−1)^{g(x)})` over `qubits`
/// (basis index bit `x_q` ↔ `qubits[q]`, `qubits[0]` most significant).
///
/// A leading `signs[0] = true` contributes only a global phase and is
/// folded away (unobservable).
///
/// # Errors
///
/// Returns [`CircuitError::ArityMismatch`] when `signs.len() != 2^k`, plus
/// builder index errors.
///
/// ```rust
/// use qra_circuit::{Circuit, Gate, synthesis::diagonal_pm_one};
///
/// // (−1)^{x₀⊕x₁} = Z⊗Z: two Z gates, no entanglers.
/// let mut c = Circuit::new(2);
/// diagonal_pm_one(&mut c, &[0, 1], &[false, true, true, false])?;
/// let zz = Gate::Z.matrix().kron(&Gate::Z.matrix());
/// assert!(c.unitary_matrix()?.approx_eq_up_to_phase(&zz, 1e-10));
/// # Ok::<(), qra_circuit::CircuitError>(())
/// ```
pub fn diagonal_pm_one(
    circuit: &mut Circuit,
    qubits: &[usize],
    signs: &[bool],
) -> Result<(), CircuitError> {
    let k = qubits.len();
    if signs.len() != (1usize << k) {
        return Err(CircuitError::ArityMismatch {
            gate: "diagonal_pm_one".into(),
            expected: 1 << k,
            actual: signs.len(),
        });
    }
    // Möbius transform: ANF coefficients over GF(2).
    let mut coeff: Vec<bool> = signs.to_vec();
    for bit in 0..k {
        let step = 1usize << bit;
        for x in 0..coeff.len() {
            if x & step != 0 {
                coeff[x] ^= coeff[x ^ step];
            }
        }
    }
    // coeff[0] is a global −1 phase — unobservable, skip it.
    for (mask, &on) in coeff.iter().enumerate().skip(1) {
        if !on {
            continue;
        }
        // Monomial qubits: bit b (LSB-based) of `mask` ↔ qubits[k−1−b].
        let members: Vec<usize> = (0..k)
            .filter(|b| (mask >> b) & 1 == 1)
            .map(|b| qubits[k - 1 - b])
            .collect();
        match members.len() {
            1 => {
                circuit.z(members[0]);
            }
            2 => {
                circuit.cz(members[0], members[1]);
            }
            m => {
                let controls: Vec<(usize, ControlState)> = members[..m - 1]
                    .iter()
                    .map(|&q| (q, ControlState::Closed))
                    .collect();
                mcz(circuit, &controls, members[m - 1])?;
            }
        }
    }
    Ok(())
}

/// Attempts to factor a `2ᵏ`-dimensional unitary into a tensor product of
/// single-qubit unitaries `u_0 ⊗ u_1 ⊗ … ⊗ u_{k−1}`.
///
/// Returns `None` when the matrix is not a (phase-adjusted) product. The
/// global phase is absorbed into the first factor.
pub fn try_factor_tensor(u: &CMatrix) -> Option<Vec<CMatrix>> {
    let k = qra_math::qubits_for_dim(u.rows()).ok()?;
    if !u.is_square() {
        return None;
    }
    if k == 1 {
        return Some(vec![u.clone()]);
    }
    let d = u.rows();
    let half = d / 2;
    // u = f ⊗ rest with f 2×2: blocks B_{ij} = f[i][j] · rest.
    // Find the block with the largest norm to extract `rest`.
    let block = |bi: usize, bj: usize| -> CMatrix {
        CMatrix::from_fn(half, half, |r, c| u.get(bi * half + r, bj * half + c))
    };
    let mut best = (0, 0, 0.0f64);
    for bi in 0..2 {
        for bj in 0..2 {
            let norm = block(bi, bj).frobenius_norm();
            if norm > best.2 {
                best = (bi, bj, norm);
            }
        }
    }
    if best.2 < 1e-9 {
        return None;
    }
    let pivot = block(best.0, best.1);
    // rest is pivot normalised to unit "scale"; f entries are the per-block
    // scalar multipliers relative to rest.
    let scale = best.2 / (half as f64).sqrt(); // makes `rest` roughly unitary-normed
    let rest = pivot.scale(qra_math::C64::from(1.0 / scale));
    let mut f = CMatrix::zeros(2, 2);
    for bi in 0..2 {
        for bj in 0..2 {
            let b = block(bi, bj);
            // factor = tr(rest† b) / tr(rest† rest)
            let denom = rest.adjoint().mul(&rest).ok()?.trace().ok()?;
            let num = rest.adjoint().mul(&b).ok()?.trace().ok()?;
            let factor = num / denom;
            // Validate the block matches factor · rest.
            if b.max_abs_diff(&rest.scale(factor)) > 1e-8 {
                return None;
            }
            f.set(bi, bj, factor);
        }
    }
    if !f.is_unitary(1e-7) || !rest.is_unitary(1e-7) {
        return None;
    }
    let mut factors = vec![f];
    factors.extend(try_factor_tensor(&rest)?);
    Some(factors)
}

/// Appends a singly-controlled tensor-product unitary
/// `ctrl-(u_0 ⊗ … ⊗ u_{k−1})` as a product of singly-controlled one-qubit
/// gates — the fast path that yields the paper's 3-CX NDD circuit for the
/// GHZ approximate set (controlled `X⊗X⊗X`).
///
/// # Errors
///
/// Propagates synthesis and index errors.
pub fn controlled_tensor_product(
    circuit: &mut Circuit,
    control: usize,
    targets: &[usize],
    factors: &[CMatrix],
) -> Result<(), CircuitError> {
    if targets.len() != factors.len() {
        return Err(CircuitError::ArityMismatch {
            gate: "controlled_tensor_product".into(),
            expected: targets.len(),
            actual: factors.len(),
        });
    }
    for (&t, f) in targets.iter().zip(factors) {
        crate::synthesis::mc_gate::controlled_1q(circuit, control, t, f)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;
    use qra_math::C64;

    const TOL: f64 = 1e-9;

    #[test]
    fn detects_diagonal_pm_one() {
        let zz = Gate::Z.matrix().kron(&Gate::Z.matrix());
        let signs = is_diagonal_pm_one(&zz, TOL).unwrap();
        assert_eq!(signs, vec![false, true, true, false]);
        assert!(is_diagonal_pm_one(&Gate::H.matrix(), TOL).is_none());
        assert!(is_diagonal_pm_one(&Gate::S.matrix(), TOL).is_none());
    }

    #[test]
    fn synthesizes_single_z() {
        let mut c = Circuit::new(1);
        diagonal_pm_one(&mut c, &[0], &[false, true]).unwrap();
        assert!(c
            .unitary_matrix()
            .unwrap()
            .approx_eq(&Gate::Z.matrix(), TOL));
    }

    #[test]
    fn synthesizes_cz_for_and_function() {
        // (−1)^{x₀·x₁} = CZ.
        let mut c = Circuit::new(2);
        diagonal_pm_one(&mut c, &[0, 1], &[false, false, false, true]).unwrap();
        assert!(c
            .unitary_matrix()
            .unwrap()
            .approx_eq(&Gate::Cz.matrix(), TOL));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn parity_function_uses_only_z_gates() {
        // g = x₀ ⊕ x₁ ⊕ x₂ → three plain Z gates, zero entanglers.
        let signs: Vec<bool> = (0..8).map(|x: usize| x.count_ones() % 2 == 1).collect();
        let mut c = Circuit::new(3);
        diagonal_pm_one(&mut c, &[0, 1, 2], &signs).unwrap();
        assert_eq!(c.len(), 3);
        for inst in c.instructions() {
            assert_eq!(inst.as_gate().unwrap().name(), "z");
        }
    }

    #[test]
    fn controlled_parity_gives_cz_chain() {
        // ctrl-(Z⊗Z): g(c, x₁, x₂) = c·x₁ ⊕ c·x₂ → CZ(c,1), CZ(c,2).
        let signs: Vec<bool> = (0..8)
            .map(|i: usize| {
                let c = (i >> 2) & 1;
                let x1 = (i >> 1) & 1;
                let x2 = i & 1;
                (c & x1) ^ (c & x2) == 1
            })
            .collect();
        let mut c = Circuit::new(3);
        diagonal_pm_one(&mut c, &[0, 1, 2], &signs).unwrap();
        assert_eq!(c.len(), 2, "expected exactly two CZ gates");
        for inst in c.instructions() {
            assert_eq!(inst.as_gate().unwrap().name(), "cz");
        }
        // Verify against ctrl-(Z⊗Z).
        let zz = Gate::Z.matrix().kron(&Gate::Z.matrix());
        let expect = crate::gate::controlled(&zz);
        assert!(c
            .unitary_matrix()
            .unwrap()
            .approx_eq_up_to_phase(&expect, TOL));
    }

    #[test]
    fn arbitrary_sign_pattern_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for _ in 0..5 {
            let signs: Vec<bool> = (0..16).map(|_| rng.gen_bool(0.5)).collect();
            let mut c = Circuit::new(4);
            diagonal_pm_one(&mut c, &[0, 1, 2, 3], &signs).unwrap();
            let got = c.unitary_matrix().unwrap();
            let entries: Vec<C64> = signs
                .iter()
                .map(|&s| if s { C64::from(-1.0) } else { C64::one() })
                .collect();
            let expect = CMatrix::diagonal(&entries);
            assert!(got.approx_eq_up_to_phase(&expect, TOL));
        }
    }

    #[test]
    fn rejects_wrong_sign_count() {
        let mut c = Circuit::new(2);
        assert!(diagonal_pm_one(&mut c, &[0, 1], &[false, true]).is_err());
    }

    #[test]
    fn factor_tensor_of_products() {
        let u = Gate::X
            .matrix()
            .kron(&Gate::X.matrix())
            .kron(&Gate::X.matrix());
        let f = try_factor_tensor(&u).unwrap();
        assert_eq!(f.len(), 3);
        for m in &f {
            assert!(m.approx_eq_up_to_phase(&Gate::X.matrix(), 1e-8));
        }
        let hz = Gate::H.matrix().kron(&Gate::Z.matrix());
        let f = try_factor_tensor(&hz).unwrap();
        assert_eq!(f.len(), 2);
        // Reconstruct.
        let recon = f[0].kron(&f[1]);
        assert!(recon.approx_eq_up_to_phase(&hz, 1e-8));
    }

    #[test]
    fn factor_tensor_rejects_entangling() {
        assert!(try_factor_tensor(&Gate::Cx.matrix()).is_none());
        assert!(try_factor_tensor(&Gate::Swap.matrix()).is_none());
    }

    #[test]
    fn controlled_tensor_product_ghz_case() {
        // ctrl-(X⊗X⊗X) should be exactly three CX gates (paper Fig. 1 / §III).
        let x = Gate::X.matrix();
        let mut c = Circuit::new(4);
        controlled_tensor_product(&mut c, 0, &[1, 2, 3], &[x.clone(), x.clone(), x.clone()])
            .unwrap();
        assert_eq!(c.len(), 3);
        for inst in c.instructions() {
            assert_eq!(inst.as_gate().unwrap().name(), "cx");
        }
        let xxx = x.kron(&x).kron(&x);
        let expect = crate::gate::controlled(&xxx);
        assert!(c.unitary_matrix().unwrap().approx_eq(&expect, TOL));
    }
}
