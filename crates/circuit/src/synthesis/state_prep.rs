//! State-preparation synthesis: a circuit `U` with `U|0…0⟩ = |ψ⟩`.
//!
//! The general path is the textbook amplitude-disentangling recursion
//! (multiplexed Rz/Ry per qubit, `O(2ⁿ)` CX — the bound the paper cites
//! from Plesch & Brukner \[36\]). Three fast paths produce the hand-crafted
//! circuits the paper's cost tables assume:
//!
//! 1. **Basis states** — X gates only, 0 CX;
//! 2. **Product states** — per-qubit rotations, 0 CX;
//! 3. **Two-term superpositions** `a|i⟩ + b|j⟩` (Bell, GHZ, …) — one
//!    rotation plus a CX fan-out, `hamming(i,j) − 1` CX (2 CX for GHZ,
//!    matching Fig. 1's accounting).

use crate::synthesis::multiplexed::{multiplexed_ry, multiplexed_rz};
use crate::{Circuit, CircuitError};
use qra_math::{CVector, C64};

const TOL: f64 = 1e-10;

/// Synthesises a circuit preparing `state` from `|0…0⟩`, exact up to an
/// unobservable global phase.
///
/// # Errors
///
/// * [`CircuitError::Math`] when the dimension is not a power of two or the
///   vector cannot be normalised;
///
/// ```rust
/// use qra_circuit::synthesis::prepare_state;
/// use qra_math::CVector;
///
/// let s = 0.5f64.sqrt();
/// let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
/// let circuit = prepare_state(&bell)?;
/// assert!(circuit.statevector()?.approx_eq_up_to_phase(&bell, 1e-9));
/// # Ok::<(), qra_circuit::CircuitError>(())
/// ```
pub fn prepare_state(state: &CVector) -> Result<Circuit, CircuitError> {
    let n = qra_math::qubits_for_dim(state.len())?;
    let psi = state.normalized().map_err(CircuitError::Math)?;

    if let Some(c) = try_basis_state(&psi, n) {
        return Ok(c);
    }
    if let Some(c) = try_product_state(&psi, n) {
        return Ok(c);
    }
    if let Some(c) = try_two_term(&psi, n)? {
        return Ok(c);
    }
    general_prepare(&psi, n)
}

/// Fast path 1: a single computational basis state.
fn try_basis_state(psi: &CVector, n: usize) -> Option<Circuit> {
    let mut hot = None;
    for (i, amp) in psi.iter().enumerate() {
        if amp.norm() > TOL {
            if hot.is_some() {
                return None;
            }
            hot = Some(i);
        }
    }
    let index = hot?;
    let mut c = Circuit::new(n);
    for q in 0..n {
        if (index >> (n - 1 - q)) & 1 == 1 {
            c.x(q);
        }
    }
    Some(c)
}

/// Fast path 2: a full product state `⊗_q (a_q|0⟩ + b_q|1⟩)`.
fn try_product_state(psi: &CVector, n: usize) -> Option<Circuit> {
    let mut c = Circuit::new(n);
    let mut rest = psi.clone();
    for q in 0..n {
        let m = rest.len();
        let half = m / 2;
        let top = CVector::new(rest.as_slice()[..half].to_vec());
        let bottom = CVector::new(rest.as_slice()[half..].to_vec());
        let tn = top.norm();
        let bn = bottom.norm();
        // rest = (a|0⟩ + b|1⟩) ⊗ sub requires top ∝ bottom (or one is zero).
        let (a, b, sub) = if bn <= TOL {
            (C64::one(), C64::zero(), top)
        } else if tn <= TOL {
            (C64::zero(), C64::one(), bottom)
        } else {
            // Find proportionality factor via the largest entry.
            let (mut best, mut best_norm) = (0usize, 0.0f64);
            for (i, z) in top.iter().enumerate() {
                if z.norm() > best_norm {
                    best = i;
                    best_norm = z.norm();
                }
            }
            let ratio = bottom.amplitude(best) / top.amplitude(best);
            // bottom must equal ratio * top.
            if !bottom.approx_eq(&top.scale(ratio), 1e-8) {
                return None;
            }
            let norm = (1.0 + ratio.norm_sqr()).sqrt();
            let a = C64::from(1.0 / norm);
            let b = ratio.scale(1.0 / norm);
            let sub = top.normalized().ok()?;
            (a, b, sub)
        };
        append_1q_prep(&mut c, q, a, b);
        if m == 2 {
            break;
        }
        rest = sub;
    }
    // Verify (defensive; proportionality checks should guarantee this).
    match c.statevector() {
        Ok(sv) if sv.approx_eq_up_to_phase(psi, 1e-7) => Some(c),
        _ => None,
    }
}

/// Fast path 3: exactly two non-zero amplitudes `a|i⟩ + b|j⟩`.
fn try_two_term(psi: &CVector, n: usize) -> Result<Option<Circuit>, CircuitError> {
    let mut hot: Vec<usize> = Vec::new();
    for (i, amp) in psi.iter().enumerate() {
        if amp.norm() > TOL {
            hot.push(i);
            if hot.len() > 2 {
                return Ok(None);
            }
        }
    }
    if hot.len() != 2 {
        return Ok(None);
    }
    let (mut i, mut j) = (hot[0], hot[1]);
    let diff = i ^ j;
    // Pivot: the most significant differing qubit.
    let pivot_bit = diff.ilog2() as usize; // bit position from LSB
    let pivot = n - 1 - pivot_bit;
    // Ensure i has 0 at the pivot so its amplitude rides the |0⟩ branch.
    if (i >> pivot_bit) & 1 == 1 {
        std::mem::swap(&mut i, &mut j);
    }
    let a = psi.amplitude(i);
    let b = psi.amplitude(j);

    let mut c = Circuit::new(n);
    append_1q_prep(&mut c, pivot, a, b);
    // Fan out the remaining differing bits from the pivot.
    for q in 0..n {
        if q != pivot && (diff >> (n - 1 - q)) & 1 == 1 {
            c.cx(pivot, q);
        }
    }
    // Set bits common to both terms.
    let common = i & j;
    for q in 0..n {
        if (common >> (n - 1 - q)) & 1 == 1 {
            c.x(q);
        }
    }
    // The fan-out copies the pivot value; bits of j that differ from i must
    // match j when pivot=1 branch… they do by construction (i has 0s at all
    // differing bits? not necessarily). Verify and fix with X where needed.
    if c.statevector()?.approx_eq_up_to_phase(psi, 1e-8) {
        return Ok(Some(c));
    }
    // General case: i may have 1-bits at differing positions. Rebuild with
    // explicit X corrections: after fan-out the state is
    // a|0…0 (pivot pattern)⟩ branch with zeros — instead, correct any
    // differing bit where i has a 1 by applying X (flipping both branches)
    // would break; fall back to the generic path for these rare layouts.
    Ok(None)
}

/// Appends a single-qubit preparation of `a|0⟩ + b|1⟩` (unit norm) to `q`.
fn append_1q_prep(c: &mut Circuit, q: usize, a: C64, b: C64) {
    let theta = 2.0 * b.norm().atan2(a.norm());
    if theta.abs() > 1e-12 {
        c.ry(theta, q);
    }
    // Relative phase: arg(b) − arg(a) (only meaningful when both non-zero).
    if a.norm() > TOL && b.norm() > TOL {
        let lambda = b.arg() - a.arg();
        if lambda.abs() > 1e-12 {
            c.rz(lambda, q);
        }
    } else if b.norm() > TOL {
        let lambda = b.arg();
        if lambda.abs() > 1e-12 {
            c.rz(2.0 * lambda, q);
        }
    }
}

/// General amplitude-disentangling synthesis.
fn general_prepare(psi: &CVector, n: usize) -> Result<Circuit, CircuitError> {
    // Build the disentangler D with D|ψ⟩ = |0…0⟩ (up to phase), then invert.
    let mut disentangler = Circuit::new(n);
    let mut amps: Vec<C64> = psi.as_slice().to_vec();

    // Disentangle qubits from the least significant (n−1) up to 0.
    for qubit in (0..n).rev() {
        let m = amps.len();
        let half = m / 2;
        let mut rz_angles = vec![0.0f64; half];
        let mut ry_angles = vec![0.0f64; half];
        let mut next = vec![C64::zero(); half];
        for r in 0..half {
            let a = amps[2 * r];
            let b = amps[2 * r + 1];
            let norm = (a.norm_sqr() + b.norm_sqr()).sqrt();
            if norm <= 1e-12 {
                next[r] = C64::zero();
                continue;
            }
            let mu = if a.norm() > 1e-12 { a.arg() } else { 0.0 };
            let nu = if b.norm() > 1e-12 { b.arg() } else { 0.0 };
            // Rz(λ) with λ = μ − ν aligns the phases; Ry(−θ) zeroes the
            // odd amplitude.
            rz_angles[r] = mu - nu;
            ry_angles[r] = -2.0 * b.norm().atan2(a.norm());
            next[r] = C64::from_polar(norm, (mu + nu) / 2.0);
        }
        let controls: Vec<usize> = (0..qubit).collect();
        // Order: align phases first, then rotate into |0⟩.
        if rz_angles.iter().any(|t| t.abs() > 1e-12) {
            multiplexed_rz(&mut disentangler, &controls, qubit, &rz_angles)?;
        }
        if ry_angles.iter().any(|t| t.abs() > 1e-12) {
            multiplexed_ry(&mut disentangler, &controls, qubit, &ry_angles)?;
        }
        amps = next;
    }

    disentangler.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn roundtrip(state: &CVector) -> Circuit {
        let c = prepare_state(state).unwrap();
        let sv = c.statevector().unwrap();
        assert!(
            sv.approx_eq_up_to_phase(&state.normalized().unwrap(), 1e-8),
            "prepared state mismatch"
        );
        c
    }

    fn cx_count(c: &Circuit) -> usize {
        c.instructions()
            .iter()
            .filter(|i| i.as_gate().is_some_and(|g| g.name() == "cx"))
            .count()
    }

    #[test]
    fn basis_states_use_only_x() {
        for idx in 0..8 {
            let state = CVector::basis_state(8, idx);
            let c = roundtrip(&state);
            assert_eq!(cx_count(&c), 0);
            for inst in c.instructions() {
                assert_eq!(inst.as_gate().unwrap().name(), "x");
            }
        }
    }

    #[test]
    fn product_states_use_no_cx() {
        // |+⟩ ⊗ |1⟩ ⊗ (0.6|0⟩ + 0.8i|1⟩)
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        let one = CVector::basis_state(2, 1);
        let third = CVector::new(vec![C64::from(0.6), C64::new(0.0, 0.8)]);
        let state = plus.kron(&one).kron(&third);
        let c = roundtrip(&state);
        assert_eq!(cx_count(&c), 0, "product state should need no CX");
    }

    #[test]
    fn bell_state_uses_one_cx() {
        let s = 0.5f64.sqrt();
        let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
        let c = roundtrip(&bell);
        assert_eq!(cx_count(&c), 1);
    }

    #[test]
    fn ghz_state_uses_two_cx() {
        let s = 0.5f64.sqrt();
        let mut ghz = CVector::zeros(8);
        ghz[0] = C64::from(s);
        ghz[7] = C64::from(s);
        let c = roundtrip(&ghz);
        assert_eq!(cx_count(&c), 2, "GHZ prep should match the paper's 2 CX");
    }

    #[test]
    fn ghz_with_negative_phase() {
        let s = 0.5f64.sqrt();
        let mut ghz = CVector::zeros(8);
        ghz[0] = C64::from(s);
        ghz[7] = C64::from(-s);
        roundtrip(&ghz);
    }

    #[test]
    fn unequal_two_term_superposition() {
        let mut v = CVector::zeros(4);
        v[1] = C64::from(0.6);
        v[2] = C64::new(0.0, 0.8);
        roundtrip(&v);
    }

    #[test]
    fn w_state_roundtrips_via_general_path() {
        let a = 1.0 / 3.0f64.sqrt();
        let mut w = CVector::zeros(8);
        w[0b001] = C64::from(a);
        w[0b010] = C64::from(a);
        w[0b100] = C64::from(a);
        roundtrip(&w);
    }

    #[test]
    fn random_states_roundtrip() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for n in 1..=5usize {
            for _ in 0..4 {
                let dim = 1 << n;
                let raw: Vec<C64> = (0..dim)
                    .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                    .collect();
                let state = CVector::new(raw).normalized().unwrap();
                roundtrip(&state);
            }
        }
    }

    #[test]
    fn general_path_cx_is_bounded() {
        // For n qubits the disentangling bound is ~2·2ⁿ CX.
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let n = 4;
        let dim = 1 << n;
        let raw: Vec<C64> = (0..dim)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let state = CVector::new(raw).normalized().unwrap();
        let c = roundtrip(&state);
        assert!(cx_count(&c) <= 2 * (1 << n), "cx count {}", cx_count(&c));
    }

    #[test]
    fn rejects_bad_dimension() {
        let v = CVector::from_real(&[1.0, 0.0, 0.0]);
        assert!(prepare_state(&v).is_err());
        assert!(prepare_state(&CVector::zeros(4)).is_err());
    }

    #[test]
    fn plus_state_single_qubit() {
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        let c = roundtrip(&plus);
        assert_eq!(cx_count(&c), 0);
        assert!(c.len() <= 2);
    }

    #[test]
    fn complex_phase_single_qubit() {
        // (|0⟩ + i|1⟩)/√2 — the eigenstate used in the paper's §IX-B.
        let s = 0.5f64.sqrt();
        let state = CVector::new(vec![C64::from(s), C64::new(0.0, s)]);
        roundtrip(&state);
    }
}
