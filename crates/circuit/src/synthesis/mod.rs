//! Gate and state synthesis.
//!
//! These routines provide the "UnitaryGate" functionality the paper gets
//! from Qiskit: turning states and unitary matrices into basis-gate
//! circuits. The assertion designs of the paper reduce to three synthesis
//! problems, all solved here:
//!
//! * `U` with `U|0…0⟩ = |ψ⟩` — [`state_prep::prepare_state`] (`O(2ⁿ)` CX in
//!   general, with fast paths for basis states, product states and
//!   two-term superpositions such as GHZ);
//! * an arbitrary `n`-qubit unitary — [`two_level::unitary_circuit`]
//!   (`O(4ⁿ)` CX via two-level Givens reduction and Gray-code
//!   multi-controlled gates);
//! * controlled diagonal ±1 unitaries — [`diagonal::diagonal_pm_one`]
//!   (algebraic-normal-form reduction to multi-controlled Z gates, giving
//!   the paper's `n`-CX NDD circuits for parity state sets).

pub mod controlled;
pub mod diagonal;
pub mod mc_gate;
pub mod multiplexed;
pub mod state_prep;
pub mod two_level;
pub mod zyz;

pub use diagonal::{diagonal_pm_one, is_diagonal_pm_one};
pub use mc_gate::{mc_unitary, mcx, ControlState};
pub use multiplexed::{multiplexed_ry, multiplexed_rz};
pub use state_prep::prepare_state;
pub use two_level::unitary_circuit;
pub use zyz::{zyz_decompose, ZyzAngles};
