//! ZYZ (Euler-angle) decomposition of single-qubit unitaries.

use crate::{Circuit, CircuitError, Gate};
use qra_math::{CMatrix, C64};

/// The Euler angles of `U = e^{iα} · Rz(β) · Ry(γ) · Rz(δ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZyzAngles {
    /// Global phase `α`.
    pub alpha: f64,
    /// Outer Z rotation `β` (applied last).
    pub beta: f64,
    /// Middle Y rotation `γ`.
    pub gamma: f64,
    /// Inner Z rotation `δ` (applied first).
    pub delta: f64,
}

impl ZyzAngles {
    /// Rebuilds the unitary matrix from the angles (for verification).
    pub fn matrix(&self) -> CMatrix {
        let rz_b = Gate::Rz(self.beta).matrix();
        let ry_g = Gate::Ry(self.gamma).matrix();
        let rz_d = Gate::Rz(self.delta).matrix();
        rz_b.mul(&ry_g)
            .and_then(|m| m.mul(&rz_d))
            .expect("2x2 shapes agree")
            .scale(C64::cis(self.alpha))
    }

    /// Appends the rotation gates (without the global phase) to `circuit`
    /// on `qubit`, skipping numerically-zero rotations.
    pub fn apply_to(&self, circuit: &mut Circuit, qubit: usize) {
        const TOL: f64 = 1e-12;
        if self.delta.abs() > TOL {
            circuit.rz(self.delta, qubit);
        }
        if self.gamma.abs() > TOL {
            circuit.ry(self.gamma, qubit);
        }
        if self.beta.abs() > TOL {
            circuit.rz(self.beta, qubit);
        }
    }
}

/// Decomposes a single-qubit unitary into ZYZ Euler angles.
///
/// # Errors
///
/// Returns [`CircuitError::ArityMismatch`] for non-2×2 input and
/// [`CircuitError::NotUnitary`] for non-unitary input.
///
/// ```rust
/// use qra_circuit::{Gate, synthesis::zyz_decompose};
///
/// let angles = zyz_decompose(&Gate::H.matrix())?;
/// assert!(angles.matrix().approx_eq(&Gate::H.matrix(), 1e-10));
/// # Ok::<(), qra_circuit::CircuitError>(())
/// ```
pub fn zyz_decompose(u: &CMatrix) -> Result<ZyzAngles, CircuitError> {
    if u.shape() != (2, 2) {
        return Err(CircuitError::ArityMismatch {
            gate: "zyz".into(),
            expected: 1,
            actual: usize::MAX,
        });
    }
    if !u.is_unitary(1e-8) {
        return Err(CircuitError::NotUnitary { deviation: 1.0 });
    }

    // det(U) = e^{2iα}; divide out the global phase to get an SU(2) matrix.
    let det = u.get(0, 0) * u.get(1, 1) - u.get(0, 1) * u.get(1, 0);
    let alpha = det.arg() / 2.0;
    let inv_phase = C64::cis(-alpha);
    let v00 = u.get(0, 0) * inv_phase;
    let v10 = u.get(1, 0) * inv_phase;

    // V = [[cos(γ/2)e^{-i(β+δ)/2}, ...], [sin(γ/2)e^{i(β-δ)/2}, ...]].
    let gamma = 2.0 * v10.norm().atan2(v00.norm());
    let (beta, delta) = if v00.norm() > 1e-9 && v10.norm() > 1e-9 {
        let phi00 = v00.arg(); // -(β+δ)/2
        let phi10 = v10.arg(); // (β-δ)/2
        (phi10 - phi00, -phi10 - phi00)
    } else if v10.norm() <= 1e-9 {
        // γ ≈ 0: only β+δ matters.
        (-2.0 * v00.arg(), 0.0)
    } else {
        // γ ≈ π: only β−δ matters.
        (2.0 * v10.arg(), 0.0)
    };

    Ok(ZyzAngles {
        alpha,
        beta,
        gamma,
        delta,
    })
}

/// Principal square root of a 2×2 unitary matrix, used by the
/// multi-controlled-gate recursion.
///
/// # Errors
///
/// Returns [`CircuitError::NotUnitary`] for non-unitary or non-2×2 input.
pub fn sqrt_unitary_2x2(u: &CMatrix) -> Result<CMatrix, CircuitError> {
    if u.shape() != (2, 2) || !u.is_unitary(1e-8) {
        return Err(CircuitError::NotUnitary { deviation: 1.0 });
    }
    let tr = u.get(0, 0) + u.get(1, 1);
    let det = u.get(0, 0) * u.get(1, 1) - u.get(0, 1) * u.get(1, 0);
    // Eigenvalues from λ² − tr·λ + det = 0.
    let disc = (tr * tr - det.scale(4.0)).sqrt();
    let l1 = (tr + disc).scale(0.5);
    let l2 = (tr - disc).scale(0.5);
    let id = CMatrix::identity(2);
    if (l1 - l2).norm() < 1e-10 {
        // U = λ·I (or defective, impossible for unitary): scalar sqrt.
        return Ok(id.scale(l1.sqrt()));
    }
    // Spectral projectors: P1 = (U − λ2 I)/(λ1 − λ2), P2 = I − P1.
    let p1 = u.sub(&id.scale(l2))?.scale((l1 - l2).inv());
    let p2 = id.sub(&p1)?;
    Ok(p1.scale(l1.sqrt()).add(&p2.scale(l2.sqrt()))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    const TOL: f64 = 1e-9;

    fn random_unitary_2x2(rng: &mut impl Rng) -> CMatrix {
        // Haar-ish via random U3 + global phase.
        let m = crate::gate::u3_matrix(
            rng.gen_range(0.0..std::f64::consts::PI),
            rng.gen_range(0.0..std::f64::consts::TAU),
            rng.gen_range(0.0..std::f64::consts::TAU),
        );
        m.scale(C64::cis(rng.gen_range(0.0..std::f64::consts::TAU)))
    }

    #[test]
    fn decomposes_standard_gates() {
        for g in [
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::T,
            Gate::Sx,
            Gate::Rx(0.8),
            Gate::Ry(1.1),
            Gate::Rz(-0.6),
            Gate::Phase(2.2),
            Gate::U2(0.5, 1.0),
            Gate::U3(0.3, 0.9, -1.4),
        ] {
            let m = g.matrix();
            let angles = zyz_decompose(&m).unwrap();
            assert!(
                angles.matrix().approx_eq(&m, TOL),
                "zyz roundtrip failed for {g}"
            );
        }
    }

    #[test]
    fn decomposes_random_unitaries() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let m = random_unitary_2x2(&mut rng);
            let angles = zyz_decompose(&m).unwrap();
            assert!(angles.matrix().approx_eq(&m, TOL));
        }
    }

    #[test]
    fn apply_to_reproduces_up_to_phase() {
        let m = Gate::U3(1.2, 0.4, 2.2).matrix();
        let angles = zyz_decompose(&m).unwrap();
        let mut c = Circuit::new(1);
        angles.apply_to(&mut c, 0);
        let u = c.unitary_matrix().unwrap();
        assert!(u.approx_eq_up_to_phase(&m, TOL));
    }

    #[test]
    fn apply_to_skips_zero_rotations() {
        let angles = zyz_decompose(&Gate::I.matrix()).unwrap();
        let mut c = Circuit::new(1);
        angles.apply_to(&mut c, 0);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(zyz_decompose(&CMatrix::identity(4)).is_err());
        let not_unitary = CMatrix::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        assert!(zyz_decompose(&not_unitary).is_err());
        assert!(sqrt_unitary_2x2(&not_unitary).is_err());
    }

    #[test]
    fn sqrt_of_x_squares_back() {
        let x = Gate::X.matrix();
        let v = sqrt_unitary_2x2(&x).unwrap();
        assert!(v.is_unitary(TOL));
        assert!(v.mul(&v).unwrap().approx_eq(&x, TOL));
    }

    #[test]
    fn sqrt_of_scalar_unitary() {
        let u = CMatrix::identity(2).scale(C64::cis(1.0));
        let v = sqrt_unitary_2x2(&u).unwrap();
        assert!(v.mul(&v).unwrap().approx_eq(&u, TOL));
    }

    #[test]
    fn sqrt_of_random_unitaries() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..50 {
            let u = random_unitary_2x2(&mut rng);
            let v = sqrt_unitary_2x2(&u).unwrap();
            assert!(v.is_unitary(TOL), "sqrt not unitary");
            assert!(v.mul(&v).unwrap().approx_eq(&u, TOL), "sqrt² != U");
        }
    }
}
