//! Multi-controlled gates with mixed control polarities.
//!
//! Implements `C^k(U)` for an arbitrary single-qubit `U` using the
//! classic recursive √U construction (Barenco et al. \[5\] in the paper's
//! bibliography), plus a V-chain variant that exploits clean ancilla
//! qubits when the caller has them. Open (control-on-`|0⟩`) controls are
//! handled by X-conjugation.

use crate::synthesis::zyz::{sqrt_unitary_2x2, zyz_decompose};
use crate::{Circuit, CircuitError, Gate};
use qra_math::CMatrix;

/// The polarity of one control qubit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ControlState {
    /// The control activates on `|1⟩` (a filled dot in circuit diagrams).
    Closed,
    /// The control activates on `|0⟩` (an open dot in circuit diagrams).
    Open,
}

/// One control qubit with its polarity.
pub type Control = (usize, ControlState);

/// Appends a multi-controlled X with the given controls onto `target`.
///
/// With zero controls this is a plain X; one control emits a CX; two emit a
/// Toffoli (lowered later by the cost model); more recurse through
/// [`mc_unitary`].
///
/// # Errors
///
/// Propagates index validation errors from the circuit builder.
///
/// ```rust
/// use qra_circuit::{Circuit, synthesis::{mcx, ControlState}};
///
/// let mut c = Circuit::new(4);
/// mcx(&mut c, &[(0, ControlState::Closed), (1, ControlState::Open)], 3)?;
/// assert!(c.len() > 0);
/// # Ok::<(), qra_circuit::CircuitError>(())
/// ```
pub fn mcx(circuit: &mut Circuit, controls: &[Control], target: usize) -> Result<(), CircuitError> {
    mc_unitary(circuit, controls, target, &Gate::X.matrix())
}

/// Appends a multi-controlled Z with the given controls onto `target`.
///
/// # Errors
///
/// Propagates index validation errors from the circuit builder.
pub fn mcz(circuit: &mut Circuit, controls: &[Control], target: usize) -> Result<(), CircuitError> {
    mc_unitary(circuit, controls, target, &Gate::Z.matrix())
}

/// Appends a multi-controlled single-qubit unitary `u` to `circuit`.
///
/// Controls may mix polarities; open controls are conjugated with X gates.
/// The recursion is exact (no Trotterisation): `C^k(U)` is decomposed as
/// `CU(c_k→t, V) · MCX(c_1..c_{k−1}→c_k) · CU(c_k→t, V†) ·
/// MCX(c_1..c_{k−1}→c_k) · C^{k−1}(c_1..c_{k−1}→t, V)` with `V = √U`.
///
/// # Errors
///
/// Returns [`CircuitError::NotUnitary`] when `u` is not a 2×2 unitary, plus
/// the circuit builder's index errors.
pub fn mc_unitary(
    circuit: &mut Circuit,
    controls: &[Control],
    target: usize,
    u: &CMatrix,
) -> Result<(), CircuitError> {
    if u.shape() != (2, 2) || !u.is_unitary(1e-8) {
        return Err(CircuitError::NotUnitary { deviation: 1.0 });
    }
    // X-conjugate open controls so the core recursion only sees closed ones.
    let open: Vec<usize> = controls
        .iter()
        .filter(|(_, s)| *s == ControlState::Open)
        .map(|(q, _)| *q)
        .collect();
    for &q in &open {
        circuit.x(q);
    }
    let closed: Vec<usize> = controls.iter().map(|(q, _)| *q).collect();
    mc_unitary_closed(circuit, &closed, target, u)?;
    for &q in &open {
        circuit.x(q);
    }
    Ok(())
}

fn mc_unitary_closed(
    circuit: &mut Circuit,
    controls: &[usize],
    target: usize,
    u: &CMatrix,
) -> Result<(), CircuitError> {
    match controls.len() {
        0 => {
            apply_1q(circuit, target, u);
            Ok(())
        }
        1 => controlled_1q(circuit, controls[0], target, u),
        2 => {
            // Special-case the exact Toffoli/CCZ where possible; otherwise
            // run the generic √U recursion with k = 2.
            if u.approx_eq(&Gate::X.matrix(), 1e-12) {
                circuit.ccx(controls[0], controls[1], target);
                Ok(())
            } else if u.approx_eq(&Gate::Z.matrix(), 1e-12) {
                circuit.ccz(controls[0], controls[1], target);
                Ok(())
            } else {
                mc_unitary_recursive(circuit, controls, target, u)
            }
        }
        _ => mc_unitary_recursive(circuit, controls, target, u),
    }
}

fn mc_unitary_recursive(
    circuit: &mut Circuit,
    controls: &[usize],
    target: usize,
    u: &CMatrix,
) -> Result<(), CircuitError> {
    let k = controls.len();
    let v = sqrt_unitary_2x2(u)?;
    let v_dg = v.adjoint();
    let last = controls[k - 1];
    let rest = &controls[..k - 1];

    controlled_1q(circuit, last, target, &v)?;
    mc_unitary_closed(circuit, rest, last, &Gate::X.matrix())?;
    controlled_1q(circuit, last, target, &v_dg)?;
    mc_unitary_closed(circuit, rest, last, &Gate::X.matrix())?;
    mc_unitary_closed(circuit, rest, target, &v)?;
    Ok(())
}

/// Appends a singly-controlled arbitrary 1-qubit unitary using the
/// ABC (two-CX) decomposition; recognises CX/CZ/CP special cases so they
/// stay single entangling gates.
///
/// # Errors
///
/// Returns [`CircuitError::NotUnitary`] for bad `u` plus index errors.
pub fn controlled_1q(
    circuit: &mut Circuit,
    control: usize,
    target: usize,
    u: &CMatrix,
) -> Result<(), CircuitError> {
    const TOL: f64 = 1e-12;
    if u.approx_eq(&Gate::X.matrix(), TOL) {
        circuit.cx(control, target);
        return Ok(());
    }
    if u.approx_eq(&Gate::Z.matrix(), TOL) {
        circuit.cz(control, target);
        return Ok(());
    }
    if u.approx_eq(&Gate::I.matrix(), TOL) {
        return Ok(());
    }
    // Diagonal phase gate diag(1, e^{iλ}) → CP(λ); diag(e^{iμ}, e^{iν})
    // → CP(ν−μ) + P(μ) on the control.
    if u.get(0, 1).is_zero(TOL) && u.get(1, 0).is_zero(TOL) {
        let mu = u.get(0, 0).arg();
        let nu = u.get(1, 1).arg();
        if mu.abs() > TOL {
            circuit.p(mu, control);
        }
        let lambda = nu - mu;
        if lambda.abs() > TOL {
            circuit.cp(lambda, control, target);
        }
        return Ok(());
    }

    let angles = zyz_decompose(u)?;
    let (alpha, beta, gamma, delta) = (angles.alpha, angles.beta, angles.gamma, angles.delta);
    // C = Rz((δ−β)/2); B = Rz(−(δ+β)/2) then Ry(−γ/2); A = Ry(γ/2) then Rz(β).
    let c_angle = (delta - beta) / 2.0;
    if c_angle.abs() > TOL {
        circuit.rz(c_angle, target);
    }
    circuit.cx(control, target);
    let b1 = -(delta + beta) / 2.0;
    if b1.abs() > TOL {
        circuit.rz(b1, target);
    }
    if gamma.abs() > TOL {
        circuit.ry(-gamma / 2.0, target);
    }
    circuit.cx(control, target);
    if gamma.abs() > TOL {
        circuit.ry(gamma / 2.0, target);
    }
    if beta.abs() > TOL {
        circuit.rz(beta, target);
    }
    if alpha.abs() > TOL {
        circuit.p(alpha, control);
    }
    Ok(())
}

/// Applies an arbitrary single-qubit unitary via ZYZ rotations (up to the
/// global phase, which is unobservable for an uncontrolled gate).
pub fn apply_1q(circuit: &mut Circuit, qubit: usize, u: &CMatrix) {
    if let Ok(angles) = zyz_decompose(u) {
        angles.apply_to(circuit, qubit);
    } else {
        // Fall back to an opaque unitary; callers validated unitarity.
        let _ = circuit.unitary(u.clone(), &[qubit], "u1q");
    }
}

/// Appends a multi-controlled X using a V-chain of Toffolis over `ancillas`
/// (which must start in `|0⟩` and are returned to `|0⟩`). Requires
/// `ancillas.len() ≥ controls.len() − 2`; linear Toffoli count, matching
/// the linear-complexity decompositions cited by the paper (\[24\]).
///
/// # Errors
///
/// Returns [`CircuitError::Synthesis`] when too few ancillas are supplied,
/// plus the builder's index errors.
pub fn mcx_v_chain(
    circuit: &mut Circuit,
    controls: &[usize],
    target: usize,
    ancillas: &[usize],
) -> Result<(), CircuitError> {
    let k = controls.len();
    match k {
        0 => {
            circuit.x(target);
            return Ok(());
        }
        1 => {
            circuit.cx(controls[0], target);
            return Ok(());
        }
        2 => {
            circuit.ccx(controls[0], controls[1], target);
            return Ok(());
        }
        _ => {}
    }
    let needed = k - 2;
    if ancillas.len() < needed {
        return Err(CircuitError::Synthesis {
            reason: format!(
                "v-chain mcx with {k} controls needs {needed} ancillas, got {}",
                ancillas.len()
            ),
        });
    }
    // Compute chain: a_0 = c_0 ∧ c_1; a_i = a_{i−1} ∧ c_{i+1}.
    circuit.ccx(controls[0], controls[1], ancillas[0]);
    for i in 0..k - 3 {
        circuit.ccx(ancillas[i], controls[i + 2], ancillas[i + 1]);
    }
    circuit.ccx(ancillas[needed - 1], controls[k - 1], target);
    // Uncompute.
    for i in (0..k - 3).rev() {
        circuit.ccx(ancillas[i], controls[i + 2], ancillas[i + 1]);
    }
    circuit.ccx(controls[0], controls[1], ancillas[0]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_math::CVector;

    const TOL: f64 = 1e-9;

    /// Reference matrix of an MCU with closed controls `controls`, computed
    /// directly: identity except the block where all controls are set.
    fn reference_mcu(n: usize, controls: &[Control], target: usize, u: &CMatrix) -> CMatrix {
        let dim = 1usize << n;
        let mut out = CMatrix::identity(dim);
        for col in 0..dim {
            let active = controls.iter().all(|&(q, s)| {
                let bit = (col >> (n - 1 - q)) & 1;
                match s {
                    ControlState::Closed => bit == 1,
                    ControlState::Open => bit == 0,
                }
            });
            if !active {
                continue;
            }
            let tbit = (col >> (n - 1 - target)) & 1;
            let flipped = col ^ (1usize << (n - 1 - target));
            out.set(col, col, u.get(tbit, tbit));
            out.set(flipped, col, u.get(1 - tbit, tbit));
            out.set(col, flipped, u.get(tbit, 1 - tbit));
            out.set(flipped, flipped, u.get(1 - tbit, 1 - tbit));
        }
        out
    }

    #[test]
    fn controlled_1q_matches_reference_gates() {
        for u in [
            Gate::X.matrix(),
            Gate::Z.matrix(),
            Gate::H.matrix(),
            Gate::S.matrix(),
            Gate::Rz(0.7).matrix(),
            Gate::U3(0.9, 0.3, -1.1).matrix(),
            Gate::Phase(1.3).matrix(),
        ] {
            let mut c = Circuit::new(2);
            controlled_1q(&mut c, 0, 1, &u).unwrap();
            let expect = reference_mcu(2, &[(0, ControlState::Closed)], 1, &u);
            assert!(
                c.unitary_matrix().unwrap().approx_eq(&expect, TOL),
                "controlled_1q mismatch"
            );
        }
    }

    #[test]
    fn controlled_1q_reversed_order() {
        let u = Gate::U3(1.0, 0.5, 0.2).matrix();
        let mut c = Circuit::new(2);
        controlled_1q(&mut c, 1, 0, &u).unwrap();
        let expect = reference_mcu(2, &[(1, ControlState::Closed)], 0, &u);
        assert!(c.unitary_matrix().unwrap().approx_eq(&expect, TOL));
    }

    #[test]
    fn mcx_two_controls_is_toffoli() {
        let mut c = Circuit::new(3);
        mcx(
            &mut c,
            &[(0, ControlState::Closed), (1, ControlState::Closed)],
            2,
        )
        .unwrap();
        assert_eq!(c.len(), 1);
        assert!(c
            .unitary_matrix()
            .unwrap()
            .approx_eq(&Gate::Ccx.matrix(), TOL));
    }

    #[test]
    fn mcx_three_and_four_controls() {
        for k in [3usize, 4] {
            let n = k + 1;
            let controls: Vec<Control> = (0..k).map(|q| (q, ControlState::Closed)).collect();
            let mut c = Circuit::new(n);
            mcx(&mut c, &controls, k).unwrap();
            let expect = reference_mcu(n, &controls, k, &Gate::X.matrix());
            assert!(
                c.unitary_matrix().unwrap().approx_eq(&expect, TOL),
                "mcx with {k} controls wrong"
            );
        }
    }

    #[test]
    fn mcx_with_open_controls() {
        let controls = [
            (0, ControlState::Open),
            (1, ControlState::Closed),
            (2, ControlState::Open),
        ];
        let mut c = Circuit::new(4);
        mcx(&mut c, &controls, 3).unwrap();
        let expect = reference_mcu(4, &controls, 3, &Gate::X.matrix());
        assert!(c.unitary_matrix().unwrap().approx_eq(&expect, TOL));
        // Sanity on a state: |0100⟩ should flip the target.
        let sv = {
            let mut full = Circuit::new(4);
            full.x(1);
            full.compose(&c, &[0, 1, 2, 3], &[]).unwrap();
            full.statevector().unwrap()
        };
        assert!(sv.approx_eq(&CVector::basis_state(16, 0b0101), TOL));
    }

    #[test]
    fn mc_unitary_arbitrary_gate_three_controls() {
        let u = Gate::U3(0.8, 1.9, -0.3).matrix();
        let controls: Vec<Control> = (0..3).map(|q| (q, ControlState::Closed)).collect();
        let mut c = Circuit::new(4);
        mc_unitary(&mut c, &controls, 3, &u).unwrap();
        let expect = reference_mcu(4, &controls, 3, &u);
        assert!(c.unitary_matrix().unwrap().approx_eq(&expect, TOL));
    }

    #[test]
    fn mcz_symmetry() {
        let controls = [(0, ControlState::Closed), (1, ControlState::Closed)];
        let mut c = Circuit::new(3);
        mcz(&mut c, &controls, 2).unwrap();
        let expect = reference_mcu(3, &controls, 2, &Gate::Z.matrix());
        assert!(c.unitary_matrix().unwrap().approx_eq(&expect, TOL));
    }

    #[test]
    fn mc_unitary_zero_controls_applies_gate() {
        let u = Gate::H.matrix();
        let mut c = Circuit::new(1);
        mc_unitary(&mut c, &[], 0, &u).unwrap();
        assert!(c.unitary_matrix().unwrap().approx_eq_up_to_phase(&u, TOL));
    }

    #[test]
    fn mc_unitary_rejects_bad_matrix() {
        let mut c = Circuit::new(2);
        let bad = CMatrix::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        assert!(mc_unitary(&mut c, &[(0, ControlState::Closed)], 1, &bad).is_err());
    }

    #[test]
    fn v_chain_matches_reference_on_clean_ancillas() {
        // 4 controls, 2 ancillas, 1 target = 7 qubits. The v-chain is only
        // guaranteed for clean |0⟩ ancillas, so compare column-by-column on
        // basis states whose ancilla bits are zero.
        let controls = [0usize, 1, 2, 3];
        let mut c = Circuit::new(7);
        mcx_v_chain(&mut c, &controls, 4, &[5, 6]).unwrap();
        let ctrl: Vec<Control> = controls
            .iter()
            .map(|&q| (q, ControlState::Closed))
            .collect();
        let expect = reference_mcu(7, &ctrl, 4, &Gate::X.matrix());
        let got = c.unitary_matrix().unwrap();
        for col in 0..(1usize << 7) {
            // Ancillas are qubits 5, 6 → bits 1 and 0 of the index.
            if col & 0b11 != 0 {
                continue;
            }
            let input = CVector::basis_state(1 << 7, col);
            let a = got.mul_vec(&input);
            let b = expect.mul_vec(&input);
            assert!(a.approx_eq(&b, TOL), "mismatch at basis column {col}");
        }
    }

    #[test]
    fn v_chain_requires_enough_ancillas() {
        let mut c = Circuit::new(6);
        assert!(mcx_v_chain(&mut c, &[0, 1, 2, 3], 4, &[5]).is_err());
    }

    #[test]
    fn v_chain_small_cases() {
        let mut c = Circuit::new(2);
        mcx_v_chain(&mut c, &[0], 1, &[]).unwrap();
        assert!(c
            .unitary_matrix()
            .unwrap()
            .approx_eq(&Gate::Cx.matrix(), TOL));
        let mut c = Circuit::new(1);
        mcx_v_chain(&mut c, &[], 0, &[]).unwrap();
        assert!(c
            .unitary_matrix()
            .unwrap()
            .approx_eq(&Gate::X.matrix(), TOL));
    }
}
