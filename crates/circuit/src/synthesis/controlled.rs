//! Adding a control qubit to an entire circuit.
//!
//! Used by the assertion planners to build multiplexed state preparations
//! (`prepare φ₀ when the selector is |0⟩, φ₁ when it is |1⟩`) out of the
//! uncontrolled preparation circuits.

use crate::synthesis::mc_gate::{controlled_1q, mc_unitary, Control, ControlState};
use crate::{Circuit, CircuitError, Gate, Operation};

/// Returns a circuit equivalent to `circuit` with every gate controlled on
/// `control` having the given `polarity`. The output circuit has the same
/// qubit indexing as the input; `control` must not be acted on by
/// `circuit`.
///
/// # Errors
///
/// * [`CircuitError::DuplicateQubit`] when `circuit` touches `control`;
/// * [`CircuitError::NonUnitaryOperation`] for measurements/resets;
/// * synthesis errors for exotic gates.
///
/// ```rust
/// use qra_circuit::{Circuit, synthesis::controlled::controlled_circuit};
/// use qra_circuit::synthesis::ControlState;
///
/// let mut inner = Circuit::new(2);
/// inner.h(1);
/// let ctrl = controlled_circuit(&inner, 0, ControlState::Closed)?;
/// // Acts as CH: |00⟩ stays, |10⟩ → |1⟩|+⟩.
/// let sv = {
///     let mut c = Circuit::new(2);
///     c.x(0);
///     c.compose(&ctrl, &[0, 1], &[])?;
///     c.statevector()?
/// };
/// assert!((sv.probability(0b10) - 0.5).abs() < 1e-9);
/// # Ok::<(), qra_circuit::CircuitError>(())
/// ```
pub fn controlled_circuit(
    circuit: &Circuit,
    control: usize,
    polarity: ControlState,
) -> Result<Circuit, CircuitError> {
    let n = circuit.num_qubits().max(control + 1);
    let mut out = Circuit::with_clbits(n, circuit.num_clbits());
    if polarity == ControlState::Open {
        out.x(control);
    }
    for inst in circuit.instructions() {
        if inst.qubits.contains(&control) {
            return Err(CircuitError::DuplicateQubit { qubit: control });
        }
        match &inst.operation {
            Operation::Barrier => {}
            Operation::Measure => {
                return Err(CircuitError::NonUnitaryOperation {
                    operation: "measure",
                })
            }
            Operation::Reset => {
                return Err(CircuitError::NonUnitaryOperation { operation: "reset" })
            }
            Operation::Gate(g) => {
                append_controlled_gate(&mut out, g, &inst.qubits, control)?;
            }
        }
    }
    if polarity == ControlState::Open {
        out.x(control);
    }
    Ok(out)
}

fn append_controlled_gate(
    out: &mut Circuit,
    gate: &Gate,
    qubits: &[usize],
    control: usize,
) -> Result<(), CircuitError> {
    match gate {
        // One-qubit gates → singly controlled.
        g if g.num_qubits() == 1 => controlled_1q(out, control, qubits[0], &g.matrix()),
        // Native promotions.
        Gate::Cx => {
            out.ccx(control, qubits[0], qubits[1]);
            Ok(())
        }
        Gate::Cz => {
            out.ccz(control, qubits[0], qubits[1]);
            Ok(())
        }
        Gate::Swap => {
            out.append(Gate::Cswap, &[control, qubits[0], qubits[1]])?;
            Ok(())
        }
        // Controlled rotations gain a second control via the √U recursion.
        Gate::Cp(_)
        | Gate::Crx(_)
        | Gate::Cry(_)
        | Gate::Crz(_)
        | Gate::Cu3(_, _, _)
        | Gate::Cy
        | Gate::Ch => {
            let base = base_of_controlled(gate)?;
            let controls: [Control; 2] = [
                (control, ControlState::Closed),
                (qubits[0], ControlState::Closed),
            ];
            mc_unitary(out, &controls, qubits[1], &base)
        }
        Gate::Ccx => {
            let controls: [Control; 3] = [
                (control, ControlState::Closed),
                (qubits[0], ControlState::Closed),
                (qubits[1], ControlState::Closed),
            ];
            mc_unitary(out, &controls, qubits[2], &Gate::X.matrix())
        }
        Gate::Ccz => {
            let controls: [Control; 3] = [
                (control, ControlState::Closed),
                (qubits[0], ControlState::Closed),
                (qubits[1], ControlState::Closed),
            ];
            mc_unitary(out, &controls, qubits[2], &Gate::Z.matrix())
        }
        other => Err(CircuitError::Synthesis {
            reason: format!("cannot add a control to gate {other}"),
        }),
    }
}

/// The single-qubit base of a controlled gate.
fn base_of_controlled(gate: &Gate) -> Result<qra_math::CMatrix, CircuitError> {
    Ok(match gate {
        Gate::Cp(l) => Gate::Phase(*l).matrix(),
        Gate::Crx(t) => Gate::Rx(*t).matrix(),
        Gate::Cry(t) => Gate::Ry(*t).matrix(),
        Gate::Crz(t) => Gate::Rz(*t).matrix(),
        Gate::Cu3(t, p, l) => Gate::U3(*t, *p, *l).matrix(),
        Gate::Cy => Gate::Y.matrix(),
        Gate::Ch => Gate::H.matrix(),
        other => {
            return Err(CircuitError::Synthesis {
                reason: format!("{other} is not a controlled one-qubit gate"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_math::{CMatrix, CVector};

    const TOL: f64 = 1e-9;

    /// Reference: controlled version via the full matrix.
    fn reference(circuit: &Circuit, control: usize, polarity: ControlState) -> CMatrix {
        let n = circuit.num_qubits().max(control + 1);
        let dim = 1usize << n;
        let inner = {
            // Embed the inner circuit into n qubits.
            let mut wide = Circuit::new(n);
            let map: Vec<usize> = (0..circuit.num_qubits()).collect();
            wide.compose(circuit, &map, &[]).unwrap();
            wide.unitary_matrix().unwrap()
        };
        CMatrix::from_fn(dim, dim, |r, c| {
            let cb_r = (r >> (n - 1 - control)) & 1;
            let cb_c = (c >> (n - 1 - control)) & 1;
            let active = match polarity {
                ControlState::Closed => 1,
                ControlState::Open => 0,
            };
            if cb_r != cb_c {
                qra_math::C64::zero()
            } else if cb_r == active {
                inner.get(r, c)
            } else if r == c {
                qra_math::C64::one()
            } else {
                // Off-diagonal in the inactive block only when the inner
                // matrix is identity there — compute directly.
                if (r & !(1 << (n - 1 - control))) == (c & !(1 << (n - 1 - control))) && r == c {
                    qra_math::C64::one()
                } else {
                    qra_math::C64::zero()
                }
            }
        })
    }

    #[test]
    fn controls_a_mixed_gate_circuit() {
        let mut inner = Circuit::new(3);
        inner.h(1).cx(1, 2).rz(0.7, 2).swap(1, 2).cp(0.4, 1, 2);
        let got = controlled_circuit(&inner, 0, ControlState::Closed).unwrap();
        let expect = reference(&inner, 0, ControlState::Closed);
        assert!(got.unitary_matrix().unwrap().approx_eq(&expect, TOL));
    }

    #[test]
    fn open_polarity() {
        let mut inner = Circuit::new(2);
        inner.x(1);
        let got = controlled_circuit(&inner, 0, ControlState::Open).unwrap();
        // |00⟩ → |01⟩ (control open fires), |10⟩ stays.
        let u = got.unitary_matrix().unwrap();
        let sv = u.mul_vec(&CVector::basis_state(4, 0));
        assert!(sv.approx_eq(&CVector::basis_state(4, 1), TOL));
        let sv = u.mul_vec(&CVector::basis_state(4, 2));
        assert!(sv.approx_eq(&CVector::basis_state(4, 2), TOL));
    }

    #[test]
    fn control_can_be_a_fresh_top_qubit() {
        // control index beyond the inner circuit's width.
        let mut inner = Circuit::new(1);
        inner.h(0);
        let got = controlled_circuit(&inner, 1, ControlState::Closed).unwrap();
        assert_eq!(got.num_qubits(), 2);
        let u = got.unitary_matrix().unwrap();
        // |01⟩ (control=q1 set) → H on q0.
        let sv = u.mul_vec(&CVector::basis_state(4, 1));
        assert!((sv.probability(0b01) - 0.5).abs() < TOL);
        assert!((sv.probability(0b11) - 0.5).abs() < TOL);
    }

    #[test]
    fn rejects_control_overlap_and_measures() {
        let mut inner = Circuit::new(2);
        inner.cx(0, 1);
        assert!(controlled_circuit(&inner, 0, ControlState::Closed).is_err());
        let mut measured = Circuit::with_clbits(1, 1);
        measured.measure(0, 0).unwrap();
        assert!(controlled_circuit(&measured, 1, ControlState::Closed).is_err());
    }

    #[test]
    fn toffoli_promotion() {
        let mut inner = Circuit::new(3);
        inner.ccx(0, 1, 2);
        let got = controlled_circuit(&inner, 3, ControlState::Closed).unwrap();
        let expect = reference(&inner, 3, ControlState::Closed);
        assert!(got.unitary_matrix().unwrap().approx_eq(&expect, TOL));
    }
}
