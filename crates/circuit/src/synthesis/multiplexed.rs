//! Uniformly-controlled (multiplexed) rotations.
//!
//! A multiplexed rotation applies `R(θ_p)` to the target for each basis
//! pattern `p` of the control qubits. It decomposes exactly into `2^k`
//! CNOTs and `2^k` rotations via the Walsh–Hadamard / Gray-code
//! construction, and is the work-horse of the state-preparation synthesis
//! (`O(2ⁿ)` CX, matching the paper's cited bound \[36\]).

use crate::{Circuit, CircuitError};

/// The rotation axis of a multiplexed rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationAxis {
    /// Rotation about Y.
    Y,
    /// Rotation about Z.
    Z,
}

/// Appends a multiplexed `Ry` to `circuit`: for each computational pattern
/// `p` of `controls` (with `controls[0]` the most significant pattern bit),
/// the target receives `Ry(angles[p])`.
///
/// # Errors
///
/// Returns [`CircuitError::ArityMismatch`] when `angles.len() != 2^k`, plus
/// the circuit builder's index errors.
///
/// ```rust
/// use qra_circuit::{Circuit, synthesis::multiplexed_ry};
///
/// let mut c = Circuit::new(2);
/// multiplexed_ry(&mut c, &[0], 1, &[0.3, 1.2])?;
/// # Ok::<(), qra_circuit::CircuitError>(())
/// ```
pub fn multiplexed_ry(
    circuit: &mut Circuit,
    controls: &[usize],
    target: usize,
    angles: &[f64],
) -> Result<(), CircuitError> {
    multiplexed_rotation(circuit, controls, target, angles, RotationAxis::Y)
}

/// Appends a multiplexed `Rz`; see [`multiplexed_ry`].
///
/// # Errors
///
/// Same conditions as [`multiplexed_ry`].
pub fn multiplexed_rz(
    circuit: &mut Circuit,
    controls: &[usize],
    target: usize,
    angles: &[f64],
) -> Result<(), CircuitError> {
    multiplexed_rotation(circuit, controls, target, angles, RotationAxis::Z)
}

/// Shared implementation for both axes.
///
/// # Errors
///
/// See [`multiplexed_ry`].
pub fn multiplexed_rotation(
    circuit: &mut Circuit,
    controls: &[usize],
    target: usize,
    angles: &[f64],
    axis: RotationAxis,
) -> Result<(), CircuitError> {
    let k = controls.len();
    let patterns = 1usize << k;
    if angles.len() != patterns {
        return Err(CircuitError::ArityMismatch {
            gate: "multiplexed rotation".into(),
            expected: patterns,
            actual: angles.len(),
        });
    }

    let rot = |c: &mut Circuit, theta: f64| {
        if theta.abs() > 1e-13 {
            match axis {
                RotationAxis::Y => {
                    c.ry(theta, target);
                }
                RotationAxis::Z => {
                    c.rz(theta, target);
                }
            }
        }
    };

    if k == 0 {
        rot(circuit, angles[0]);
        return Ok(());
    }

    // Transformed angles: θ̂_j = 2^{-k} Σ_p (-1)^{⟨gray(j), p⟩} θ_p,
    // where ⟨·,·⟩ is the bitwise inner product mod 2.
    let gray = |x: usize| x ^ (x >> 1);
    let scale = 1.0 / patterns as f64;
    let transformed: Vec<f64> = (0..patterns)
        .map(|j| {
            let g = gray(j);
            (0..patterns)
                .map(|p| {
                    let sign = if ((g & p).count_ones() & 1) == 1 {
                        -1.0
                    } else {
                        1.0
                    };
                    sign * angles[p]
                })
                .sum::<f64>()
                * scale
        })
        .collect();

    // Emit R(θ̂_j) followed by a CX whose control sits at the bit where
    // gray(j) and gray(j+1) differ; the final CX closes the cycle back to
    // gray(0) = 0 (difference at the most significant bit).
    let mut pending_cx: Option<usize> = None;
    for (j, &theta) in transformed.iter().enumerate() {
        if let Some(ctrl) = pending_cx.take() {
            circuit.cx(ctrl, target);
        }
        rot(circuit, theta);
        let lsb_index = if j + 1 == patterns {
            k - 1 // wrap-around: highest pattern bit
        } else {
            (j + 1).trailing_zeros() as usize
        };
        // Pattern bit `b` (from LSB) corresponds to controls[k-1-b].
        pending_cx = Some(controls[k - 1 - lsb_index]);
    }
    if let Some(ctrl) = pending_cx {
        circuit.cx(ctrl, target);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::embed;
    use crate::Gate;
    use qra_math::CMatrix;
    use rand::{Rng, SeedableRng};

    const TOL: f64 = 1e-9;

    /// Reference block-diagonal multiplexed rotation matrix on `k+1` qubits
    /// with controls `0..k` and target `k`.
    fn reference(k: usize, angles: &[f64], axis: RotationAxis) -> CMatrix {
        let n = k + 1;
        let dim = 1usize << n;
        let mut m = CMatrix::zeros(dim, dim);
        for (p, &angle) in angles.iter().enumerate().take(1usize << k) {
            let block = match axis {
                RotationAxis::Y => Gate::Ry(angle).matrix(),
                RotationAxis::Z => Gate::Rz(angle).matrix(),
            };
            // Target is the least significant bit.
            for tb_r in 0..2 {
                for tb_c in 0..2 {
                    m.set(p * 2 + tb_r, p * 2 + tb_c, block.get(tb_r, tb_c));
                }
            }
        }
        m
    }

    fn check(k: usize, angles: &[f64], axis: RotationAxis) {
        let n = k + 1;
        let controls: Vec<usize> = (0..k).collect();
        let mut c = Circuit::new(n);
        multiplexed_rotation(&mut c, &controls, k, angles, axis).unwrap();
        let expect = reference(k, angles, axis);
        let got = c.unitary_matrix().unwrap();
        assert!(
            got.approx_eq(&expect, TOL),
            "multiplexed {axis:?} mismatch for k={k}"
        );
        // CX count is at most 2^k (zero-rotation cancellations may reduce it).
        let cx = c
            .instructions()
            .iter()
            .filter(|i| i.as_gate().is_some_and(|g| g.name() == "cx"))
            .count();
        assert!(cx <= 1 << k, "too many CX: {cx} for k={k}");
    }

    #[test]
    fn single_control_both_axes() {
        check(1, &[0.3, 1.7], RotationAxis::Y);
        check(1, &[-0.4, 0.9], RotationAxis::Z);
    }

    #[test]
    fn two_controls() {
        check(2, &[0.1, 0.2, 0.3, 0.4], RotationAxis::Y);
        check(2, &[1.0, -1.0, 0.5, 0.25], RotationAxis::Z);
    }

    #[test]
    fn three_controls_random_angles() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let angles: Vec<f64> = (0..8).map(|_| rng.gen_range(-3.0..3.0)).collect();
            check(3, &angles, RotationAxis::Y);
            check(3, &angles, RotationAxis::Z);
        }
    }

    #[test]
    fn zero_controls_is_plain_rotation() {
        let mut c = Circuit::new(1);
        multiplexed_ry(&mut c, &[], 0, &[0.77]).unwrap();
        assert!(c
            .unitary_matrix()
            .unwrap()
            .approx_eq(&Gate::Ry(0.77).matrix(), TOL));
    }

    #[test]
    fn uniform_angles_reduce_to_single_rotation_matrix() {
        // All angles equal → acts as unconditional rotation on the target.
        let mut c = Circuit::new(3);
        multiplexed_ry(&mut c, &[0, 1], 2, &[0.9, 0.9, 0.9, 0.9]).unwrap();
        let expect = embed(&Gate::Ry(0.9).matrix(), &[2], 3);
        assert!(c.unitary_matrix().unwrap().approx_eq(&expect, TOL));
    }

    #[test]
    fn rejects_wrong_angle_count() {
        let mut c = Circuit::new(2);
        assert!(multiplexed_ry(&mut c, &[0], 1, &[0.1]).is_err());
    }

    #[test]
    fn nonadjacent_controls_and_target() {
        // Controls (2, 0), target 1 — scrambled order on 3 qubits.
        let angles = [0.2, 0.4, 0.6, 0.8];
        let mut c = Circuit::new(3);
        multiplexed_ry(&mut c, &[2, 0], 1, &angles).unwrap();
        let got = c.unitary_matrix().unwrap();
        // Build reference by embedding each controlled block directly.
        let dim = 8;
        let mut expect = CMatrix::zeros(dim, dim);
        for idx_c2 in 0..2 {
            for idx_c0 in 0..2 {
                let p = idx_c2 * 2 + idx_c0; // controls[0]=q2 is MSB of pattern
                let block = Gate::Ry(angles[p]).matrix();
                for tr in 0..2 {
                    for tc in 0..2 {
                        let row = idx_c0 * 4 + tr * 2 + idx_c2;
                        let col = idx_c0 * 4 + tc * 2 + idx_c2;
                        expect.set(row, col, block.get(tr, tc));
                    }
                }
            }
        }
        assert!(got.approx_eq(&expect, TOL));
    }
}
