//! Arbitrary-unitary synthesis via two-level (Givens) decomposition.
//!
//! Any `d×d` unitary factors into at most `d(d−1)/2` two-level unitaries
//! plus a diagonal of phases. Each two-level unitary is routed through a
//! Gray-code sequence of multi-controlled X permutations onto a fully
//! controlled single-qubit gate. The CX count is `O(4ⁿ)`, the general
//! bound the paper cites; special states hit the fast paths in the sibling
//! modules instead.

use crate::synthesis::mc_gate::{mc_unitary, mcx, Control, ControlState};
use crate::{Circuit, CircuitError, Gate};
use qra_math::{CMatrix, C64};

const TOL: f64 = 1e-10;

/// Synthesises a circuit implementing `u` on `n = log₂(dim)` qubits
/// (exact up to global phase).
///
/// # Errors
///
/// * [`CircuitError::NotUnitary`] when `u` is not unitary;
/// * [`CircuitError::Math`] when the dimension is not a power of two.
///
/// ```rust
/// use qra_circuit::{Gate, synthesis::unitary_circuit};
///
/// let cx = Gate::Cx.matrix();
/// let c = unitary_circuit(&cx)?;
/// assert!(c.unitary_matrix()?.approx_eq_up_to_phase(&cx, 1e-8));
/// # Ok::<(), qra_circuit::CircuitError>(())
/// ```
pub fn unitary_circuit(u: &CMatrix) -> Result<Circuit, CircuitError> {
    let n = qra_math::qubits_for_dim(u.rows())?;
    if !u.is_unitary(1e-8) {
        return Err(CircuitError::NotUnitary { deviation: 1.0 });
    }

    // Fast path: single qubit.
    if n == 1 {
        let mut c = Circuit::new(1);
        crate::synthesis::mc_gate::apply_1q(&mut c, 0, u);
        return Ok(c);
    }
    // Fast path: diagonal ±1.
    if let Some(signs) = crate::synthesis::diagonal::is_diagonal_pm_one(u, TOL) {
        let mut c = Circuit::new(n);
        let qubits: Vec<usize> = (0..n).collect();
        crate::synthesis::diagonal::diagonal_pm_one(&mut c, &qubits, &signs)?;
        return Ok(c);
    }
    // Fast path: tensor product of single-qubit gates.
    if let Some(factors) = crate::synthesis::diagonal::try_factor_tensor(u) {
        let mut c = Circuit::new(n);
        for (q, f) in factors.iter().enumerate() {
            crate::synthesis::mc_gate::apply_1q(&mut c, q, f);
        }
        return Ok(c);
    }

    general_two_level(u, n)
}

/// A two-level operation acting on basis indices `i < j` with a 2×2 block.
#[derive(Debug, Clone)]
struct TwoLevel {
    i: usize,
    j: usize,
    block: CMatrix,
}

fn general_two_level(u: &CMatrix, n: usize) -> Result<Circuit, CircuitError> {
    let d = u.rows();
    let mut work = u.clone();
    let mut ops: Vec<TwoLevel> = Vec::new();

    // Reduce `work` to a diagonal of phases with left-multiplied two-level
    // Givens rotations: G_m … G_1 · U = D. Then U = G_1† … G_m† · D.
    for col in 0..d {
        for row in (col + 1)..d {
            let b = work.get(row, col);
            if b.norm() <= TOL {
                continue;
            }
            let a = work.get(col, col);
            let s = (a.norm_sqr() + b.norm_sqr()).sqrt();
            // V = [[a*, b*], [−b, a]]/s zeroes (row,col) and makes (col,col)=s.
            let v = CMatrix::new(2, 2, vec![a.conj() / s, b.conj() / s, -b / s, a / s]);
            apply_two_level_left(&mut work, col, row, &v);
            ops.push(TwoLevel {
                i: col,
                j: row,
                block: v,
            });
        }
    }

    // `work` is now diagonal with unit-modulus phases. Fold the phases into
    // two-level diagonal ops (pairing each index with index 0).
    let mut phases: Vec<f64> = (0..d).map(|i| work.get(i, i).arg()).collect();
    // A global phase is unobservable: subtract phases[0].
    let p0 = phases[0];
    for p in phases.iter_mut() {
        *p -= p0;
    }

    let mut circuit = Circuit::new(n);
    // Emit U = (Π G_k†, reversed) · D; circuit order is D first.
    // D as two-level diagonals diag(1, e^{iφ_j}) on pairs (0, j).
    for (j, &phi) in phases.iter().enumerate().skip(1) {
        if phi.abs() > TOL {
            let block = CMatrix::diagonal(&[C64::one(), C64::cis(phi)]);
            emit_two_level(&mut circuit, n, 0, j, &block)?;
        }
    }
    for op in ops.iter().rev() {
        emit_two_level(&mut circuit, n, op.i, op.j, &op.block.adjoint())?;
    }
    Ok(circuit)
}

/// Left-multiplies `m` by the two-level unitary acting on rows `i`, `j`.
fn apply_two_level_left(m: &mut CMatrix, i: usize, j: usize, v: &CMatrix) {
    for c in 0..m.cols() {
        let mi = m.get(i, c);
        let mj = m.get(j, c);
        m.set(i, c, v.get(0, 0) * mi + v.get(0, 1) * mj);
        m.set(j, c, v.get(1, 0) * mi + v.get(1, 1) * mj);
    }
}

/// Emits the circuit for a two-level unitary acting on basis states `i`
/// (role `|0⟩`) and `j` (role `|1⟩`) with the given 2×2 block.
fn emit_two_level(
    circuit: &mut Circuit,
    n: usize,
    i: usize,
    j: usize,
    block: &CMatrix,
) -> Result<(), CircuitError> {
    debug_assert_ne!(i, j);
    // Gray-code walk from i towards j, leaving one differing bit.
    let diff = i ^ j;
    let diff_bits: Vec<usize> = (0..n).filter(|b| (diff >> b) & 1 == 1).collect(); // LSB order
    let target_bit = *diff_bits.last().expect("i != j");
    let steps: &[usize] = &diff_bits[..diff_bits.len() - 1];

    // Permutations moving i through the Gray path; record for undo.
    let mut current = i;
    let mut perms: Vec<(Vec<Control>, usize)> = Vec::new();
    for &bit in steps {
        // MCX flipping `bit`, controlled on all other bits matching `current`.
        let controls: Vec<Control> = (0..n)
            .filter(|&b| b != bit)
            .map(|b| {
                let qubit = n - 1 - b;
                let state = if (current >> b) & 1 == 1 {
                    ControlState::Closed
                } else {
                    ControlState::Open
                };
                (qubit, state)
            })
            .collect();
        let target = n - 1 - bit;
        mcx(circuit, &controls, target)?;
        perms.push((controls, target));
        current ^= 1 << bit;
    }

    // Now `current` and `j` differ only at `target_bit`.
    debug_assert_eq!(current ^ j, 1 << target_bit);
    // Role: `current` carries the i-amplitude. If its target bit is 1 the
    // block's basis roles are swapped: conjugate with X.
    let block_adj = if (current >> target_bit) & 1 == 1 {
        let x = Gate::X.matrix();
        x.mul(block)
            .and_then(|m| m.mul(&x))
            .map_err(CircuitError::Math)?
    } else {
        block.clone()
    };
    let controls: Vec<Control> = (0..n)
        .filter(|&b| b != target_bit)
        .map(|b| {
            let qubit = n - 1 - b;
            let state = if (j >> b) & 1 == 1 {
                ControlState::Closed
            } else {
                ControlState::Open
            };
            (qubit, state)
        })
        .collect();
    mc_unitary(circuit, &controls, n - 1 - target_bit, &block_adj)?;

    // Undo the permutations.
    for (controls, target) in perms.iter().rev() {
        mcx(circuit, controls, *target)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_unitary(n: usize, rng: &mut impl Rng) -> CMatrix {
        // QR-free Haar-ish unitary: Gram-Schmidt on a random complex matrix.
        let d = 1usize << n;
        let cols: Vec<qra_math::CVector> = (0..d)
            .map(|_| {
                qra_math::CVector::new(
                    (0..d)
                        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
                        .collect(),
                )
            })
            .collect();
        let basis = qra_math::orthonormalize(&cols).unwrap();
        assert_eq!(basis.len(), d, "random matrix was singular");
        CMatrix::from_fn(d, d, |r, c| basis[c].amplitude(r))
    }

    fn roundtrip(u: &CMatrix) {
        let c = unitary_circuit(u).unwrap();
        let got = c.unitary_matrix().unwrap();
        assert!(
            got.approx_eq_up_to_phase(u, 1e-7),
            "two-level synthesis mismatch (dim {})",
            u.rows()
        );
    }

    #[test]
    fn synthesizes_cx_and_swap() {
        roundtrip(&Gate::Cx.matrix());
        roundtrip(&Gate::Swap.matrix());
        roundtrip(&Gate::Cz.matrix());
    }

    #[test]
    fn synthesizes_single_qubit() {
        roundtrip(&Gate::H.matrix());
        roundtrip(&Gate::U3(0.7, 0.2, 1.9).matrix());
    }

    #[test]
    fn synthesizes_bell_basis_change() {
        // The Bell-basis U⁻¹ of the paper's §IV-B: CX then H on control —
        // reconstructed here as a raw matrix.
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(0);
        let u = c.unitary_matrix().unwrap();
        roundtrip(&u);
    }

    #[test]
    fn synthesizes_random_two_qubit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..5 {
            roundtrip(&random_unitary(2, &mut rng));
        }
    }

    #[test]
    fn synthesizes_random_three_qubit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        for _ in 0..2 {
            roundtrip(&random_unitary(3, &mut rng));
        }
    }

    #[test]
    fn diagonal_phases_only() {
        let d = CMatrix::diagonal(&[C64::one(), C64::cis(0.4), C64::cis(-1.3), C64::cis(2.2)]);
        roundtrip(&d);
    }

    #[test]
    fn permutation_matrix() {
        // A 3-cycle on basis states 0→1→2→0 (and 3 fixed).
        let mut p = CMatrix::zeros(4, 4);
        p.set(1, 0, C64::one());
        p.set(2, 1, C64::one());
        p.set(0, 2, C64::one());
        p.set(3, 3, C64::one());
        roundtrip(&p);
    }

    #[test]
    fn rejects_non_unitary() {
        let bad = CMatrix::from_real(2, 2, &[1.0, 1.0, 0.0, 1.0]);
        assert!(unitary_circuit(&bad).is_err());
        assert!(unitary_circuit(&CMatrix::identity(3)).is_err());
    }

    #[test]
    fn identity_synthesizes_to_empty_or_trivial() {
        let c = unitary_circuit(&CMatrix::identity(4)).unwrap();
        let got = c.unitary_matrix().unwrap();
        assert!(got.approx_eq_up_to_phase(&CMatrix::identity(4), 1e-9));
    }
}
