//! Specialized state-vector gate kernels.
//!
//! [`apply_gate_inplace`](crate::circuit::apply_gate_inplace) treats every
//! gate as a dense `2ᵏ × 2ᵏ` matrix and pays the full `4ᵏ` complex
//! multiply-accumulate per sub-block. Most gates in real circuits are far
//! more structured, and a [`Kernel`] captures that structure once — at
//! lowering time — so the per-shot hot loop runs the cheapest possible
//! update:
//!
//! * [`KernelClass::Single`] — an in-place single-qubit butterfly
//!   (4 multiplies, 2 adds per amplitude pair);
//! * [`KernelClass::Diagonal`] — phase-only gates (`Z`, `S`, `T`, `Rz`,
//!   `P`, `Cz`, `Cp`, `Crz`, `Ccz`): one multiply per amplitude, and
//!   exact-unit diagonal entries are skipped entirely;
//! * [`KernelClass::Permutation`] — classical bit-shuffles (`X`, `CX`,
//!   `CCX`, `SWAP`, `CSWAP`): pure amplitude moves, no arithmetic;
//! * [`KernelClass::Generic`] — the dense fallback, with its gather
//!   offsets precomputed and its scratch buffer caller-provided;
//! * [`KernelClass::Fused`] — a run of adjacent single-qubit or
//!   same-tuple diagonal kernels fused by [`Kernel::fuse`] into one
//!   amplitude sweep.
//!
//! Classification is structural (from the matrix, not the gate name), so
//! arbitrary [`Gate::Unitary`] gates and even non-unitary Kraus operators
//! lower to the cheapest applicable kernel.
//!
//! # Numerical contract
//!
//! Every kernel performs arithmetic identical to the dense fallback up to
//! the sign of zero components (the dense path folds exact-zero products
//! into its accumulator; specialized kernels skip them). Probabilities
//! (`|amp|²`) and every comparison derived from them are therefore
//! bit-for-bit identical across kernel classes — the seed-compatibility
//! contract the compiled execution engine in `qra-sim` relies on.
//!
//! Fusion and threading are held to a *stronger* contract: bit-for-bit
//! equality with the sequential unfused kernels, not merely
//! modulo-sign-of-zero. A fused kernel is **loop fusion**, never a matrix
//! product — each constituent stage's arithmetic runs unchanged, per
//! amplitude pair, in program order — and [`Kernel::apply_threaded`] only
//! re-partitions an amplitude loop whose iterations are independent, so
//! every amplitude sees the identical operation sequence at any thread
//! count.

use crate::Gate;
use qra_math::{CMatrix, C64};

/// Width threshold (in qubits) above which [`Kernel::apply_threaded`]
/// engages worker threads. Below `2^10` amplitudes the `thread::scope`
/// spawn/join cost dominates the sweep itself, so smaller states always
/// run the sequential path (which keeps tiny kernels bit-identical *and*
/// fast at any configured thread count).
pub const PARALLEL_THRESHOLD_QUBITS: usize = 10;

/// The specialization a matrix lowered to; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// In-place single-qubit butterfly.
    Single,
    /// Phase-only diagonal update.
    Diagonal,
    /// Pure amplitude permutation.
    Permutation,
    /// Dense matrix fallback.
    Generic,
    /// A fused run of single-qubit or same-tuple diagonal kernels.
    Fused,
}

impl KernelClass {
    /// Short lowercase name used in reports and benches.
    pub fn name(&self) -> &'static str {
        match self {
            KernelClass::Single => "single",
            KernelClass::Diagonal => "diagonal",
            KernelClass::Permutation => "permutation",
            KernelClass::Generic => "generic",
            KernelClass::Fused => "fused",
        }
    }
}

/// A recognized Clifford-group generator with its register qubit indices.
///
/// The variant set is exactly the tableau backend's instruction set:
/// `H`, `S`, `S†`, the Paulis, `CX`, `CZ` and `SWAP` (plus the identity,
/// so `id` gates and `Rz(0)`-style no-ops never break a Clifford run).
/// Recognition is an *exact-unitary* match against the generator
/// matrices — `T`, `Rz(π)`, `√X` and friends are rejected even when they
/// are Clifford up to floating-point or global phase, which keeps the
/// stabilizer fast path's "bit-identical to the statevector engine"
/// contract trivially honest: only gates whose matrices equal the
/// generators bit-for-bit are rerouted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliffordOp {
    /// Identity.
    I(usize),
    /// Hadamard.
    H(usize),
    /// Phase gate `S = diag(1, i)`.
    S(usize),
    /// `S†`.
    Sdg(usize),
    /// Pauli-X.
    X(usize),
    /// Pauli-Y.
    Y(usize),
    /// Pauli-Z.
    Z(usize),
    /// Controlled-X as `(control, target)`.
    Cx(usize, usize),
    /// Controlled-Z (symmetric in its qubits).
    Cz(usize, usize),
    /// SWAP.
    Swap(usize, usize),
}

impl CliffordOp {
    /// Recognizes `gate` on `qubits` as a Clifford generator, without ever
    /// touching the register width — usable at widths where
    /// [`Kernel::for_gate`]'s `2ⁿ` dimension would overflow.
    ///
    /// Arbitrary [`Gate::Unitary`] gates are recognized too when their
    /// matrix equals a generator's exactly.
    pub fn from_gate(gate: &Gate, qubits: &[usize]) -> Option<CliffordOp> {
        match gate.unitary_matrix() {
            Some(m) => Self::from_unitary(m, qubits),
            None => Self::from_unitary(&gate.matrix(), qubits),
        }
    }

    /// Recognizes an explicit big-endian unitary on `qubits` by exact
    /// entry-wise comparison against the generator matrices (`-0.0` and
    /// `0.0` compare equal, matching the kernel numerical contract).
    pub fn from_unitary(matrix: &CMatrix, qubits: &[usize]) -> Option<CliffordOp> {
        match qubits.len() {
            1 => {
                let q = qubits[0];
                type Make1 = fn(usize) -> CliffordOp;
                let gens: [(Gate, Make1); 7] = [
                    (Gate::I, CliffordOp::I),
                    (Gate::H, CliffordOp::H),
                    (Gate::S, CliffordOp::S),
                    (Gate::Sdg, CliffordOp::Sdg),
                    (Gate::X, CliffordOp::X),
                    (Gate::Y, CliffordOp::Y),
                    (Gate::Z, CliffordOp::Z),
                ];
                gens.iter()
                    .find(|(g, _)| matrices_exactly_equal(matrix, &g.matrix()))
                    .map(|(_, make)| make(q))
            }
            2 => {
                let (a, b) = (qubits[0], qubits[1]);
                type Make2 = fn(usize, usize) -> CliffordOp;
                let gens: [(Gate, Make2); 3] = [
                    (Gate::Cx, CliffordOp::Cx),
                    (Gate::Cz, CliffordOp::Cz),
                    (Gate::Swap, CliffordOp::Swap),
                ];
                gens.iter()
                    .find(|(g, _)| matrices_exactly_equal(matrix, &g.matrix()))
                    .map(|(_, make)| make(a, b))
            }
            _ => None,
        }
    }
}

fn matrices_exactly_equal(a: &CMatrix, b: &CMatrix) -> bool {
    if a.rows() != b.rows() {
        return false;
    }
    for r in 0..a.rows() {
        for c in 0..a.rows() {
            let (x, y) = (a.get(r, c), b.get(r, c));
            if x.re != y.re || x.im != y.im {
                return false;
            }
        }
    }
    true
}

/// One constituent of a fused single-qubit kernel chain, applied to an
/// amplitude pair held in registers.
#[derive(Debug, Clone, Copy)]
enum Stage {
    /// Dense 2×2 butterfly (a [`Body::Single`] stage).
    Butterfly {
        m00: C64,
        m01: C64,
        m10: C64,
        m11: C64,
    },
    /// Diagonal scale (a [`Body::Diag1`] stage); exact-unit factors are
    /// skipped exactly as the standalone kernel skips them.
    Diag { d0: C64, d1: C64 },
}

#[derive(Debug, Clone)]
enum Body {
    /// `k = 1` dense butterfly over amplitude pairs split by `mask`.
    Single {
        m00: C64,
        m01: C64,
        m10: C64,
        m11: C64,
        mask: usize,
    },
    /// `k = 1` diagonal: low half scaled by `d0`, high half by `d1`.
    Diag1 { d0: C64, d1: C64, mask: usize },
    /// `k ≥ 2` diagonal over the gathered sub-index.
    Diagonal { diag: Vec<C64>, shifts: Vec<usize> },
    /// Sub-block permutation: new sub-amplitude `r` reads old `src[r]`.
    Permutation {
        src: Vec<usize>,
        offsets: Vec<usize>,
        gate_mask: usize,
    },
    /// Dense fallback with precomputed scatter offsets.
    Generic {
        matrix: CMatrix,
        offsets: Vec<usize>,
        gate_mask: usize,
    },
    /// Fused chain of `k = 1` kernels on one qubit: every stage runs on
    /// the amplitude pair in registers before it is stored back.
    Fused { stages: Vec<Stage>, mask: usize },
    /// Fused chain of `k ≥ 2` diagonals on one qubit tuple: the sub-index
    /// is computed once per amplitude and every stage's factor applied in
    /// program order.
    FusedDiag {
        diags: Vec<Vec<C64>>,
        shifts: Vec<usize>,
    },
}

/// A gate lowered onto a fixed qubit tuple of a fixed-width register,
/// ready for repeated O(2ⁿ) in-place application.
///
/// ```rust
/// use qra_circuit::kernel::{Kernel, KernelClass};
/// use qra_circuit::Gate;
/// use qra_math::CVector;
///
/// let k = Kernel::for_gate(&Gate::Cx, &[0, 1], 2);
/// assert_eq!(k.class(), KernelClass::Permutation);
/// let mut state = CVector::basis_state(4, 0b10).into_inner();
/// let mut scratch = Vec::new();
/// k.apply(&mut state, &mut scratch);
/// assert_eq!(state[0b11], qra_math::C64::one());
/// ```
#[derive(Debug, Clone)]
pub struct Kernel {
    body: Body,
    dim: usize,
}

fn exact_zero(z: C64) -> bool {
    z.re == 0.0 && z.im == 0.0
}

fn exact_one(z: C64) -> bool {
    z.re == 1.0 && z.im == 0.0
}

/// Raw amplitude-array pointer shared across scoped worker threads. Each
/// worker is handed a disjoint index range, so concurrent access never
/// aliases; see the per-use SAFETY comments.
struct SendPtr(*mut C64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// The `ordinal`-th sub-block base index: `ordinal`'s bits deposited in
/// ascending order into the zero bit positions of `gate_mask` — exactly
/// the sequence the sequential `(base | gate_mask) + 1 & !gate_mask`
/// walk enumerates.
fn nth_base(mut ordinal: usize, gate_mask: usize, dim: usize) -> usize {
    let mut base = 0usize;
    let mut bit = 1usize;
    while bit < dim {
        if gate_mask & bit == 0 {
            if ordinal & 1 == 1 {
                base |= bit;
            }
            ordinal >>= 1;
        }
        bit <<= 1;
    }
    base
}

/// Runs `f(pair_low, pair_high)` over every butterfly pair `(i, i + mask)`
/// of `state`, split into contiguous per-thread pair ranges.
fn par_pair_loop<F>(state: &mut [C64], mask: usize, threads: usize, f: F)
where
    F: Fn(&mut C64, &mut C64) + Sync,
{
    let pairs = state.len() / 2;
    let threads = threads.min(pairs);
    let chunk = pairs.div_ceil(threads);
    let lo_mask = mask - 1;
    let ptr = SendPtr(state.as_mut_ptr());
    std::thread::scope(|s| {
        let ptr = &ptr;
        let f = &f;
        for t in 0..threads {
            let start = t * chunk;
            let end = pairs.min(start + chunk);
            if start >= end {
                break;
            }
            s.spawn(move || {
                for p in start..end {
                    // Pair ordinal `p` ↔ amplitude index `i`: the bits of
                    // `p` below the gate bit stay in place, the rest shift
                    // up past it — the same enumeration order as the
                    // sequential block walk.
                    let i = ((p & !lo_mask) << 1) | (p & lo_mask);
                    // SAFETY: the ordinal↔index map is a bijection onto
                    // the low halves, so distinct ordinals yield disjoint
                    // {i, i + mask} pairs, and each worker owns a disjoint
                    // ordinal range — no two threads touch one amplitude.
                    unsafe {
                        let a0 = &mut *ptr.0.add(i);
                        let a1 = &mut *ptr.0.add(i + mask);
                        f(a0, a1);
                    }
                }
            });
        }
    });
}

/// Runs `f(global_index, amplitude)` over every amplitude, split into
/// contiguous per-thread chunks. Safe: `chunks_mut` hands each worker an
/// exclusive slice.
fn par_amp_loop<F>(state: &mut [C64], threads: usize, f: F)
where
    F: Fn(usize, &mut C64) + Sync,
{
    let len = state.len();
    let chunk = len.div_ceil(threads.min(len));
    std::thread::scope(|s| {
        let f = &f;
        for (t, ch) in state.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                let base = t * chunk;
                for (j, amp) in ch.iter_mut().enumerate() {
                    f(base + j, amp);
                }
            });
        }
    });
}

impl Kernel {
    /// Lowers `gate` applied on `qubits` (gate order) of an `n`-qubit
    /// register. Arbitrary-unitary gates lower without cloning their
    /// backing matrix unless the dense fallback is needed.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or invalid qubit indices, exactly like
    /// [`crate::circuit::apply_gate_inplace`].
    pub fn for_gate(gate: &Gate, qubits: &[usize], n: usize) -> Kernel {
        match gate.unitary_matrix() {
            Some(m) => Self::from_matrix(m, qubits, n),
            None => Self::from_matrix(&gate.matrix(), qubits, n),
        }
    }

    /// Lowers an explicit `2ᵏ × 2ᵏ` matrix (not necessarily unitary — Kraus
    /// operators lower too) applied on `qubits` of an `n`-qubit register.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or invalid qubit indices.
    pub fn from_matrix(matrix: &CMatrix, qubits: &[usize], n: usize) -> Kernel {
        let k = qubits.len();
        let sub_dim = 1usize << k;
        assert_eq!(matrix.rows(), sub_dim, "gate dimension mismatch");
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < n, "qubit {q} out of range for {n} qubits");
            assert!(!qubits[..i].contains(&q), "duplicate qubit {q}");
        }
        let dim = 1usize << n;
        // Bit positions (from the most significant end) of each gate qubit.
        let shifts: Vec<usize> = qubits.iter().map(|&q| n - 1 - q).collect();
        let gate_mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
        // offsets[s]: the full-index bits contributed by sub-index `s`.
        let offsets: Vec<usize> = (0..sub_dim)
            .map(|s| {
                let mut off = 0usize;
                for (pos, &sh) in shifts.iter().enumerate() {
                    if (s >> (k - 1 - pos)) & 1 == 1 {
                        off |= 1 << sh;
                    }
                }
                off
            })
            .collect();

        let body = if is_diagonal(matrix) {
            let diag: Vec<C64> = (0..sub_dim).map(|r| matrix.get(r, r)).collect();
            if k == 1 {
                Body::Diag1 {
                    d0: diag[0],
                    d1: diag[1],
                    mask: gate_mask,
                }
            } else {
                Body::Diagonal { diag, shifts }
            }
        } else if let Some(src) = as_permutation(matrix) {
            Body::Permutation {
                src,
                offsets,
                gate_mask,
            }
        } else if k == 1 {
            Body::Single {
                m00: matrix.get(0, 0),
                m01: matrix.get(0, 1),
                m10: matrix.get(1, 0),
                m11: matrix.get(1, 1),
                mask: gate_mask,
            }
        } else {
            Body::Generic {
                matrix: matrix.clone(),
                offsets,
                gate_mask,
            }
        };
        Kernel { body, dim }
    }

    /// The specialization class this kernel lowered to.
    pub fn class(&self) -> KernelClass {
        match &self.body {
            Body::Single { .. } => KernelClass::Single,
            Body::Diag1 { .. } | Body::Diagonal { .. } => KernelClass::Diagonal,
            Body::Permutation { .. } => KernelClass::Permutation,
            Body::Generic { .. } => KernelClass::Generic,
            Body::Fused { .. } | Body::FusedDiag { .. } => KernelClass::Fused,
        }
    }

    /// The full register dimension (`2ⁿ`) this kernel was lowered for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Recognizes this kernel as a Clifford generator, reusing the
    /// structural classification: a [`Body::Single`] can only be `H` or
    /// `Y`, a [`Body::Diag1`] one of `I`/`S`/`S†`/`Z`, a two-qubit
    /// diagonal `CZ`, and a permutation `X`/`CX`/`SWAP`. Entries are
    /// compared exactly against the generator matrices (see
    /// [`CliffordOp::from_unitary`]); fused and generic kernels are never
    /// Clifford-tagged.
    pub fn as_clifford(&self) -> Option<CliffordOp> {
        let n = self.dim.trailing_zeros() as usize;
        let qubit_of = |bit: usize| n - 1 - bit.trailing_zeros() as usize;
        let eq = |a: C64, b: C64| a.re == b.re && a.im == b.im;
        match &self.body {
            Body::Single {
                m00,
                m01,
                m10,
                m11,
                mask,
            } => {
                let q = qubit_of(*mask);
                for (gate, make) in [
                    (Gate::H, CliffordOp::H as fn(usize) -> CliffordOp),
                    (Gate::Y, CliffordOp::Y),
                ] {
                    let m = gate.matrix();
                    if eq(*m00, m.get(0, 0))
                        && eq(*m01, m.get(0, 1))
                        && eq(*m10, m.get(1, 0))
                        && eq(*m11, m.get(1, 1))
                    {
                        return Some(make(q));
                    }
                }
                None
            }
            Body::Diag1 { d0, d1, mask } => {
                if !exact_one(*d0) {
                    return None;
                }
                let q = qubit_of(*mask);
                if exact_one(*d1) {
                    Some(CliffordOp::I(q))
                } else if d1.re == 0.0 && d1.im == 1.0 {
                    Some(CliffordOp::S(q))
                } else if d1.re == 0.0 && d1.im == -1.0 {
                    Some(CliffordOp::Sdg(q))
                } else if d1.re == -1.0 && d1.im == 0.0 {
                    Some(CliffordOp::Z(q))
                } else {
                    None
                }
            }
            Body::Diagonal { diag, shifts } if shifts.len() == 2 => {
                let cz = exact_one(diag[0])
                    && exact_one(diag[1])
                    && exact_one(diag[2])
                    && diag[3].re == -1.0
                    && diag[3].im == 0.0;
                cz.then(|| CliffordOp::Cz(n - 1 - shifts[0], n - 1 - shifts[1]))
            }
            Body::Permutation { src, offsets, .. } => match src.as_slice() {
                [1, 0] => Some(CliffordOp::X(qubit_of(offsets[1]))),
                // offsets[2] is gate qubit 0's bit, offsets[1] gate qubit 1's.
                [0, 1, 3, 2] => Some(CliffordOp::Cx(qubit_of(offsets[2]), qubit_of(offsets[1]))),
                [0, 2, 1, 3] => Some(CliffordOp::Swap(qubit_of(offsets[2]), qubit_of(offsets[1]))),
                _ => None,
            },
            _ => None,
        }
    }

    /// Number of original kernels folded into this one (1 when unfused).
    pub fn fused_stages(&self) -> usize {
        match &self.body {
            Body::Fused { stages, .. } => stages.len(),
            Body::FusedDiag { diags, .. } => diags.len(),
            _ => 1,
        }
    }

    /// The stage list of a fusible 1-qubit kernel plus its split mask.
    fn single_stages(&self) -> Option<(Vec<Stage>, usize)> {
        match &self.body {
            Body::Single {
                m00,
                m01,
                m10,
                m11,
                mask,
            } => Some((
                vec![Stage::Butterfly {
                    m00: *m00,
                    m01: *m01,
                    m10: *m10,
                    m11: *m11,
                }],
                *mask,
            )),
            Body::Diag1 { d0, d1, mask } => Some((vec![Stage::Diag { d0: *d0, d1: *d1 }], *mask)),
            Body::Fused { stages, mask } => Some((stages.clone(), *mask)),
            _ => None,
        }
    }

    /// The diagonal chain of a fusible `k ≥ 2` diagonal kernel plus its
    /// bit shifts.
    fn diag_stages(&self) -> Option<(Vec<Vec<C64>>, &[usize])> {
        match &self.body {
            Body::Diagonal { diag, shifts } => Some((vec![diag.clone()], shifts)),
            Body::FusedDiag { diags, shifts } => Some((diags.clone(), shifts)),
            _ => None,
        }
    }

    /// Fuses `self` (applied first) with `next` (applied second) into one
    /// kernel when both act on the same qubit tuple and both are
    /// single-qubit or diagonal. Returns `None` when the pair is not
    /// fusible (different tuples, or a permutation/dense factor).
    ///
    /// Fusion is **loop fusion**, not a matrix product: the fused kernel
    /// replays each constituent's arithmetic per amplitude in program
    /// order, so applying it is bit-for-bit identical to applying the two
    /// kernels back-to-back — while sweeping the state once instead of
    /// twice.
    pub fn fuse(&self, next: &Kernel) -> Option<Kernel> {
        if self.dim != next.dim {
            return None;
        }
        if let (Some((mut a, mask_a)), Some((b, mask_b))) =
            (self.single_stages(), next.single_stages())
        {
            if mask_a == mask_b {
                a.extend(b);
                return Some(Kernel {
                    body: Body::Fused {
                        stages: a,
                        mask: mask_a,
                    },
                    dim: self.dim,
                });
            }
        }
        if let (Some((mut a, shifts_a)), Some((b, shifts_b))) =
            (self.diag_stages(), next.diag_stages())
        {
            if shifts_a == shifts_b {
                let shifts = shifts_a.to_vec();
                a.extend(b);
                return Some(Kernel {
                    body: Body::FusedDiag { diags: a, shifts },
                    dim: self.dim,
                });
            }
        }
        None
    }

    /// Applies the kernel to `state` in place. `scratch` is a reusable
    /// buffer (grown on demand, never shrunk) so repeated application
    /// allocates nothing after the first call.
    ///
    /// # Panics
    ///
    /// Panics when `state.len()` disagrees with the lowered dimension.
    pub fn apply(&self, state: &mut [C64], scratch: &mut Vec<C64>) {
        assert_eq!(state.len(), self.dim, "state dimension mismatch");
        match &self.body {
            Body::Single {
                m00,
                m01,
                m10,
                m11,
                mask,
            } => {
                let pair = mask << 1;
                let mut base = 0usize;
                while base < self.dim {
                    for i in base..base + mask {
                        let a0 = state[i];
                        let a1 = state[i + mask];
                        state[i] = *m00 * a0 + *m01 * a1;
                        state[i + mask] = *m10 * a0 + *m11 * a1;
                    }
                    base += pair;
                }
            }
            Body::Diag1 { d0, d1, mask } => {
                let pair = mask << 1;
                let scale0 = !exact_one(*d0);
                let scale1 = !exact_one(*d1);
                let mut base = 0usize;
                while base < self.dim {
                    if scale0 {
                        for amp in &mut state[base..base + mask] {
                            *amp *= *d0;
                        }
                    }
                    if scale1 {
                        for amp in &mut state[base + mask..base + pair] {
                            *amp *= *d1;
                        }
                    }
                    base += pair;
                }
            }
            Body::Diagonal { diag, shifts } => {
                let k = shifts.len();
                for (i, amp) in state.iter_mut().enumerate() {
                    let mut s = 0usize;
                    for (pos, &sh) in shifts.iter().enumerate() {
                        s |= ((i >> sh) & 1) << (k - 1 - pos);
                    }
                    let d = diag[s];
                    if !exact_one(d) {
                        *amp *= d;
                    }
                }
            }
            Body::Fused { stages, mask } => {
                // SAFETY: the exclusive borrow covers every pair index
                // and the full ordinal range is swept once.
                unsafe { fused_stage_sweep(stages, state.as_mut_ptr(), *mask, 0, self.dim >> 1) }
            }
            Body::FusedDiag { diags, shifts } => {
                let k = shifts.len();
                for (i, amp) in state.iter_mut().enumerate() {
                    let mut s = 0usize;
                    for (pos, &sh) in shifts.iter().enumerate() {
                        s |= ((i >> sh) & 1) << (k - 1 - pos);
                    }
                    for diag in diags {
                        let d = diag[s];
                        if !exact_one(d) {
                            *amp *= d;
                        }
                    }
                }
            }
            Body::Permutation {
                src,
                offsets,
                gate_mask,
            } => {
                let sub_dim = offsets.len();
                if scratch.len() < sub_dim {
                    scratch.resize(sub_dim, C64::zero());
                }
                // Re-slice so no index past `sub_dim` is reachable even
                // when the caller hands an oversized buffer.
                let scratch = &mut scratch[..sub_dim];
                debug_assert!(
                    src.iter().all(|&s| s < sub_dim),
                    "permutation source index outside the sub-block"
                );
                let mut base = 0usize;
                loop {
                    for (slot, &s) in scratch.iter_mut().zip(src.iter()) {
                        *slot = state[base | offsets[s]];
                    }
                    for (&off, &amp) in offsets.iter().zip(scratch.iter()) {
                        state[base | off] = amp;
                    }
                    base = (base | gate_mask).wrapping_add(1) & !gate_mask;
                    if base == 0 || base >= self.dim {
                        break;
                    }
                }
            }
            Body::Generic {
                matrix,
                offsets,
                gate_mask,
            } => {
                let sub_dim = offsets.len();
                if scratch.len() < sub_dim {
                    scratch.resize(sub_dim, C64::zero());
                }
                // Re-slice so the dense gather/accumulate below cannot
                // read scratch beyond `sub_dim`.
                let scratch = &mut scratch[..sub_dim];
                debug_assert!(scratch.len() == sub_dim && matrix.rows() == sub_dim);
                let mut base = 0usize;
                loop {
                    for (slot, &off) in scratch.iter_mut().zip(offsets.iter()) {
                        *slot = state[base | off];
                    }
                    for (r, &off) in offsets.iter().enumerate() {
                        let mut acc = C64::zero();
                        for (c, &amp) in scratch.iter().enumerate() {
                            acc += matrix.get(r, c) * amp;
                        }
                        state[base | off] = acc;
                    }
                    base = (base | gate_mask).wrapping_add(1) & !gate_mask;
                    if base == 0 || base >= self.dim {
                        break;
                    }
                }
            }
        }
    }

    /// Applies the kernel like [`Kernel::apply`], splitting the amplitude
    /// sweep across `threads` scoped worker threads when the state is at
    /// least `2^`[`PARALLEL_THRESHOLD_QUBITS`] amplitudes.
    ///
    /// Bit-for-bit identical to the sequential path at every thread
    /// count: workers own disjoint contiguous index ranges, every
    /// amplitude undergoes the identical arithmetic, and the
    /// gather/scatter classes allocate a private scratch per worker so no
    /// buffer is ever shared across threads (`scratch` is only used by
    /// the sequential fallback).
    ///
    /// # Panics
    ///
    /// Panics when `state.len()` disagrees with the lowered dimension.
    pub fn apply_threaded(&self, state: &mut [C64], scratch: &mut Vec<C64>, threads: usize) {
        if threads <= 1 || self.dim < (1 << PARALLEL_THRESHOLD_QUBITS) {
            return self.apply(state, scratch);
        }
        assert_eq!(state.len(), self.dim, "state dimension mismatch");
        match &self.body {
            Body::Single {
                m00,
                m01,
                m10,
                m11,
                mask,
            } => {
                par_pair_loop(state, *mask, threads, |a0, a1| {
                    let b0 = *m00 * *a0 + *m01 * *a1;
                    let b1 = *m10 * *a0 + *m11 * *a1;
                    *a0 = b0;
                    *a1 = b1;
                });
            }
            Body::Fused { stages, mask } => {
                let pairs = state.len() / 2;
                let threads = threads.min(pairs);
                let chunk = pairs.div_ceil(threads);
                let mask = *mask;
                let ptr = SendPtr(state.as_mut_ptr());
                std::thread::scope(|s| {
                    let ptr = &ptr;
                    for t in 0..threads {
                        let start = t * chunk;
                        let end = pairs.min(start + chunk);
                        if start >= end {
                            break;
                        }
                        s.spawn(move || {
                            // SAFETY: disjoint ordinal ranges per worker;
                            // see `fused_stage_sweep`'s contract.
                            unsafe { fused_stage_sweep(stages, ptr.0, mask, start, end) }
                        });
                    }
                });
            }
            Body::Diag1 { d0, d1, mask } => {
                let scale0 = !exact_one(*d0);
                let scale1 = !exact_one(*d1);
                if !scale0 && !scale1 {
                    return;
                }
                par_amp_loop(state, threads, |i, amp| {
                    if i & mask == 0 {
                        if scale0 {
                            *amp *= *d0;
                        }
                    } else if scale1 {
                        *amp *= *d1;
                    }
                });
            }
            Body::Diagonal { diag, shifts } => {
                let k = shifts.len();
                par_amp_loop(state, threads, |i, amp| {
                    let mut s = 0usize;
                    for (pos, &sh) in shifts.iter().enumerate() {
                        s |= ((i >> sh) & 1) << (k - 1 - pos);
                    }
                    let d = diag[s];
                    if !exact_one(d) {
                        *amp *= d;
                    }
                });
            }
            Body::FusedDiag { diags, shifts } => {
                let k = shifts.len();
                par_amp_loop(state, threads, |i, amp| {
                    let mut s = 0usize;
                    for (pos, &sh) in shifts.iter().enumerate() {
                        s |= ((i >> sh) & 1) << (k - 1 - pos);
                    }
                    for diag in diags {
                        let d = diag[s];
                        if !exact_one(d) {
                            *amp *= d;
                        }
                    }
                });
            }
            Body::Permutation {
                src,
                offsets,
                gate_mask,
            } => {
                let sub_dim = offsets.len();
                let n_bases = self.dim / sub_dim;
                let threads = threads.min(n_bases);
                let chunk = n_bases.div_ceil(threads);
                let dim = self.dim;
                let ptr = SendPtr(state.as_mut_ptr());
                std::thread::scope(|s| {
                    let ptr = &ptr;
                    for t in 0..threads {
                        let start = t * chunk;
                        let end = n_bases.min(start + chunk);
                        if start >= end {
                            break;
                        }
                        s.spawn(move || {
                            // Per-thread scratch: never shared across
                            // workers (satisfying the aliasing contract).
                            let mut local = vec![C64::zero(); sub_dim];
                            let mut base = nth_base(start, *gate_mask, dim);
                            for _ in start..end {
                                // SAFETY: each base owns the index set
                                // {base | off}, bases are disjoint across
                                // ordinals, and each worker owns a
                                // disjoint ordinal range.
                                unsafe {
                                    for (slot, &s) in local.iter_mut().zip(src.iter()) {
                                        *slot = *ptr.0.add(base | offsets[s]);
                                    }
                                    for (&off, &amp) in offsets.iter().zip(local.iter()) {
                                        *ptr.0.add(base | off) = amp;
                                    }
                                }
                                base = (base | gate_mask).wrapping_add(1) & !gate_mask;
                            }
                        });
                    }
                });
            }
            Body::Generic {
                matrix,
                offsets,
                gate_mask,
            } => {
                let sub_dim = offsets.len();
                let n_bases = self.dim / sub_dim;
                let threads = threads.min(n_bases);
                let chunk = n_bases.div_ceil(threads);
                let dim = self.dim;
                let ptr = SendPtr(state.as_mut_ptr());
                std::thread::scope(|s| {
                    let ptr = &ptr;
                    for t in 0..threads {
                        let start = t * chunk;
                        let end = n_bases.min(start + chunk);
                        if start >= end {
                            break;
                        }
                        s.spawn(move || {
                            // Per-thread scratch, same accumulation order
                            // as the sequential dense path.
                            let mut local = vec![C64::zero(); sub_dim];
                            let mut base = nth_base(start, *gate_mask, dim);
                            for _ in start..end {
                                // SAFETY: disjoint base index sets per
                                // worker, as in the permutation arm.
                                unsafe {
                                    for (slot, &off) in local.iter_mut().zip(offsets.iter()) {
                                        *slot = *ptr.0.add(base | off);
                                    }
                                    for (r, &off) in offsets.iter().enumerate() {
                                        let mut acc = C64::zero();
                                        for (c, &amp) in local.iter().enumerate() {
                                            acc += matrix.get(r, c) * amp;
                                        }
                                        *ptr.0.add(base | off) = acc;
                                    }
                                }
                                base = (base | gate_mask).wrapping_add(1) & !gate_mask;
                            }
                        });
                    }
                });
            }
        }
    }
}

/// Pair ordinals per fused block: two 32 KiB amplitude streams, sized to
/// stay cache-resident while a stage chain replays over the block.
const FUSED_BLOCK_PAIRS: usize = 1 << 11;

/// Applies a fused stage chain over the pair-ordinal range `[start, end)`.
///
/// The loop is stage-interchanged: each stage sweeps a cache-resident
/// block of pairs as a tight monomorphic loop (the stage constants stay
/// in registers) before the next stage revisits the same block, instead
/// of re-dispatching the stage list per amplitude pair. Every amplitude
/// still undergoes exactly its standalone kernel's arithmetic in stage
/// order — stages touch disjoint pairs independently, so interchanging
/// the loops cannot change a single result bit.
///
/// # Safety
///
/// `ptr` must point at a state whose pair decomposition for `mask`
/// contains `end` pairs, and the caller must hold exclusive access to
/// every amplitude index reachable from the ordinal range (the
/// ordinal↔index map is a bijection onto the low halves, so disjoint
/// ordinal ranges are safe to sweep concurrently).
unsafe fn fused_stage_sweep(
    stages: &[Stage],
    ptr: *mut C64,
    mask: usize,
    start: usize,
    end: usize,
) {
    let lo_mask = mask - 1;
    let mut blk = start;
    while blk < end {
        let stop = end.min(blk + FUSED_BLOCK_PAIRS);
        for st in stages {
            match *st {
                Stage::Butterfly { m00, m01, m10, m11 } => {
                    for p in blk..stop {
                        let i = ((p & !lo_mask) << 1) | (p & lo_mask);
                        let a0 = *ptr.add(i);
                        let a1 = *ptr.add(i + mask);
                        *ptr.add(i) = m00 * a0 + m01 * a1;
                        *ptr.add(i + mask) = m10 * a0 + m11 * a1;
                    }
                }
                Stage::Diag { d0, d1 } => {
                    let scale0 = !exact_one(d0);
                    let scale1 = !exact_one(d1);
                    if !scale0 && !scale1 {
                        continue;
                    }
                    for p in blk..stop {
                        let i = ((p & !lo_mask) << 1) | (p & lo_mask);
                        if scale0 {
                            *ptr.add(i) *= d0;
                        }
                        if scale1 {
                            *ptr.add(i + mask) *= d1;
                        }
                    }
                }
            }
        }
        blk = stop;
    }
}

/// Scratch for a [`ConjugationPair`] application: one private buffer per
/// factor, so a buffer is never threaded through two kernel applications
/// (the aliasing hazard the threaded engine must exclude).
#[derive(Debug, Default, Clone)]
pub struct PairScratch {
    left: Vec<C64>,
    right: Vec<C64>,
}

/// A lowered conjugation map `ρ ← AρA†` over a vectorized density matrix.
///
/// A `d × d` density matrix on `n` qubits, flattened row-major
/// (`vec(ρ)[r·d + c] = ρ[r][c]`), is index-isomorphic to a `2n`-qubit state
/// vector whose high `n` bits are the row index and low `n` bits the
/// column index. Under that isomorphism:
///
/// * left multiplication `Aρ` is `A` applied to the **row** qubits —
///   gate qubit `q` lands on register qubit `q` of the `2n` register;
/// * right multiplication `MA†` is `Ā` (elementwise conjugate, **not**
///   the adjoint) applied to the **column** qubits — gate qubit `q` lands
///   on register qubit `n + q`.
///
/// Both factors lower through [`Kernel::from_matrix`] and inherit its
/// structural classification: an `X`/`CX` conjugation is two pure index
/// permutations of ρ and a `Z`/`S`/`T`/`Rz` conjugation is two `O(d²)`
/// phase sweeps, instead of two `O(d³)` dense multiplies. Non-unitary
/// Kraus operators lower identically (the completeness sum is the
/// caller's concern).
///
/// ```rust
/// use qra_circuit::kernel::{ConjugationPair, PairScratch};
/// use qra_circuit::Gate;
/// use qra_math::C64;
///
/// // X|0⟩⟨0|X = |1⟩⟨1| on a 1-qubit register: vec(ρ) has 4 entries.
/// let pair = ConjugationPair::for_gate(&Gate::X, &[0], 1);
/// let mut rho = vec![C64::one(), C64::zero(), C64::zero(), C64::zero()];
/// pair.apply(&mut rho, &mut PairScratch::default());
/// assert_eq!(rho[0b11], C64::one());
/// ```
#[derive(Debug, Clone)]
pub struct ConjugationPair {
    left: Kernel,
    right: Kernel,
}

impl ConjugationPair {
    /// Lowers `matrix` acting on `qubits` of an `n`-qubit density matrix
    /// into the left/right kernel pair over the `2n`-qubit vectorization.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or invalid qubit indices, exactly like
    /// [`Kernel::from_matrix`].
    pub fn lower(matrix: &CMatrix, qubits: &[usize], n: usize) -> ConjugationPair {
        let col_qubits: Vec<usize> = qubits.iter().map(|&q| q + n).collect();
        ConjugationPair {
            left: Kernel::from_matrix(matrix, qubits, 2 * n),
            right: Kernel::from_matrix(&matrix.conj(), &col_qubits, 2 * n),
        }
    }

    /// Lowers a gate's matrix; see [`ConjugationPair::lower`].
    pub fn for_gate(gate: &Gate, qubits: &[usize], n: usize) -> ConjugationPair {
        match gate.unitary_matrix() {
            Some(m) => Self::lower(m, qubits, n),
            None => Self::lower(&gate.matrix(), qubits, n),
        }
    }

    /// Applies `ρ ← AρA†` in place on the row-major flattened density
    /// matrix (`4ⁿ` entries). Each factor uses its own buffer inside
    /// `scratch`, reused across calls like [`Kernel::apply`]'s.
    ///
    /// # Panics
    ///
    /// Panics when `vec_rho.len()` disagrees with the lowered dimension.
    pub fn apply(&self, vec_rho: &mut [C64], scratch: &mut PairScratch) {
        self.left.apply(vec_rho, &mut scratch.left);
        self.right.apply(vec_rho, &mut scratch.right);
    }

    /// Like [`ConjugationPair::apply`], but each factor sweeps `vec_rho`
    /// with [`Kernel::apply_threaded`].
    pub fn apply_threaded(&self, vec_rho: &mut [C64], scratch: &mut PairScratch, threads: usize) {
        self.left
            .apply_threaded(vec_rho, &mut scratch.left, threads);
        self.right
            .apply_threaded(vec_rho, &mut scratch.right, threads);
    }

    /// The classification of the left (row-side) factor; the right factor
    /// always lowers to the same class (conjugation preserves structure).
    pub fn class(&self) -> KernelClass {
        self.left.class()
    }
}

/// `true` when every off-diagonal entry is exactly zero.
fn is_diagonal(m: &CMatrix) -> bool {
    let d = m.rows();
    for r in 0..d {
        for c in 0..d {
            if r != c && !exact_zero(m.get(r, c)) {
                return false;
            }
        }
    }
    true
}

/// When `m` is an exact 0/1 permutation matrix, returns `src` with
/// `src[r] = c` for the unique `c` with `m[r][c] = 1`; `None` otherwise.
fn as_permutation(m: &CMatrix) -> Option<Vec<usize>> {
    let d = m.rows();
    let mut src = Vec::with_capacity(d);
    let mut used = vec![false; d];
    for r in 0..d {
        let mut found: Option<usize> = None;
        for c in 0..d {
            let z = m.get(r, c);
            if exact_zero(z) {
                continue;
            }
            if !exact_one(z) || found.is_some() {
                return None;
            }
            found = Some(c);
        }
        let c = found?;
        if used[c] {
            return None;
        }
        used[c] = true;
        src.push(c);
    }
    Some(src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::embed;
    use qra_math::CVector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_state(rng: &mut StdRng, dim: usize) -> CVector {
        let raw: Vec<C64> = (0..dim)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        CVector::new(raw).normalized().unwrap()
    }

    fn distinct_qubits(rng: &mut StdRng, k: usize, n: usize) -> Vec<usize> {
        let mut qs: Vec<usize> = Vec::new();
        while qs.len() < k {
            let q = rng.gen_range(0..n);
            if !qs.contains(&q) {
                qs.push(q);
            }
        }
        qs
    }

    #[test]
    fn classification_per_gate() {
        let n = 3;
        let cases = [
            (Gate::H, vec![0], KernelClass::Single),
            (Gate::Y, vec![1], KernelClass::Single),
            (Gate::Rx(0.3), vec![2], KernelClass::Single),
            (Gate::Z, vec![0], KernelClass::Diagonal),
            (Gate::S, vec![1], KernelClass::Diagonal),
            (Gate::T, vec![1], KernelClass::Diagonal),
            (Gate::Rz(0.7), vec![2], KernelClass::Diagonal),
            (Gate::Phase(0.4), vec![0], KernelClass::Diagonal),
            (Gate::Cz, vec![0, 1], KernelClass::Diagonal),
            (Gate::Cp(0.2), vec![1, 2], KernelClass::Diagonal),
            (Gate::Crz(0.9), vec![0, 2], KernelClass::Diagonal),
            (Gate::Ccz, vec![0, 1, 2], KernelClass::Diagonal),
            (Gate::X, vec![0], KernelClass::Permutation),
            (Gate::Cx, vec![0, 1], KernelClass::Permutation),
            (Gate::Swap, vec![1, 2], KernelClass::Permutation),
            (Gate::Ccx, vec![0, 1, 2], KernelClass::Permutation),
            (Gate::Cswap, vec![0, 1, 2], KernelClass::Permutation),
            (Gate::Ch, vec![0, 1], KernelClass::Generic),
            (Gate::Cu3(0.1, 0.2, 0.3), vec![1, 0], KernelClass::Generic),
        ];
        for (gate, qubits, class) in cases {
            let kernel = Kernel::for_gate(&gate, &qubits, n);
            assert_eq!(kernel.class(), class, "{gate} misclassified");
        }
    }

    #[test]
    fn clifford_generators_recognized_with_qubits() {
        let n = 5;
        let cases: [(Gate, Vec<usize>, CliffordOp); 10] = [
            (Gate::I, vec![3], CliffordOp::I(3)),
            (Gate::H, vec![0], CliffordOp::H(0)),
            (Gate::S, vec![1], CliffordOp::S(1)),
            (Gate::Sdg, vec![4], CliffordOp::Sdg(4)),
            (Gate::X, vec![2], CliffordOp::X(2)),
            (Gate::Y, vec![1], CliffordOp::Y(1)),
            (Gate::Z, vec![0], CliffordOp::Z(0)),
            (Gate::Cx, vec![3, 1], CliffordOp::Cx(3, 1)),
            (Gate::Cz, vec![0, 4], CliffordOp::Cz(0, 4)),
            (Gate::Swap, vec![2, 0], CliffordOp::Swap(2, 0)),
        ];
        for (gate, qubits, expect) in cases {
            assert_eq!(
                Kernel::for_gate(&gate, &qubits, n).as_clifford(),
                Some(expect),
                "{gate} kernel not Clifford-classified"
            );
            assert_eq!(
                CliffordOp::from_gate(&gate, &qubits),
                Some(expect),
                "{gate} gate not Clifford-classified"
            );
        }
    }

    #[test]
    fn non_clifford_gates_rejected() {
        use std::f64::consts::{FRAC_PI_2, PI};
        let n = 3;
        let cases: [(Gate, Vec<usize>); 10] = [
            (Gate::T, vec![0]),
            (Gate::Tdg, vec![1]),
            (Gate::Sx, vec![0]),
            (Gate::Rz(0.7), vec![2]),
            // Clifford up to floating point / global phase, but not an
            // exact generator match — must stay on the dense path.
            (Gate::Rz(PI), vec![0]),
            (Gate::Phase(FRAC_PI_2), vec![1]),
            (Gate::Ry(FRAC_PI_2), vec![2]),
            (Gate::Ch, vec![0, 1]),
            (Gate::Cu3(0.1, 0.2, 0.3), vec![1, 2]),
            (Gate::Ccx, vec![0, 1, 2]),
        ];
        for (gate, qubits) in cases {
            assert_eq!(
                Kernel::for_gate(&gate, &qubits, n).as_clifford(),
                None,
                "{gate} kernel wrongly Clifford-classified"
            );
            assert_eq!(
                CliffordOp::from_gate(&gate, &qubits),
                None,
                "{gate} gate wrongly Clifford-classified"
            );
        }
    }

    #[test]
    fn exact_unitary_matrices_recognized_without_gate_names() {
        let h = Gate::unitary(Gate::H.matrix(), "custom-h").unwrap();
        assert_eq!(CliffordOp::from_gate(&h, &[2]), Some(CliffordOp::H(2)));
        assert_eq!(
            Kernel::for_gate(&h, &[2], 4).as_clifford(),
            Some(CliffordOp::H(2))
        );
        let almost = Gate::unitary(Gate::Rz(1e-12).matrix(), "almost-id").unwrap();
        assert_eq!(CliffordOp::from_gate(&almost, &[0]), None);
    }

    #[test]
    fn fused_kernels_are_never_clifford() {
        let a = Kernel::for_gate(&Gate::H, &[0], 2);
        let b = Kernel::for_gate(&Gate::H, &[0], 2);
        let fused = a.fuse(&b).unwrap();
        assert_eq!(fused.as_clifford(), None);
    }

    #[test]
    fn identity_is_skipped_diagonal() {
        let k = Kernel::for_gate(&Gate::I, &[0], 2);
        assert_eq!(k.class(), KernelClass::Diagonal);
        let mut state = CVector::basis_state(4, 3).into_inner();
        let before = state.clone();
        k.apply(&mut state, &mut Vec::new());
        assert_eq!(state, before);
    }

    /// Every kernel class must agree with the dense embedding on random
    /// states and random qubit placements — the compiled-engine analogue of
    /// `apply_gate_inplace_matches_embed`.
    #[test]
    fn kernels_match_embed_across_classes() {
        let mut rng = StdRng::seed_from_u64(20);
        let n = 5;
        let dim = 1 << n;
        let gates: Vec<Gate> = vec![
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Tdg,
            Gate::Sx,
            Gate::Rz(1.3),
            Gate::Ry(-0.8),
            Gate::Phase(2.2),
            Gate::U3(0.4, 1.0, -0.5),
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Ch,
            Gate::Cp(0.6),
            Gate::Crz(-1.1),
            Gate::Cu3(0.3, 0.2, 0.1),
            Gate::Ccx,
            Gate::Ccz,
            Gate::Cswap,
        ];
        let mut scratch = Vec::new();
        for gate in &gates {
            for _ in 0..4 {
                let qubits = distinct_qubits(&mut rng, gate.num_qubits(), n);
                let state = random_state(&mut rng, dim);
                let mut fast = state.clone().into_inner();
                Kernel::for_gate(gate, &qubits, n).apply(&mut fast, &mut scratch);
                let slow = embed(&gate.matrix(), &qubits, n).mul_vec(&state);
                assert!(
                    CVector::new(fast).approx_eq(&slow, 1e-9),
                    "{gate} on {qubits:?} diverged from embedding"
                );
            }
        }
    }

    #[test]
    fn kraus_like_non_unitary_matrices_lower() {
        // Phase-damping K0 = diag(1, √(1-p)) is non-unitary but diagonal.
        let k0 = CMatrix::diagonal(&[C64::one(), C64::from(0.8f64.sqrt())]);
        let kernel = Kernel::from_matrix(&k0, &[1], 2);
        assert_eq!(kernel.class(), KernelClass::Diagonal);
        // Amplitude-damping K1 = |0⟩⟨1|·√γ is non-unitary and dense.
        let k1 = CMatrix::new(
            2,
            2,
            vec![
                C64::zero(),
                C64::from(0.3f64.sqrt()),
                C64::zero(),
                C64::zero(),
            ],
        );
        let kernel = Kernel::from_matrix(&k1, &[0], 2);
        assert_eq!(kernel.class(), KernelClass::Single);
        let mut state = CVector::basis_state(4, 0b10).into_inner();
        kernel.apply(&mut state, &mut Vec::new());
        assert!((state[0b00].re - 0.3f64.sqrt()).abs() < 1e-12);
        assert!(exact_zero(state[0b10]));
    }

    #[test]
    fn generic_matches_apply_gate_inplace_bitwise() {
        // The dense fallback must reproduce the legacy work-horse exactly
        // (not just approximately): same gather order, same accumulation.
        let mut rng = StdRng::seed_from_u64(33);
        let n = 4;
        let dim = 1 << n;
        let mut scratch = Vec::new();
        for _ in 0..8 {
            let qubits = distinct_qubits(&mut rng, 2, n);
            let g = Gate::Cu3(
                rng.gen_range(0.0..3.0),
                rng.gen_range(0.0..3.0),
                rng.gen_range(0.0..3.0),
            );
            let state = random_state(&mut rng, dim);
            let mut fast = state.clone().into_inner();
            Kernel::from_matrix(&g.matrix(), &qubits, n).apply(&mut fast, &mut scratch);
            let mut slow = state.clone();
            crate::circuit::apply_gate_inplace(&mut slow, &g.matrix(), &qubits, n);
            assert_eq!(fast, slow.into_inner(), "generic kernel drifted");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_state_dimension() {
        let k = Kernel::for_gate(&Gate::H, &[0], 2);
        let mut state = vec![C64::zero(); 2];
        k.apply(&mut state, &mut Vec::new());
    }

    #[test]
    #[should_panic]
    fn rejects_duplicate_qubits() {
        let _ = Kernel::for_gate(&Gate::Cx, &[1, 1], 2);
    }

    #[test]
    fn class_names() {
        assert_eq!(KernelClass::Single.name(), "single");
        assert_eq!(KernelClass::Diagonal.name(), "diagonal");
        assert_eq!(KernelClass::Permutation.name(), "permutation");
        assert_eq!(KernelClass::Generic.name(), "generic");
        assert_eq!(KernelClass::Fused.name(), "fused");
    }

    /// Fused single-qubit chains must be bit-for-bit equal to applying
    /// the constituent kernels back-to-back — the loop-fusion contract.
    #[test]
    fn fused_single_qubit_chain_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(55);
        let n = 6;
        let dim = 1 << n;
        for q in [0usize, 3, 5] {
            let chain = [
                Gate::H,
                Gate::T,
                Gate::Ry(rng.gen_range(-2.0..2.0)),
                Gate::S,
                Gate::U3(0.3, -0.7, 1.1),
            ];
            let kernels: Vec<Kernel> = chain.iter().map(|g| Kernel::for_gate(g, &[q], n)).collect();
            let mut fused = kernels[0].clone();
            for k in &kernels[1..] {
                fused = fused.fuse(k).expect("single-qubit chain must fuse");
            }
            assert_eq!(fused.class(), KernelClass::Fused);
            assert_eq!(fused.fused_stages(), chain.len());
            let state = random_state(&mut rng, dim);
            let mut seq = state.clone().into_inner();
            let mut scratch = Vec::new();
            for k in &kernels {
                k.apply(&mut seq, &mut scratch);
            }
            let mut one = state.into_inner();
            fused.apply(&mut one, &mut scratch);
            assert_eq!(seq, one, "fused chain on qubit {q} drifted");
        }
    }

    /// Fused multi-qubit diagonal chains (same tuple) are bit-identical
    /// to sequential application too.
    #[test]
    fn fused_diagonal_chain_is_bit_identical() {
        let mut rng = StdRng::seed_from_u64(56);
        let n = 6;
        let dim = 1 << n;
        let qs = [1usize, 4];
        let a = Kernel::for_gate(&Gate::Cp(0.7), &qs, n);
        let b = Kernel::for_gate(&Gate::Crz(-1.2), &qs, n);
        let c = Kernel::for_gate(&Gate::Cz, &qs, n);
        let fused = a.fuse(&b).unwrap().fuse(&c).unwrap();
        assert_eq!(fused.class(), KernelClass::Fused);
        assert_eq!(fused.fused_stages(), 3);
        let state = random_state(&mut rng, dim);
        let mut seq = state.clone().into_inner();
        let mut scratch = Vec::new();
        for k in [&a, &b, &c] {
            k.apply(&mut seq, &mut scratch);
        }
        let mut one = state.into_inner();
        fused.apply(&mut one, &mut scratch);
        assert_eq!(seq, one, "fused diagonal chain drifted");
    }

    #[test]
    fn unfusible_pairs_are_rejected() {
        let n = 4;
        let h0 = Kernel::for_gate(&Gate::H, &[0], n);
        let h1 = Kernel::for_gate(&Gate::H, &[1], n);
        let cx = Kernel::for_gate(&Gate::Cx, &[0, 1], n);
        let cz01 = Kernel::for_gate(&Gate::Cz, &[0, 1], n);
        let cz12 = Kernel::for_gate(&Gate::Cz, &[1, 2], n);
        let ch = Kernel::for_gate(&Gate::Ch, &[0, 1], n);
        assert!(h0.fuse(&h1).is_none(), "different qubits must not fuse");
        assert!(h0.fuse(&cx).is_none(), "permutation must not fuse");
        assert!(cz01.fuse(&cz12).is_none(), "different tuples must not fuse");
        assert!(cz01.fuse(&ch).is_none(), "dense factor must not fuse");
        assert!(
            h0.fuse(&Kernel::for_gate(&Gate::H, &[0], 5)).is_none(),
            "different register widths must not fuse"
        );
    }

    /// The threaded sweep must be bit-for-bit equal to the sequential
    /// sweep for every kernel class, at several thread counts, above the
    /// engagement threshold.
    #[test]
    fn apply_threaded_matches_sequential_bitwise() {
        let mut rng = StdRng::seed_from_u64(57);
        let n = PARALLEL_THRESHOLD_QUBITS + 1;
        let dim = 1 << n;
        let h = Kernel::for_gate(&Gate::H, &[2], n);
        let t = Kernel::for_gate(&Gate::T, &[7], n);
        let cp = Kernel::for_gate(&Gate::Cp(0.4), &[3, 9], n);
        let ccx = Kernel::for_gate(&Gate::Ccx, &[1, 5, 8], n);
        let cu = Kernel::for_gate(&Gate::Cu3(0.2, 0.5, -0.9), &[4, 10], n);
        let fused = h.fuse(&Kernel::for_gate(&Gate::S, &[2], n)).unwrap();
        let fused_diag = cp
            .fuse(&Kernel::for_gate(&Gate::Crz(1.3), &[3, 9], n))
            .unwrap();
        for kernel in [&h, &t, &cp, &ccx, &cu, &fused, &fused_diag] {
            let state = random_state(&mut rng, dim);
            let mut seq = state.clone().into_inner();
            let mut scratch = Vec::new();
            kernel.apply(&mut seq, &mut scratch);
            for threads in [2usize, 3, 4, 16] {
                let mut par = state.clone().into_inner();
                kernel.apply_threaded(&mut par, &mut Vec::new(), threads);
                assert_eq!(
                    seq,
                    par,
                    "threaded sweep drifted at {threads} threads ({:?})",
                    kernel.class()
                );
            }
        }
    }

    /// Below the threshold the threaded entry point must take the exact
    /// sequential path regardless of the configured thread count.
    #[test]
    fn apply_threaded_below_threshold_is_sequential() {
        let n = PARALLEL_THRESHOLD_QUBITS - 1;
        let k = Kernel::for_gate(&Gate::H, &[0], n);
        let mut rng = StdRng::seed_from_u64(58);
        let state = random_state(&mut rng, 1 << n);
        let mut seq = state.clone().into_inner();
        k.apply(&mut seq, &mut Vec::new());
        let mut par = state.into_inner();
        k.apply_threaded(&mut par, &mut Vec::new(), 8);
        assert_eq!(seq, par);
    }

    #[test]
    fn nth_base_matches_sequential_walk() {
        let dim = 1 << 6;
        for gate_mask in [0b000110usize, 0b100001, 0b010000] {
            let mut base = 0usize;
            let mut ordinal = 0usize;
            loop {
                assert_eq!(nth_base(ordinal, gate_mask, dim), base);
                ordinal += 1;
                base = (base | gate_mask).wrapping_add(1) & !gate_mask;
                if base == 0 || base >= dim {
                    break;
                }
            }
        }
    }

    /// A random (not necessarily pure) Hermitian-ish test matrix; the
    /// conjugation identity holds for arbitrary matrices, so plain random
    /// complex entries suffice.
    fn random_dense(rng: &mut StdRng, d: usize) -> CMatrix {
        CMatrix::from_fn(d, d, |_, _| {
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    /// The conjugation pair over vec(ρ) must match the dense
    /// `embed(A)·ρ·embed(A)†` for every kernel class and random placement.
    #[test]
    fn conjugation_pair_matches_dense_sandwich() {
        let mut rng = StdRng::seed_from_u64(44);
        let n = 3;
        let d = 1usize << n;
        let gates: Vec<Gate> = vec![
            Gate::H,
            Gate::X,
            Gate::Z,
            Gate::S,
            Gate::Rz(0.9),
            Gate::Ry(-0.4),
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Ch,
            Gate::Cu3(0.3, 0.2, 0.1),
        ];
        let mut scratch = PairScratch::default();
        for gate in &gates {
            for _ in 0..3 {
                let qubits = distinct_qubits(&mut rng, gate.num_qubits(), n);
                let rho = random_dense(&mut rng, d);
                let mut fast: Vec<C64> = rho.as_slice().to_vec();
                ConjugationPair::for_gate(gate, &qubits, n).apply(&mut fast, &mut scratch);
                let full = embed(&gate.matrix(), &qubits, n);
                let slow = full.mul(&rho).unwrap().mul(&full.adjoint()).unwrap();
                let fast = CMatrix::new(d, d, fast);
                assert!(
                    fast.max_abs_diff(&slow) < 1e-12,
                    "{gate} on {qubits:?}: conjugation pair diverged from dense sandwich"
                );
            }
        }
    }

    /// Threaded conjugation must be bit-identical to the sequential pair
    /// at any thread count (the register is 2n qubits, so n = 6 clears
    /// the 10-qubit engagement threshold).
    #[test]
    fn conjugation_pair_threaded_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(45);
        let n = 6;
        let d = 1usize << n;
        for gate in [Gate::H, Gate::Cx, Gate::Crz(0.8), Gate::Ch] {
            let qubits = distinct_qubits(&mut rng, gate.num_qubits(), n);
            let pair = ConjugationPair::for_gate(&gate, &qubits, n);
            let rho = random_dense(&mut rng, d);
            let mut seq: Vec<C64> = rho.as_slice().to_vec();
            pair.apply(&mut seq, &mut PairScratch::default());
            for threads in [2usize, 4] {
                let mut par: Vec<C64> = rho.as_slice().to_vec();
                pair.apply_threaded(&mut par, &mut PairScratch::default(), threads);
                assert_eq!(seq, par, "{gate}: threaded conjugation drifted");
            }
        }
    }

    /// Structured gates must keep their cheap classification through the
    /// conjugation lowering — the whole point of the pairing.
    #[test]
    fn conjugation_preserves_kernel_class() {
        assert_eq!(
            ConjugationPair::for_gate(&Gate::X, &[0], 2).class(),
            KernelClass::Permutation
        );
        assert_eq!(
            ConjugationPair::for_gate(&Gate::Cx, &[0, 1], 2).class(),
            KernelClass::Permutation
        );
        assert_eq!(
            ConjugationPair::for_gate(&Gate::Rz(0.3), &[1], 2).class(),
            KernelClass::Diagonal
        );
        assert_eq!(
            ConjugationPair::for_gate(&Gate::H, &[0], 2).class(),
            KernelClass::Single
        );
    }
}
