//! Specialized state-vector gate kernels.
//!
//! [`apply_gate_inplace`](crate::circuit::apply_gate_inplace) treats every
//! gate as a dense `2ᵏ × 2ᵏ` matrix and pays the full `4ᵏ` complex
//! multiply-accumulate per sub-block. Most gates in real circuits are far
//! more structured, and a [`Kernel`] captures that structure once — at
//! lowering time — so the per-shot hot loop runs the cheapest possible
//! update:
//!
//! * [`KernelClass::Single`] — an in-place single-qubit butterfly
//!   (4 multiplies, 2 adds per amplitude pair);
//! * [`KernelClass::Diagonal`] — phase-only gates (`Z`, `S`, `T`, `Rz`,
//!   `P`, `Cz`, `Cp`, `Crz`, `Ccz`): one multiply per amplitude, and
//!   exact-unit diagonal entries are skipped entirely;
//! * [`KernelClass::Permutation`] — classical bit-shuffles (`X`, `CX`,
//!   `CCX`, `SWAP`, `CSWAP`): pure amplitude moves, no arithmetic;
//! * [`KernelClass::Generic`] — the dense fallback, with its gather
//!   offsets precomputed and its scratch buffer caller-provided.
//!
//! Classification is structural (from the matrix, not the gate name), so
//! arbitrary [`Gate::Unitary`] gates and even non-unitary Kraus operators
//! lower to the cheapest applicable kernel.
//!
//! # Numerical contract
//!
//! Every kernel performs arithmetic identical to the dense fallback up to
//! the sign of zero components (the dense path folds exact-zero products
//! into its accumulator; specialized kernels skip them). Probabilities
//! (`|amp|²`) and every comparison derived from them are therefore
//! bit-for-bit identical across kernel classes — the seed-compatibility
//! contract the compiled execution engine in `qra-sim` relies on.

use crate::Gate;
use qra_math::{CMatrix, C64};

/// The specialization a matrix lowered to; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelClass {
    /// In-place single-qubit butterfly.
    Single,
    /// Phase-only diagonal update.
    Diagonal,
    /// Pure amplitude permutation.
    Permutation,
    /// Dense matrix fallback.
    Generic,
}

impl KernelClass {
    /// Short lowercase name used in reports and benches.
    pub fn name(&self) -> &'static str {
        match self {
            KernelClass::Single => "single",
            KernelClass::Diagonal => "diagonal",
            KernelClass::Permutation => "permutation",
            KernelClass::Generic => "generic",
        }
    }
}

#[derive(Debug, Clone)]
enum Body {
    /// `k = 1` dense butterfly over amplitude pairs split by `mask`.
    Single {
        m00: C64,
        m01: C64,
        m10: C64,
        m11: C64,
        mask: usize,
    },
    /// `k = 1` diagonal: low half scaled by `d0`, high half by `d1`.
    Diag1 { d0: C64, d1: C64, mask: usize },
    /// `k ≥ 2` diagonal over the gathered sub-index.
    Diagonal { diag: Vec<C64>, shifts: Vec<usize> },
    /// Sub-block permutation: new sub-amplitude `r` reads old `src[r]`.
    Permutation {
        src: Vec<usize>,
        offsets: Vec<usize>,
        gate_mask: usize,
    },
    /// Dense fallback with precomputed scatter offsets.
    Generic {
        matrix: CMatrix,
        offsets: Vec<usize>,
        gate_mask: usize,
    },
}

/// A gate lowered onto a fixed qubit tuple of a fixed-width register,
/// ready for repeated O(2ⁿ) in-place application.
///
/// ```rust
/// use qra_circuit::kernel::{Kernel, KernelClass};
/// use qra_circuit::Gate;
/// use qra_math::CVector;
///
/// let k = Kernel::for_gate(&Gate::Cx, &[0, 1], 2);
/// assert_eq!(k.class(), KernelClass::Permutation);
/// let mut state = CVector::basis_state(4, 0b10).into_inner();
/// let mut scratch = Vec::new();
/// k.apply(&mut state, &mut scratch);
/// assert_eq!(state[0b11], qra_math::C64::one());
/// ```
#[derive(Debug, Clone)]
pub struct Kernel {
    body: Body,
    dim: usize,
}

fn exact_zero(z: C64) -> bool {
    z.re == 0.0 && z.im == 0.0
}

fn exact_one(z: C64) -> bool {
    z.re == 1.0 && z.im == 0.0
}

impl Kernel {
    /// Lowers `gate` applied on `qubits` (gate order) of an `n`-qubit
    /// register. Arbitrary-unitary gates lower without cloning their
    /// backing matrix unless the dense fallback is needed.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or invalid qubit indices, exactly like
    /// [`crate::circuit::apply_gate_inplace`].
    pub fn for_gate(gate: &Gate, qubits: &[usize], n: usize) -> Kernel {
        match gate.unitary_matrix() {
            Some(m) => Self::from_matrix(m, qubits, n),
            None => Self::from_matrix(&gate.matrix(), qubits, n),
        }
    }

    /// Lowers an explicit `2ᵏ × 2ᵏ` matrix (not necessarily unitary — Kraus
    /// operators lower too) applied on `qubits` of an `n`-qubit register.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or invalid qubit indices.
    pub fn from_matrix(matrix: &CMatrix, qubits: &[usize], n: usize) -> Kernel {
        let k = qubits.len();
        let sub_dim = 1usize << k;
        assert_eq!(matrix.rows(), sub_dim, "gate dimension mismatch");
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < n, "qubit {q} out of range for {n} qubits");
            assert!(!qubits[..i].contains(&q), "duplicate qubit {q}");
        }
        let dim = 1usize << n;
        // Bit positions (from the most significant end) of each gate qubit.
        let shifts: Vec<usize> = qubits.iter().map(|&q| n - 1 - q).collect();
        let gate_mask: usize = shifts.iter().map(|&s| 1usize << s).sum();
        // offsets[s]: the full-index bits contributed by sub-index `s`.
        let offsets: Vec<usize> = (0..sub_dim)
            .map(|s| {
                let mut off = 0usize;
                for (pos, &sh) in shifts.iter().enumerate() {
                    if (s >> (k - 1 - pos)) & 1 == 1 {
                        off |= 1 << sh;
                    }
                }
                off
            })
            .collect();

        let body = if is_diagonal(matrix) {
            let diag: Vec<C64> = (0..sub_dim).map(|r| matrix.get(r, r)).collect();
            if k == 1 {
                Body::Diag1 {
                    d0: diag[0],
                    d1: diag[1],
                    mask: gate_mask,
                }
            } else {
                Body::Diagonal { diag, shifts }
            }
        } else if let Some(src) = as_permutation(matrix) {
            Body::Permutation {
                src,
                offsets,
                gate_mask,
            }
        } else if k == 1 {
            Body::Single {
                m00: matrix.get(0, 0),
                m01: matrix.get(0, 1),
                m10: matrix.get(1, 0),
                m11: matrix.get(1, 1),
                mask: gate_mask,
            }
        } else {
            Body::Generic {
                matrix: matrix.clone(),
                offsets,
                gate_mask,
            }
        };
        Kernel { body, dim }
    }

    /// The specialization class this kernel lowered to.
    pub fn class(&self) -> KernelClass {
        match &self.body {
            Body::Single { .. } => KernelClass::Single,
            Body::Diag1 { .. } | Body::Diagonal { .. } => KernelClass::Diagonal,
            Body::Permutation { .. } => KernelClass::Permutation,
            Body::Generic { .. } => KernelClass::Generic,
        }
    }

    /// The full register dimension (`2ⁿ`) this kernel was lowered for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies the kernel to `state` in place. `scratch` is a reusable
    /// buffer (grown on demand, never shrunk) so repeated application
    /// allocates nothing after the first call.
    ///
    /// # Panics
    ///
    /// Panics when `state.len()` disagrees with the lowered dimension.
    pub fn apply(&self, state: &mut [C64], scratch: &mut Vec<C64>) {
        assert_eq!(state.len(), self.dim, "state dimension mismatch");
        match &self.body {
            Body::Single {
                m00,
                m01,
                m10,
                m11,
                mask,
            } => {
                let pair = mask << 1;
                let mut base = 0usize;
                while base < self.dim {
                    for i in base..base + mask {
                        let a0 = state[i];
                        let a1 = state[i + mask];
                        state[i] = *m00 * a0 + *m01 * a1;
                        state[i + mask] = *m10 * a0 + *m11 * a1;
                    }
                    base += pair;
                }
            }
            Body::Diag1 { d0, d1, mask } => {
                let pair = mask << 1;
                let scale0 = !exact_one(*d0);
                let scale1 = !exact_one(*d1);
                let mut base = 0usize;
                while base < self.dim {
                    if scale0 {
                        for amp in &mut state[base..base + mask] {
                            *amp *= *d0;
                        }
                    }
                    if scale1 {
                        for amp in &mut state[base + mask..base + pair] {
                            *amp *= *d1;
                        }
                    }
                    base += pair;
                }
            }
            Body::Diagonal { diag, shifts } => {
                let k = shifts.len();
                for (i, amp) in state.iter_mut().enumerate() {
                    let mut s = 0usize;
                    for (pos, &sh) in shifts.iter().enumerate() {
                        s |= ((i >> sh) & 1) << (k - 1 - pos);
                    }
                    let d = diag[s];
                    if !exact_one(d) {
                        *amp *= d;
                    }
                }
            }
            Body::Permutation {
                src,
                offsets,
                gate_mask,
            } => {
                let sub_dim = offsets.len();
                if scratch.len() < sub_dim {
                    scratch.resize(sub_dim, C64::zero());
                }
                let mut base = 0usize;
                loop {
                    for (slot, &s) in scratch[..sub_dim].iter_mut().zip(src.iter()) {
                        *slot = state[base | offsets[s]];
                    }
                    for (&off, &amp) in offsets.iter().zip(scratch[..sub_dim].iter()) {
                        state[base | off] = amp;
                    }
                    base = (base | gate_mask).wrapping_add(1) & !gate_mask;
                    if base == 0 || base >= self.dim {
                        break;
                    }
                }
            }
            Body::Generic {
                matrix,
                offsets,
                gate_mask,
            } => {
                let sub_dim = offsets.len();
                if scratch.len() < sub_dim {
                    scratch.resize(sub_dim, C64::zero());
                }
                let mut base = 0usize;
                loop {
                    for (slot, &off) in scratch[..sub_dim].iter_mut().zip(offsets.iter()) {
                        *slot = state[base | off];
                    }
                    for (r, &off) in offsets.iter().enumerate() {
                        let mut acc = C64::zero();
                        for (c, &amp) in scratch[..sub_dim].iter().enumerate() {
                            acc += matrix.get(r, c) * amp;
                        }
                        state[base | off] = acc;
                    }
                    base = (base | gate_mask).wrapping_add(1) & !gate_mask;
                    if base == 0 || base >= self.dim {
                        break;
                    }
                }
            }
        }
    }
}

/// A lowered conjugation map `ρ ← AρA†` over a vectorized density matrix.
///
/// A `d × d` density matrix on `n` qubits, flattened row-major
/// (`vec(ρ)[r·d + c] = ρ[r][c]`), is index-isomorphic to a `2n`-qubit state
/// vector whose high `n` bits are the row index and low `n` bits the
/// column index. Under that isomorphism:
///
/// * left multiplication `Aρ` is `A` applied to the **row** qubits —
///   gate qubit `q` lands on register qubit `q` of the `2n` register;
/// * right multiplication `MA†` is `Ā` (elementwise conjugate, **not**
///   the adjoint) applied to the **column** qubits — gate qubit `q` lands
///   on register qubit `n + q`.
///
/// Both factors lower through [`Kernel::from_matrix`] and inherit its
/// structural classification: an `X`/`CX` conjugation is two pure index
/// permutations of ρ and a `Z`/`S`/`T`/`Rz` conjugation is two `O(d²)`
/// phase sweeps, instead of two `O(d³)` dense multiplies. Non-unitary
/// Kraus operators lower identically (the completeness sum is the
/// caller's concern).
///
/// ```rust
/// use qra_circuit::kernel::ConjugationPair;
/// use qra_circuit::Gate;
/// use qra_math::C64;
///
/// // X|0⟩⟨0|X = |1⟩⟨1| on a 1-qubit register: vec(ρ) has 4 entries.
/// let pair = ConjugationPair::for_gate(&Gate::X, &[0], 1);
/// let mut rho = vec![C64::one(), C64::zero(), C64::zero(), C64::zero()];
/// pair.apply(&mut rho, &mut Vec::new());
/// assert_eq!(rho[0b11], C64::one());
/// ```
#[derive(Debug, Clone)]
pub struct ConjugationPair {
    left: Kernel,
    right: Kernel,
}

impl ConjugationPair {
    /// Lowers `matrix` acting on `qubits` of an `n`-qubit density matrix
    /// into the left/right kernel pair over the `2n`-qubit vectorization.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or invalid qubit indices, exactly like
    /// [`Kernel::from_matrix`].
    pub fn lower(matrix: &CMatrix, qubits: &[usize], n: usize) -> ConjugationPair {
        let col_qubits: Vec<usize> = qubits.iter().map(|&q| q + n).collect();
        ConjugationPair {
            left: Kernel::from_matrix(matrix, qubits, 2 * n),
            right: Kernel::from_matrix(&matrix.conj(), &col_qubits, 2 * n),
        }
    }

    /// Lowers a gate's matrix; see [`ConjugationPair::lower`].
    pub fn for_gate(gate: &Gate, qubits: &[usize], n: usize) -> ConjugationPair {
        match gate.unitary_matrix() {
            Some(m) => Self::lower(m, qubits, n),
            None => Self::lower(&gate.matrix(), qubits, n),
        }
    }

    /// Applies `ρ ← AρA†` in place on the row-major flattened density
    /// matrix (`4ⁿ` entries). `scratch` is reused across calls like
    /// [`Kernel::apply`]'s.
    ///
    /// # Panics
    ///
    /// Panics when `vec_rho.len()` disagrees with the lowered dimension.
    pub fn apply(&self, vec_rho: &mut [C64], scratch: &mut Vec<C64>) {
        self.left.apply(vec_rho, scratch);
        self.right.apply(vec_rho, scratch);
    }

    /// The classification of the left (row-side) factor; the right factor
    /// always lowers to the same class (conjugation preserves structure).
    pub fn class(&self) -> KernelClass {
        self.left.class()
    }
}

/// `true` when every off-diagonal entry is exactly zero.
fn is_diagonal(m: &CMatrix) -> bool {
    let d = m.rows();
    for r in 0..d {
        for c in 0..d {
            if r != c && !exact_zero(m.get(r, c)) {
                return false;
            }
        }
    }
    true
}

/// When `m` is an exact 0/1 permutation matrix, returns `src` with
/// `src[r] = c` for the unique `c` with `m[r][c] = 1`; `None` otherwise.
fn as_permutation(m: &CMatrix) -> Option<Vec<usize>> {
    let d = m.rows();
    let mut src = Vec::with_capacity(d);
    let mut used = vec![false; d];
    for r in 0..d {
        let mut found: Option<usize> = None;
        for c in 0..d {
            let z = m.get(r, c);
            if exact_zero(z) {
                continue;
            }
            if !exact_one(z) || found.is_some() {
                return None;
            }
            found = Some(c);
        }
        let c = found?;
        if used[c] {
            return None;
        }
        used[c] = true;
        src.push(c);
    }
    Some(src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::embed;
    use qra_math::CVector;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_state(rng: &mut StdRng, dim: usize) -> CVector {
        let raw: Vec<C64> = (0..dim)
            .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        CVector::new(raw).normalized().unwrap()
    }

    fn distinct_qubits(rng: &mut StdRng, k: usize, n: usize) -> Vec<usize> {
        let mut qs: Vec<usize> = Vec::new();
        while qs.len() < k {
            let q = rng.gen_range(0..n);
            if !qs.contains(&q) {
                qs.push(q);
            }
        }
        qs
    }

    #[test]
    fn classification_per_gate() {
        let n = 3;
        let cases = [
            (Gate::H, vec![0], KernelClass::Single),
            (Gate::Y, vec![1], KernelClass::Single),
            (Gate::Rx(0.3), vec![2], KernelClass::Single),
            (Gate::Z, vec![0], KernelClass::Diagonal),
            (Gate::S, vec![1], KernelClass::Diagonal),
            (Gate::T, vec![1], KernelClass::Diagonal),
            (Gate::Rz(0.7), vec![2], KernelClass::Diagonal),
            (Gate::Phase(0.4), vec![0], KernelClass::Diagonal),
            (Gate::Cz, vec![0, 1], KernelClass::Diagonal),
            (Gate::Cp(0.2), vec![1, 2], KernelClass::Diagonal),
            (Gate::Crz(0.9), vec![0, 2], KernelClass::Diagonal),
            (Gate::Ccz, vec![0, 1, 2], KernelClass::Diagonal),
            (Gate::X, vec![0], KernelClass::Permutation),
            (Gate::Cx, vec![0, 1], KernelClass::Permutation),
            (Gate::Swap, vec![1, 2], KernelClass::Permutation),
            (Gate::Ccx, vec![0, 1, 2], KernelClass::Permutation),
            (Gate::Cswap, vec![0, 1, 2], KernelClass::Permutation),
            (Gate::Ch, vec![0, 1], KernelClass::Generic),
            (Gate::Cu3(0.1, 0.2, 0.3), vec![1, 0], KernelClass::Generic),
        ];
        for (gate, qubits, class) in cases {
            let kernel = Kernel::for_gate(&gate, &qubits, n);
            assert_eq!(kernel.class(), class, "{gate} misclassified");
        }
    }

    #[test]
    fn identity_is_skipped_diagonal() {
        let k = Kernel::for_gate(&Gate::I, &[0], 2);
        assert_eq!(k.class(), KernelClass::Diagonal);
        let mut state = CVector::basis_state(4, 3).into_inner();
        let before = state.clone();
        k.apply(&mut state, &mut Vec::new());
        assert_eq!(state, before);
    }

    /// Every kernel class must agree with the dense embedding on random
    /// states and random qubit placements — the compiled-engine analogue of
    /// `apply_gate_inplace_matches_embed`.
    #[test]
    fn kernels_match_embed_across_classes() {
        let mut rng = StdRng::seed_from_u64(20);
        let n = 5;
        let dim = 1 << n;
        let gates: Vec<Gate> = vec![
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Tdg,
            Gate::Sx,
            Gate::Rz(1.3),
            Gate::Ry(-0.8),
            Gate::Phase(2.2),
            Gate::U3(0.4, 1.0, -0.5),
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Ch,
            Gate::Cp(0.6),
            Gate::Crz(-1.1),
            Gate::Cu3(0.3, 0.2, 0.1),
            Gate::Ccx,
            Gate::Ccz,
            Gate::Cswap,
        ];
        let mut scratch = Vec::new();
        for gate in &gates {
            for _ in 0..4 {
                let qubits = distinct_qubits(&mut rng, gate.num_qubits(), n);
                let state = random_state(&mut rng, dim);
                let mut fast = state.clone().into_inner();
                Kernel::for_gate(gate, &qubits, n).apply(&mut fast, &mut scratch);
                let slow = embed(&gate.matrix(), &qubits, n).mul_vec(&state);
                assert!(
                    CVector::new(fast).approx_eq(&slow, 1e-9),
                    "{gate} on {qubits:?} diverged from embedding"
                );
            }
        }
    }

    #[test]
    fn kraus_like_non_unitary_matrices_lower() {
        // Phase-damping K0 = diag(1, √(1-p)) is non-unitary but diagonal.
        let k0 = CMatrix::diagonal(&[C64::one(), C64::from(0.8f64.sqrt())]);
        let kernel = Kernel::from_matrix(&k0, &[1], 2);
        assert_eq!(kernel.class(), KernelClass::Diagonal);
        // Amplitude-damping K1 = |0⟩⟨1|·√γ is non-unitary and dense.
        let k1 = CMatrix::new(
            2,
            2,
            vec![
                C64::zero(),
                C64::from(0.3f64.sqrt()),
                C64::zero(),
                C64::zero(),
            ],
        );
        let kernel = Kernel::from_matrix(&k1, &[0], 2);
        assert_eq!(kernel.class(), KernelClass::Single);
        let mut state = CVector::basis_state(4, 0b10).into_inner();
        kernel.apply(&mut state, &mut Vec::new());
        assert!((state[0b00].re - 0.3f64.sqrt()).abs() < 1e-12);
        assert!(exact_zero(state[0b10]));
    }

    #[test]
    fn generic_matches_apply_gate_inplace_bitwise() {
        // The dense fallback must reproduce the legacy work-horse exactly
        // (not just approximately): same gather order, same accumulation.
        let mut rng = StdRng::seed_from_u64(33);
        let n = 4;
        let dim = 1 << n;
        let mut scratch = Vec::new();
        for _ in 0..8 {
            let qubits = distinct_qubits(&mut rng, 2, n);
            let g = Gate::Cu3(
                rng.gen_range(0.0..3.0),
                rng.gen_range(0.0..3.0),
                rng.gen_range(0.0..3.0),
            );
            let state = random_state(&mut rng, dim);
            let mut fast = state.clone().into_inner();
            Kernel::from_matrix(&g.matrix(), &qubits, n).apply(&mut fast, &mut scratch);
            let mut slow = state.clone();
            crate::circuit::apply_gate_inplace(&mut slow, &g.matrix(), &qubits, n);
            assert_eq!(fast, slow.into_inner(), "generic kernel drifted");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_wrong_state_dimension() {
        let k = Kernel::for_gate(&Gate::H, &[0], 2);
        let mut state = vec![C64::zero(); 2];
        k.apply(&mut state, &mut Vec::new());
    }

    #[test]
    #[should_panic]
    fn rejects_duplicate_qubits() {
        let _ = Kernel::for_gate(&Gate::Cx, &[1, 1], 2);
    }

    #[test]
    fn class_names() {
        assert_eq!(KernelClass::Single.name(), "single");
        assert_eq!(KernelClass::Diagonal.name(), "diagonal");
        assert_eq!(KernelClass::Permutation.name(), "permutation");
        assert_eq!(KernelClass::Generic.name(), "generic");
    }

    /// A random (not necessarily pure) Hermitian-ish test matrix; the
    /// conjugation identity holds for arbitrary matrices, so plain random
    /// complex entries suffice.
    fn random_dense(rng: &mut StdRng, d: usize) -> CMatrix {
        CMatrix::from_fn(d, d, |_, _| {
            C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0))
        })
    }

    /// The conjugation pair over vec(ρ) must match the dense
    /// `embed(A)·ρ·embed(A)†` for every kernel class and random placement.
    #[test]
    fn conjugation_pair_matches_dense_sandwich() {
        let mut rng = StdRng::seed_from_u64(44);
        let n = 3;
        let d = 1usize << n;
        let gates: Vec<Gate> = vec![
            Gate::H,
            Gate::X,
            Gate::Z,
            Gate::S,
            Gate::Rz(0.9),
            Gate::Ry(-0.4),
            Gate::Cx,
            Gate::Cz,
            Gate::Swap,
            Gate::Ch,
            Gate::Cu3(0.3, 0.2, 0.1),
        ];
        let mut scratch = Vec::new();
        for gate in &gates {
            for _ in 0..3 {
                let qubits = distinct_qubits(&mut rng, gate.num_qubits(), n);
                let rho = random_dense(&mut rng, d);
                let mut fast: Vec<C64> = rho.as_slice().to_vec();
                ConjugationPair::for_gate(gate, &qubits, n).apply(&mut fast, &mut scratch);
                let full = embed(&gate.matrix(), &qubits, n);
                let slow = full.mul(&rho).unwrap().mul(&full.adjoint()).unwrap();
                let fast = CMatrix::new(d, d, fast);
                assert!(
                    fast.max_abs_diff(&slow) < 1e-12,
                    "{gate} on {qubits:?}: conjugation pair diverged from dense sandwich"
                );
            }
        }
    }

    /// Structured gates must keep their cheap classification through the
    /// conjugation lowering — the whole point of the pairing.
    #[test]
    fn conjugation_preserves_kernel_class() {
        assert_eq!(
            ConjugationPair::for_gate(&Gate::X, &[0], 2).class(),
            KernelClass::Permutation
        );
        assert_eq!(
            ConjugationPair::for_gate(&Gate::Cx, &[0, 1], 2).class(),
            KernelClass::Permutation
        );
        assert_eq!(
            ConjugationPair::for_gate(&Gate::Rz(0.3), &[1], 2).class(),
            KernelClass::Diagonal
        );
        assert_eq!(
            ConjugationPair::for_gate(&Gate::H, &[0], 2).class(),
            KernelClass::Single
        );
    }
}
