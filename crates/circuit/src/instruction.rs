//! Circuit instructions: gates, measurements, resets and barriers.

use crate::Gate;
use std::fmt;

/// The operation performed by an [`Instruction`].
#[derive(Debug, Clone, PartialEq)]
pub enum Operation {
    /// A unitary gate.
    Gate(Gate),
    /// A computational-basis measurement into a classical bit.
    Measure,
    /// Reset the qubit to `|0⟩`.
    Reset,
    /// A scheduling barrier (no semantic effect in simulation).
    Barrier,
}

impl Operation {
    /// The operation's name.
    pub fn name(&self) -> &str {
        match self {
            Operation::Gate(g) => g.name(),
            Operation::Measure => "measure",
            Operation::Reset => "reset",
            Operation::Barrier => "barrier",
        }
    }

    /// Returns `true` for unitary operations.
    pub fn is_unitary(&self) -> bool {
        matches!(self, Operation::Gate(_) | Operation::Barrier)
    }
}

/// One step of a quantum circuit: an operation applied to specific qubits
/// (and, for measurements, a classical bit).
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// What is applied.
    pub operation: Operation,
    /// The qubits acted on, in gate order.
    pub qubits: Vec<usize>,
    /// Classical bits written (only measurements use this).
    pub clbits: Vec<usize>,
}

impl Instruction {
    /// Creates a gate instruction.
    pub fn gate(gate: Gate, qubits: Vec<usize>) -> Self {
        Self {
            operation: Operation::Gate(gate),
            qubits,
            clbits: Vec::new(),
        }
    }

    /// Creates a measurement instruction.
    pub fn measure(qubit: usize, clbit: usize) -> Self {
        Self {
            operation: Operation::Measure,
            qubits: vec![qubit],
            clbits: vec![clbit],
        }
    }

    /// Creates a reset instruction.
    pub fn reset(qubit: usize) -> Self {
        Self {
            operation: Operation::Reset,
            qubits: vec![qubit],
            clbits: Vec::new(),
        }
    }

    /// Creates a barrier over the given qubits.
    pub fn barrier(qubits: Vec<usize>) -> Self {
        Self {
            operation: Operation::Barrier,
            qubits,
            clbits: Vec::new(),
        }
    }

    /// Returns the gate if this instruction is a gate.
    pub fn as_gate(&self) -> Option<&Gate> {
        match &self.operation {
            Operation::Gate(g) => Some(g),
            _ => None,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.operation {
            Operation::Gate(g) => write!(f, "{g} q{:?}", self.qubits),
            Operation::Measure => {
                write!(f, "measure q{:?} -> c{:?}", self.qubits, self.clbits)
            }
            Operation::Reset => write!(f, "reset q{:?}", self.qubits),
            Operation::Barrier => write!(f, "barrier q{:?}", self.qubits),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let g = Instruction::gate(Gate::H, vec![0]);
        assert_eq!(g.operation.name(), "h");
        assert!(g.as_gate().is_some());
        assert!(g.operation.is_unitary());

        let m = Instruction::measure(1, 0);
        assert_eq!(m.qubits, vec![1]);
        assert_eq!(m.clbits, vec![0]);
        assert!(!m.operation.is_unitary());
        assert!(m.as_gate().is_none());

        let r = Instruction::reset(2);
        assert_eq!(r.operation.name(), "reset");

        let b = Instruction::barrier(vec![0, 1]);
        assert!(b.operation.is_unitary());
    }

    #[test]
    fn display_forms() {
        assert!(format!("{}", Instruction::gate(Gate::Cx, vec![0, 1])).contains("cx"));
        assert!(format!("{}", Instruction::measure(0, 0)).contains("->"));
        assert!(format!("{}", Instruction::reset(0)).contains("reset"));
        assert!(format!("{}", Instruction::barrier(vec![0])).contains("barrier"));
    }
}
