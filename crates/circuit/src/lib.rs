//! Quantum circuit intermediate representation, gate synthesis and cost
//! analysis for the `qra` quantum runtime assertion library.
//!
//! This crate is the Rust substitute for the subset of Qiskit 0.18 used by
//! the paper: a gate set with exact matrices, a [`Circuit`] builder with
//! registers, synthesis routines (`U` from a state, a circuit from an
//! arbitrary unitary, multi-controlled gates, multiplexed rotations), a
//! peephole [`passes`] optimizer and the paper's gate-cost accounting
//! ([`cost::GateCounts`]).
//!
//! # Qubit ordering convention
//!
//! Qubit 0 is the **most significant** bit of a computational basis index
//! (big-endian), matching the ket notation of the paper: `|011⟩` means
//! qubit 0 in `|0⟩`, qubits 1 and 2 in `|1⟩`.
//!
//! # Example
//!
//! ```rust
//! use qra_circuit::Circuit;
//!
//! // GHZ preparation from the paper's Fig. 2.
//! let mut c = Circuit::new(3);
//! c.h(0).cx(0, 1).cx(1, 2);
//! let state = c.statevector()?;
//! assert!((state.probability(0) - 0.5).abs() < 1e-12);
//! assert!((state.probability(7) - 0.5).abs() < 1e-12);
//! # Ok::<(), qra_circuit::CircuitError>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod circuit;
pub mod cost;
pub mod error;
pub mod gate;
pub mod instruction;
pub mod kernel;
pub mod passes;
pub mod qasm;
pub mod qasm_parser;
pub mod register;
pub mod synthesis;

pub use circuit::Circuit;
pub use cost::GateCounts;
pub use error::CircuitError;
pub use gate::Gate;
pub use instruction::{Instruction, Operation};
pub use kernel::{Kernel, KernelClass};
pub use register::{ClassicalRegister, QuantumRegister};
