//! OpenQASM 2.0 import.
//!
//! Supports `qreg`/`creg` declarations (multiple registers are flattened in
//! declaration order), the qelib1 gates used across this workspace,
//! user-defined `gate name(params) q0,q1 { … }` blocks (inlined at call
//! sites, recursively), `measure`, `reset` and `barrier`. Angle expressions
//! accept literals, `pi`, gate parameters, unary minus, parentheses and
//! `* / + -` arithmetic — enough to round-trip everything
//! [`crate::qasm::to_qasm`] produces plus hand-written files in the same
//! style.

use crate::{Circuit, CircuitError, Gate};
use std::collections::HashMap;

/// Parses an OpenQASM 2.0 program into a [`Circuit`].
///
/// # Errors
///
/// Returns [`CircuitError::Synthesis`] with a line-annotated message for
/// unsupported constructs or malformed syntax.
///
/// ```rust
/// use qra_circuit::qasm_parser::from_qasm;
///
/// let text = r#"
/// OPENQASM 2.0;
/// include "qelib1.inc";
/// qreg q[2];
/// creg c[2];
/// h q[0];
/// cx q[0],q[1];
/// measure q[0] -> c[0];
/// "#;
/// let circuit = from_qasm(text)?;
/// assert_eq!(circuit.num_qubits(), 2);
/// assert_eq!(circuit.gate_count(), 2);
/// assert_eq!(circuit.measure_count(), 1);
/// # Ok::<(), qra_circuit::CircuitError>(())
/// ```
pub fn from_qasm(text: &str) -> Result<Circuit, CircuitError> {
    let mut parser = Parser::default();
    for (lineno, stmt) in split_statements(text) {
        parser
            .statement(&stmt)
            .map_err(|reason| CircuitError::Synthesis {
                reason: format!("line {lineno}: {reason}"),
            })?;
    }
    Ok(parser.circuit)
}

/// Splits the source into `(line, statement)` pairs: statements end at `;`
/// outside braces; a `gate … { … }` block (which spans lines) is one
/// statement. Comments are stripped first.
fn split_statements(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut current = String::new();
    let mut start_line = 1usize;
    let mut depth = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    current.push(ch);
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    current.push(ch);
                    if depth == 0 && current.trim_start().starts_with("gate ") {
                        out.push((start_line, current.trim().to_string()));
                        current.clear();
                    }
                }
                ';' if depth == 0 => {
                    let stmt = current.trim();
                    if !stmt.is_empty() {
                        out.push((start_line, stmt.to_string()));
                    }
                    current.clear();
                }
                other => {
                    if current.trim().is_empty() {
                        start_line = lineno + 1;
                    }
                    current.push(other);
                }
            }
        }
        current.push(' ');
    }
    let tail = current.trim();
    if !tail.is_empty() {
        out.push((start_line, tail.to_string()));
    }
    out
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(idx) => &line[..idx],
        None => line,
    }
}

/// A user-defined gate: formal parameter names, formal qubit names, and
/// the raw body statements for call-site inlining.
#[derive(Debug, Clone)]
struct GateDef {
    params: Vec<String>,
    qubits: Vec<String>,
    body: Vec<String>,
}

#[derive(Default)]
struct Parser {
    circuit: Circuit,
    qregs: HashMap<String, (usize, usize)>, // name -> (start, size)
    cregs: HashMap<String, (usize, usize)>,
    gate_defs: HashMap<String, GateDef>,
}

impl Parser {
    fn statement(&mut self, stmt: &str) -> Result<(), String> {
        if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
            return Ok(());
        }
        if stmt.starts_with("gate ") {
            return self.gate_definition(stmt);
        }
        if let Some(rest) = stmt.strip_prefix("qreg ") {
            let (name, size) = parse_decl(rest)?;
            let start = self.circuit.num_qubits();
            self.circuit.expand_qubits(start + size);
            self.qregs.insert(name, (start, size));
            return Ok(());
        }
        if let Some(rest) = stmt.strip_prefix("creg ") {
            let (name, size) = parse_decl(rest)?;
            let start = self.circuit.num_clbits();
            self.circuit.expand_clbits(start + size);
            self.cregs.insert(name, (start, size));
            return Ok(());
        }
        if let Some(rest) = stmt.strip_prefix("measure ") {
            let (lhs, rhs) = rest
                .split_once("->")
                .ok_or_else(|| "measure needs '->'".to_string())?;
            let qubit = self.qubit(lhs.trim())?;
            let clbit = self.clbit(rhs.trim())?;
            self.circuit
                .measure(qubit, clbit)
                .map_err(|e| e.to_string())?;
            return Ok(());
        }
        if let Some(rest) = stmt.strip_prefix("reset ") {
            let qubit = self.qubit(rest.trim())?;
            self.circuit.reset(qubit).map_err(|e| e.to_string())?;
            return Ok(());
        }
        if let Some(rest) = stmt.strip_prefix("barrier") {
            let qubits = self.qubit_list(rest.trim())?;
            self.circuit.barrier_on(qubits);
            return Ok(());
        }
        self.gate_statement(stmt)
    }

    /// Parses `gate name(p0,p1) a,b { body }` and records the definition.
    fn gate_definition(&mut self, stmt: &str) -> Result<(), String> {
        let open = stmt.find('{').ok_or("gate definition missing '{'")?;
        let close = stmt.rfind('}').ok_or("gate definition missing '}'")?;
        let header = stmt["gate ".len()..open].trim();
        let body_text = &stmt[open + 1..close];

        let (sig, qubit_names) = match header.find(')') {
            Some(idx) => (&header[..=idx], header[idx + 1..].trim()),
            None => match header.find(|c: char| c.is_whitespace()) {
                Some(idx) => (&header[..idx], header[idx..].trim()),
                None => return Err(format!("malformed gate header '{header}'")),
            },
        };
        let (name, params) = match sig.find('(') {
            Some(idx) => {
                let close = sig.rfind(')').ok_or("missing ')'")?;
                let params: Vec<String> = sig[idx + 1..close]
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                (sig[..idx].trim().to_string(), params)
            }
            None => (sig.trim().to_string(), Vec::new()),
        };
        if name.is_empty() {
            return Err("gate definition has no name".into());
        }
        let qubits: Vec<String> = qubit_names
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        if qubits.is_empty() {
            return Err(format!("gate '{name}' declares no qubits"));
        }
        let body: Vec<String> = body_text
            .split(';')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect();
        self.gate_defs.insert(
            name,
            GateDef {
                params,
                qubits,
                body,
            },
        );
        Ok(())
    }

    fn gate_statement(&mut self, stmt: &str) -> Result<(), String> {
        let (name, params, operands) = split_gate_call(stmt)?;
        // User-defined gates inline their bodies with substituted formals.
        if let Some(def) = self.gate_defs.get(&name).cloned() {
            return self.inline_defined_gate(&def, &name, &params, &operands);
        }
        let qubits = self.qubit_list(&operands.join(","))?;
        let values: Result<Vec<f64>, String> = params
            .iter()
            .map(|p| eval_expr_with(p, &HashMap::new()))
            .collect();
        let gate = resolve_gate(&name, &values?)?;
        self.circuit
            .append(gate, &qubits)
            .map_err(|e| e.to_string())?;
        Ok(())
    }

    /// Inlines one call of a user-defined gate: binds formal parameters to
    /// evaluated angle expressions and formal qubits to actual operands,
    /// then replays the body (which may itself call defined gates).
    fn inline_defined_gate(
        &mut self,
        def: &GateDef,
        name: &str,
        params: &[String],
        operands: &[String],
    ) -> Result<(), String> {
        if params.len() != def.params.len() {
            return Err(format!(
                "gate {name} expects {} parameters, got {}",
                def.params.len(),
                params.len()
            ));
        }
        if operands.len() != def.qubits.len() {
            return Err(format!(
                "gate {name} expects {} qubits, got {}",
                def.qubits.len(),
                operands.len()
            ));
        }
        let mut bindings = HashMap::new();
        for (formal, actual) in def.params.iter().zip(params) {
            bindings.insert(formal.clone(), eval_expr_with(actual, &HashMap::new())?);
        }
        let qubit_map: HashMap<&str, &str> = def
            .qubits
            .iter()
            .map(String::as_str)
            .zip(operands.iter().map(String::as_str))
            .collect();

        for body_stmt in &def.body {
            let (bname, bparams, boperands) = split_gate_call(body_stmt)?;
            let actual_qubits: Result<Vec<String>, String> = boperands
                .iter()
                .map(|q| {
                    qubit_map
                        .get(q.as_str())
                        .map(|s| s.to_string())
                        .ok_or_else(|| format!("gate {name}: unknown formal qubit '{q}'"))
                })
                .collect();
            let actual_qubits = actual_qubits?;
            if let Some(inner) = self.gate_defs.get(&bname).cloned() {
                // Evaluate inner params under the current bindings first.
                let evaluated: Result<Vec<String>, String> = bparams
                    .iter()
                    .map(|p| eval_expr_with(p, &bindings).map(|v| v.to_string()))
                    .collect();
                self.inline_defined_gate(&inner, &bname, &evaluated?, &actual_qubits)?;
            } else {
                let values: Result<Vec<f64>, String> = bparams
                    .iter()
                    .map(|p| eval_expr_with(p, &bindings))
                    .collect();
                let gate = resolve_gate(&bname, &values?)?;
                let qubits = self.qubit_list(&actual_qubits.join(","))?;
                self.circuit
                    .append(gate, &qubits)
                    .map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }

    fn qubit(&self, token: &str) -> Result<usize, String> {
        let (name, idx) = parse_index(token)?;
        let &(start, size) = self
            .qregs
            .get(&name)
            .ok_or_else(|| format!("unknown qreg '{name}'"))?;
        if idx >= size {
            return Err(format!("index {idx} out of range for qreg {name}[{size}]"));
        }
        Ok(start + idx)
    }

    fn clbit(&self, token: &str) -> Result<usize, String> {
        let (name, idx) = parse_index(token)?;
        let &(start, size) = self
            .cregs
            .get(&name)
            .ok_or_else(|| format!("unknown creg '{name}'"))?;
        if idx >= size {
            return Err(format!("index {idx} out of range for creg {name}[{size}]"));
        }
        Ok(start + idx)
    }

    fn qubit_list(&self, operands: &str) -> Result<Vec<usize>, String> {
        operands
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|token| self.qubit(token))
            .collect()
    }
}

fn parse_decl(rest: &str) -> Result<(String, usize), String> {
    let (name, idx) = parse_index(rest.trim())?;
    Ok((name, idx_to_size(idx)?))
}

fn idx_to_size(size: usize) -> Result<usize, String> {
    if size == 0 {
        return Err("register size must be positive".into());
    }
    Ok(size)
}

/// Parses `name[index]`.
fn parse_index(token: &str) -> Result<(String, usize), String> {
    let open = token
        .find('[')
        .ok_or_else(|| format!("expected '[' in '{token}'"))?;
    let close = token
        .find(']')
        .ok_or_else(|| format!("expected ']' in '{token}'"))?;
    let name = token[..open].trim().to_string();
    let idx: usize = token[open + 1..close]
        .trim()
        .parse()
        .map_err(|_| format!("bad index in '{token}'"))?;
    Ok((name, idx))
}

/// Splits a gate call `name[(p0,p1)] q0, q1` into
/// `(name, raw params, raw operands)`.
fn split_gate_call(stmt: &str) -> Result<(String, Vec<String>, Vec<String>), String> {
    let stmt = stmt.trim();
    let (head, operands_text) = match stmt.find('(') {
        Some(open) => {
            // The params may contain nested parens; find the matching close.
            let mut depth = 0usize;
            let mut close = None;
            for (i, ch) in stmt.char_indices().skip(open) {
                match ch {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            close = Some(i);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let close = close.ok_or("missing ')'")?;
            (&stmt[..=close], &stmt[close + 1..])
        }
        None => match stmt.find(|c: char| c.is_whitespace()) {
            Some(idx) => (&stmt[..idx], &stmt[idx..]),
            None => return Err(format!("malformed statement '{stmt}'")),
        },
    };
    let (name, params) = match head.find('(') {
        Some(idx) => {
            let close = head.rfind(')').ok_or("missing ')'")?;
            let params = split_top_level_commas(&head[idx + 1..close]);
            (head[..idx].trim().to_string(), params)
        }
        None => (head.trim().to_string(), Vec::new()),
    };
    let operands: Vec<String> = operands_text
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    Ok((name, params, operands))
}

/// Splits on commas not nested inside parentheses.
fn split_top_level_commas(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    for ch in text.chars() {
        match ch {
            '(' => {
                depth += 1;
                current.push(ch);
            }
            ')' => {
                depth = depth.saturating_sub(1);
                current.push(ch);
            }
            ',' if depth == 0 => {
                if !current.trim().is_empty() {
                    out.push(current.trim().to_string());
                }
                current.clear();
            }
            other => current.push(other),
        }
    }
    if !current.trim().is_empty() {
        out.push(current.trim().to_string());
    }
    out
}

/// Evaluates an angle expression: numbers, `pi`, named variables from
/// `vars` (gate formal parameters), unary ±, `* / + -` with standard
/// precedence, and parentheses.
fn eval_expr_with(text: &str, vars: &HashMap<String, f64>) -> Result<f64, String> {
    let tokens = tokenize(text, vars)?;
    let mut pos = 0;
    let value = parse_sum(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!("trailing tokens in '{text}'"));
    }
    Ok(value)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Op(char),
    LParen,
    RParen,
}

fn tokenize(text: &str, vars: &HashMap<String, f64>) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => i += 1,
            '+' | '-' | '*' | '/' => {
                toks.push(Tok::Op(c));
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            a if a.is_ascii_alphabetic() || a == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                if word.eq_ignore_ascii_case("pi") {
                    toks.push(Tok::Num(std::f64::consts::PI));
                } else if let Some(&v) = vars.get(&word) {
                    toks.push(Tok::Num(v));
                } else {
                    return Err(format!("unknown identifier '{word}'"));
                }
            }
            d if d.is_ascii_digit() || d == '.' => {
                let start = i;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || chars[i] == '.'
                        || chars[i] == 'e'
                        || chars[i] == 'E'
                        || ((chars[i] == '+' || chars[i] == '-')
                            && i > start
                            && (chars[i - 1] == 'e' || chars[i - 1] == 'E')))
                {
                    i += 1;
                }
                let s: String = chars[start..i].iter().collect();
                toks.push(Tok::Num(
                    s.parse().map_err(|_| format!("bad number '{s}'"))?,
                ));
            }
            other => return Err(format!("unexpected character '{other}'")),
        }
    }
    Ok(toks)
}

fn parse_sum(toks: &[Tok], pos: &mut usize) -> Result<f64, String> {
    let mut acc = parse_product(toks, pos)?;
    while let Some(Tok::Op(op @ ('+' | '-'))) = toks.get(*pos) {
        let op = *op;
        *pos += 1;
        let rhs = parse_product(toks, pos)?;
        if op == '+' {
            acc += rhs;
        } else {
            acc -= rhs;
        }
    }
    Ok(acc)
}

fn parse_product(toks: &[Tok], pos: &mut usize) -> Result<f64, String> {
    let mut acc = parse_atom(toks, pos)?;
    while let Some(Tok::Op(op @ ('*' | '/'))) = toks.get(*pos) {
        let op = *op;
        *pos += 1;
        let rhs = parse_atom(toks, pos)?;
        if op == '*' {
            acc *= rhs;
        } else {
            acc /= rhs;
        }
    }
    Ok(acc)
}

fn parse_atom(toks: &[Tok], pos: &mut usize) -> Result<f64, String> {
    match toks.get(*pos) {
        Some(Tok::Num(v)) => {
            *pos += 1;
            Ok(*v)
        }
        Some(Tok::Op('-')) => {
            *pos += 1;
            Ok(-parse_atom(toks, pos)?)
        }
        Some(Tok::Op('+')) => {
            *pos += 1;
            parse_atom(toks, pos)
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let v = parse_sum(toks, pos)?;
            match toks.get(*pos) {
                Some(Tok::RParen) => {
                    *pos += 1;
                    Ok(v)
                }
                _ => Err("missing ')'".into()),
            }
        }
        other => Err(format!("unexpected token {other:?}")),
    }
}

fn resolve_gate(name: &str, params: &[f64]) -> Result<Gate, String> {
    let arity_err = |want: usize| {
        format!(
            "gate {name} expects {want} parameters, got {}",
            params.len()
        )
    };
    let p = |i: usize| params[i];
    Ok(match (name, params.len()) {
        ("id", 0) => Gate::I,
        ("x", 0) => Gate::X,
        ("y", 0) => Gate::Y,
        ("z", 0) => Gate::Z,
        ("h", 0) => Gate::H,
        ("s", 0) => Gate::S,
        ("sdg", 0) => Gate::Sdg,
        ("t", 0) => Gate::T,
        ("tdg", 0) => Gate::Tdg,
        ("sx", 0) => Gate::Sx,
        ("rx", 1) => Gate::Rx(p(0)),
        ("ry", 1) => Gate::Ry(p(0)),
        ("rz", 1) => Gate::Rz(p(0)),
        ("u1", 1) | ("p", 1) => Gate::Phase(p(0)),
        ("u2", 2) => Gate::U2(p(0), p(1)),
        ("u3", 3) | ("u", 3) => Gate::U3(p(0), p(1), p(2)),
        ("cx", 0) | ("CX", 0) => Gate::Cx,
        ("cy", 0) => Gate::Cy,
        ("cz", 0) => Gate::Cz,
        ("ch", 0) => Gate::Ch,
        ("swap", 0) => Gate::Swap,
        ("cu1", 1) | ("cp", 1) => Gate::Cp(p(0)),
        ("crx", 1) => Gate::Crx(p(0)),
        ("cry", 1) => Gate::Cry(p(0)),
        ("crz", 1) => Gate::Crz(p(0)),
        ("cu3", 3) => Gate::Cu3(p(0), p(1), p(2)),
        ("ccx", 0) => Gate::Ccx,
        ("cswap", 0) => Gate::Cswap,
        ("rx" | "ry" | "rz" | "u1" | "p" | "cu1" | "cp" | "crx" | "cry" | "crz", _) => {
            return Err(arity_err(1))
        }
        ("u2", _) => return Err(arity_err(2)),
        ("u3" | "u" | "cu3", _) => return Err(arity_err(3)),
        _ => return Err(format!("unsupported gate '{name}'")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qasm::to_qasm;

    #[test]
    fn parses_bell_program() {
        let text = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\nh q[0];\ncx q[0],q[1];\nmeasure q[0] -> c[0];\nmeasure q[1] -> c[1];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.num_qubits(), 2);
        assert_eq!(c.num_clbits(), 2);
        assert_eq!(c.gate_count(), 2);
        assert_eq!(c.measure_count(), 2);
    }

    #[test]
    fn roundtrips_exporter_output() {
        let mut original = Circuit::with_clbits(3, 3);
        original
            .h(0)
            .cx(0, 1)
            .rz(0.5, 2)
            .u3(0.1, -0.2, 0.3, 1)
            .cp(0.7, 0, 2)
            .swap(1, 2)
            .ccx(0, 1, 2)
            .t(0)
            .sdg(1);
        original.measure(0, 0).unwrap();
        original.reset(1).unwrap();
        original.barrier();
        let text = to_qasm(&original).unwrap();
        let parsed = from_qasm(&text).unwrap();
        assert_eq!(parsed.num_qubits(), original.num_qubits());
        assert_eq!(parsed.gate_count(), original.gate_count());
        assert_eq!(parsed.measure_count(), 1);
        // Unitary parts agree (strip measure/reset for comparison).
        let strip = |c: &Circuit| {
            let mut s = Circuit::new(c.num_qubits());
            for inst in c.instructions() {
                if let Some(g) = inst.as_gate() {
                    s.append(g.clone(), &inst.qubits).unwrap();
                }
            }
            s
        };
        let u1 = strip(&original).unitary_matrix().unwrap();
        let u2 = strip(&parsed).unitary_matrix().unwrap();
        assert!(u1.approx_eq_up_to_phase(&u2, 1e-9));
    }

    #[test]
    fn parses_pi_expressions() {
        let text = "qreg q[1];\nrz(pi/2) q[0];\nrz(-pi/4) q[0];\nrz(2*pi) q[0];\nrz(pi/2 + pi/4) q[0];\nrz((pi)) q[0];\n";
        let c = from_qasm(text).unwrap();
        let angles: Vec<f64> = c
            .instructions()
            .iter()
            .map(|i| match i.as_gate().unwrap() {
                Gate::Rz(t) => *t,
                _ => panic!(),
            })
            .collect();
        use std::f64::consts::PI;
        assert!((angles[0] - PI / 2.0).abs() < 1e-12);
        assert!((angles[1] + PI / 4.0).abs() < 1e-12);
        assert!((angles[2] - 2.0 * PI).abs() < 1e-12);
        assert!((angles[3] - 0.75 * PI).abs() < 1e-12);
        assert!((angles[4] - PI).abs() < 1e-12);
    }

    #[test]
    fn multiple_registers_flatten() {
        let text = "qreg a[2];\nqreg b[1];\ncreg m[1];\nx b[0];\nmeasure b[0] -> m[0];\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.num_qubits(), 3);
        // b[0] is flat qubit 2.
        assert_eq!(c.instructions()[0].qubits, vec![2]);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "// header\nqreg q[1];\n\nx q[0]; // flip\n";
        let c = from_qasm(text).unwrap();
        assert_eq!(c.gate_count(), 1);
    }

    #[test]
    fn errors_are_line_annotated() {
        let text = "qreg q[1];\nfrobnicate q[0];\n";
        let err = from_qasm(text).unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn rejects_bad_indices_and_unknown_registers() {
        assert!(from_qasm("qreg q[1];\nx q[3];\n").is_err());
        assert!(from_qasm("x q[0];\n").is_err());
        assert!(from_qasm("qreg q[1];\ncreg c[1];\nmeasure q[0] -> d[0];\n").is_err());
        assert!(from_qasm("qreg q[0];\n").is_err());
    }

    #[test]
    fn rejects_wrong_parameter_counts() {
        assert!(from_qasm("qreg q[1];\nrz q[0];\n").is_err());
        assert!(from_qasm("qreg q[1];\nu3(1.0) q[0];\n").is_err());
    }

    #[test]
    fn parses_scientific_notation() {
        let c = from_qasm("qreg q[1];\nrz(1.5e-3) q[0];\n").unwrap();
        match c.instructions()[0].as_gate().unwrap() {
            Gate::Rz(t) => assert!((t - 1.5e-3).abs() < 1e-15),
            _ => panic!(),
        }
    }

    #[test]
    fn barrier_with_explicit_qubits() {
        let c = from_qasm("qreg q[3];\nbarrier q[0],q[2];\n").unwrap();
        assert_eq!(c.instructions()[0].qubits, vec![0, 2]);
    }

    #[test]
    fn user_defined_gate_inlines() {
        let text = r#"
OPENQASM 2.0;
gate bellpair a,b {
  h a;
  cx a,b;
}
qreg q[2];
bellpair q[0],q[1];
"#;
        let c = from_qasm(text).unwrap();
        assert_eq!(c.gate_count(), 2);
        let sv = c.statevector().unwrap();
        assert!((sv.probability(0) - 0.5).abs() < 1e-12);
        assert!((sv.probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn parameterised_user_gate_binds_formals() {
        let text = r#"
gate tilt(theta, phase) t {
  ry(theta) t;
  rz(phase/2) t;
}
qreg q[1];
tilt(pi/2, pi) q[0];
"#;
        let c = from_qasm(text).unwrap();
        assert_eq!(c.gate_count(), 2);
        match c.instructions()[0].as_gate().unwrap() {
            Gate::Ry(t) => assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            g => panic!("expected ry, got {g}"),
        }
        match c.instructions()[1].as_gate().unwrap() {
            Gate::Rz(t) => assert!((t - std::f64::consts::FRAC_PI_2).abs() < 1e-12),
            g => panic!("expected rz, got {g}"),
        }
    }

    #[test]
    fn nested_user_gates_inline_recursively() {
        let text = r#"
gate flip t { x t; }
gate doubleflip a, b {
  flip a;
  flip b;
  cx a,b;
}
qreg q[2];
doubleflip q[0],q[1];
"#;
        let c = from_qasm(text).unwrap();
        // x, x, cx.
        assert_eq!(c.gate_count(), 3);
        let sv = c.statevector().unwrap();
        // |00⟩ → X⊗X → |11⟩ → CX → |10⟩.
        assert!((sv.probability(0b10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn user_gate_errors_are_helpful() {
        // Wrong qubit arity.
        let bad = "gate g a,b { cx a,b; }\nqreg q[2];\ng q[0];\n";
        assert!(from_qasm(bad).is_err());
        // Unknown formal inside the body.
        let bad = "gate g a { x c; }\nqreg q[1];\ng q[0];\n";
        assert!(from_qasm(bad).is_err());
        // Wrong parameter count.
        let bad = "gate g(t) a { rz(t) a; }\nqreg q[1];\ng q[0];\n";
        assert!(from_qasm(bad).is_err());
        // Unknown variable in a top-level expression.
        assert!(from_qasm("qreg q[1];\nrz(theta) q[0];\n").is_err());
    }

    #[test]
    fn gate_definition_on_one_line() {
        let c = from_qasm("gate myh a { h a; } qreg q[1]; myh q[0];").unwrap();
        assert_eq!(c.gate_count(), 1);
    }
}
