//! Textbook gate-identity checks: the gate set must satisfy the standard
//! algebraic relations (Clifford conjugations, inverse pairs, commutation
//! structure) that the assertion synthesis silently relies on.

use qra_circuit::{Circuit, Gate};
use qra_math::{CMatrix, CVector, C64};

const TOL: f64 = 1e-10;

fn unitary_of(build: impl FnOnce(&mut Circuit), n: usize) -> CMatrix {
    let mut c = Circuit::new(n);
    build(&mut c);
    c.unitary_matrix().unwrap()
}

#[test]
fn hadamard_conjugations() {
    // H X H = Z and H Z H = X.
    let hxh = unitary_of(
        |c| {
            c.h(0).x(0).h(0);
        },
        1,
    );
    assert!(hxh.approx_eq(&Gate::Z.matrix(), TOL));
    let hzh = unitary_of(
        |c| {
            c.h(0).z(0).h(0);
        },
        1,
    );
    assert!(hzh.approx_eq(&Gate::X.matrix(), TOL));
}

#[test]
fn s_gate_conjugation_maps_x_to_y() {
    // S X S† = Y.
    let sxs = unitary_of(
        |c| {
            c.sdg(0).x(0).s(0);
        },
        1,
    );
    assert!(sxs.approx_eq(&Gate::Y.matrix(), TOL));
}

#[test]
fn phase_gate_squares() {
    // T² = S, S² = Z.
    let tt = unitary_of(
        |c| {
            c.t(0).t(0);
        },
        1,
    );
    assert!(tt.approx_eq(&Gate::S.matrix(), TOL));
    let ss = unitary_of(
        |c| {
            c.s(0).s(0);
        },
        1,
    );
    assert!(ss.approx_eq(&Gate::Z.matrix(), TOL));
}

#[test]
fn sx_squares_to_x() {
    let sxsx = unitary_of(
        |c| {
            c.append(Gate::Sx, &[0]).unwrap();
            c.append(Gate::Sx, &[0]).unwrap();
        },
        1,
    );
    assert!(sxsx.approx_eq_up_to_phase(&Gate::X.matrix(), TOL));
}

#[test]
fn cx_conjugation_propagates_paulis() {
    // CX (X⊗I) CX = X⊗X: control-X propagates through the CNOT.
    let lhs = unitary_of(
        |c| {
            c.cx(0, 1).x(0).cx(0, 1);
        },
        2,
    );
    let rhs = Gate::X.matrix().kron(&Gate::X.matrix());
    assert!(lhs.approx_eq(&rhs, TOL));
    // CX (I⊗Z) CX = Z⊗Z: target-Z propagates backwards.
    let lhs = unitary_of(
        |c| {
            c.cx(0, 1).z(1).cx(0, 1);
        },
        2,
    );
    let rhs = Gate::Z.matrix().kron(&Gate::Z.matrix());
    assert!(lhs.approx_eq(&rhs, TOL));
}

#[test]
fn cz_is_symmetric_and_diagonal() {
    let a = unitary_of(
        |c| {
            c.cz(0, 1);
        },
        2,
    );
    let b = unitary_of(
        |c| {
            c.cz(1, 0);
        },
        2,
    );
    assert!(a.approx_eq(&b, TOL));
    // CZ = diag(1,1,1,−1).
    let expect = CMatrix::diagonal(&[C64::one(), C64::one(), C64::one(), C64::from(-1.0)]);
    assert!(a.approx_eq(&expect, TOL));
}

#[test]
fn cz_from_hadamard_conjugated_cx() {
    let hch = unitary_of(
        |c| {
            c.h(1).cx(0, 1).h(1);
        },
        2,
    );
    assert!(hch.approx_eq(&Gate::Cz.matrix(), TOL));
}

#[test]
fn swap_from_three_cx() {
    let sss = unitary_of(
        |c| {
            c.cx(0, 1).cx(1, 0).cx(0, 1);
        },
        2,
    );
    assert!(sss.approx_eq(&Gate::Swap.matrix(), TOL));
}

#[test]
fn toffoli_standard_decomposition() {
    // The canonical 6-CX, T-depth decomposition of CCX.
    let decomposed = unitary_of(
        |c| {
            c.h(2);
            c.cx(1, 2);
            c.tdg(2);
            c.cx(0, 2);
            c.t(2);
            c.cx(1, 2);
            c.tdg(2);
            c.cx(0, 2);
            c.t(1);
            c.t(2);
            c.cx(0, 1);
            c.h(2);
            c.t(0);
            c.tdg(1);
            c.cx(0, 1);
        },
        3,
    );
    assert!(decomposed.approx_eq_up_to_phase(&Gate::Ccx.matrix(), TOL));
}

#[test]
fn rotation_composition_and_periodicity() {
    // Rz(a)Rz(b) = Rz(a+b); Ry(2π) = −I (spinor periodicity).
    let composed = unitary_of(
        |c| {
            c.rz(0.3, 0).rz(0.9, 0);
        },
        1,
    );
    assert!(composed.approx_eq(&Gate::Rz(1.2).matrix(), TOL));
    let full_turn = unitary_of(
        |c| {
            c.ry(std::f64::consts::TAU, 0);
        },
        1,
    );
    assert!(full_turn.approx_eq(&CMatrix::identity(2).scale(C64::from(-1.0)), TOL));
}

#[test]
fn euler_angles_recover_hadamard() {
    // H = e^{iπ/2} · Ry(π/2) · Rz(π), verified up to the global phase
    // (and cross-checked against the ZYZ decomposition routine).
    let euler = unitary_of(
        |c| {
            c.rz(std::f64::consts::PI, 0)
                .ry(std::f64::consts::FRAC_PI_2, 0);
        },
        1,
    );
    assert!(euler.approx_eq_up_to_phase(&Gate::H.matrix(), TOL));
    let angles = qra_circuit::synthesis::zyz_decompose(&Gate::H.matrix()).unwrap();
    assert!(angles.matrix().approx_eq(&Gate::H.matrix(), TOL));
}

#[test]
fn controlled_phase_symmetry() {
    let a = unitary_of(
        |c| {
            c.cp(0.7, 0, 1);
        },
        2,
    );
    let b = unitary_of(
        |c| {
            c.cp(0.7, 1, 0);
        },
        2,
    );
    assert!(a.approx_eq(&b, TOL));
}

#[test]
fn ghz_stabilizer_generators() {
    // GHZ is stabilized by XXX, ZZI, IZZ.
    let mut c = Circuit::new(3);
    c.h(0).cx(0, 1).cx(1, 2);
    let sv = c.statevector().unwrap();
    let x = Gate::X.matrix();
    let z = Gate::Z.matrix();
    let id = CMatrix::identity(2);
    for stab in [
        x.kron(&x).kron(&x),
        z.kron(&z).kron(&id),
        id.kron(&z).kron(&z),
    ] {
        let out = stab.mul_vec(&sv);
        assert!(out.approx_eq(&sv, TOL), "stabilizer violated");
    }
}

#[test]
fn bell_basis_transformation_is_complete() {
    // H·CX maps the four computational states onto the four Bell states,
    // which must be mutually orthonormal.
    let mut states = Vec::new();
    for idx in 0..4usize {
        let mut c = Circuit::new(2);
        if idx & 2 != 0 {
            c.x(0);
        }
        if idx & 1 != 0 {
            c.x(1);
        }
        c.h(0).cx(0, 1);
        states.push(c.statevector().unwrap());
    }
    for (i, a) in states.iter().enumerate() {
        for (j, b) in states.iter().enumerate() {
            let ip = a.inner(b).unwrap();
            let expect = if i == j { 1.0 } else { 0.0 };
            assert!(
                (ip.norm() - expect).abs() < TOL,
                "⟨bell_{i}|bell_{j}⟩ = {ip}"
            );
        }
    }
}

#[test]
fn measurement_basis_convention_is_big_endian() {
    // X on qubit 0 of a 3-qubit register sets the most significant bit.
    let mut c = Circuit::new(3);
    c.x(0);
    let sv = c.statevector().unwrap();
    assert!((sv.probability(0b100) - 1.0).abs() < TOL);
    let _ = CVector::zeros(2);
}
