//! `qra` — precise and approximate quantum state runtime assertions.
//!
//! This facade crate re-exports the whole workspace behind one dependency:
//!
//! * [`math`] — complex linear algebra (vectors, matrices, Gram–Schmidt,
//!   Hermitian eigendecomposition);
//! * [`circuit`] — circuit IR, gate synthesis, peephole optimizer, cost
//!   accounting, OpenQASM export;
//! * [`sim`] — state-vector and density-matrix simulators with noise
//!   models;
//! * [`core`] — the paper's contribution: SWAP-based, logical-OR and NDD
//!   assertion synthesis for pure states, mixed states and state sets,
//!   plus the Stat/Primitive/Proq baselines;
//! * [`algorithms`] — the case-study workloads (GHZ, QFT, QPE,
//!   Deutsch–Jozsa, QFT adders, teleportation) with bug injections;
//! * [`faults`] — systematic fault-injection campaigns: a seeded mutation
//!   engine plus a resilient campaign runner and report, noise-aware
//!   sweeps with floor-derived detection thresholds, and mergeable
//!   campaign shards;
//! * [`orch`] — the distributed sweep orchestrator: crash-safe run
//!   directories, claim-based worker scheduling, and kill+resume with
//!   byte-identical reassembly;
//! * [`serve`] — the streaming assertion service: a Unix-socket daemon
//!   with a lock-free work queue, a compiled-program cache, online
//!   latency percentiles, and graceful SIGTERM drain.
//!
//! # Quickstart
//!
//! ```rust
//! use qra::prelude::*;
//!
//! // Build a Bell-pair program, assert its state at runtime, run it.
//! let mut program = Circuit::new(2);
//! program.h(0).cx(0, 1);
//! let s = 0.5f64.sqrt();
//! let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
//! let handle = insert_assertion(&mut program, &[0, 1],
//!                               &StateSpec::pure(bell)?, Design::Auto)?;
//! let counts = StatevectorSimulator::with_seed(1).run(&program, 8192)?;
//! assert_eq!(handle.error_rate(&counts), 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

pub use qra_algorithms as algorithms;
pub use qra_circuit as circuit;
pub use qra_core as core;
pub use qra_faults as faults;
pub use qra_math as math;
pub use qra_orch as orch;
pub use qra_serve as serve;
pub use qra_sim as sim;

/// One-stop imports for applications.
pub mod prelude {
    pub use qra_circuit::{Circuit, Gate, GateCounts};
    pub use qra_core::{
        insert_assertion, insert_deallocation_assertion, synthesize_assertion, Assertion,
        AssertionError, AssertionHandle, AssertionReport, Design, StateSpec,
    };
    pub use qra_faults::{
        assemble_sweep, merge_reports, merge_reports_named, merge_sweep_partials_named,
        parse_report, parse_sweep_partial, run_campaign, run_sweep, BackendChoice, BackendKind,
        CampaignConfig, CampaignDesign, CampaignReport, CellError, CellStatus, FaultInjector,
        FaultKind, MarginMode, Mutant, Shard, SweepConfig, SweepPartial, SweepPoint, SweepReport,
        SweepUnitPayload, SweepUnitRecord,
    };
    pub use qra_math::{CMatrix, CVector, C64};
    pub use qra_orch::{Manifest, RunDir};
    pub use qra_sim::{
        CompiledProgram, Counts, DensityMatrixSimulator, DevicePreset, NoiseModel,
        StabilizerSimulator, StatevectorSimulator,
    };
}
