//! Circuit-equivalence checks for the paper's Figures 4, 13 and 14: the
//! systematically synthesised assertion circuits coincide with (or are
//! unitarily equivalent to) the hand-designed circuits of the prior work
//! (Liu/Byrd/Zhou, ASPLOS'20) that the paper proves equal in its
//! appendices.

use qra_circuit::Circuit;
use qra_core::ndd::build_ndd_assertion;
use qra_core::spec::StateSpec;
use qra_core::swap::build_swap_assertion;
use qra_math::{CMatrix, CVector, C64};

const TOL: f64 = 1e-9;

/// Strips measurements so unitaries can be compared.
fn gates_only(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for inst in circuit.instructions() {
        if let Some(g) = inst.as_gate() {
            out.append(g.clone(), &inst.qubits).unwrap();
        }
    }
    out
}

#[test]
fn fig4_plus_state_swap_assertion_semantics() {
    // Our synthesised |+⟩ SWAP assertion must act as the paper's Fig. 4
    // circuits do: the |+⟩ component survives on the test qubit with the
    // ancilla reading |0⟩; the |−⟩ component moves the flag to |1⟩ while
    // the test qubit is re-prepared to |+⟩.
    let s = 0.5f64.sqrt();
    let plus = CVector::from_real(&[s, s]);
    let minus = CVector::from_real(&[s, -s]);
    let spec = StateSpec::pure(plus.clone()).unwrap();
    let built = build_swap_assertion(&spec.correct_states().unwrap()).unwrap();
    let u = gates_only(&built.circuit).unitary_matrix().unwrap();

    // |+⟩ ⊗ |0⟩ → |+⟩ ⊗ |0⟩.
    let input = plus.kron(&CVector::basis_state(2, 0));
    let out = u.mul_vec(&input);
    assert!(out.approx_eq_up_to_phase(&input, TOL));

    // |−⟩ ⊗ |0⟩ → |+⟩ ⊗ |1⟩ (flag raised, state corrected).
    let input = minus.kron(&CVector::basis_state(2, 0));
    let out = u.mul_vec(&input);
    let expect = plus.kron(&CVector::basis_state(2, 1));
    assert!(out.approx_eq_up_to_phase(&expect, TOL));
}

#[test]
fn fig4_prior_circuit_equivalence() {
    // The explicit prior-work form of the |+⟩ assertion (Appendix A's end
    // point): H(t) · CX(t,a) · CX(a,t) · H(t). Our synthesised circuit uses
    // Ry(π/2) for the preparation, which differs from H only by a phase on
    // the flagged branch — unobservable after the ancilla measurement. So
    // compare the two circuits input-by-input up to phase.
    let s = 0.5f64.sqrt();
    let plus = CVector::from_real(&[s, s]);
    let minus = CVector::from_real(&[s, -s]);
    let spec = StateSpec::pure(plus.clone()).unwrap();
    let built = build_swap_assertion(&spec.correct_states().unwrap()).unwrap();
    let ours = gates_only(&built.circuit).unitary_matrix().unwrap();

    let mut prior = Circuit::new(2);
    prior.h(0).cx(0, 1).cx(1, 0).h(0);
    let theirs = prior.unitary_matrix().unwrap();

    for input_state in [plus, minus] {
        let input = input_state.kron(&CVector::basis_state(2, 0));
        let a = ours.mul_vec(&input);
        let b = theirs.mul_vec(&input);
        assert!(
            a.approx_eq_up_to_phase(&b, TOL),
            "our |+⟩ SWAP assertion disagrees with the Appendix-A form"
        );
    }
}

#[test]
fn fig13_zero_state_ndd_equals_prior_cx() {
    // §V-A / Fig. 13: asserting |0⟩ gives U = Z, so our circuit is
    // H(a)·CZ·H(a); the prior work's circuit is a bare CX(t→a). They are
    // the same unitary.
    let spec = StateSpec::pure(CVector::basis_state(2, 0)).unwrap();
    let built = build_ndd_assertion(&spec.correct_states().unwrap()).unwrap();
    let ours = gates_only(&built.circuit).unitary_matrix().unwrap();

    let mut prior = Circuit::new(2);
    prior.cx(0, 1); // test qubit 0 controls the ancilla 1
    let theirs = prior.unitary_matrix().unwrap();
    assert!(
        ours.approx_eq_up_to_phase(&theirs, TOL),
        "NDD |0⟩ assertion must reduce to the prior CX circuit"
    );
}

#[test]
fn fig14_parity_set_ndd_equals_prior_double_cx() {
    // §V-C / Fig. 14: the {|00⟩, |11⟩} set gives U = Z⊗Z; our circuit is
    // H(a)·CZ·CZ·H(a), the prior work's is CX(t1→a)·CX(t2→a). Same unitary.
    let spec =
        StateSpec::set(vec![CVector::basis_state(4, 0), CVector::basis_state(4, 3)]).unwrap();
    let built = build_ndd_assertion(&spec.correct_states().unwrap()).unwrap();
    let ours = gates_only(&built.circuit).unitary_matrix().unwrap();

    let mut prior = Circuit::new(3);
    prior.cx(0, 2).cx(1, 2); // both test qubits parity-copy into ancilla 2
    let theirs = prior.unitary_matrix().unwrap();
    assert!(
        ours.approx_eq_up_to_phase(&theirs, TOL),
        "NDD parity assertion must reduce to the prior double-CX circuit"
    );
}

#[test]
fn appendix_b_basis_transform_proposition() {
    // Appendix B: for any orthonormal basis {ψᵢ}, U = Σ|i⟩⟨ψᵢ| is unitary
    // and maps each ψᵢ to |i⟩. Check on a completed GHZ basis.
    let s = 0.5f64.sqrt();
    let mut ghz = CVector::zeros(8);
    ghz[0] = C64::from(s);
    ghz[7] = C64::from(s);
    let cs = StateSpec::pure(ghz).unwrap().correct_states().unwrap();
    let w = cs.basis_matrix();
    let u_inv = w.adjoint();
    assert!(u_inv.is_unitary(TOL));
    for (i, psi) in cs.basis.iter().enumerate() {
        let out = u_inv.mul_vec(psi);
        assert!(
            out.approx_eq_up_to_phase(&CVector::basis_state(8, i), TOL),
            "ψ_{i} did not map to |{i}⟩"
        );
    }
    // And U†U = UU† = I (the proposition's unitarity proof).
    let id = CMatrix::identity(8);
    assert!(w.mul(&w.adjoint()).unwrap().approx_eq(&id, TOL));
    assert!(w.adjoint().mul(&w).unwrap().approx_eq(&id, TOL));
}

#[test]
fn swap_design_reduces_to_bell_basis_change() {
    // §IV-B Bell example: U⁻¹ for the Bell state is "a CNOT gate followed
    // by a Hadamard on the control" — our prepare-state inverse must match
    // that unitary.
    let s = 0.5f64.sqrt();
    let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
    let prep = qra_circuit::synthesis::prepare_state(&bell).unwrap();
    let u_inv = prep.inverse().unwrap().unitary_matrix().unwrap();
    let mut reference = Circuit::new(2);
    reference.cx(0, 1).h(0);
    let expect = reference.unitary_matrix().unwrap();
    // Both must map Bell → |00⟩ and keep the Bell basis orthonormal; the
    // matrices may differ by basis ordering, so compare actions on the
    // Bell state itself.
    let ours = u_inv.mul_vec(&bell);
    let theirs = expect.mul_vec(&bell);
    assert!(ours.approx_eq_up_to_phase(&CVector::basis_state(4, 0), TOL));
    assert!(theirs.approx_eq_up_to_phase(&CVector::basis_state(4, 0), TOL));
}
