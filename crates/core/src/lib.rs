//! Precise and approximate quantum state runtime assertions — the core
//! contribution of the reproduced paper (Liu & Zhou, HPCA 2021).
//!
//! An *assertion* is a circuit fragment inserted at a program point that
//! checks — through ancilla-qubit measurements, without destroying the
//! program state on success — whether the qubits under test are in an
//! expected state. Three synthesis approaches are provided:
//!
//! * [`Design::Swap`] — invert the expected state to `|0…0⟩`, swap with
//!   ancillas, re-prepare (§IV of the paper);
//! * [`Design::LogicalOr`] — invert, OR all would-be-measured qubits into a
//!   single ancilla, undo (§IV-E);
//! * [`Design::Ndd`] — phase-kickback with `U = Σ_correct − Σ_incorrect`
//!   (non-destructive discrimination, §V);
//! * [`Design::Auto`] — synthesise all three and keep the cheapest in
//!   entangling-gate count (the paper's `design = NONE`).
//!
//! Assertions accept a [`StateSpec`]: a pure state vector, a mixed-state
//! density matrix, or a *set* of states for approximate (Bloom-filter
//! style) membership checking.
//!
//! ```rust
//! use qra_circuit::Circuit;
//! use qra_core::{insert_assertion, Design, StateSpec};
//! use qra_math::CVector;
//! use qra_sim::StatevectorSimulator;
//!
//! // Assert the Bell state mid-program, then verify no assertion errors.
//! let mut program = Circuit::new(2);
//! program.h(0).cx(0, 1);
//! let s = 0.5f64.sqrt();
//! let bell = CVector::from_real(&[s, 0.0, 0.0, s]);
//! let handle = insert_assertion(
//!     &mut program,
//!     &[0, 1],
//!     &StateSpec::pure(bell)?,
//!     Design::Auto,
//! )?;
//! let counts = StatevectorSimulator::with_seed(1).run(&program, 1024)?;
//! assert_eq!(handle.error_rate(&counts), 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod analysis;
pub mod assertion;
pub mod baselines;
pub mod checkpoint;
pub mod coverage;
pub mod error;
pub mod logical_or;
pub mod ndd;
pub mod plan;
pub mod spec;
pub mod swap;

pub use analysis::AssertionReport;
pub use assertion::{
    insert_assertion, insert_deallocation_assertion, synthesize_assertion, Assertion,
    AssertionHandle, Design,
};
pub use error::AssertionError;
pub use spec::{CorrectStates, StateSpec};
