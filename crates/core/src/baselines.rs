//! Baseline assertion schemes the paper compares against (§II-B, §VI).
//!
//! * [`statistical_assertion`] — Huang & Martonosi's statistical scheme:
//!   destructive measurement at a breakpoint plus a distribution test. It
//!   only observes computational-basis probabilities, so phase bugs are
//!   invisible to it (Table I, Bug1 = False).
//! * [`primitive`] — Liu/Byrd/Zhou's runtime assertion primitives: ad-hoc
//!   ancilla circuits limited to classical states, `|±⟩` superpositions,
//!   and even/odd-parity entangled sets. [`primitive::supports`] encodes
//!   the coverage limits (Table I, GHZ = N/A).
//! * [`proq`] — Li et al.'s projection-based assertions: basis-change,
//!   direct mid-circuit measurement, basis-restore. Needs no ancilla but
//!   requires hardware able to measure mid-circuit and keep computing —
//!   which our simulator has, and 2020-era devices did not.

use crate::plan::AssertionPlan;
use crate::spec::StateSpec;
use crate::AssertionError;
use qra_circuit::Circuit;
use qra_math::CVector;
use qra_sim::{Counts, StatevectorSimulator};

/// Outcome of a statistical assertion: the measured distribution versus
/// the expected one.
#[derive(Debug, Clone)]
pub struct StatOutcome {
    /// Total-variation distance between measured and expected
    /// computational-basis distributions.
    pub total_variation: f64,
    /// The measured histogram.
    pub counts: Counts,
}

impl StatOutcome {
    /// `true` when the distributions agree within `threshold` total
    /// variation (the statistical test "passes").
    pub fn passed(&self, threshold: f64) -> bool {
        self.total_variation <= threshold
    }
}

/// Runs the statistical assertion: appends measurements of `qubits` to a
/// *copy* of the program (destructive — execution cannot continue), runs
/// `shots` shots, and compares against the spec's basis distribution.
///
/// # Errors
///
/// Propagates circuit/simulation failures.
pub fn statistical_assertion(
    program: &Circuit,
    qubits: &[usize],
    spec: &StateSpec,
    shots: u64,
    seed: u64,
) -> Result<StatOutcome, AssertionError> {
    let mut circuit = program.clone();
    circuit.expand_clbits(qubits.len());
    for (i, &q) in qubits.iter().enumerate() {
        circuit.measure(q, i)?;
    }
    let counts = StatevectorSimulator::with_seed(seed).run(&circuit, shots)?;

    // Expected distribution: diagonal of the spec's density matrix.
    let rho = spec.density();
    let dim = rho.rows();
    let k = qubits.len();
    let mut tv = 0.0;
    for outcome in 0..dim {
        let expected = rho.get(outcome, outcome).re;
        // Map state-index bit (qubit i of the spec) to clbit i.
        let mut key = 0u64;
        for (i, _) in qubits.iter().enumerate() {
            if (outcome >> (k - 1 - i)) & 1 == 1 {
                key |= 1 << i;
            }
        }
        let measured = if counts.total() == 0 {
            0.0
        } else {
            counts.count(key) as f64 / counts.total() as f64
        };
        tv += (expected - measured).abs();
    }
    Ok(StatOutcome {
        total_variation: tv / 2.0,
        counts,
    })
}

/// The ASPLOS'20 runtime assertion primitives.
pub mod primitive {
    use super::*;
    use crate::swap::BuiltAssertion;

    /// The three primitive assertion types of the prior work.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum PrimitiveKind {
        /// A computational basis state.
        Classical,
        /// A per-qubit `|+⟩`/`|−⟩` superposition.
        Superposition,
        /// An entangled set with even (or odd) parity of ones.
        EvenParity,
        /// Odd-parity counterpart.
        OddParity,
    }

    /// Classifies whether the primitives support `spec`, returning the
    /// primitive kind when they do. This encodes the coverage limits the
    /// paper lists: no arbitrary coefficients, no general entanglement
    /// (GHZ precise → `None`), no mixed states beyond parity sets.
    pub fn supports(spec: &StateSpec) -> Option<PrimitiveKind> {
        const TOL: f64 = 1e-9;
        match spec {
            StateSpec::Pure(v) => {
                // Classical basis state?
                if basis_index(v).is_some() {
                    return Some(PrimitiveKind::Classical);
                }
                // Tensor product of |±⟩ and basis states?
                if is_pm_product(v) {
                    return Some(PrimitiveKind::Superposition);
                }
                None
            }
            StateSpec::Mixed(_) | StateSpec::Set(_) => {
                // Parity sets: correct basis states exactly the even- (or
                // odd-) parity computational states.
                let cs = spec.correct_states().ok()?;
                let dim = cs.dim();
                let mut even = vec![false; dim];
                for v in &cs.basis[..cs.t] {
                    let idx = basis_index(v)?;
                    even[idx] = true;
                }
                let all_even = (0..dim).all(|i| even[i] == (i.count_ones() % 2 == 0));
                if all_even {
                    return Some(PrimitiveKind::EvenParity);
                }
                let all_odd = (0..dim).all(|i| even[i] == (i.count_ones() % 2 == 1));
                if all_odd {
                    return Some(PrimitiveKind::OddParity);
                }
                let _ = TOL;
                None
            }
        }
    }

    /// Builds the primitive assertion circuit when supported.
    ///
    /// # Errors
    ///
    /// Returns [`AssertionError::Unsupported`] outside the primitive
    /// coverage (the paper's "N/A" entries).
    pub fn build(spec: &StateSpec) -> Result<BuiltAssertion, AssertionError> {
        let kind = supports(spec).ok_or_else(|| AssertionError::Unsupported {
            scheme: "primitive",
            reason: "only classical, |±⟩ superposition and parity-set states".into(),
        })?;
        let k = spec.num_qubits();
        match kind {
            PrimitiveKind::Classical => {
                let target = match spec {
                    StateSpec::Pure(v) => basis_index(v).expect("checked by supports"),
                    _ => unreachable!(),
                };
                // One ancilla per qubit: CX(q → anc), X(anc) when expecting 1.
                let mut c = Circuit::with_clbits(2 * k, k);
                for q in 0..k {
                    let anc = k + q;
                    c.cx(q, anc);
                    if (target >> (k - 1 - q)) & 1 == 1 {
                        c.x(anc);
                    }
                    c.measure(anc, q)?;
                }
                Ok(BuiltAssertion {
                    circuit: c,
                    num_test: k,
                    num_ancilla: k,
                    num_clbits: k,
                })
            }
            PrimitiveKind::Superposition => {
                let v = match spec {
                    StateSpec::Pure(v) => v,
                    _ => unreachable!(),
                };
                // Per qubit: rotate |±⟩ → |0/1⟩ with H, copy to an ancilla,
                // rotate back — the ASPLOS'20 superposition primitive.
                let signs = pm_signs(v).expect("checked by supports");
                let mut c = Circuit::with_clbits(2 * k, k);
                for (q, minus) in signs.iter().enumerate() {
                    let anc = k + q;
                    c.h(q);
                    c.cx(q, anc);
                    if *minus {
                        c.x(anc);
                    }
                    c.h(q);
                    c.measure(anc, q)?;
                }
                Ok(BuiltAssertion {
                    circuit: c,
                    num_test: k,
                    num_ancilla: k,
                    num_clbits: k,
                })
            }
            PrimitiveKind::EvenParity | PrimitiveKind::OddParity => {
                // Parity check: CX every test qubit into one ancilla.
                let mut c = Circuit::with_clbits(k + 1, 1);
                let anc = k;
                for q in 0..k {
                    c.cx(q, anc);
                }
                if kind == PrimitiveKind::OddParity {
                    c.x(anc);
                }
                c.measure(anc, 0)?;
                Ok(BuiltAssertion {
                    circuit: c,
                    num_test: k,
                    num_ancilla: 1,
                    num_clbits: 1,
                })
            }
        }
    }

    fn basis_index(v: &CVector) -> Option<usize> {
        let mut hot = None;
        for (i, amp) in v.iter().enumerate() {
            if amp.norm() > 1e-9 {
                if hot.is_some() || (amp.norm() - 1.0).abs() > 1e-6 {
                    return None;
                }
                hot = Some(i);
            }
        }
        hot
    }

    /// For a tensor product of |+⟩/|−⟩ factors, the per-qubit sign flags
    /// (`true` = |−⟩).
    fn pm_signs(v: &CVector) -> Option<Vec<bool>> {
        let n = qra_math::qubits_for_dim(v.len()).ok()?;
        let mut signs = Vec::with_capacity(n);
        let mut rest = v.clone();
        for _ in 0..n {
            let half = rest.len() / 2;
            let top = CVector::new(rest.as_slice()[..half].to_vec());
            let bottom = CVector::new(rest.as_slice()[half..].to_vec());
            let plus_like = top.approx_eq(&bottom, 1e-8);
            let minus_like = top.approx_eq(&bottom.scale(qra_math::C64::from(-1.0)), 1e-8);
            if plus_like {
                signs.push(false);
            } else if minus_like {
                signs.push(true);
            } else {
                return None;
            }
            rest = top.scale(qra_math::C64::from(2.0f64.sqrt()));
        }
        Some(signs)
    }

    fn is_pm_product(v: &CVector) -> bool {
        pm_signs(v).is_some()
    }
}

/// The projection-based (Proq) baseline.
pub mod proq {
    use super::*;

    /// A Proq insertion: basis-change, direct mid-circuit measurement of
    /// the checked qubits, basis restore. Returns the host-circuit clbits
    /// holding the measurements (1 = error).
    #[derive(Debug, Clone)]
    pub struct ProqHandle {
        /// Host classical bits; any set bit flags an assertion error.
        pub clbits: Vec<usize>,
    }

    impl ProqHandle {
        /// Fraction of shots flagged.
        pub fn error_rate(&self, counts: &Counts) -> f64 {
            counts.any_set_frequency(&self.clbits)
        }
    }

    /// Inserts a projection-based assertion directly into `circuit`.
    /// No ancillas are used; the checked qubits are measured in place,
    /// which requires mid-circuit measurement support from the backend.
    ///
    /// # Errors
    ///
    /// Propagates plan/synthesis and circuit errors.
    pub fn insert(
        circuit: &mut Circuit,
        qubits: &[usize],
        spec: &StateSpec,
    ) -> Result<ProqHandle, AssertionError> {
        let cs = spec.correct_states()?;
        if qubits.len() != cs.num_qubits() {
            return Err(AssertionError::InvalidQubitList {
                reason: "qubit list length mismatch".into(),
            });
        }
        let plan = AssertionPlan::build(&cs)?;
        let cl_base = circuit.num_clbits();
        let mut clbits = Vec::new();
        let mut next_cl = cl_base;
        let mut anc_base = circuit.num_qubits();

        for step in &plan.steps {
            let mut map: Vec<usize> = Vec::with_capacity(step.n_local);
            if step.has_extension {
                circuit.expand_qubits(anc_base + 1);
                map.push(anc_base);
                anc_base += 1;
            }
            map.extend_from_slice(qubits);
            circuit.expand_clbits(next_cl + step.checked.len());
            circuit.compose(&step.u_inv, &map, &[])?;
            for &local in &step.checked {
                circuit.measure(map[local], next_cl)?;
                clbits.push(next_cl);
                next_cl += 1;
            }
            circuit.compose(&step.u, &map, &[])?;
        }
        Ok(ProqHandle { clbits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qra_math::C64;

    fn ghz_vec() -> CVector {
        let s = 0.5f64.sqrt();
        let mut v = CVector::zeros(8);
        v[0] = C64::from(s);
        v[7] = C64::from(s);
        v
    }

    fn ghz_prep() -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        c
    }

    #[test]
    fn stat_passes_correct_ghz() {
        let spec = StateSpec::pure(ghz_vec()).unwrap();
        let out = statistical_assertion(&ghz_prep(), &[0, 1, 2], &spec, 8192, 1).unwrap();
        assert!(out.passed(0.05), "tv = {}", out.total_variation);
    }

    #[test]
    fn stat_misses_phase_bug_but_catches_entanglement_bug() {
        let spec = StateSpec::pure(ghz_vec()).unwrap();
        // Bug1: sign flip — identical basis distribution, stat CANNOT see it.
        let mut bug1 = Circuit::new(3);
        bug1.u2(std::f64::consts::PI, 0.0, 0).cx(0, 1).cx(1, 2);
        let out1 = statistical_assertion(&bug1, &[0, 1, 2], &spec, 8192, 2).unwrap();
        assert!(out1.passed(0.05), "Table I: Stat must miss Bug1");
        // Bug2: wrong entanglement — distribution shifts, stat catches it.
        let mut bug2 = Circuit::new(3);
        bug2.h(0).cx(1, 2).cx(0, 1);
        let out2 = statistical_assertion(&bug2, &[0, 1, 2], &spec, 8192, 3).unwrap();
        assert!(!out2.passed(0.05), "Table I: Stat must catch Bug2");
    }

    #[test]
    fn primitive_supports_matrix() {
        use primitive::{supports, PrimitiveKind};
        // Classical.
        let c = StateSpec::pure(CVector::basis_state(4, 2)).unwrap();
        assert_eq!(supports(&c), Some(PrimitiveKind::Classical));
        // |+−⟩ superposition.
        let s = 0.5f64.sqrt();
        let pm = CVector::from_real(&[s, s]).kron(&CVector::from_real(&[s, -s]));
        assert_eq!(
            supports(&StateSpec::pure(pm).unwrap()),
            Some(PrimitiveKind::Superposition)
        );
        // Even-parity set {|00⟩, |11⟩}.
        let even =
            StateSpec::set(vec![CVector::basis_state(4, 0), CVector::basis_state(4, 3)]).unwrap();
        assert_eq!(supports(&even), Some(PrimitiveKind::EvenParity));
        // Odd-parity set {|01⟩, |10⟩}.
        let odd =
            StateSpec::set(vec![CVector::basis_state(4, 1), CVector::basis_state(4, 2)]).unwrap();
        assert_eq!(supports(&odd), Some(PrimitiveKind::OddParity));
        // GHZ precise: NOT supported (the paper's headline limitation).
        assert_eq!(supports(&StateSpec::pure(ghz_vec()).unwrap()), None);
        // Arbitrary-coefficient 1-qubit state: not supported.
        let tilted = CVector::from_real(&[0.6, 0.8]);
        assert_eq!(supports(&StateSpec::pure(tilted).unwrap()), None);
    }

    #[test]
    fn primitive_build_rejects_unsupported() {
        let err = primitive::build(&StateSpec::pure(ghz_vec()).unwrap()).unwrap_err();
        assert!(matches!(err, AssertionError::Unsupported { .. }));
    }

    #[test]
    fn primitive_parity_assertion_works() {
        let even =
            StateSpec::set(vec![CVector::basis_state(4, 0), CVector::basis_state(4, 3)]).unwrap();
        let built = primitive::build(&even).unwrap();
        assert_eq!(built.num_ancilla, 1);
        let counts = qra_circuit::GateCounts::of(&built.circuit).unwrap();
        assert_eq!(counts.cx, 2, "Table III: n CX for the parity primitive");

        let mut full = Circuit::with_clbits(3, 1);
        full.h(0).cx(0, 1);
        full.compose(&built.circuit, &[0, 1, 2], &[0]).unwrap();
        let c = StatevectorSimulator::with_seed(4).run(&full, 2048).unwrap();
        assert_eq!(c.any_set_frequency(&[0]), 0.0);

        let mut bad = Circuit::with_clbits(3, 1);
        bad.x(0);
        bad.compose(&built.circuit, &[0, 1, 2], &[0]).unwrap();
        let c = StatevectorSimulator::with_seed(4).run(&bad, 2048).unwrap();
        assert_eq!(c.any_set_frequency(&[0]), 1.0);
    }

    #[test]
    fn primitive_classical_assertion_works() {
        let spec = StateSpec::pure(CVector::basis_state(4, 0b10)).unwrap();
        let built = primitive::build(&spec).unwrap();
        let mut full = Circuit::with_clbits(4, 2);
        full.x(0);
        full.compose(&built.circuit, &[0, 1, 2, 3], &[0, 1])
            .unwrap();
        let c = StatevectorSimulator::with_seed(6).run(&full, 512).unwrap();
        assert_eq!(c.any_set_frequency(&[0, 1]), 0.0);
    }

    #[test]
    fn primitive_superposition_assertion_works() {
        let s = 0.5f64.sqrt();
        let spec = StateSpec::pure(CVector::from_real(&[s, -s])).unwrap();
        let built = primitive::build(&spec).unwrap();
        // Program in |−⟩ passes.
        let mut full = Circuit::with_clbits(2, 1);
        full.x(0).h(0);
        full.compose(&built.circuit, &[0, 1], &[0]).unwrap();
        let c = StatevectorSimulator::with_seed(8).run(&full, 512).unwrap();
        assert_eq!(c.any_set_frequency(&[0]), 0.0);
        // Program in |+⟩ flags.
        let mut bad = Circuit::with_clbits(2, 1);
        bad.h(0);
        bad.compose(&built.circuit, &[0, 1], &[0]).unwrap();
        let c = StatevectorSimulator::with_seed(8).run(&bad, 512).unwrap();
        assert_eq!(c.any_set_frequency(&[0]), 1.0);
    }

    #[test]
    fn proq_ghz_assertion_no_ancilla() {
        let spec = StateSpec::pure(ghz_vec()).unwrap();
        let mut program = ghz_prep();
        let before_qubits = program.num_qubits();
        let handle = proq::insert(&mut program, &[0, 1, 2], &spec).unwrap();
        assert_eq!(program.num_qubits(), before_qubits, "proq adds no ancilla");
        assert_eq!(handle.clbits.len(), 3);
        let counts = StatevectorSimulator::with_seed(14)
            .run(&program, 2048)
            .unwrap();
        assert_eq!(handle.error_rate(&counts), 0.0);
    }

    #[test]
    fn proq_detects_both_ghz_bugs() {
        let spec = StateSpec::pure(ghz_vec()).unwrap();
        let mut bug1 = Circuit::new(3);
        bug1.u2(std::f64::consts::PI, 0.0, 0).cx(0, 1).cx(1, 2);
        let h1 = proq::insert(&mut bug1, &[0, 1, 2], &spec).unwrap();
        let c1 = StatevectorSimulator::with_seed(15)
            .run(&bug1, 4096)
            .unwrap();
        assert!(h1.error_rate(&c1) > 0.4, "Table I: Proq catches Bug1");

        let mut bug2 = Circuit::new(3);
        bug2.h(0).cx(1, 2).cx(0, 1);
        let h2 = proq::insert(&mut bug2, &[0, 1, 2], &spec).unwrap();
        let c2 = StatevectorSimulator::with_seed(16)
            .run(&bug2, 4096)
            .unwrap();
        assert!(h2.error_rate(&c2) > 0.2, "Table I: Proq catches Bug2");
    }

    #[test]
    fn proq_program_continues_after_pass() {
        // After a passing proq assertion the program can keep computing:
        // assert |+⟩ then apply H and measure — outcome deterministic 0.
        let plus = CVector::from_real(&[0.5f64.sqrt(), 0.5f64.sqrt()]);
        let spec = StateSpec::pure(plus).unwrap();
        let mut program = Circuit::new(1);
        program.h(0);
        let handle = proq::insert(&mut program, &[0], &spec).unwrap();
        let data_cl = program.num_clbits();
        program.expand_clbits(data_cl + 1);
        program.h(0);
        program.measure(0, data_cl).unwrap();
        let counts = StatevectorSimulator::with_seed(17)
            .run(&program, 1024)
            .unwrap();
        assert_eq!(handle.error_rate(&counts), 0.0);
        assert_eq!(counts.marginal_frequency(data_cl), 0.0);
    }
}
